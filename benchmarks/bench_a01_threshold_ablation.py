"""A1 — ablating the random freezing thresholds (Section 4.2).

The paper's device replaces the fixed threshold 1-2ε with a per-(vertex,
iteration) uniform draw from [1-4ε, 1-2ε] to keep the MPC estimates from
systematically diverging from the centralized process.  This ablation runs
the coupled processes both ways and reports the bad-vertex fraction.

Finding recorded in EXPERIMENTS.md: on benign G(n, p) inputs both variants
stay well-behaved at simulable sizes — the randomization guards the
worst-case correlated drift that the analysis must handle, which average-
case inputs do not exhibit.
"""

from repro.analysis.ablations import run_a01_threshold_ablation

from conftest import report


def test_a01_threshold_ablation(benchmark):
    rows = benchmark.pedantic(
        run_a01_threshold_ablation,
        kwargs={"sizes": (256, 512, 1024)},
        iterations=1,
        rounds=1,
    )
    report("a01_threshold_ablation", "A1: random vs fixed thresholds", rows)
    for row in rows:
        assert row["bad_fraction_random"] < 0.5
        assert row["bad_fraction_fixed"] < 0.5
