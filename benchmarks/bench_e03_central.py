"""E3 — Central's iteration count and approximation quality (Lemma 4.1).

Claims: Central terminates within O(log n / ε) iterations; its fractional
matching is within (2+5ε) of the maximum matching and its frozen-vertex
cover within (2+5ε) of the minimum vertex cover.
"""

from repro.analysis.experiments import run_e03_central

from conftest import report


def test_e03_central(benchmark):
    rows = benchmark.pedantic(
        run_e03_central,
        kwargs={"sizes": (128, 256, 512), "epsilons": (0.05, 0.1, 0.2)},
        iterations=1,
        rounds=1,
    )
    report("e03_central", "E3: Central iterations and quality", rows)
    for row in rows:
        eps = row["epsilon"]
        assert row["iterations"] <= 2 * row["log_n_over_eps"] + 10
        assert row["matching_ratio"] <= 2 + 5 * eps + 1e-9
