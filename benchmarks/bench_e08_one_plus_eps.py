"""E8 — (1+ε) matching via short augmenting paths (Corollary 1.3).

Claim: eliminating augmenting paths of length <= 2*ceil(1/ε)-1 on top of
the Theorem 1.2 matching yields a (1+ε) approximation; tighter ε costs
more sweeps (the (1/ε)^O(1/ε) round shape).
"""

from repro.analysis.experiments import run_e08_one_plus_eps

from conftest import report


def test_e08_one_plus_eps(benchmark):
    rows = benchmark.pedantic(
        run_e08_one_plus_eps,
        kwargs={"n": 512, "epsilons": (0.5, 0.34, 0.2)},
        iterations=1,
        rounds=1,
    )
    report("e08_one_plus_eps", "E8: (1+eps) matching quality vs eps", rows)
    for row in rows:
        assert row["ratio"] <= row["guarantee"] + 0.1
    # Tighter epsilon never yields a smaller matching.
    sizes = [row["matching"] for row in rows]
    assert sizes == sorted(sizes)
