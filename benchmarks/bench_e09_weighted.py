"""E9 — (2+ε) weighted matching via weight classes (Corollary 1.4).

Claim: the LPSR-style weight-class reduction yields a constant-factor
weighted matching; on tiny instances it is checked against brute force.
"""

from repro.analysis.experiments import run_e09_weighted

from conftest import report


def test_e09_weighted(benchmark):
    rows = benchmark.pedantic(
        run_e09_weighted,
        kwargs={"sizes": (12, 128, 256, 512)},
        iterations=1,
        rounds=1,
    )
    report("e09_weighted", "E9: weighted matching (Cor 1.4)", rows)
    for row in rows:
        if "ratio" in row:
            assert row["ratio"] <= 2.5
