"""E15 — the task × backend matrix through the ``repro.api`` façade.

Every registered ``(task, backend)`` pair runs on one shared workload via
``solve_many``; the full RunReports are persisted as JSONL (the sweep
format) and the summary table records rounds, validity, and wall time per
backend — the head-to-head view E10 gives for a hand-picked set, here
derived from the registry so new backends appear automatically.
"""

from repro.graph.generators import gnp_random_graph

from conftest import facade_sweep


def test_e15_backend_matrix(benchmark):
    graph = gnp_random_graph(256, 16.0 / 255.0, seed=15)
    rows = benchmark.pedantic(
        facade_sweep,
        args=(
            "e15_backend_matrix",
            "E15: task x backend matrix (n=256)",
            ("mis", "fractional_matching", "matching", "vertex_cover"),
            (graph,),
        ),
        kwargs={"backends": "all", "seeds": (15,)},
        iterations=1,
        rounds=1,
    )
    assert all(row["valid"] for row in rows)
    # Every one of the four tasks ran on at least two backends.
    for task in ("mis", "fractional_matching", "matching", "vertex_cover"):
        assert sum(1 for row in rows if row["task"] == task) >= 2
