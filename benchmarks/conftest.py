"""Shared helpers for the benchmark harness.

Every benchmark regenerates one experiment from DESIGN.md's index: it runs
the corresponding ``run_eXX`` harness function under ``pytest-benchmark``
timing, prints the result table, and persists it under
``benchmarks/results/`` so EXPERIMENTS.md can be refreshed from disk.

Cross-algorithm comparisons go through the :mod:`repro.api` façade:
:func:`facade_sweep` runs a graphs × tasks × backends × seeds grid with
:func:`repro.api.solve_many`, persists the full reports as JSONL next to
the text table, and returns summary rows for timing.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.tables import format_table
from repro.api import solve_many, sweep

RESULTS_DIR = Path(__file__).parent / "results"


def report(name: str, title: str, rows: List[Dict[str, Any]]) -> None:
    """Print a table and persist it to ``benchmarks/results/<name>.txt``."""
    table = format_table(rows, title=title)
    print("\n" + table)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(table + "\n", encoding="utf-8")


def facade_sweep(
    name: str,
    title: str,
    tasks: Sequence[str],
    graphs: Sequence[Any],
    *,
    backends: Any = "all",
    seeds: Sequence[Optional[int]] = (1,),
    configs: Sequence[Any] = (None,),
) -> List[Dict[str, Any]]:
    """Run a façade sweep, persist JSONL + table, return summary rows."""
    RESULTS_DIR.mkdir(exist_ok=True)
    jsonl_path = RESULTS_DIR / f"{name}.jsonl"
    result = solve_many(
        sweep(tasks, graphs, backends=backends, seeds=seeds, configs=configs),
        jsonl_path=jsonl_path,
    )
    if result.failures:
        raise RuntimeError(f"facade sweep {name!r} had failures: {result.failures}")
    rows = result.rows()
    report(name, title, rows)
    return rows
