"""Shared helpers for the benchmark harness.

Every benchmark regenerates one experiment from DESIGN.md's index: it runs
the corresponding ``run_eXX`` harness function under ``pytest-benchmark``
timing, prints the result table, and persists it under
``benchmarks/results/`` so EXPERIMENTS.md can be refreshed from disk.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List

from repro.analysis.tables import format_table

RESULTS_DIR = Path(__file__).parent / "results"


def report(name: str, title: str, rows: List[Dict[str, Any]]) -> None:
    """Print a table and persist it to ``benchmarks/results/<name>.txt``."""
    table = format_table(rows, title=title)
    print("\n" + table)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(table + "\n", encoding="utf-8")
