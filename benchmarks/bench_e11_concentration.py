"""E11 — coupled-process concentration (Lemmas 4.11-4.15).

Claim: running MPC-Simulation and Central-Rand with shared thresholds,
the fraction of *bad* vertices (diverging freeze decisions) stays small
and the two fractional matchings agree closely.
"""

from repro.analysis.experiments import run_e11_concentration

from conftest import report


def test_e11_concentration(benchmark):
    rows = benchmark.pedantic(
        run_e11_concentration,
        kwargs={"sizes": (256, 512, 1024), "epsilon": 0.1},
        iterations=1,
        rounds=1,
    )
    report("e11_concentration", "E11: coupled-process divergence", rows)
    for row in rows:
        assert row["bad_fraction"] < 0.5
        ratio = row["mpc_weight"] / row["central_weight"]
        assert 0.5 <= ratio <= 2.0
