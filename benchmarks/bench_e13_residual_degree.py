"""E13 — residual degree decay of randomized greedy (Lemma 3.1).

Claim (via [ACG+15]): after the randomized greedy MIS process consumes
ranks 1..r, the residual graph's max degree is O(n log n / r) w.h.p.  The
series reports the measured decay against the proof's explicit
20·n·ln(n)/r bound; the measured/bound column should stay far below 1 and
roughly constant (the 1/r shape).
"""

from repro.analysis.experiments import run_e13_residual_degree

from conftest import report


def test_e13_residual_degree(benchmark):
    rows = benchmark.pedantic(
        run_e13_residual_degree,
        kwargs={"n": 2048, "avg_degree": 256.0},
        iterations=1,
        rounds=1,
    )
    report("e13_residual_degree", "E13: residual max degree vs rank", rows)
    for row in rows:
        assert row["measured_over_bound"] <= 1.0
    degrees = [row["residual_max_degree"] for row in rows]
    assert degrees == sorted(degrees, reverse=True)
