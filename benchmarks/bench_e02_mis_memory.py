"""E2 — per-machine memory during MIS (Lemma 3.1 / Eq. (1)).

Claim: every rank-prefix subgraph shipped to a single machine has O(n)
edges w.h.p.  The series reports the largest shipment normalized by n; the
shape to observe is a bounded (in fact, small) constant across the sweep.
"""

from repro.analysis.experiments import run_e02_mis_memory

from conftest import report


def test_e02_mis_memory(benchmark):
    rows = benchmark.pedantic(
        run_e02_mis_memory,
        kwargs={"sizes": (256, 512, 1024, 2048, 4096), "avg_degree": 192.0},
        iterations=1,
        rounds=1,
    )
    report("e02_mis_memory", "E2: max edges shipped per machine / n", rows)
    assert all(row["shipped_over_n"] <= 4.0 for row in rows)
