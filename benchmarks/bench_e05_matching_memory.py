"""E5 — per-machine induced subgraph size during matching (Lemma 4.7).

Claim: the induced subgraph each machine receives per phase has O(n)
edges w.h.p.; we report the max over phases normalized by n.
"""

from repro.analysis.experiments import run_e05_matching_memory

from conftest import report


def test_e05_matching_memory(benchmark):
    rows = benchmark.pedantic(
        run_e05_matching_memory,
        kwargs={"sizes": (256, 512, 1024, 2048), "epsilon": 0.1},
        iterations=1,
        rounds=1,
    )
    report("e05_matching_memory", "E5: max per-machine edges / n", rows)
    assert all(row["machine_edges_over_n"] <= 4.0 for row in rows)
