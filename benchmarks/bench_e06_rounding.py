"""E6 — randomized rounding yield (Lemma 5.1).

Claim: rounding a fractional matching over the high-load candidate set C~
produces an integral matching of size at least |C~|/50 (w.h.p.); the
measured constant is expected to be far better than 1/50.
"""

from repro.analysis.experiments import run_e06_rounding

from conftest import report


def test_e06_rounding(benchmark):
    rows = benchmark.pedantic(
        run_e06_rounding,
        kwargs={"sizes": (512, 1024, 2048), "epsilon": 0.1},
        iterations=1,
        rounds=1,
    )
    report("e06_rounding", "E6: rounding yield per candidate", rows)
    for row in rows:
        assert row["yield_per_candidate"] >= row["paper_guarantee"]
