"""A2 — ablating the rank-prefix exponent α (Section 3.2 fixes α = 3/4).

Larger α means smaller rank steps: more prefix phases but smaller shipped
subgraphs; smaller α compresses harder.  The paper's α = 3/4 balances the
two — this sweep makes the trade-off visible.
"""

from repro.analysis.ablations import run_a02_alpha_ablation

from conftest import report


def test_a02_alpha_ablation(benchmark):
    rows = benchmark.pedantic(
        run_a02_alpha_ablation,
        kwargs={"n": 2048, "alphas": (0.5, 0.75, 0.9)},
        iterations=1,
        rounds=1,
    )
    report("a02_alpha_ablation", "A2: rank-prefix exponent alpha", rows)
    # More aggressive alpha never uses fewer phases.
    phases = [row["prefix_phases"] for row in rows]
    assert phases == sorted(phases)
    # The MIS itself must be invariant in size-quality (same seed).
    assert len({row["mis_size"] for row in rows}) <= 2
