"""E12 — CONGESTED-CLIQUE MIS (Theorem 1.1, CC half; Lenzen routing).

Claims: O(log log Δ) CONGESTED-CLIQUE rounds; per-phase routed volume to
the leader is O(n) messages (Lemma 3.1), satisfying Lenzen's precondition
with a constant number of invocations.
"""

from repro.analysis.experiments import run_e12_congested_clique

from conftest import report


def test_e12_congested_clique(benchmark):
    rows = benchmark.pedantic(
        run_e12_congested_clique,
        kwargs={"sizes": (256, 512, 1024, 2048), "avg_degree": 192.0},
        iterations=1,
        rounds=1,
    )
    report("e12_congested_clique", "E12: CONGESTED-CLIQUE MIS", rows)
    assert all(row["routed_over_n"] <= 4.0 for row in rows)
    assert rows[-1]["rounds"] - rows[0]["rounds"] <= 6
