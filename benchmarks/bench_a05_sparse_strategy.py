"""A5 — ablating the sparsified-finish LOCAL process.

Theorem 2.1's black box is [Gha17], a compression of Ghaffari's
desire-level LOCAL process; our default substitute compresses Luby's
process instead.  This ablation runs the MIS pipeline with both and
compares simulated LOCAL rounds, leftover edges, and total charged
rounds — evidence that the substitution choice does not change the
claim's shape.
"""

from repro.analysis.ablations import run_a05_sparse_strategy

from conftest import report


def test_a05_sparse_strategy(benchmark):
    rows = benchmark.pedantic(
        run_a05_sparse_strategy,
        kwargs={"n": 1024, "avg_degree": 32.0},
        iterations=1,
        rounds=1,
    )
    report("a05_sparse_strategy", "A5: Luby vs Ghaffari sparsified finish", rows)
    assert {row["strategy"] for row in rows} == {"luby", "ghaffari"}
    for row in rows:
        assert row["maximal"] is True
        assert row["rounds"] <= 2 * rows[0]["rounds"] + 8
