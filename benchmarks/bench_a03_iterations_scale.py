"""A3 — ablating iterations-per-phase (the Lemma 4.8 schedule).

More compressed iterations per phase mean fewer phases and rounds but
longer periods in which the local estimates drift before the true weights
are reconciled — the quality/rounds trade-off at the heart of the paper's
round-compression argument.
"""

from repro.analysis.ablations import run_a03_iterations_scale_ablation

from conftest import report


def test_a03_iterations_scale(benchmark):
    rows = benchmark.pedantic(
        run_a03_iterations_scale_ablation,
        kwargs={"n": 1024, "scales": (1.0, 2.0, 4.0)},
        iterations=1,
        rounds=1,
    )
    report("a03_iterations_scale", "A3: iterations per phase", rows)
    phases = [row["phases"] for row in rows]
    assert phases == sorted(phases, reverse=True)  # more I => fewer phases
    for row in rows:
        assert row["weight_ratio"] <= 2 + 50 * 0.1
