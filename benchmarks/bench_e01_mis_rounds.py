"""E1 — MIS round complexity vs n (Theorem 1.1).

Claim: the paper's MIS algorithm finishes in O(log log Δ) MPC rounds;
Luby's classic algorithm needs Θ(log n).  The series below shows measured
rounds for both across a size sweep; the reproducible *shape* is that the
paper's column stays nearly flat while Luby's tracks log n.
"""

from repro.analysis.experiments import run_e01_mis_rounds

from conftest import report


def test_e01_mis_rounds(benchmark):
    rows = benchmark.pedantic(
        run_e01_mis_rounds,
        kwargs={"sizes": (256, 512, 1024, 2048, 4096), "avg_degree": 192.0},
        iterations=1,
        rounds=1,
    )
    report("e01_mis_rounds", "E1: MIS rounds vs n (paper vs Luby)", rows)
    assert all(row["paper_rounds"] > 0 for row in rows)
    # Shape check: across a 16x size sweep, the paper's rounds move by at
    # most a small additive constant (doubly-logarithmic growth).
    assert rows[-1]["paper_rounds"] - rows[0]["paper_rounds"] <= 4
