"""E10 — head-to-head comparison table (Section 1.2 related work).

One fixed workload; every algorithm in the library reports measured rounds
and output quality.  Absolute round counts at simulable sizes favor the
baselines' small constants; the asymptotic separation is the subject of E1
and E4 (growth shapes), and this table records the honest snapshot.
"""

from repro.analysis.experiments import run_e10_baselines

from conftest import report


def test_e10_baselines(benchmark):
    rows = benchmark.pedantic(
        run_e10_baselines,
        kwargs={"n": 1024, "avg_degree": 16.0},
        iterations=1,
        rounds=1,
    )
    report("e10_baselines", "E10: algorithms head to head (n=1024)", rows)
    assert len(rows) == 6
    # All matching algorithms must land within their guarantees (<= 2.1x).
    for row in rows:
        if row["quality"].startswith("ratio"):
            assert float(row["quality"].split()[1]) <= 2.1
