"""E4 — MPC-Simulation phases, rounds, and quality (Lemma 4.2).

Claims: O(log log n) phases; fractional matching within (2+50ε) of the
maximum matching; frozen cover within the same factor of the optimum.
"""

from repro.analysis.experiments import run_e04_mpc_matching

from conftest import report


def test_e04_mpc_matching(benchmark):
    rows = benchmark.pedantic(
        run_e04_mpc_matching,
        kwargs={"sizes": (256, 512, 1024, 2048), "epsilon": 0.1},
        iterations=1,
        rounds=1,
    )
    report("e04_mpc_matching", "E4: MPC-Simulation schedule and quality", rows)
    for row in rows:
        assert row["weight_ratio"] <= 2 + 50 * 0.1
    # Phase count moves at most +2 across an 8x sweep.
    assert rows[-1]["phases"] - rows[0]["phases"] <= 2
