"""End-to-end perf: whole ``solve()`` runs per task × backend on the ladder.

Times the MPC hot-path backends through the façade on the same graph
ladder the kernel suite uses and emits ``BENCH_e2e.json``.  Passing
``--baseline`` embeds a previously captured run (e.g. the pre-vectorization
seed implementation) and computes per-row speedups, so the committed file
carries the before/after evidence.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_e2e.py --rung full \
        --out benchmarks/perf/BENCH_e2e.json [--baseline seed_e2e.json]
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List

if __package__ in (None, ""):
    import os

    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from perf.common import (
    E2E_RUNGS,
    environment_stamp,
    ladder_graph,
    read_json,
    result_key,
    time_call,
    write_json,
)

SOLVE_SEED = 7
KEY_FIELDS = ("task", "backend", "family", "n")

# The grid: per pair, which families run and up to which n.  The expensive
# pairs are capped so the full rung stays tractable; the caps are part of
# the committed trajectory, so successive PRs compare identical cells.
#
# Since PR 5 the grid covers all five registry backends.  Family choices
# follow each backend's load-bearing regime: the CONGESTED-CLIQUE rows run
# the "dense" family at scale (prefix phases routing Θ(n) volume — at
# average degree 20 the rank schedule is empty and nothing routes), the
# Pregel rows run the sparse families (message volume ~ 2m per superstep),
# and the centralized references are capped where their asymptotics bite.
PAIRS: List[Dict[str, Any]] = [
    {"task": "mis", "backend": "mpc", "family": "random", "max_n": 100_000},
    {"task": "mis", "backend": "mpc", "family": "powerlaw", "max_n": 100_000},
    {
        "task": "fractional_matching",
        "backend": "mpc",
        "family": "random",
        "max_n": 50_000,
    },
    {
        "task": "fractional_matching",
        "backend": "mpc",
        "family": "powerlaw",
        "max_n": 20_000,
    },
    {"task": "matching", "backend": "mpc", "family": "random", "max_n": 5_000},
    {
        "task": "mis",
        "backend": "congested_clique",
        "family": "dense",
        "max_n": 50_000,
    },
    {
        "task": "mis",
        "backend": "congested_clique",
        "family": "random",
        "max_n": 5_000,
    },
    {
        "task": "fractional_matching",
        "backend": "congested_clique",
        "family": "random",
        "max_n": 5_000,
    },
    {"task": "mis", "backend": "pregel", "family": "random", "max_n": 50_000},
    # The matching program and the hub-heavy Luby runs are draw-bound: one
    # SHA+MT draw per live vertex per round is pinned by byte-identical
    # output preservation (~6 µs each), which caps their e2e gain near 4x.
    # Their scale rows would track the draw floor, not the vectorization,
    # so they stay on the small rung (see PERFORMANCE.md, "Who runs on it").
    {"task": "mis", "backend": "pregel", "family": "powerlaw", "max_n": 5_000},
    {"task": "matching", "backend": "pregel", "family": "random", "max_n": 5_000},
    {"task": "mis", "backend": "greedy", "family": "random", "max_n": 100_000},
    {"task": "matching", "backend": "greedy", "family": "random", "max_n": 100_000},
    {
        "task": "fractional_matching",
        "backend": "central",
        "family": "random",
        "max_n": 5_000,
    },
    {"task": "matching", "backend": "central", "family": "random", "max_n": 1_000},
]


def run_suite(rung: str) -> List[Dict[str, Any]]:
    from repro.api import solve

    results: List[Dict[str, Any]] = []
    for pair in PAIRS:
        for n in E2E_RUNGS[rung]:
            if n > pair["max_n"]:
                continue
            graph = ladder_graph(pair["family"], n)
            holder: Dict[str, Any] = {}

            def run():
                holder["report"] = solve(
                    pair["task"], graph, backend=pair["backend"], seed=SOLVE_SEED
                )

            seconds = time_call(run, repeats=2 if n <= 5_000 else 1)
            report = holder["report"]
            entry = {
                "task": pair["task"],
                "backend": pair["backend"],
                "family": pair["family"],
                "n": n,
                "m": graph.num_edges,
                "seconds": seconds,
                "rounds": report.rounds,
                "size": report.size,
                "valid": report.valid,
            }
            results.append(entry)
            print(
                f"{pair['task']:20s} {pair['backend']:4s} {pair['family']:9s} "
                f"n={n:>7d} {seconds:8.2f}s rounds={report.rounds} "
                f"valid={report.valid}",
                flush=True,
            )
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rung", choices=sorted(E2E_RUNGS), default="small")
    parser.add_argument("--out", help="write results JSON to this path")
    parser.add_argument(
        "--label", default="current", help="label recorded in the output"
    )
    parser.add_argument(
        "--baseline",
        help="embed this earlier run (e.g. the seed implementation) and "
        "compute per-row speedups",
    )
    args = parser.parse_args(argv)

    results = run_suite(args.rung)
    payload: Dict[str, Any] = {
        "schema": 1,
        "suite": "e2e",
        "label": args.label,
        "rung": args.rung,
        "environment": environment_stamp(),
        "results": results,
    }
    if args.baseline:
        baseline = read_json(args.baseline)
        payload["seed_baseline"] = {
            "label": baseline.get("label", "seed"),
            "results": baseline["results"],
        }
        reference = {
            result_key(entry, KEY_FIELDS): entry
            for entry in baseline["results"]
        }
        speedups = {}
        for entry in results:
            key = result_key(entry, KEY_FIELDS)
            if key in reference and entry["seconds"] > 0:
                speedups[key] = round(
                    reference[key]["seconds"] / entry["seconds"], 2
                )
        payload["speedup_vs_seed"] = speedups
    if args.out:
        write_json(args.out, payload)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
