"""Microbenchmarks: CSR kernels vs their set-based Graph equivalents.

Each kernel is timed on a graph-size ladder (random + power-law families)
in both implementations; results land in ``BENCH_kernels.json``.  The CI
small rung replays this file with ``--check`` against the committed
baseline and fails on a >2x regression of any CSR kernel timing.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_kernels.py --rung full \
        --out benchmarks/perf/BENCH_kernels.json
    PYTHONPATH=src python benchmarks/perf/bench_kernels.py --rung small \
        --check benchmarks/perf/BENCH_kernels.json
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Any, Callable, Dict, List, Tuple

import numpy as np

if __package__ in (None, ""):
    import os

    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from perf.common import (
    GRAPH_SEED,
    KERNEL_RUNGS,
    environment_stamp,
    ladder_graph,
    read_json,
    repeats_for,
    result_key,
    time_call,
    write_json,
)
from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph

KEY_FIELDS = ("kernel", "family", "n")

# A kernel whose set/CSR speedup ratio drops below half the committed
# baseline ratio fails CI.  Comparing the machine-local *ratio* (not
# absolute wall-clock) keeps the gate meaningful when the baseline was
# generated on different hardware than the CI runner.
REGRESSION_FACTOR = 2.0


def _half_mask(n: int) -> Tuple[np.ndarray, set]:
    """A deterministic 50% vertex subset as (bool mask, python set)."""
    rng = random.Random(GRAPH_SEED)
    subset = set(rng.sample(range(n), n // 2))
    mask = np.zeros(n, dtype=bool)
    mask[list(subset)] = True
    return mask, subset


def _centers(n: int) -> List[int]:
    """1% of vertices, deterministic — the neighborhood-deletion batch."""
    rng = random.Random(GRAPH_SEED + 1)
    return sorted(rng.sample(range(n), max(1, n // 100)))


def kernel_cases(
    graph: Graph, csr: CSRGraph
) -> List[Tuple[str, Callable[[], Any], Callable[[], Any]]]:
    """(kernel name, set-based thunk, CSR thunk) for every kernel."""
    n = graph.num_vertices
    mask, subset = _half_mask(n)
    centers = _centers(n)
    deg_cap = 25

    def set_degrees():
        return graph.degrees()

    def set_residual_degrees():
        return [
            sum(1 for u in graph.neighbors_view(v) if u in subset)
            if v in subset
            else 0
            for v in range(n)
        ]

    def set_sample():
        rng = random.Random(GRAPH_SEED)
        return [v for v in range(n) if rng.random() < 0.3]

    def set_induced_subgraph():
        return graph.induced_subgraph(subset)

    def set_induced_edges():
        return graph.induced_edges(subset)

    def set_remove_closed():
        removed = set()
        for v in centers:
            removed.add(v)
            removed |= graph.neighbors_view(v)
        return removed

    # Fixed-size tiny batch: exercises the slice-concatenation fast path
    # below ``SMALL_GATHER_ROWS`` (the n=1k regression in earlier baselines
    # came from paying the ragged-gather arithmetic on ~10 rows).  The 1%
    # case above crosses over to the vectorized gather as n grows; this one
    # pins the small-batch regime at every n.
    small_centers = centers[:8]

    def set_remove_closed_small():
        removed = set()
        for v in small_centers:
            removed.add(v)
            removed |= graph.neighbors_view(v)
        return removed

    def set_count_within():
        return sum(
            1
            for v in subset
            for u in graph.neighbors_view(v)
            if u > v and u in subset
        )

    def set_threshold_filter():
        return [v for v in range(n) if graph.degree(v) <= deg_cap]

    return [
        ("degrees", set_degrees, lambda: csr.degrees()),
        ("residual_degrees", set_residual_degrees, lambda: csr.degrees(mask)),
        (
            "sample_vertices",
            set_sample,
            lambda: csr.sample_vertices(0.3, GRAPH_SEED),
        ),
        (
            "induced_subgraph",
            set_induced_subgraph,
            lambda: csr.induced_subgraph(mask),
        ),
        ("induced_edges", set_induced_edges, lambda: csr.induced_edges(mask)),
        (
            "remove_closed_neighborhoods",
            set_remove_closed,
            lambda: csr.remove_closed_neighborhoods(centers),
        ),
        (
            "remove_closed_neighborhoods_small",
            set_remove_closed_small,
            lambda: csr.remove_closed_neighborhoods(small_centers),
        ),
        ("count_edges_within", set_count_within, lambda: csr.count_edges_within(mask)),
        (
            "threshold_filter",
            set_threshold_filter,
            lambda: csr.threshold_filter(deg_cap),
        ),
    ]


def run_suite(rung: str) -> List[Dict[str, Any]]:
    results: List[Dict[str, Any]] = []
    for family in ("random", "powerlaw"):
        for n in KERNEL_RUNGS[rung]:
            graph = ladder_graph(family, n)
            csr = CSRGraph.from_graph(graph)
            repeats = repeats_for(n)
            for kernel, set_fn, csr_fn in kernel_cases(graph, csr):
                set_s = time_call(set_fn, repeats)
                csr_s = time_call(csr_fn, repeats)
                entry = {
                    "kernel": kernel,
                    "family": family,
                    "n": n,
                    "m": graph.num_edges,
                    "set_s": set_s,
                    "csr_s": csr_s,
                    "speedup": set_s / csr_s if csr_s > 0 else float("inf"),
                }
                results.append(entry)
                print(
                    f"{kernel:28s} {family:9s} n={n:>7d} "
                    f"set={set_s * 1e3:9.3f}ms csr={csr_s * 1e3:9.3f}ms "
                    f"x{entry['speedup']:.1f}",
                    flush=True,
                )
    return results


def check_against_baseline(results: List[Dict[str, Any]], baseline_path: str) -> int:
    """Compare set/CSR speedup ratios to the committed baseline; 1 on regression.

    Both the fresh run and the baseline time the set-based and CSR
    implementations on the *same* machine, so their ratio cancels machine
    speed; a CSR kernel that regressed >2x relative to the set reference
    shows up on any hardware.
    """
    baseline = read_json(baseline_path)
    reference = {
        result_key(entry, KEY_FIELDS): entry for entry in baseline["results"]
    }
    failures = []
    for entry in results:
        key = result_key(entry, KEY_FIELDS)
        if key not in reference:
            continue
        required = reference[key]["speedup"] / REGRESSION_FACTOR
        if entry["speedup"] < required:
            failures.append(
                f"{key}: speedup x{entry['speedup']:.2f} < required "
                f"x{required:.2f} (baseline x{reference[key]['speedup']:.2f} "
                f"/ {REGRESSION_FACTOR})"
            )
    if failures:
        print("PERF REGRESSION (>2x vs committed BENCH_kernels.json):")
        for line in failures:
            print("  " + line)
        return 1
    print(
        f"perf check OK: {len(results)} kernel speedups within "
        f"{REGRESSION_FACTOR}x of the committed baseline ratios"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rung", choices=sorted(KERNEL_RUNGS), default="small")
    parser.add_argument("--out", help="write results JSON to this path")
    parser.add_argument(
        "--check",
        help="compare against this committed baseline; exit 1 on >2x regression",
    )
    args = parser.parse_args(argv)

    results = run_suite(args.rung)
    if args.out:
        write_json(
            args.out,
            {
                "schema": 1,
                "suite": "kernels",
                "rung": args.rung,
                "environment": environment_stamp(),
                "regression_factor": REGRESSION_FACTOR,
                "results": results,
            },
        )
        print(f"wrote {args.out}")
    if args.check:
        return check_against_baseline(results, args.check)
    return 0


if __name__ == "__main__":
    sys.exit(main())
