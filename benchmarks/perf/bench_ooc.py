"""Out-of-core perf rung: bounded-RSS solves on mmap-backed graphs.

Each cell is measured in **two fresh subprocesses** — one builds the
on-disk CSR from a streamed edge list, one loads it and solves — because
``ru_maxrss`` is a process-lifetime high-water mark: a build touching
every edge in RAM would otherwise mask the solve's residency, and the
whole point of this suite is the claim that solve-side peak RSS stays
far below the on-disk edge bytes (OUT_OF_CORE.md).  Every result row
therefore carries ``peak_rss_bytes`` (the solve subprocess's high-water,
covering load + solve + validation) next to ``indices_file_bytes`` (the
on-disk denominator), and ``tools/bench_diff.py --fail-rss-over`` gates
on it.

Solves run ``rng="counter"`` — the sha stream's ~1 µs/draw wall makes
the 10M rung infeasible otherwise (see PERFORMANCE.md).

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_ooc.py --rung small \
        --out benchmarks/perf/BENCH_ooc.json [--workdir DIR] [--keep]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from typing import Any, Dict, List, Tuple

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from perf.common import (  # noqa: E402
    AVERAGE_DEGREE,
    GRAPH_SEED,
    SCHEMA_VERSION,
    environment_stamp,
    peak_rss_bytes,
    read_json,
    write_json,
)

SOLVE_SEED = 7

# (task, family, n) cells per rung.  "small" is the CI smoke rung; "full"
# adds the committed trajectory up to the n=10M headline cell.  The
# fractional task is capped at 500k: its output is a Θ(m) Python weight
# dict (every surviving edge carries a weight), so unlike MIS it has no
# o(m)-resident output representation to stream into — documented in
# OUT_OF_CORE.md.
OOC_RUNGS: Dict[str, List[Tuple[str, str, int]]] = {
    "small": [
        ("mis", "random", 200_000),
        ("fractional_matching", "random", 50_000),
    ],
    "full": [
        ("mis", "random", 200_000),
        ("fractional_matching", "random", 50_000),
        ("fractional_matching", "random", 500_000),
        ("mis", "powerlaw", 1_000_000),
        ("mis", "random", 10_000_000),
    ],
}


def _run_child(args: List[str]) -> Dict[str, Any]:
    """Run this script in a child mode and parse its JSON stdout."""
    command = [sys.executable, os.path.abspath(__file__)] + args
    proc = subprocess.run(command, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(
            f"child {' '.join(args[:2])} failed with code {proc.returncode}"
        )
    return json.loads(proc.stdout)


def prepare_cell(family: str, n: int, directory: str) -> None:
    """Child mode: stream-generate the edge list and build the disk CSR."""
    from repro.ooc import build_mmap_csr, write_edge_list

    edge_path = os.path.join(directory, "edges.txt")
    started = time.perf_counter()
    write_edge_list(
        edge_path, family, n, float(AVERAGE_DEGREE), GRAPH_SEED + n
    )
    generated = time.perf_counter() - started
    started = time.perf_counter()
    graph = build_mmap_csr(edge_path, directory)
    built = time.perf_counter() - started
    os.unlink(edge_path)  # the text form is scaffolding, not the artifact
    print(
        json.dumps(
            {
                "generate_seconds": generated,
                "build_seconds": built,
                "num_vertices": graph.num_vertices,
                "num_edges": graph.num_edges,
                "indices_file_bytes": graph.indices_file_bytes,
                "peak_rss_bytes": peak_rss_bytes(),
            }
        )
    )


def solve_cell(task: str, directory: str) -> None:
    """Child mode: load the mmap graph, solve, validate, report."""
    from repro.api import solve
    from repro.ooc import load_csr

    graph = load_csr(directory)
    report = solve(
        task, graph, backend="mpc", seed=SOLVE_SEED, rng="counter"
    )
    print(
        json.dumps(
            {
                "seconds": report.wall_time_s,
                "rounds": report.rounds,
                "solution_size": report.size,
                "valid": report.valid,
                "rng": report.config.get("rng"),
                # Read at the very end so load, solve, AND ground-truth
                # validation are all under the high-water mark.
                "peak_rss_bytes": peak_rss_bytes(),
            }
        )
    )


def run_suite(rung: str, out: str, workdir: str, keep: bool) -> None:
    results: List[Dict[str, Any]] = []
    for task, family, n in OOC_RUNGS[rung]:
        cell_dir = os.path.join(workdir, f"{family}_{n}")
        if not os.path.exists(os.path.join(cell_dir, "header.json")):
            os.makedirs(cell_dir, exist_ok=True)
            built = _run_child(
                ["--prepare-cell", family, str(n), cell_dir]
            )
            write_json(os.path.join(cell_dir, "build.json"), built)
        else:
            built = read_json(os.path.join(cell_dir, "build.json"))
        solved = _run_child(["--solve-cell", task, cell_dir])
        row: Dict[str, Any] = {"task": task, "family": family, "n": n}
        row.update(solved)
        row["generate_seconds"] = built["generate_seconds"]
        row["build_seconds"] = built["build_seconds"]
        row["build_peak_rss_bytes"] = built["peak_rss_bytes"]
        row["num_edges"] = built["num_edges"]
        row["indices_file_bytes"] = built["indices_file_bytes"]
        row["rss_over_indices"] = round(
            row["peak_rss_bytes"] / max(1, row["indices_file_bytes"]), 4
        )
        results.append(row)
        print(
            f"{task}/{family}/{n}: solve {row['seconds']:.2f}s  "
            f"rss {row['peak_rss_bytes'] / 2**20:.0f} MiB  "
            f"indices {row['indices_file_bytes'] / 2**20:.0f} MiB  "
            f"valid={row['valid']}",
            file=sys.stderr,
        )
    # Graph dirs are shared between same-(family, n) cells, so cleanup
    # happens after the whole rung.
    if not keep:
        for task, family, n in OOC_RUNGS[rung]:
            shutil.rmtree(os.path.join(workdir, f"{family}_{n}"), True)
    write_json(
        out,
        {
            "suite": "ooc",
            "schema": SCHEMA_VERSION,
            "rung": rung,
            "seed": SOLVE_SEED,
            "rng": "counter",
            "avg_degree": AVERAGE_DEGREE,
            "environment": environment_stamp(),
            "results": results,
        },
    )
    print(f"wrote {out} ({len(results)} cells)", file=sys.stderr)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rung", choices=sorted(OOC_RUNGS), default="small")
    parser.add_argument("--out", default="benchmarks/perf/BENCH_ooc.json")
    parser.add_argument(
        "--workdir",
        default=None,
        help="directory for the on-disk graphs (default: a fresh tempdir)",
    )
    parser.add_argument(
        "--keep", action="store_true", help="keep the built graph dirs"
    )
    # Child modes (internal): one cell step per process so ru_maxrss
    # measures exactly that step.
    parser.add_argument("--prepare-cell", nargs=3, metavar=("FAMILY", "N", "DIR"))
    parser.add_argument("--solve-cell", nargs=2, metavar=("TASK", "DIR"))
    args = parser.parse_args(argv)
    if args.prepare_cell:
        family, n, directory = args.prepare_cell
        prepare_cell(family, int(n), directory)
        return 0
    if args.solve_cell:
        task, directory = args.solve_cell
        solve_cell(task, directory)
        return 0
    workdir = args.workdir or tempfile.mkdtemp(prefix="bench-ooc-")
    run_suite(args.rung, args.out, workdir, args.keep)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
