"""Serving latency: p50/p99 per-update and per-query under concurrent tenants.

Starts an in-process :class:`repro.serve.ServeService` on a loopback TCP
socket, connects ``TENANTS`` concurrent clients (each its own tenant
session — mixed tasks, per-tenant graphs and streams), and drives every
tenant through a churn stream: each epoch is one synchronous ``ingest``
(measured: full round-trip until the epoch is repaired) followed by a
``quality`` query (measured: round-trip against the maintained solution,
no re-solve).  All tenants run simultaneously, so the p99s include what
a tenant actually experiences in a shared service: queueing behind other
tenants' repairs on the single event loop.

Cells are keyed ``task/family/n/op`` (suite ``"serve"``; op ``update``
or ``query``) and gated in CI by ``tools/bench_diff.py`` against the
committed ``BENCH_serve.json``.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_serve.py --rung full \
        --out benchmarks/perf/BENCH_serve.json
    PYTHONPATH=src python benchmarks/perf/bench_serve.py --rung small \
        --out /tmp/serve_smoke.json          # the CI smoke invocation
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import threading
import time
from typing import Any, Dict, List, Tuple

if __package__ in (None, ""):
    import os

    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from perf.common import environment_stamp, ladder_graph, write_json

SERVE_SEED = 7
EPOCHS = 12
CHURN_FRACTION = 0.01
KEY_FIELDS = ("task", "family", "n", "op")

# Four concurrent tenants, three distinct tasks: the mixed-task load a
# shared service actually sees (mis twice: it is the cheapest repair, so
# its latencies show the queueing-behind-others effect most clearly).
TENANTS: List[Tuple[str, str]] = [
    ("alice", "mis"),
    ("bob", "matching"),
    ("carol", "fractional_matching"),
    ("dave", "mis"),
]

# The full rung keeps the small rung's n so the committed baseline always
# contains the cells the CI smoke invocation gates on.
SERVE_RUNGS: Dict[str, List[int]] = {
    "small": [2_000],
    "full": [2_000, 5_000, 20_000],
}


def _percentiles(samples: List[float]) -> Tuple[float, float]:
    ordered = sorted(samples)
    p50 = ordered[len(ordered) // 2]
    p99 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]
    return p50, p99


def _drive_tenant(
    port: int,
    tenant: str,
    task: str,
    n: int,
    offset: int,
    barrier: threading.Barrier,
    sink: Dict[str, Dict[str, List[float]]],
) -> None:
    from repro.serve import ServeClient
    from repro.stream.updates import churn_batches

    initial = ladder_graph("random", n)
    batches = list(
        churn_batches(
            initial,
            epochs=EPOCHS,
            churn_fraction=CHURN_FRACTION,
            seed=SERVE_SEED + offset,
        )
    )
    updates: List[float] = []
    queries: List[float] = []
    with ServeClient(port=port) as client:
        client.open(
            tenant,
            task,
            n=initial.num_vertices,
            edges=initial.edge_list(),
            seed=SERVE_SEED,
        )
        barrier.wait()  # every tenant's stream starts at the same instant
        for seq, batch in enumerate(batches, start=1):
            started = time.perf_counter()
            client.ingest(tenant, batch, seq=seq, sync=True)
            updates.append(time.perf_counter() - started)
            started = time.perf_counter()
            client.quality(tenant)
            queries.append(time.perf_counter() - started)
    sink[tenant] = {"task": task, "update": updates, "query": queries}


def run_rung(n: int) -> List[Dict[str, Any]]:
    from repro.serve import ServeConfig, ServeService

    loop = asyncio.new_event_loop()
    service = ServeService(ServeConfig())
    ready = threading.Event()

    def serve() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(service.start())
        ready.set()
        loop.run_until_complete(service.serve_until_stopped())

    server_thread = threading.Thread(target=serve, daemon=True)
    server_thread.start()
    ready.wait(timeout=60)

    sink: Dict[str, Dict[str, Any]] = {}
    barrier = threading.Barrier(len(TENANTS))
    threads = [
        threading.Thread(
            target=_drive_tenant,
            args=(service.port, tenant, task, n, offset, barrier, sink),
        )
        for offset, (tenant, task) in enumerate(TENANTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    from repro.serve import ServeClient

    with ServeClient(port=service.port) as client:
        client.shutdown()
    server_thread.join(timeout=30)

    # Aggregate latencies per task (mis has two tenants; their samples
    # pool into one cell).
    by_task: Dict[str, Dict[str, List[float]]] = {}
    for data in sink.values():
        bucket = by_task.setdefault(data["task"], {"update": [], "query": []})
        bucket["update"].extend(data["update"])
        bucket["query"].extend(data["query"])

    rows: List[Dict[str, Any]] = []
    for task in sorted(by_task):
        for op in ("update", "query"):
            samples = by_task[task][op]
            p50, p99 = _percentiles(samples)
            rows.append(
                {
                    "task": task,
                    "family": "random",
                    "n": n,
                    "op": op,
                    "tenants": len(TENANTS),
                    "count": len(samples),
                    "p50_ms": round(1000 * p50, 3),
                    "p99_ms": round(1000 * p99, 3),
                }
            )
            print(
                f"{task:20s} n={n:>7d} {op:6s} "
                f"p50={1000 * p50:8.2f}ms p99={1000 * p99:8.2f}ms "
                f"({len(samples)} samples, {len(TENANTS)} tenants)",
                flush=True,
            )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rung", choices=sorted(SERVE_RUNGS), default="small")
    parser.add_argument("--out", help="write results JSON to this path")
    args = parser.parse_args(argv)

    results: List[Dict[str, Any]] = []
    for n in SERVE_RUNGS[args.rung]:
        results.extend(run_rung(n))

    if args.out:
        write_json(
            args.out,
            {
                "schema": 1,
                "suite": "serve",
                "rung": args.rung,
                "seed": SERVE_SEED,
                "epochs": EPOCHS,
                "churn": CHURN_FRACTION,
                "tenants": len(TENANTS),
                "environment": environment_stamp(),
                "results": results,
            },
        )
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
