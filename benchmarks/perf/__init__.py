"""Microbenchmark + end-to-end perf harness for the vectorized hot paths.

``bench_kernels.py`` times every CSR kernel against its set-based
:class:`~repro.graph.graph.Graph` equivalent on a graph-size ladder and
emits ``BENCH_kernels.json``; ``bench_e2e.py`` times whole façade runs per
``task × backend`` pair and emits ``BENCH_e2e.json``.  Both files are
committed so the perf trajectory is tracked in-repo, and CI replays the
small rung of the kernel suite against the committed baseline (failing on
a >2x regression).  See PERFORMANCE.md for how to run the suite.
"""
