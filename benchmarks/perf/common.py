"""Shared plumbing for the perf harness: graph ladder, timing, JSON I/O."""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Any, Callable, Dict, List, Tuple

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro.graph.generators import barabasi_albert, gnp_random_graph  # noqa: E402
from repro.graph.graph import Graph  # noqa: E402

SCHEMA_VERSION = 1
GRAPH_SEED = 20180723  # PODC'18; fixed so every run times identical graphs.

# Size ladder per rung.  "small" is the CI rung; "full" is the committed
# trajectory (n = 1k -> 100k for kernels, capped lower for e2e runs).
KERNEL_RUNGS: Dict[str, List[int]] = {
    "small": [1_000, 5_000],
    "full": [1_000, 5_000, 20_000, 50_000, 100_000],
}
E2E_RUNGS: Dict[str, List[int]] = {
    "small": [1_000, 5_000],
    "full": [1_000, 5_000, 20_000, 50_000],
}

AVERAGE_DEGREE = 20  # target average degree for the sparse families
DENSE_DEGREE = 500  # average degree of the "dense" routing-bound family


def ladder_graph(family: str, n: int) -> Graph:
    """The deterministic benchmark graph for ``(family, n)``.

    ``random`` is Erdős–Rényi with average degree ~20; ``powerlaw`` is
    Barabási–Albert with attachment 10 (also average degree ~20), the
    heterogeneous-degree "social network" workload.  ``dense`` is
    Erdős–Rényi with average degree ~500 — the regime where the
    CONGESTED-CLIQUE prefix phases actually route Θ(n) edge volume per
    phase (at degree ~20 the rank schedule is empty and the run is all
    sparsified finish).
    """
    if family == "random":
        p = min(1.0, AVERAGE_DEGREE / max(1, n - 1))
        return gnp_random_graph(n, p, seed=GRAPH_SEED + n)
    if family == "powerlaw":
        return barabasi_albert(n, AVERAGE_DEGREE // 2, seed=GRAPH_SEED + n)
    if family == "dense":
        p = min(1.0, DENSE_DEGREE / max(1, n - 1))
        return gnp_random_graph(n, p, seed=GRAPH_SEED + n)
    raise ValueError(f"unknown graph family {family!r}")


def time_call(fn: Callable[[], Any], repeats: int) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def repeats_for(n: int) -> int:
    """More repeats at small sizes, where timer noise dominates."""
    if n <= 5_000:
        return 5
    if n <= 20_000:
        return 3
    return 2


def peak_rss_bytes() -> int:
    """Peak resident-set size (self + reaped children), in bytes.

    ``ru_maxrss`` is a process-lifetime high-water mark — suites that
    need a per-cell reading (the out-of-core rung, whose whole point is
    a bounded-RSS claim) must run each cell in its own subprocess and
    report that child's value.  Matches the normalization of
    ``RunReport.peak_rss_bytes``: macOS reports bytes, the other POSIX
    platforms kibibytes.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return 0
    unit = 1 if sys.platform == "darwin" else 1024
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    peak += resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return int(peak * unit)


def environment_stamp() -> Dict[str, Any]:
    """Provenance recorded into every BENCH_*.json."""
    import numpy

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "machine": platform.machine(),
        "system": platform.system(),
        # Scaling suites are meaningless without this: parallel speedup
        # is capped by the cores actually available to the run.
        "cpu_count": len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else (os.cpu_count() or 1),
    }


def write_json(path: str, payload: Dict[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(payload, stream, indent=2, sort_keys=True)
        stream.write("\n")


def read_json(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as stream:
        return json.load(stream)


def result_key(entry: Dict[str, Any], fields: Tuple[str, ...]) -> str:
    return "/".join(str(entry[field]) for field in fields)
