"""Dynamic-workload perf: incremental repair vs per-epoch full re-solve.

For each (task, n) cell, a churn stream mutates ``churn`` of the edges
per batch; two pipelines consume the identical batch sequence:

* **repair** — :class:`repro.stream.Maintainer.step` (overlay apply +
  compaction + localized repair, the incremental hot path);
* **resolve** — what serving the same stream *without* the stream
  subsystem costs: materialize the post-batch graph and run a full
  :func:`repro.api.solve` each epoch.

Per-epoch wall times are averaged over the stream and the speedup
recorded; the acceptance bar for the committed full rung is >= 5x at
``n >= 20_000`` with <= 1% churn.  ``--check`` compares a fresh run
against a committed baseline and fails if any cell's speedup drops
below ``--floor`` (CI runs the small rung with a conservative floor).

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_stream.py --rung full \
        --out benchmarks/perf/BENCH_stream.json
    PYTHONPATH=src python benchmarks/perf/bench_stream.py --rung small \
        --check benchmarks/perf/BENCH_stream.json --floor 2.0
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Any, Dict, List

if __package__ in (None, ""):
    import os

    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from perf.common import (
    environment_stamp,
    ladder_graph,
    read_json,
    result_key,
    write_json,
)

STREAM_SEED = 7
CHURN_FRACTION = 0.01  # <= 1% of edges per batch (the acceptance regime)
EPOCHS = 4
KEY_FIELDS = ("task", "family", "n")

STREAM_RUNGS: Dict[str, List[int]] = {
    "small": [2_000, 5_000],
    "full": [5_000, 20_000, 50_000],
}

# Tasks with maintainers; caps keep the resolve side of the full rung
# tractable (it pays EPOCHS full solves per cell).
CELLS: List[Dict[str, Any]] = [
    {"task": "mis", "family": "random", "max_n": 50_000},
    {"task": "matching", "family": "random", "max_n": 20_000},
    {"task": "fractional_matching", "family": "random", "max_n": 20_000},
]


def run_cell(task: str, family: str, n: int) -> Dict[str, Any]:
    from repro.stream.dynamic import DynamicGraph
    from repro.stream.maintain import make_maintainer
    from repro.stream.updates import churn_batches

    initial = ladder_graph(family, n)
    batches = list(
        churn_batches(
            initial, epochs=EPOCHS, churn_fraction=CHURN_FRACTION, seed=STREAM_SEED
        )
    )

    # Incremental pipeline.
    maintainer = make_maintainer(task, initial, seed=STREAM_SEED)
    maintainer.initialize()
    repair_times: List[float] = []
    resolves = 0
    for batch in batches:
        stats = maintainer.step(batch)
        repair_times.append(stats.wall_time_s)
        resolves += stats.action == "resolve"

    # Full re-solve pipeline on the identical stream: apply the batch,
    # then pay graph materialization + a from-scratch solve — the cost
    # of serving the stream with only the static façade.
    from repro.api import solve

    dyn = DynamicGraph(initial)
    resolve_times: List[float] = []
    for batch in batches:
        started = time.perf_counter()
        dyn.apply_edges(batch.insertions, batch.deletions)
        dyn.compact()
        solve(task, dyn.to_graph(), seed=STREAM_SEED)
        resolve_times.append(time.perf_counter() - started)

    repair_s = sum(repair_times) / len(repair_times)
    resolve_s = sum(resolve_times) / len(resolve_times)
    return {
        "task": task,
        "family": family,
        "n": n,
        "m": initial.num_edges,
        "churn": CHURN_FRACTION,
        "epochs": EPOCHS,
        "repair_s": repair_s,
        "resolve_s": resolve_s,
        "speedup": round(resolve_s / repair_s, 2) if repair_s else float("inf"),
        "fallback_resolves": resolves,
    }


def run_suite(rung: str) -> List[Dict[str, Any]]:
    results = []
    for cell in CELLS:
        for n in STREAM_RUNGS[rung]:
            if n > cell["max_n"]:
                continue
            entry = run_cell(cell["task"], cell["family"], n)
            results.append(entry)
            print(
                f"{entry['task']:20s} {entry['family']:9s} n={n:>7d} "
                f"repair={1000 * entry['repair_s']:8.2f}ms "
                f"resolve={entry['resolve_s']:7.2f}s "
                f"speedup={entry['speedup']:8.1f}x",
                flush=True,
            )
    return results


def check_against(
    results: List[Dict[str, Any]], baseline_path: str, floor: float
) -> int:
    """Fail if any cell's speedup fell below ``floor`` (or a baseline cell
    regressed to below half its committed speedup)."""
    baseline = read_json(baseline_path)
    committed = {
        result_key(entry, KEY_FIELDS): entry for entry in baseline["results"]
    }
    status = 0
    for entry in results:
        key = result_key(entry, KEY_FIELDS)
        if entry["speedup"] < floor:
            print(
                f"FAIL {key}: speedup {entry['speedup']}x below floor {floor}x"
            )
            status = 1
        reference = committed.get(key)
        if reference and entry["speedup"] < reference["speedup"] / 2:
            print(
                f"FAIL {key}: speedup {entry['speedup']}x regressed >2x vs "
                f"committed {reference['speedup']}x"
            )
            status = 1
    if status == 0:
        print(f"all {len(results)} cells at or above {floor}x")
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rung", choices=sorted(STREAM_RUNGS), default="small")
    parser.add_argument("--out", help="write results JSON to this path")
    parser.add_argument(
        "--check", help="compare against this committed baseline and gate"
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=2.0,
        help="minimum acceptable speedup in --check mode (default 2.0)",
    )
    parser.add_argument(
        "--label", default="current", help="label recorded in the output"
    )
    args = parser.parse_args(argv)

    results = run_suite(args.rung)
    if args.out:
        write_json(
            args.out,
            {
                "schema": 1,
                "suite": "stream",
                "label": args.label,
                "rung": args.rung,
                "environment": environment_stamp(),
                "results": results,
            },
        )
        print(f"wrote {args.out}")
    if args.check:
        return check_against(results, args.check, args.floor)
    return 0


if __name__ == "__main__":
    sys.exit(main())
