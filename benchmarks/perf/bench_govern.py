"""Governance perf: governed adversarial cells vs the greedy fallback.

Runs the MPC solvers on the adversarial verify families
(``gnp_dense_half``, ``powerlaw_heavy``) under a deliberately tight
``budget`` with governance enabled — cells an ungoverned run cannot
finish at the larger sizes — and times the greedy/central fallback on
the same graphs as the floor the degradation rung would land on.  Each
governed cell records ``total_comm_words`` and whether governance
actually fired, so ``tools/bench_diff.py`` can gate both wall time
(``--fail-over``) and absolute communication volume
(``--fail-comm-over``).  See GOVERNANCE.md.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_govern.py --rung full \
        --out benchmarks/perf/BENCH_govern.json
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List

if __package__ in (None, ""):
    import os

    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from perf.common import environment_stamp, time_call, write_json

SOLVE_SEED = 7
BUDGET = 0.5  # memory_factor tight enough to breach ungoverned at n >= 96
KEY_FIELDS = ("task", "family", "n", "mode")

# The CI rung stops at the first breach size; the full rung shows the
# governed envelope holding as the adversarial graphs grow.
GOVERN_RUNGS: Dict[str, List[int]] = {
    "small": [48, 96],
    "full": [48, 96, 192],
}

TASKS = ("mis", "matching")
FALLBACK = {"mis": "greedy", "matching": "greedy"}


def run_suite(rung: str) -> List[Dict[str, Any]]:
    from repro.api import solve
    from repro.verify.differential import ADVERSARIAL_FAMILIES, FAMILIES

    results: List[Dict[str, Any]] = []
    for task in TASKS:
        for family in ADVERSARIAL_FAMILIES:
            for n in GOVERN_RUNGS[rung]:
                graph = FAMILIES[family](n, SOLVE_SEED + n)
                for mode in ("governed", "greedy"):
                    holder: Dict[str, Any] = {}

                    if mode == "governed":

                        def run():
                            holder["report"] = solve(
                                task,
                                graph,
                                backend="mpc",
                                seed=SOLVE_SEED,
                                budget=BUDGET,
                                governance={},
                            )

                    else:

                        def run():
                            holder["report"] = solve(
                                task, graph, backend=FALLBACK[task], seed=SOLVE_SEED
                            )

                    seconds = time_call(run, repeats=3 if n <= 96 else 2)
                    report = holder["report"]
                    entry = {
                        "task": task,
                        "family": family,
                        "n": graph.num_vertices,
                        "m": graph.num_edges,
                        "mode": mode,
                        "seconds": seconds,
                        "rounds": report.rounds,
                        "size": report.size,
                        "valid": report.valid,
                    }
                    if mode == "governed":
                        trail = report.extras.get("governance") or {}
                        entry["total_comm_words"] = report.total_comm_words
                        entry["governance_triggered"] = bool(trail.get("triggered"))
                        entry["degraded_to"] = trail.get("degraded_to")
                    results.append(entry)
                    print(
                        f"{task:10s} {family:16s} n={entry['n']:>4d} "
                        f"{mode:8s} {seconds:8.3f}s rounds={report.rounds} "
                        f"size={report.size} valid={report.valid}"
                        + (
                            f" comm={entry['total_comm_words']}"
                            f" triggered={entry['governance_triggered']}"
                            if mode == "governed"
                            else ""
                        ),
                        flush=True,
                    )
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rung", choices=sorted(GOVERN_RUNGS), default="small")
    parser.add_argument("--out", help="write results JSON to this path")
    parser.add_argument(
        "--label", default="current", help="label recorded in the output"
    )
    args = parser.parse_args(argv)

    results = run_suite(args.rung)
    payload: Dict[str, Any] = {
        "schema": 1,
        "suite": "govern",
        "label": args.label,
        "rung": args.rung,
        "budget": BUDGET,
        "environment": environment_stamp(),
        "results": results,
    }
    if args.out:
        write_json(args.out, payload)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
