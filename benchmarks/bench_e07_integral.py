"""E7 — integral (2+ε) matching and vertex cover (Theorem 1.2).

Claims: the iterated rounding pipeline yields a matching within (2+ε) of
optimum and a vertex cover within (2+O(ε)) of optimum, in O(log log n)
rounds per pass.
"""

from repro.analysis.experiments import run_e07_integral

from conftest import report


def test_e07_integral(benchmark):
    rows = benchmark.pedantic(
        run_e07_integral,
        kwargs={"sizes": (256, 512, 1024), "epsilons": (0.1,)},
        iterations=1,
        rounds=1,
    )
    report("e07_integral", "E7: integral matching + cover (Thm 1.2)", rows)
    for row in rows:
        assert row["ratio"] <= row["guarantee"]
