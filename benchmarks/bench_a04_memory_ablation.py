"""A4 — ablating machine memory: enforcement is real.

Shrinks the word budget until the substrate refuses: Lemma 4.7 keeps
per-machine loads far below O(n), so moderate budgets succeed, but
sub-linear budgets hit MemoryExceededError — demonstrating that the
memory accounting is enforcement, not decoration.
"""

from repro.analysis.ablations import run_a04_memory_ablation

from conftest import report


def test_a04_memory_ablation(benchmark):
    rows = benchmark.pedantic(
        run_a04_memory_ablation,
        kwargs={"n": 512, "memory_factors": (8.0, 1.0, 0.5, 0.2)},
        iterations=1,
        rounds=1,
    )
    report("a04_memory_ablation", "A4: word-budget sweep", rows)
    assert rows[0]["status"] == "ok"
    assert any(row["status"].startswith("memory exceeded") for row in rows)
