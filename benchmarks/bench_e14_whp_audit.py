"""E14 — empirical audit of the paper's w.h.p. claims.

The paper proves its invariants hold with high probability; we measure
failure rates over independent seeds (graph + algorithm randomness both
fresh per trial).  The reproducible expectation: zero failures at these
sizes and trial counts.
"""

from repro.analysis.whp_audit import run_e14_whp_audit

from conftest import report


def test_e14_whp_audit(benchmark):
    rows = benchmark.pedantic(
        run_e14_whp_audit,
        kwargs={"n": 192, "trials": 20},
        iterations=1,
        rounds=1,
    )
    report("e14_whp_audit", "E14: w.h.p. claim audit (20 seeds)", rows)
    for row in rows:
        assert row["failures"] == 0, f"{row['claim']} failed: {row}"
