"""Matching and vertex cover in the CONGESTED-CLIQUE model.

The paper states Theorem 1.2 for MPC, and presents the proximity of MPC
and CONGESTED-CLIQUE as a conceptual contribution (Section 1.1).  This
module realizes that proximity for the matching algorithm, mirroring what
Section 3.2 does for MIS: the phases of MPC-Simulation map to
CONGESTED-CLIQUE rounds with

* one setup broadcast (shared thresholds / initial weights);
* per phase, the ``m = √d`` group leaders gather their group's induced
  active subgraph via Lenzen's routing scheme — the measured per-group
  volume is Lemma 4.7's ``O(n)``, i.e. a constant number of volume-``n``
  invocations, charged at 2 rounds each;
* per phase, one round of leader replies plus one freeze-notification
  broadcast;
* the direct Central-Rand tail at one round per iteration (every vertex
  can see its neighbors' freeze state in one round).

The *decisions* are byte-identical to :func:`repro.core.matching_mpc.
mpc_fractional_matching` under the same seed — only the round accounting
differs, and it is derived from measured volumes, not assumed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Set

from repro.congested_clique.model import CongestedClique
from repro.congested_clique.routing import LENZEN_ROUND_COST
from repro.core.config import MatchingConfig
from repro.core.fractional import FractionalMatching
from repro.core.matching_mpc import mpc_fractional_matching
from repro.graph.graph import Graph
from repro.utils.rng import SeedLike
from repro.utils.trace import Trace


@dataclass
class CCMatchingResult:
    """Fractional matching + cover with CONGESTED-CLIQUE round accounting."""

    matching: FractionalMatching
    rounds: int
    phases: int
    direct_iterations: int
    heavy_removed: Set[int] = field(default_factory=set)

    @property
    def vertex_cover(self) -> Set[int]:
        """The reported vertex cover."""
        return self.matching.vertex_cover

    @property
    def weight(self) -> float:
        """Total fractional weight."""
        return self.matching.weight()


def congested_clique_fractional_matching(
    graph: Graph,
    config: Optional[MatchingConfig] = None,
    seed: SeedLike = None,
    trace: Optional[Trace] = None,
) -> CCMatchingResult:
    """Run the Lemma 4.2 algorithm with CONGESTED-CLIQUE accounting."""
    config = config or MatchingConfig()
    n = graph.num_vertices
    mpc = mpc_fractional_matching(graph, config=config, seed=seed, trace=trace)
    if n == 0:
        return CCMatchingResult(
            matching=mpc.matching,
            rounds=0,
            phases=0,
            direct_iterations=0,
            heavy_removed=mpc.heavy_removed,
        )

    clique = CongestedClique(n, trace=trace)
    clique.broadcast_round(context="matching: setup broadcast")
    for phase_edges in mpc.machine_edges_per_phase:
        # Leaders gather their group subgraphs: Lemma 4.7 bounds each
        # group's volume by O(n); ceil(volume/n) Lenzen invocations cover it.
        invocations = max(1, math.ceil(phase_edges / max(1, n)))
        clique.charge_rounds(
            LENZEN_ROUND_COST * invocations,
            "matching: phase gather via Lenzen routing",
        )
        clique.charge_rounds(1, "matching: leader replies")
        clique.broadcast_round(context="matching: freeze notifications")
    clique.charge_rounds(
        mpc.direct_iterations, "matching: direct Central-Rand tail"
    )
    return CCMatchingResult(
        matching=mpc.matching,
        rounds=clique.rounds,
        phases=mpc.phases,
        direct_iterations=mpc.direct_iterations,
        heavy_removed=mpc.heavy_removed,
    )
