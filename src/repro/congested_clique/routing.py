"""Lenzen's deterministic routing scheme [Len13].

The paper uses it as a black box (Section 2, "Routing"): if every player
wants to send at most ``n`` messages and every player is the destination of
at most ``n`` messages, all of them can be delivered in ``O(1)`` rounds.
We model the scheme by validating the precondition exactly and charging a
fixed constant (2) of rounds; violating the precondition raises, because an
algorithm relying on super-linear routing volume is *not* implementable in
O(1) CONGESTED-CLIQUE rounds and the substrate must not silently pretend
otherwise.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.congested_clique.model import CongestedClique
from repro.mpc.errors import ProtocolError

LENZEN_ROUND_COST = 2


def lenzen_route(
    clique: CongestedClique,
    messages: Iterable[Tuple[int, int, object]],
    context: str = "lenzen-routing",
) -> Dict[int, List[object]]:
    """Route ``(sender, receiver, payload)`` messages in O(1) rounds.

    Each payload is one ``O(log n)``-bit message (e.g. one edge).  Validates
    Lenzen's precondition — per-player send and receive volume at most
    ``n`` — charges :data:`LENZEN_ROUND_COST` rounds, and returns the
    per-receiver inboxes.
    """
    n = clique.num_players
    send_load: Dict[int, int] = {}
    receive_load: Dict[int, int] = {}
    inboxes: Dict[int, List[object]] = {}
    for sender, receiver, payload in messages:
        if not 0 <= sender < n or not 0 <= receiver < n:
            raise ProtocolError(
                f"message endpoints ({sender}, {receiver}) out of range during {context}"
            )
        send_load[sender] = send_load.get(sender, 0) + 1
        receive_load[receiver] = receive_load.get(receiver, 0) + 1
        inboxes.setdefault(receiver, []).append(payload)
    for player, load in send_load.items():
        if load > n:
            raise ProtocolError(
                f"player {player} sends {load} > n={n} messages; "
                f"Lenzen's precondition violated during {context}"
            )
    for player, load in receive_load.items():
        if load > n:
            raise ProtocolError(
                f"player {player} receives {load} > n={n} messages; "
                f"Lenzen's precondition violated during {context}"
            )
    clique.charge_rounds(LENZEN_ROUND_COST, context)
    return inboxes


def lenzen_route_arrays(
    clique: CongestedClique,
    senders: np.ndarray,
    receivers: np.ndarray,
    context: str = "lenzen-routing",
) -> None:
    """Array form of :func:`lenzen_route` for flat endpoint-array messages.

    Each message is one routed edge, represented by its slot in the
    ``senders``/``receivers`` arrays rather than a Python tuple.  Send and
    receive volumes are validated with one ``bincount`` pass each — the
    accept/reject behavior is identical to the dict-based reference (the
    property suite checks this), and :data:`LENZEN_ROUND_COST` rounds are
    charged.  No inboxes are materialized: vectorized callers keep the
    payload in their own arrays, which is the point of this variant.
    """
    n = clique.num_players
    senders = np.asarray(senders, dtype=np.int64)
    receivers = np.asarray(receivers, dtype=np.int64)
    if len(senders) != len(receivers):
        raise ValueError("senders and receivers must have equal length")
    if senders.size:
        out_of_range = (
            (senders < 0) | (senders >= n) | (receivers < 0) | (receivers >= n)
        )
        if out_of_range.any():
            slot = int(np.argmax(out_of_range))
            raise ProtocolError(
                f"message endpoints ({int(senders[slot])}, {int(receivers[slot])}) "
                f"out of range during {context}"
            )
        for direction, load in (
            ("sends", np.bincount(senders, minlength=n)),
            ("receives", np.bincount(receivers, minlength=n)),
        ):
            over = load > n
            if over.any():
                player = int(np.argmax(over))
                raise ProtocolError(
                    f"player {player} {direction} {int(load[player])} > n={n} "
                    f"messages; Lenzen's precondition violated during {context}"
                )
    clique.charge_rounds(LENZEN_ROUND_COST, context)
