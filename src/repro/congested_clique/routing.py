"""Lenzen's deterministic routing scheme [Len13].

The paper uses it as a black box (Section 2, "Routing"): if every player
wants to send at most ``n`` messages and every player is the destination of
at most ``n`` messages, all of them can be delivered in ``O(1)`` rounds.
We model the scheme by validating the precondition exactly and charging a
fixed constant (2) of rounds; violating the precondition raises, because an
algorithm relying on super-linear routing volume is *not* implementable in
O(1) CONGESTED-CLIQUE rounds and the substrate must not silently pretend
otherwise.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.congested_clique.model import CongestedClique
from repro.mpc.errors import ProtocolError

LENZEN_ROUND_COST = 2


def lenzen_route(
    clique: CongestedClique,
    messages: Iterable[Tuple[int, int, object]],
    context: str = "lenzen-routing",
) -> Dict[int, List[object]]:
    """Route ``(sender, receiver, payload)`` messages in O(1) rounds.

    Each payload is one ``O(log n)``-bit message (e.g. one edge).  Validates
    Lenzen's precondition — per-player send and receive volume at most
    ``n`` — charges :data:`LENZEN_ROUND_COST` rounds, and returns the
    per-receiver inboxes.
    """
    n = clique.num_players
    send_load: Dict[int, int] = {}
    receive_load: Dict[int, int] = {}
    inboxes: Dict[int, List[object]] = {}
    for sender, receiver, payload in messages:
        if not 0 <= sender < n or not 0 <= receiver < n:
            raise ProtocolError(
                f"message endpoints ({sender}, {receiver}) out of range during {context}"
            )
        send_load[sender] = send_load.get(sender, 0) + 1
        receive_load[receiver] = receive_load.get(receiver, 0) + 1
        inboxes.setdefault(receiver, []).append(payload)
    for player, load in send_load.items():
        if load > n:
            raise ProtocolError(
                f"player {player} sends {load} > n={n} messages; "
                f"Lenzen's precondition violated during {context}"
            )
    for player, load in receive_load.items():
        if load > n:
            raise ProtocolError(
                f"player {player} receives {load} > n={n} messages; "
                f"Lenzen's precondition violated during {context}"
            )
    clique.charge_rounds(LENZEN_ROUND_COST, context)
    return inboxes
