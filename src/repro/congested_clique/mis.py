"""MIS in the CONGESTED-CLIQUE model — the second half of Theorem 1.1.

Follows Section 3.2's CONGESTED-CLIQUE simulation verbatim:

1. The minimum-id player samples the permutation locally and informs every
   player of its rank (one round); players then broadcast their ranks so
   everyone knows the full order (one round).
2. Per prefix phase, players whose rank falls in the current range send
   their incident residual edges to the leader via Lenzen's routing scheme
   (volume ``O(n)`` w.h.p. by Lemma 3.1 — validated, not assumed); the
   leader runs greedy over the prefix and answers each player in-or-out
   (one round); one more round lets MIS members inform their neighbors.
3. The sparsified finish runs the compressed Luby process with the same
   exponentiation schedule as the MPC version (ball-doubling works
   identically in CONGESTED-CLIQUE).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.congested_clique.model import CongestedClique
from repro.congested_clique.routing import lenzen_route
from repro.core.config import MISConfig
from repro.core.greedy_mis import greedy_mis_on_prefix
from repro.core.sparsified_mis import sparsified_mis
from repro.graph.graph import Graph
from repro.utils.rng import SeedLike, make_rng
from repro.utils.trace import Trace, maybe_record


@dataclass
class CCMISResult:
    """Outcome of the CONGESTED-CLIQUE MIS algorithm."""

    mis: Set[int]
    rounds: int
    prefix_phases: int
    max_routed_messages: int
    routed_per_phase: List[int] = field(default_factory=list)


def congested_clique_mis(
    graph: Graph,
    seed: SeedLike = None,
    config: Optional[MISConfig] = None,
    trace: Optional[Trace] = None,
) -> CCMISResult:
    """Compute an MIS of ``graph`` on a simulated CONGESTED-CLIQUE network."""
    config = config or MISConfig()
    rng = make_rng(seed)
    n = graph.num_vertices
    if n == 0:
        return CCMISResult(mis=set(), rounds=0, prefix_phases=0, max_routed_messages=0)

    clique = CongestedClique(n, trace=trace)

    # Leader samples the permutation and distributes ranks; players then
    # broadcast their own position so the full order is common knowledge.
    permutation = list(range(n))
    rng.shuffle(permutation)
    ranks = [0] * n
    for position, v in enumerate(permutation):
        ranks[v] = position
    clique.round_of_messages(
        ((0, v, 1) for v in range(n)), context="mis: leader assigns ranks"
    )
    clique.broadcast_round(context="mis: players broadcast ranks")

    from repro.core.mis_mpc import rank_schedule  # local import avoids a cycle

    residual = graph.copy()
    mis: Set[int] = set()
    decided: Set[int] = set()
    cutoffs = rank_schedule(n, graph.max_degree(), config)
    routed_sizes: List[int] = []
    previous_cutoff = 0

    for phase_index, cutoff in enumerate(cutoffs):
        prefix = [
            v
            for v in range(n)
            if previous_cutoff <= ranks[v] < cutoff and v not in decided
        ]
        prefix_set = set(prefix)
        # Each prefix player routes its prefix-internal residual edges to the
        # leader; Lenzen's scheme validates the O(n) volume requirement.
        edge_messages = []
        for v in prefix:
            for u in residual.neighbors_view(v):
                if u in prefix_set and u > v:
                    edge_messages.append((v, 0, (v, u)))
        # The leader receives the whole prefix subgraph — O(n) messages
        # w.h.p. (Lemma 3.1), i.e. a constant number of Lenzen invocations,
        # each of which is volume-validated by the routing scheme.
        for start in range(0, max(1, len(edge_messages)), n):
            lenzen_route(
                clique,
                edge_messages[start : start + n],
                context=f"mis: phase {phase_index} edges to leader",
            )
        routed_sizes.append(len(edge_messages))

        new_mis = greedy_mis_on_prefix(residual, ranks, prefix)
        clique.round_of_messages(
            ((0, v, 1) for v in prefix),
            context=f"mis: phase {phase_index} leader replies",
        )
        clique.broadcast_round(context=f"mis: phase {phase_index} removal notices")

        for v in sorted(new_mis, key=lambda vertex: ranks[vertex]):
            if v in decided:
                continue
            mis.add(v)
            removed = residual.remove_closed_neighborhood(v)
            decided |= removed
        decided.update(prefix)
        previous_cutoff = cutoff
        maybe_record(
            trace,
            "cc_mis_phase",
            phase=phase_index,
            routed=len(edge_messages),
            mis_size=len(mis),
        )

    active = {v for v in range(n) if v not in decided}
    finish = sparsified_mis(
        residual,
        active=active,
        seed=rng.getrandbits(64),
        rounds_factor=config.luby_rounds_factor,
        trace=trace,
        strategy=config.sparse_strategy,
    )
    # Charge the finish's compressed schedule to the clique: ball doubling,
    # leftover gathering (Lenzen), and the final result broadcast.
    clique.charge_rounds(
        finish.rounds_charged + 3, "mis: sparsified finish (compressed Luby)"
    )
    mis |= finish.mis

    return CCMISResult(
        mis=mis,
        rounds=clique.rounds,
        prefix_phases=len(cutoffs),
        max_routed_messages=max(routed_sizes, default=0),
        routed_per_phase=routed_sizes,
    )
