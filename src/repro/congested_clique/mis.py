"""MIS in the CONGESTED-CLIQUE model — the second half of Theorem 1.1.

Follows Section 3.2's CONGESTED-CLIQUE simulation verbatim:

1. The minimum-id player samples the permutation locally and informs every
   player of its rank (one round); players then broadcast their ranks so
   everyone knows the full order (one round).
2. Per prefix phase, players whose rank falls in the current range send
   their incident residual edges to the leader via Lenzen's routing scheme
   (volume ``O(n)`` w.h.p. by Lemma 3.1 — validated, not assumed); the
   leader runs greedy over the prefix and answers each player in-or-out
   (one round); one more round lets MIS members inform their neighbors.
3. The sparsified finish runs the compressed Luby process with the same
   exponentiation schedule as the MPC version (ball-doubling works
   identically in CONGESTED-CLIQUE).

Hot-path layout: the input graph is never copied and never mutated.  The
residual is an ``alive`` boolean mask (valid because greedy deletion only
ever isolates vertices), routed edge messages are flat NumPy endpoint
arrays validated by ``bincount`` (:func:`lenzen_route_arrays`), the
leader's greedy runs on a prefix-induced CSR
(:func:`greedy_mis_on_prefix_csr`), and the sparsified finish receives the
residual as a mask-filtered CSR built directly from the adjacency sets —
the prefix phases themselves touch only ``O(Σ deg(prefix ∪ winners))``
adjacency entries, so no full-graph conversion is paid up front.  Outputs
(MIS, rounds, routed volumes) are bit-for-bit identical to the historical
tuple-routing implementation; ``tests/test_backend_parity.py`` pins this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

import numpy as np

from repro.congested_clique.model import CongestedClique
from repro.congested_clique.routing import lenzen_route_arrays
from repro.core.config import MISConfig
from repro.core.greedy_mis import greedy_mis_on_prefix_csr
from repro.core.sparsified_mis import sparsified_mis
from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph
from repro.utils.rng import SeedLike, make_rng
from repro.utils.trace import Trace, maybe_record


@dataclass
class CCMISResult:
    """Outcome of the CONGESTED-CLIQUE MIS algorithm."""

    mis: Set[int]
    rounds: int
    prefix_phases: int
    max_routed_messages: int
    routed_per_phase: List[int] = field(default_factory=list)


def congested_clique_mis(
    graph: Graph,
    seed: SeedLike = None,
    config: Optional[MISConfig] = None,
    trace: Optional[Trace] = None,
) -> CCMISResult:
    """Compute an MIS of ``graph`` on a simulated CONGESTED-CLIQUE network."""
    config = config or MISConfig()
    rng = make_rng(seed)
    n = graph.num_vertices
    if n == 0:
        return CCMISResult(mis=set(), rounds=0, prefix_phases=0, max_routed_messages=0)

    clique = CongestedClique(n, trace=trace)

    # Leader samples the permutation and distributes ranks; players then
    # broadcast their own position so the full order is common knowledge.
    permutation = list(range(n))
    rng.shuffle(permutation)
    ranks = np.empty(n, dtype=np.int64)
    ranks[permutation] = np.arange(n, dtype=np.int64)
    clique.round_of_messages_array(
        np.zeros(n, dtype=np.int64),
        np.arange(n, dtype=np.int64),
        context="mis: leader assigns ranks",
    )
    clique.broadcast_round(context="mis: players broadcast ranks")

    from repro.core.mis_mpc import rank_schedule  # local import avoids a cycle

    # ``alive`` mirrors the historical residual graph (False = isolated by
    # a removed closed neighborhood); ``decided`` additionally covers
    # dominated prefix vertices whose edges survive.
    alive = np.ones(n, dtype=bool)
    decided = np.zeros(n, dtype=bool)
    mis: Set[int] = set()
    cutoffs = rank_schedule(n, graph.max_degree(), config)
    routed_sizes: List[int] = []
    previous_cutoff = 0

    for phase_index, cutoff in enumerate(cutoffs):
        window = (ranks >= previous_cutoff) & (ranks < cutoff) & ~decided
        prefix = np.flatnonzero(window)
        # Each prefix player routes its prefix-internal residual edges to
        # the leader.  Prefix vertices are undecided, hence never isolated,
        # so those residual edges coincide with original-graph edges — read
        # straight off the adjacency sets, no residual copy needed.
        endpoint_lo: List[int] = []
        endpoint_hi: List[int] = []
        for v in prefix.tolist():
            for u in graph.neighbors_view(v):
                if u > v and window[u]:
                    endpoint_lo.append(v)
                    endpoint_hi.append(u)
        senders = np.asarray(endpoint_lo, dtype=np.int64)
        partners = np.asarray(endpoint_hi, dtype=np.int64)
        # The leader receives the whole prefix subgraph — O(n) messages
        # w.h.p. (Lemma 3.1), i.e. a constant number of Lenzen invocations,
        # each of which is volume-validated by the routing scheme.
        for start in range(0, max(1, len(senders)), n):
            chunk = senders[start : start + n]
            lenzen_route_arrays(
                clique,
                chunk,
                np.zeros(len(chunk), dtype=np.int64),
                context=f"mis: phase {phase_index} edges to leader",
            )
        routed_sizes.append(len(senders))

        # Leader's greedy over the prefix, on the prefix-induced CSR (the
        # greedy outcome depends only on prefix-internal adjacency).
        prefix_csr = CSRGraph.from_edge_array(
            n, np.column_stack((senders, partners))
        )
        new_mis = greedy_mis_on_prefix_csr(prefix_csr, ranks, prefix)
        clique.round_of_messages_array(
            np.zeros(len(prefix), dtype=np.int64),
            prefix,
            context=f"mis: phase {phase_index} leader replies",
        )
        clique.broadcast_round(context=f"mis: phase {phase_index} removal notices")

        # The chosen vertices are independent, so their closed
        # neighborhoods can be removed (and marked decided) in one batch.
        mis.update(new_mis.tolist())
        alive[new_mis] = False
        decided[new_mis] = True
        for v in new_mis.tolist():
            for u in graph.neighbors_view(v):
                alive[u] = False
                decided[u] = True
        decided |= window
        previous_cutoff = cutoff
        maybe_record(
            trace,
            "cc_mis_phase",
            phase=phase_index,
            routed=len(senders),
            mis_size=len(mis),
        )

    active = set(np.flatnonzero(~decided).tolist())
    finish = sparsified_mis(
        CSRGraph.from_graph(graph, mask=alive),
        active=active,
        seed=rng.getrandbits(64),
        rounds_factor=config.luby_rounds_factor,
        trace=trace,
        strategy=config.sparse_strategy,
    )
    # Charge the finish's compressed schedule to the clique: ball doubling,
    # leftover gathering (Lenzen), and the final result broadcast.
    clique.charge_rounds(
        finish.rounds_charged + 3, "mis: sparsified finish (compressed Luby)"
    )
    mis |= finish.mis

    return CCMISResult(
        mis=mis,
        rounds=clique.rounds,
        prefix_phases=len(cutoffs),
        max_routed_messages=max(routed_sizes, default=0),
        routed_per_phase=routed_sizes,
    )
