"""The CONGESTED-CLIQUE network model.

Players are the integers ``0..n-1`` (one per graph vertex, the standard
setting of Section 1.1.2).  Communication happens in synchronous rounds;
per round, each ordered pair of players may exchange one message of
``O(log n)`` bits — i.e. a constant number of vertex ids or one float.
The model tracks rounds and validates the per-pair bandwidth constraint.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.mpc.errors import ProtocolError
from repro.utils.trace import Trace, maybe_record

# One CONGESTED-CLIQUE message carries O(log n) bits — enough for a constant
# number of vertex ids.  We fix that constant here.
IDS_PER_MESSAGE = 2


class CongestedClique:
    """A clique network of ``n`` players with per-round bandwidth accounting."""

    def __init__(self, num_players: int, trace: Optional[Trace] = None) -> None:
        if num_players <= 0:
            raise ValueError(f"num_players must be positive, got {num_players}")
        self._n = num_players
        self._rounds = 0
        self._trace = trace

    @property
    def num_players(self) -> int:
        """Number of players ``n``."""
        return self._n

    @property
    def rounds(self) -> int:
        """Rounds consumed so far."""
        return self._rounds

    def _check_player(self, player: int) -> None:
        if not 0 <= player < self._n:
            raise ProtocolError(f"player {player} out of range [0, {self._n})")

    def charge_rounds(self, count: int, reason: str) -> None:
        """Consume ``count`` rounds for a cited constant-round primitive."""
        if count < 0:
            raise ValueError(f"round count must be >= 0, got {count}")
        self._rounds += count
        maybe_record(self._trace, "cc_rounds", count=count, reason=reason)

    def round_of_messages(
        self,
        messages: Iterable[Tuple[int, int, int]],
        context: str = "point-to-point",
    ) -> None:
        """Execute one round given ``(sender, receiver, num_ids)`` triples.

        Validates that no ordered pair carries more than
        :data:`IDS_PER_MESSAGE` ids and that senders/receivers are valid,
        then charges one round.
        """
        pair_load: Dict[Tuple[int, int], int] = {}
        for sender, receiver, num_ids in messages:
            self._check_player(sender)
            self._check_player(receiver)
            key = (sender, receiver)
            pair_load[key] = pair_load.get(key, 0) + num_ids
            if pair_load[key] > IDS_PER_MESSAGE:
                raise ProtocolError(
                    f"pair {key} exceeds per-round bandwidth "
                    f"({pair_load[key]} ids > {IDS_PER_MESSAGE}) during {context}"
                )
        self._rounds += 1
        maybe_record(self._trace, "cc_rounds", count=1, reason=context)

    def round_of_messages_array(
        self,
        senders: np.ndarray,
        receivers: np.ndarray,
        num_ids: int = 1,
        context: str = "point-to-point",
    ) -> None:
        """Array form of :meth:`round_of_messages`: one round of uniform-size
        messages given flat endpoint arrays.

        Every message carries ``num_ids`` ids; per-pair loads are validated
        with one ``np.unique`` pass over packed ``(sender, receiver)`` keys
        instead of a per-message dict update.  Accepts and rejects exactly
        the same rounds as the scalar method.
        """
        senders = np.asarray(senders, dtype=np.int64)
        receivers = np.asarray(receivers, dtype=np.int64)
        if len(senders) != len(receivers):
            raise ValueError("senders and receivers must have equal length")
        n = self._n
        if senders.size:
            for endpoint in (senders, receivers):
                bad = (endpoint < 0) | (endpoint >= n)
                if bad.any():
                    player = int(endpoint[np.argmax(bad)])
                    raise ProtocolError(f"player {player} out of range [0, {n})")
            keys, counts = np.unique(senders * np.int64(n) + receivers, return_counts=True)
            load = counts * int(num_ids)
            over = load > IDS_PER_MESSAGE
            if over.any():
                which = int(np.argmax(over))
                pair = (int(keys[which]) // n, int(keys[which]) % n)
                raise ProtocolError(
                    f"pair {pair} exceeds per-round bandwidth "
                    f"({int(load[which])} ids > {IDS_PER_MESSAGE}) during {context}"
                )
        self._rounds += 1
        maybe_record(self._trace, "cc_rounds", count=1, reason=context)

    def broadcast_round(self, context: str = "broadcast") -> None:
        """One round in which some players send the same id(s) to everyone.

        A broadcast of one message per player per round is trivially within
        the clique's bandwidth (each ordered pair carries one message).
        """
        self._rounds += 1
        maybe_record(self._trace, "cc_rounds", count=1, reason=context)

    def __repr__(self) -> str:
        return f"CongestedClique(n={self._n}, rounds={self._rounds})"
