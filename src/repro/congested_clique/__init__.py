"""CONGESTED-CLIQUE substrate and algorithms (Section 1.1.2, Section 3.2).

``n`` players, one per vertex; each synchronous round every ordered pair
may exchange one ``O(log n)``-bit message.  The substrate accounts rounds
and validates bandwidth; Lenzen's routing scheme [Len13] is modelled as a
volume-checked constant-round primitive.
"""

from repro.congested_clique.model import CongestedClique
from repro.congested_clique.routing import lenzen_route
from repro.congested_clique.mis import CCMISResult, congested_clique_mis
from repro.congested_clique.matching import (
    CCMatchingResult,
    congested_clique_fractional_matching,
)

__all__ = [
    "CongestedClique",
    "lenzen_route",
    "CCMISResult",
    "congested_clique_mis",
    "CCMatchingResult",
    "congested_clique_fractional_matching",
]
