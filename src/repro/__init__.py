"""repro — reproduction of "Improved Massively Parallel Computation
Algorithms for MIS, Matching, and Vertex Cover" (Ghaffari, Gouleakis,
Konrad, Mitrović, Rubinfeld; PODC 2018, arXiv:1802.08237).

Public API highlights
---------------------
Graphs::

    from repro import Graph, gnp_random_graph

Theorem 1.1 — MIS in O(log log Δ) MPC / CONGESTED-CLIQUE rounds::

    from repro import mis_mpc, congested_clique_mis

Lemma 4.2 / Theorem 1.2 — matching and vertex cover::

    from repro import mpc_fractional_matching, mpc_maximum_matching, mpc_vertex_cover

Corollaries 1.3 / 1.4::

    from repro import one_plus_eps_matching, mpc_weighted_matching

Unified façade — every task on every backend through one entry point
(see :mod:`repro.api` and the top-level README for the full matrix)::

    from repro import solve, solve_many

    report = solve("mis", graph, backend="mpc", seed=7)

Verification — certificates against the paper's guarantees (see
:mod:`repro.verify` and VERIFICATION.md)::

    report = solve("mis", graph, backend="mpc", seed=7, verify=True)
    report.verified
"""

from repro.graph import (
    Graph,
    WeightedGraph,
    barabasi_albert,
    gnp_random_graph,
    random_bipartite_graph,
)
from repro.core import (
    MISConfig,
    MatchingConfig,
    MISResult,
    mis_mpc,
    randomized_greedy_mis,
    CentralResult,
    central_fractional_matching,
    FractionalMatching,
    MatchingMPCResult,
    mpc_fractional_matching,
    round_fractional_matching,
    IntegralMatchingResult,
    mpc_maximum_matching,
    VertexCoverResult,
    mpc_vertex_cover,
    one_plus_eps_matching,
    WeightedMatchingResult,
    mpc_weighted_matching,
)
from repro.congested_clique import CCMISResult, congested_clique_mis
from repro.api import (
    RunReport,
    ServeReport,
    StreamReport,
    solve,
    solve_many,
    solve_stream,
    sweep,
)
from repro.mpc.spec import ClusterSpec

__version__ = "1.0.0"

__all__ = [
    "solve",
    "solve_many",
    "sweep",
    "solve_stream",
    "RunReport",
    "ServeReport",
    "StreamReport",
    "ClusterSpec",
    "Graph",
    "WeightedGraph",
    "barabasi_albert",
    "gnp_random_graph",
    "random_bipartite_graph",
    "MISConfig",
    "MatchingConfig",
    "MISResult",
    "mis_mpc",
    "randomized_greedy_mis",
    "CentralResult",
    "central_fractional_matching",
    "FractionalMatching",
    "MatchingMPCResult",
    "mpc_fractional_matching",
    "round_fractional_matching",
    "IntegralMatchingResult",
    "mpc_maximum_matching",
    "VertexCoverResult",
    "mpc_vertex_cover",
    "one_plus_eps_matching",
    "WeightedMatchingResult",
    "mpc_weighted_matching",
    "CCMISResult",
    "congested_clique_mis",
    "__version__",
]
