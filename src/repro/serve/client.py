"""A small blocking client for the ``repro.serve`` line protocol.

Used by the test-suite, the conformance check, and the serve benchmark;
it is also the reference implementation for external clients: connect a
TCP socket, write one JSON object per line, read one JSON object per
line back.  Raises :class:`ServeError` when a response carries
``ok: false``, except for ``shed`` ingest outcomes which are part of the
backpressure contract and returned to the caller to retry.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, List, Optional, Tuple

from repro.serve.report import ServeReport
from repro.stream.updates import EdgeBatch


class ServeError(RuntimeError):
    """The service answered ``ok: false``."""


class ServeClient:
    """Blocking newline-JSON client; usable as a context manager."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, timeout: float = 60.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- transport ----------------------------------------------------------

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One request/response round-trip; raises on ``ok: false``."""
        self._file.write(json.dumps(payload).encode() + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServeError("connection closed by service")
        response = json.loads(line)
        if not response.get("ok"):
            raise ServeError(response.get("error", "unknown service error"))
        return response

    # -- ops -----------------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.request({"op": "ping"})

    def open(
        self,
        tenant: str,
        task: Optional[str] = None,
        *,
        n: int = 0,
        edges: Optional[List[Tuple[int, int]]] = None,
        backend: str = "auto",
        seed: Optional[int] = None,
        resolve_fraction: float = 0.25,
        verify: bool = False,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "op": "open",
            "tenant": tenant,
            "n": n,
            "edges": [[int(u), int(v)] for u, v in edges or []],
            "backend": backend,
            "seed": seed,
            "resolve_fraction": resolve_fraction,
            "verify": verify,
        }
        if task is not None:
            payload["task"] = task
        return self.request(payload)

    def ingest(
        self,
        tenant: str,
        batch: EdgeBatch,
        *,
        seq: Optional[int] = None,
        sync: bool = False,
    ) -> Dict[str, Any]:
        """Offer one batch; a ``shed`` outcome is returned, not raised."""
        return self.request(
            {
                "op": "ingest",
                "tenant": tenant,
                "batch": batch.to_dict(),
                "seq": seq,
                "sync": sync,
            }
        )

    def query(self, tenant: str, what: str = "status", **extra: Any) -> Dict[str, Any]:
        return self.request(
            {"op": "query", "tenant": tenant, "what": what, **extra}
        )

    def solution(self, tenant: str) -> Any:
        return self.query(tenant, "solution")["solution"]

    def quality(self, tenant: str) -> float:
        return float(self.query(tenant, "quality")["quality"])

    def certificate(self, tenant: str) -> Dict[str, Any]:
        return self.query(tenant, "certificate")["certificate"]

    def status(self, tenant: str) -> Dict[str, Any]:
        return self.query(tenant, "status")["status"]

    def epochs(self, tenant: str, last: Optional[int] = None) -> List[Dict[str, Any]]:
        extra = {} if last is None else {"last": last}
        return self.query(tenant, "epochs", **extra)["epochs"]

    def flush(self, tenant: str) -> Dict[str, Any]:
        return self.request({"op": "flush", "tenant": tenant})

    def snapshot(self, tenant: Optional[str] = None) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"op": "snapshot"}
        if tenant is not None:
            payload["tenant"] = tenant
        return self.request(payload)

    def report(self) -> ServeReport:
        return ServeReport.from_dict(self.request({"op": "report"})["report"])

    def shutdown(self) -> Dict[str, Any]:
        return self.request({"op": "shutdown"})
