"""``ServeReport`` — the serializable outcome of a service run.

The serving sibling of :class:`~repro.api.report.RunReport` (one solve)
and :class:`~repro.stream.driver.StreamReport` (one batch-CLI stream):
one :class:`TenantReport` per named session, each carrying the same
per-epoch :class:`~repro.stream.driver.EpochRecord` audit trail the
stream driver records, plus the serving-only counters (queued, coalesced,
shed, duplicate, snapshots, restores).  Schema-versioned with an exact
``to_json``/``from_json`` round-trip and loud rejection of unknown
schemas, like its siblings.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.stream.driver import EpochRecord

SERVE_SCHEMA_VERSION = 1
_SUPPORTED_SERVE_SCHEMAS = (1,)


@dataclass(frozen=True)
class TenantReport:
    """One tenant session's full story: config, epochs, final solution."""

    tenant: str
    task: str
    backend: str
    seed: Optional[int]
    n_final: int
    m_final: int
    initial: Dict[str, Any]
    epochs: List[EpochRecord]
    solution: Any
    counters: Dict[str, int] = field(default_factory=dict)
    config: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether every recorded epoch's checks passed."""
        return all(record.ok for record in self.epochs)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tenant": self.tenant,
            "task": self.task,
            "backend": self.backend,
            "seed": self.seed,
            "n_final": self.n_final,
            "m_final": self.m_final,
            "initial": dict(self.initial),
            "epochs": [record.to_dict() for record in self.epochs],
            "solution": self.solution,
            "counters": dict(self.counters),
            "config": dict(self.config),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TenantReport":
        return cls(
            tenant=payload["tenant"],
            task=payload["task"],
            backend=payload["backend"],
            seed=payload.get("seed"),
            n_final=int(payload["n_final"]),
            m_final=int(payload["m_final"]),
            initial=dict(payload.get("initial", {})),
            epochs=[
                EpochRecord.from_dict(item) for item in payload.get("epochs", [])
            ],
            solution=payload["solution"],
            counters=dict(payload.get("counters", {})),
            config=dict(payload.get("config", {})),
        )

    def summary_row(self) -> Dict[str, Any]:
        """A compact row for tables (solution elided)."""
        return {
            "tenant": self.tenant,
            "task": self.task,
            "n": self.n_final,
            "m": self.m_final,
            "epochs": len(self.epochs),
            "size": len(self.solution),
            "ok": self.ok,
            **{
                key: self.counters.get(key, 0)
                for key in ("coalesced", "shed", "snapshots", "restores")
            },
        }


@dataclass(frozen=True)
class ServeReport:
    """A full service run: every tenant's report plus the service config."""

    tenants: List[TenantReport]
    config: Dict[str, Any] = field(default_factory=dict)
    schema: int = SERVE_SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.schema not in _SUPPORTED_SERVE_SCHEMAS:
            raise ValueError(
                f"unsupported ServeReport schema version {self.schema!r}; "
                f"supported: {_SUPPORTED_SERVE_SCHEMAS}"
            )

    @property
    def ok(self) -> bool:
        return all(tenant.ok for tenant in self.tenants)

    def tenant(self, name: str) -> TenantReport:
        """The report of one named tenant (raises ``KeyError`` if absent)."""
        for report in self.tenants:
            if report.tenant == name:
                return report
        raise KeyError(f"no tenant {name!r} in this report")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tenants": [tenant.to_dict() for tenant in self.tenants],
            "config": dict(self.config),
            "schema": self.schema,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ServeReport":
        schema = payload.get("schema", SERVE_SCHEMA_VERSION)
        if schema not in _SUPPORTED_SERVE_SCHEMAS:
            raise ValueError(
                f"unsupported ServeReport schema version {schema!r}; "
                f"supported: {_SUPPORTED_SERVE_SCHEMAS}"
            )
        return cls(
            tenants=[
                TenantReport.from_dict(item)
                for item in payload.get("tenants", [])
            ],
            config=dict(payload.get("config", {})),
            schema=schema,
        )

    @classmethod
    def from_json(cls, text: str) -> "ServeReport":
        return cls.from_dict(json.loads(text))
