"""``repro.serve`` — a crash-safe multi-tenant streaming graph service.

The serving tier over :mod:`repro.stream`: a long-running asyncio
service that maintains one certified solution per named tenant, ingests
:class:`~repro.stream.updates.EdgeBatch` updates over a newline-JSON TCP
protocol (the same wire schema the batch CLI replays from JSONL), and
answers queries against the maintained solution without re-solving.

Layers, bottom up:

* :mod:`repro.serve.snapshot` — atomic per-tenant snapshot files
  (temp-file + fsync + ``os.replace``): the crash-safety primitive.
* :mod:`repro.serve.session` — :class:`TenantSession`: one maintained
  graph, its ingest queue with coalescing backpressure, the epoch
  record log, and exact snapshot/restore.
* :mod:`repro.serve.service` — :class:`ServeService`: the asyncio
  socket server, per-tenant workers, periodic snapshots, restore-at-boot.
* :mod:`repro.serve.client` — :class:`ServeClient`: the blocking
  reference client.
* :mod:`repro.serve.report` — :class:`ServeReport`: the serializable
  outcome, sibling of ``RunReport`` and ``StreamReport``.

Run a service::

    python -m repro.serve --port 7471 --snapshot-dir state/ --snapshot-every 4

Run the crash-safety conformance check (the CI gate: certified
convergence across a ``kill -9`` + restore)::

    python -m repro.serve --check

See ``SERVING.md`` at the repo root for the wire format, tenant
lifecycle, backpressure semantics, and the durability argument.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.report import SERVE_SCHEMA_VERSION, ServeReport, TenantReport
from repro.serve.service import ServeConfig, ServeService, serve
from repro.serve.session import TenantSession
from repro.serve.snapshot import (
    SNAPSHOT_SCHEMA_VERSION,
    list_snapshots,
    read_snapshot,
    snapshot_path,
    write_snapshot,
)

__all__ = [
    "SERVE_SCHEMA_VERSION",
    "SNAPSHOT_SCHEMA_VERSION",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServeReport",
    "ServeService",
    "TenantReport",
    "TenantSession",
    "list_snapshots",
    "read_snapshot",
    "serve",
    "snapshot_path",
    "write_snapshot",
]
