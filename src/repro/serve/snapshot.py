"""Atomic tenant snapshots: the crash-safety core of ``repro.serve``.

A snapshot is one JSON document per tenant holding everything a restore
needs to continue the stream *byte-identically*:

* the compacted graph (vertex count + canonical edge array of the
  current CSR — rebuilding a CSR from it reproduces the exact same
  arrays, because CSR layout is canonical);
* the maintainer state (:meth:`repro.stream.maintain.Maintainer.state_dict`
  — solution arrays and, for the fractional task, the exact incremental
  loads, so floating-point history survives);
* the epoch cursor (``seq`` of the last processed batch) and the full
  epoch record log, so a resumed run's report covers the whole stream;
* the session config (task, backend, seed, knobs).

Writes are atomic by construction: the document lands in a temp file in
the *same directory*, is flushed and fsynced, then ``os.replace``-d over
the target — a reader (or a restart) sees either the previous complete
snapshot or the new complete snapshot, never a torn one, no matter when
the writer was ``kill -9``-ed.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, List

SNAPSHOT_SCHEMA_VERSION = 1
_SUPPORTED_SNAPSHOT_SCHEMAS = (1,)

SNAPSHOT_SUFFIX = ".snapshot.json"


def snapshot_path(directory: Any, tenant: str) -> str:
    """Where ``tenant``'s snapshot lives under ``directory``."""
    return os.path.join(os.fspath(directory), f"{tenant}{SNAPSHOT_SUFFIX}")


def list_snapshots(directory: Any) -> List[str]:
    """Tenant names with a snapshot in ``directory`` (sorted)."""
    directory = os.fspath(directory)
    if not os.path.isdir(directory):
        return []
    return sorted(
        name[: -len(SNAPSHOT_SUFFIX)]
        for name in os.listdir(directory)
        if name.endswith(SNAPSHOT_SUFFIX)
    )


def write_snapshot(path: Any, payload: Dict[str, Any]) -> None:
    """Atomically persist ``payload`` as JSON at ``path``.

    Temp-file + fsync + ``os.replace`` in the destination directory: a
    crash at any instant leaves either the old snapshot or the new one.
    """
    path = os.fspath(path)
    if payload.get("schema") not in _SUPPORTED_SNAPSHOT_SCHEMAS:
        raise ValueError(
            f"snapshot payload must carry schema "
            f"{_SUPPORTED_SNAPSHOT_SCHEMAS}, got {payload.get('schema')!r}"
        )
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    descriptor, temp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as stream:
            json.dump(payload, stream, sort_keys=True)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


def read_snapshot(path: Any) -> Dict[str, Any]:
    """Load a snapshot document; rejects unknown schema versions."""
    with open(path, "r", encoding="utf-8") as stream:
        payload = json.load(stream)
    schema = payload.get("schema")
    if schema not in _SUPPORTED_SNAPSHOT_SCHEMAS:
        raise ValueError(
            f"unsupported snapshot schema version {schema!r}; "
            f"supported: {_SUPPORTED_SNAPSHOT_SCHEMAS}"
        )
    return payload
