"""Tenant sessions: one maintained graph per named client, with backpressure.

A :class:`TenantSession` owns one
:class:`~repro.stream.dynamic.DynamicGraph` +
:class:`~repro.stream.maintain.Maintainer` pair (its own task, backend,
seed, and knobs — tenants are fully isolated from each other) plus the
serving machinery around it:

* **ingest queue with epoch batching** — :meth:`offer` enqueues a batch;
  when ingest outruns repair and the queue hits ``max_queue``, the whole
  backlog is coalesced into one equivalent batch
  (:func:`repro.stream.updates.coalesce_batches`) that will be repaired
  as a single epoch.  When even the coalesced backlog carries more than
  ``max_pending_edits`` edits, further batches are **shed** — the caller
  gets an explicit rejection to retry later, never silent loss.
* **idempotent replay** — batches may carry a client sequence number;
  anything at or below the session's cursor is acknowledged as a
  duplicate and skipped, which is what makes "replay the stream from the
  start after a crash" converge instead of double-applying.
* **per-epoch records** — every processed batch appends an
  :class:`~repro.stream.driver.EpochRecord` (with a ``repro.verify``
  certificate when the session was opened with ``verify=True``), so a
  serving session carries the same audit trail a batch stream run does.
* **snapshot/restore** — :meth:`snapshot_payload` /
  :meth:`TenantSession.restore` round-trip the whole session state (see
  :mod:`repro.serve.snapshot` for the durability story).
"""

from __future__ import annotations

import re
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple, Union

from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph
from repro.mpc.errors import MemoryExceededError
from repro.serve.report import TenantReport
from repro.serve.snapshot import SNAPSHOT_SCHEMA_VERSION
from repro.stream.driver import EpochRecord, certify_epoch
from repro.stream.dynamic import DynamicGraph
from repro.stream.maintain import Maintainer, make_maintainer
from repro.stream.updates import EdgeBatch, coalesce_batches

#: Tenant names become snapshot file names, so they must be path-safe.
_TENANT_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: Queue/backpressure defaults (overridable per service and per session).
DEFAULT_MAX_QUEUE = 64
DEFAULT_MAX_PENDING_EDITS = 100_000

#: Outcomes of :meth:`TenantSession.offer`.
QUEUED = "queued"
COALESCED = "coalesced"
SHED = "shed"
DUPLICATE = "duplicate"


def governance_payload(value: Any) -> Optional[Dict[str, Any]]:
    """JSON-ready form of a governance opt-in (for snapshots/configs)."""
    if value is None or value is False:
        return None
    if value is True:
        return {}
    if isinstance(value, dict):
        return dict(value)
    return value.to_dict()


def validate_tenant_name(name: str) -> str:
    """A tenant name safe to use as a snapshot file stem."""
    if not isinstance(name, str) or not _TENANT_NAME.match(name):
        raise ValueError(
            f"invalid tenant name {name!r}: use 1-64 characters from "
            "[A-Za-z0-9._-], starting with a letter or digit"
        )
    return name


class TenantSession:
    """One tenant's maintained solution, queue, and epoch log."""

    def __init__(
        self,
        name: str,
        task: str,
        graph: Union[Graph, CSRGraph, DynamicGraph],
        *,
        backend: str = "auto",
        seed: Optional[int] = None,
        resolve_fraction: float = 0.25,
        budget: Optional[float] = None,
        governance: Any = None,
        verify: bool = False,
        max_queue: int = DEFAULT_MAX_QUEUE,
        max_pending_edits: int = DEFAULT_MAX_PENDING_EDITS,
    ) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if max_pending_edits < 1:
            raise ValueError(
                f"max_pending_edits must be >= 1, got {max_pending_edits}"
            )
        self.name = validate_tenant_name(name)
        self.task = task
        self.backend = backend
        self.seed = seed
        self.budget = budget
        self.governance = governance
        self.verify = bool(verify)
        self.max_queue = int(max_queue)
        self.max_pending_edits = int(max_pending_edits)
        self.maintainer: Maintainer = make_maintainer(
            task,
            graph,
            backend=backend,
            seed=seed,
            resolve_fraction=resolve_fraction,
            budget=budget,
            governance=governance,
        )
        self.records: List[EpochRecord] = []
        self.initial: Dict[str, Any] = {}
        self.processed_seq: Optional[int] = None
        self._accepted_seq: Optional[int] = None
        self._queue: Deque[Tuple[EdgeBatch, Optional[int]]] = deque()
        self.counters: Dict[str, int] = {
            "ingested": 0,
            "coalesced": 0,
            "shed": 0,
            "duplicates": 0,
            "snapshots": 0,
            "restores": 0,
            "budget_breaches": 0,
        }

    # -- lifecycle ----------------------------------------------------------

    def initialize(self) -> Dict[str, Any]:
        """Initial full solve; returns the summary recorded in reports."""
        started = time.perf_counter()
        report = self.maintainer.initialize()
        self.initial = {
            "backend": report.backend,
            "rounds": report.rounds,
            "size": self.maintainer.size(),
            "wall_time_s": time.perf_counter() - started,
        }
        return self.initial

    @property
    def epochs_processed(self) -> int:
        return len(self.records)

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def pending_edits(self) -> int:
        return sum(batch.size for batch, _ in self._queue)

    # -- ingestion ----------------------------------------------------------

    def _is_duplicate(self, seq: Optional[int]) -> bool:
        return (
            seq is not None
            and self._accepted_seq is not None
            and seq <= self._accepted_seq
        )

    def offer(
        self, batch: EdgeBatch, seq: Optional[int] = None
    ) -> Tuple[str, int]:
        """Enqueue a batch under backpressure; returns ``(outcome, depth)``.

        Outcomes: :data:`QUEUED` (plain enqueue), :data:`COALESCED` (the
        backlog was folded into one epoch to make room first),
        :data:`SHED` (rejected — backlog at the edit budget; the batch
        was **not** accepted and its ``seq`` not consumed, so a later
        retry succeeds), :data:`DUPLICATE` (``seq`` at or below the
        cursor; acknowledged, nothing enqueued).
        """
        if self._is_duplicate(seq):
            self.counters["duplicates"] += 1
            return DUPLICATE, len(self._queue)
        outcome = QUEUED
        if len(self._queue) >= self.max_queue:
            merged = coalesce_batches([item[0] for item in self._queue])
            merged_seq = self._queue[-1][1]
            self._queue.clear()
            self._queue.append((merged, merged_seq))
            self.counters["coalesced"] += 1
            outcome = COALESCED
        if self.pending_edits + batch.size > self.max_pending_edits:
            self.counters["shed"] += 1
            return SHED, len(self._queue)
        self._queue.append((batch, seq))
        if seq is not None:
            self._accepted_seq = seq
        return outcome, len(self._queue)

    def pop_next(self) -> Optional[Tuple[EdgeBatch, Optional[int]]]:
        """Dequeue the next pending batch (None when the queue is empty)."""
        return self._queue.popleft() if self._queue else None

    # -- epoch processing ----------------------------------------------------

    def process(
        self, batch: EdgeBatch, seq: Optional[int] = None
    ) -> Optional[EpochRecord]:
        """Apply one batch as one epoch; returns its record.

        Returns ``None`` (and counts a duplicate) when ``seq`` is at or
        below the cursor — the replay-idempotence path.

        A :class:`~repro.mpc.errors.MemoryExceededError` from an epoch's
        fallback re-solve does **not** kill the session: the breach is
        recorded as a *failed* epoch record (``verification.ok = False``
        with a ``budget_breach`` check) and counted in
        ``counters["budget_breaches"]``, so operators see it in
        :meth:`status` instead of losing the tenant.  Sessions opened
        with ``governance=`` degrade inside the solver and never land
        here.
        """
        if (
            seq is not None
            and self.processed_seq is not None
            and seq <= self.processed_seq
        ):
            # offer() advanced _accepted_seq when it queued this batch, so
            # dedup here must compare against the *processed* cursor only.
            self.counters["duplicates"] += 1
            return None
        try:
            stats = self.maintainer.step(batch)
        except MemoryExceededError as breach:
            self.counters["budget_breaches"] += 1
            record = EpochRecord(
                stats={
                    "epoch": self.epochs_processed + 1,
                    "action": "breach",
                    "n": self.maintainer.graph.num_vertices,
                    "m": self.maintainer.graph.num_edges,
                },
                verification={
                    "ok": False,
                    "checks": [
                        {
                            "name": "budget_breach",
                            "passed": False,
                            "detail": str(breach),
                        }
                    ],
                },
            )
            self.records.append(record)
            if seq is not None:
                self.processed_seq = seq
                if self._accepted_seq is None or seq > self._accepted_seq:
                    self._accepted_seq = seq
            return record
        verification: Dict[str, Any] = {}
        if self.verify:
            verification = certify_epoch(
                self.task, self.maintainer.graph.to_graph(), self.maintainer
            )
        record = EpochRecord(stats=stats.to_dict(), verification=verification)
        self.records.append(record)
        self.counters["ingested"] += 1
        if seq is not None:
            self.processed_seq = seq
            if self._accepted_seq is None or seq > self._accepted_seq:
                self._accepted_seq = seq
        return record

    def drain(self) -> int:
        """Process every queued batch now; returns epochs processed."""
        processed = 0
        while True:
            item = self.pop_next()
            if item is None:
                return processed
            if self.process(*item) is not None:
                processed += 1

    # -- queries ------------------------------------------------------------

    def quality(self) -> float:
        """The scalar quality the differential band compares (task-specific)."""
        maintainer = self.maintainer
        if self.task == "fractional_matching":
            return float(maintainer.total_weight())  # type: ignore[attr-defined]
        return float(maintainer.size())

    def certificate(self) -> Dict[str, Any]:
        """Certify the *current* maintained solution on demand."""
        return certify_epoch(
            self.task, self.maintainer.graph.to_graph(), self.maintainer
        )

    def status(self) -> Dict[str, Any]:
        return {
            "tenant": self.name,
            "task": self.task,
            "backend": self.backend,
            "n": self.maintainer.graph.num_vertices,
            "m": self.maintainer.graph.num_edges,
            "size": self.maintainer.size(),
            "epochs": self.epochs_processed,
            "queue_depth": self.queue_depth,
            "pending_edits": self.pending_edits,
            "processed_seq": self.processed_seq,
            "budget": self.budget,
            "governed": self.governance is not None and self.governance is not False,
            "counters": dict(self.counters),
        }

    def report(self) -> TenantReport:
        return TenantReport(
            tenant=self.name,
            task=self.task,
            backend=self.backend,
            seed=self.seed,
            n_final=self.maintainer.graph.num_vertices,
            m_final=self.maintainer.graph.num_edges,
            initial=dict(self.initial),
            epochs=list(self.records),
            solution=self.maintainer.solution(),
            counters=dict(self.counters),
            config={
                "resolve_fraction": self.maintainer.resolve_fraction,
                "verify": self.verify,
                "max_queue": self.max_queue,
                "max_pending_edits": self.max_pending_edits,
                "seed": self.seed,
                "budget": self.budget,
                "governance": governance_payload(self.governance),
            },
        )

    # -- persistence --------------------------------------------------------

    def snapshot_payload(self) -> Dict[str, Any]:
        """Everything a byte-identical resume needs, JSON-ready.

        The queue is deliberately *not* persisted: queued batches were
        never acknowledged as processed, and the cursor tells a replaying
        client exactly where to resume.  The graph is captured as the
        compacted CSR's canonical edge array, so the restored CSR is
        array-identical to the live one.
        """
        csr = self.maintainer.graph.compact()
        return {
            "schema": SNAPSHOT_SCHEMA_VERSION,
            "tenant": self.name,
            "task": self.task,
            "backend": self.backend,
            "seed": self.seed,
            "config": {
                "resolve_fraction": self.maintainer.resolve_fraction,
                "verify": self.verify,
                "max_queue": self.max_queue,
                "max_pending_edits": self.max_pending_edits,
                "budget": self.budget,
                "governance": governance_payload(self.governance),
            },
            "n": csr.num_vertices,
            "edges": [[int(u), int(v)] for u, v in csr.edge_array()],
            "maintainer": self.maintainer.state_dict(),
            "initial": dict(self.initial),
            "processed_seq": self.processed_seq,
            "records": [record.to_dict() for record in self.records],
            "counters": dict(self.counters),
        }

    @classmethod
    def restore(cls, payload: Dict[str, Any]) -> "TenantSession":
        """Rebuild a session from :meth:`snapshot_payload` output."""
        config = dict(payload.get("config", {}))
        session = cls(
            payload["tenant"],
            payload["task"],
            Graph(
                int(payload["n"]),
                [(int(u), int(v)) for u, v in payload["edges"]],
            ),
            backend=payload.get("backend", "auto"),
            seed=payload.get("seed"),
            resolve_fraction=float(config.get("resolve_fraction", 0.25)),
            budget=config.get("budget"),
            governance=config.get("governance"),
            verify=bool(config.get("verify", False)),
            max_queue=int(config.get("max_queue", DEFAULT_MAX_QUEUE)),
            max_pending_edits=int(
                config.get("max_pending_edits", DEFAULT_MAX_PENDING_EDITS)
            ),
        )
        session.maintainer.load_state(payload["maintainer"])
        session.initial = dict(payload.get("initial", {}))
        session.records = [
            EpochRecord.from_dict(item) for item in payload.get("records", [])
        ]
        session.processed_seq = payload.get("processed_seq")
        session._accepted_seq = session.processed_seq
        session.counters.update(payload.get("counters", {}))
        session.counters["restores"] += 1
        return session
