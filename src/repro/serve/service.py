"""The asyncio service: newline-JSON protocol over TCP, per-tenant workers.

Protocol: one JSON object per line in each direction.  Every request
carries an ``op`` and (except ``ping``/``report``/``shutdown``) a
``tenant``; every response carries ``ok`` plus op-specific fields, with
``ok: false`` and an ``error`` string on failure — a malformed request
never kills the connection, let alone the service.

Ops:

``ping``
    Liveness + service config echo.
``open``
    Create a tenant session (``task``, ``n``, optional ``edges``,
    ``backend``, ``seed``, ``resolve_fraction``, ``verify``, ``budget``,
    ``governance``) and run the initial solve.  Idempotent: re-opening an existing (e.g. restored)
    tenant returns its status with ``existing: true`` so a reconnecting
    client learns the cursor to resume from.
``ingest``
    Offer one :class:`~repro.stream.updates.EdgeBatch` (wire schema v1,
    same JSONL dict as the batch CLI) with an optional client ``seq``.
    The response's ``outcome`` is ``queued``/``coalesced``/``shed``/
    ``duplicate``; ``shed`` sets ``retry: true`` and consumes nothing.
    With ``sync: true`` the queue is drained inline and the response
    carries the resulting epoch record.
``query``
    ``what`` ∈ ``solution`` | ``quality`` | ``certificate`` | ``epochs``
    (optionally ``last: N``) | ``status``.
``flush``
    Drain the tenant's queue now.
``snapshot``
    Force a snapshot of one tenant (or all when ``tenant`` is omitted).
``report``
    The full :class:`~repro.serve.report.ServeReport`.
``shutdown``
    Snapshot every tenant, then stop the service.

Epoch repair runs on the event loop (it is pure CPU work on in-process
state, and running it anywhere else would race the sessions); the
per-tenant worker yields between epochs so ingest keeps flowing and the
queue/coalescing machinery absorbs bursts.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.graph.graph import Graph
from repro.serve.report import SERVE_SCHEMA_VERSION, ServeReport
from repro.serve.session import (
    DEFAULT_MAX_PENDING_EDITS,
    DEFAULT_MAX_QUEUE,
    SHED,
    TenantSession,
)
from repro.serve.snapshot import (
    list_snapshots,
    read_snapshot,
    snapshot_path,
    write_snapshot,
)
from repro.stream.updates import EdgeBatch

#: Ingest lines can carry a few hundred thousand edits; keep headroom.
MAX_LINE_BYTES = 64 * 1024 * 1024


@dataclass
class ServeConfig:
    """Service-level knobs (per-tenant knobs ride on ``open``)."""

    host: str = "127.0.0.1"
    port: int = 0
    snapshot_dir: Optional[str] = None
    snapshot_every: int = 0
    max_queue: int = DEFAULT_MAX_QUEUE
    max_pending_edits: int = DEFAULT_MAX_PENDING_EDITS

    def to_dict(self) -> Dict[str, Any]:
        return {
            "host": self.host,
            "port": self.port,
            "snapshot_dir": self.snapshot_dir,
            "snapshot_every": self.snapshot_every,
            "max_queue": self.max_queue,
            "max_pending_edits": self.max_pending_edits,
        }


@dataclass
class _Tenant:
    session: TenantSession
    wakeup: asyncio.Event = field(default_factory=asyncio.Event)
    worker: Optional[asyncio.Task] = None


class ServeService:
    """A multi-tenant maintained-solution server over ``repro.stream``."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self._tenants: Dict[str, _Tenant] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self._stopping = asyncio.Event()

    # -- lifecycle ----------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("service is not started")
        return self._server.sockets[0].getsockname()[1]

    def restore_tenants(self) -> int:
        """Load every snapshot under ``snapshot_dir``; returns the count."""
        directory = self.config.snapshot_dir
        if not directory:
            return 0
        restored = 0
        for name in list_snapshots(directory):
            payload = read_snapshot(snapshot_path(directory, name))
            session = TenantSession.restore(payload)
            self._tenants[session.name] = _Tenant(session=session)
            restored += 1
        return restored

    async def start(self) -> None:
        """Restore snapshots, bind the socket, start tenant workers."""
        self.restore_tenants()
        self._server = await asyncio.start_server(
            self._handle_client,
            host=self.config.host,
            port=self.config.port,
            limit=MAX_LINE_BYTES,
        )
        for tenant in self._tenants.values():
            self._start_worker(tenant)

    async def serve_until_stopped(self) -> None:
        assert self._server is not None
        async with self._server:
            await self._stopping.wait()
        for tenant in self._tenants.values():
            if tenant.worker is not None:
                tenant.wakeup.set()
                await tenant.worker

    async def run(self) -> None:
        await self.start()
        await self.serve_until_stopped()

    def request_stop(self) -> None:
        self._stopping.set()

    # -- workers ------------------------------------------------------------

    def _start_worker(self, tenant: _Tenant) -> None:
        tenant.worker = asyncio.get_running_loop().create_task(
            self._worker(tenant)
        )

    async def _worker(self, tenant: _Tenant) -> None:
        """Drain one tenant's queue, one epoch per loop iteration."""
        session = tenant.session
        while True:
            item = session.pop_next()
            if item is None:
                if self._stopping.is_set():
                    return
                tenant.wakeup.clear()
                await tenant.wakeup.wait()
                continue
            session.process(*item)
            self._maybe_snapshot(session)
            # One epoch per scheduling slot: let ingest interleave.
            await asyncio.sleep(0)

    # -- persistence --------------------------------------------------------

    def _snapshot(self, session: TenantSession) -> Optional[str]:
        directory = self.config.snapshot_dir
        if not directory:
            return None
        path = snapshot_path(directory, session.name)
        write_snapshot(path, session.snapshot_payload())
        session.counters["snapshots"] += 1
        return path

    def _maybe_snapshot(self, session: TenantSession) -> None:
        every = self.config.snapshot_every
        if (
            self.config.snapshot_dir
            and every > 0
            and session.epochs_processed % every == 0
        ):
            self._snapshot(session)

    def snapshot_all(self) -> int:
        """Snapshot every tenant now; returns how many were written."""
        written = 0
        for tenant in self._tenants.values():
            if self._snapshot(tenant.session) is not None:
                written += 1
        return written

    # -- protocol ------------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not self._stopping.is_set():
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    ConnectionResetError,
                ) as exc:
                    response = {"ok": False, "error": f"read error: {exc}"}
                    writer.write(json.dumps(response).encode() + b"\n")
                    await writer.drain()
                    break
                if not line:
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                response = self._dispatch(text)
                writer.write(
                    json.dumps(response, sort_keys=True).encode() + b"\n"
                )
                await writer.drain()
                if response.get("stopping"):
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _dispatch(self, text: str) -> Dict[str, Any]:
        try:
            request = json.loads(text)
        except json.JSONDecodeError as exc:
            return {"ok": False, "error": f"malformed JSON request: {exc}"}
        if not isinstance(request, dict):
            return {"ok": False, "error": "request must be a JSON object"}
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None)
        if op is None or handler is None:
            return {"ok": False, "error": f"unknown op {op!r}"}
        try:
            return handler(request)
        except (KeyError, ValueError, TypeError, RuntimeError) as exc:
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}

    def _session(self, request: Dict[str, Any]) -> _Tenant:
        name = request.get("tenant")
        if not isinstance(name, str):
            raise ValueError("request is missing a 'tenant' string")
        try:
            return self._tenants[name]
        except KeyError:
            raise ValueError(f"unknown tenant {name!r}; open it first") from None

    # -- ops -----------------------------------------------------------------

    def _op_ping(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "ok": True,
            "service": "repro.serve",
            "schema": SERVE_SCHEMA_VERSION,
            "tenants": sorted(self._tenants),
            "config": self.config.to_dict(),
        }

    def _op_open(self, request: Dict[str, Any]) -> Dict[str, Any]:
        name = request.get("tenant")
        if not isinstance(name, str):
            raise ValueError("open requires a 'tenant' string")
        existing = self._tenants.get(name)
        if existing is not None:
            session = existing.session
            task = request.get("task")
            if task is not None and task != session.task:
                raise ValueError(
                    f"tenant {name!r} already serves task "
                    f"{session.task!r}, not {task!r}"
                )
            if existing.worker is None:
                self._start_worker(existing)
            return {"ok": True, "existing": True, "status": session.status()}
        task = request.get("task")
        if not isinstance(task, str):
            raise ValueError("open requires a 'task' string")
        n = int(request.get("n", 0))
        edges = [
            (int(u), int(v)) for u, v in request.get("edges", [])
        ]
        session = TenantSession(
            name,
            task,
            Graph(n, edges),
            backend=request.get("backend", "auto"),
            seed=request.get("seed"),
            resolve_fraction=float(request.get("resolve_fraction", 0.25)),
            budget=request.get("budget"),
            governance=request.get("governance"),
            verify=bool(request.get("verify", False)),
            max_queue=int(request.get("max_queue", self.config.max_queue)),
            max_pending_edits=int(
                request.get(
                    "max_pending_edits", self.config.max_pending_edits
                )
            ),
        )
        initial = session.initialize()
        tenant = _Tenant(session=session)
        self._tenants[name] = tenant
        self._start_worker(tenant)
        self._maybe_snapshot(session)
        return {
            "ok": True,
            "existing": False,
            "initial": initial,
            "status": session.status(),
        }

    def _op_ingest(self, request: Dict[str, Any]) -> Dict[str, Any]:
        tenant = self._session(request)
        session = tenant.session
        batch = EdgeBatch.from_dict(request["batch"])
        seq = request.get("seq")
        if seq is not None:
            seq = int(seq)
        outcome, depth = session.offer(batch, seq)
        response: Dict[str, Any] = {
            "ok": True,
            "outcome": outcome,
            "queue_depth": depth,
        }
        if outcome == SHED:
            response["retry"] = True
            return response
        if request.get("sync"):
            session.drain()
            self._maybe_snapshot(session)
            if session.records:
                response["record"] = session.records[-1].to_dict()
            response["epochs"] = session.epochs_processed
        else:
            tenant.wakeup.set()
        return response

    def _op_query(self, request: Dict[str, Any]) -> Dict[str, Any]:
        session = self._session(request).session
        what = request.get("what", "status")
        if what == "solution":
            return {"ok": True, "solution": session.maintainer.solution()}
        if what == "quality":
            return {"ok": True, "quality": session.quality()}
        if what == "certificate":
            return {"ok": True, "certificate": session.certificate()}
        if what == "epochs":
            records = session.records
            last = request.get("last")
            if last is not None:
                records = records[-int(last):]
            return {
                "ok": True,
                "epochs": [record.to_dict() for record in records],
                "total": session.epochs_processed,
            }
        if what == "status":
            return {"ok": True, "status": session.status()}
        raise ValueError(
            f"unknown query {what!r}; use solution|quality|certificate"
            "|epochs|status"
        )

    def _op_flush(self, request: Dict[str, Any]) -> Dict[str, Any]:
        session = self._session(request).session
        processed = session.drain()
        self._maybe_snapshot(session)
        return {"ok": True, "processed": processed, "status": session.status()}

    def _op_snapshot(self, request: Dict[str, Any]) -> Dict[str, Any]:
        if not self.config.snapshot_dir:
            raise RuntimeError("service has no --snapshot-dir configured")
        if request.get("tenant") is None:
            return {"ok": True, "written": self.snapshot_all()}
        session = self._session(request).session
        session.drain()
        path = self._snapshot(session)
        return {"ok": True, "written": 1, "path": path}

    def _op_report(self, request: Dict[str, Any]) -> Dict[str, Any]:
        report = ServeReport(
            tenants=[
                tenant.session.report()
                for _, tenant in sorted(self._tenants.items())
            ],
            config=self.config.to_dict(),
        )
        return {"ok": True, "report": report.to_dict()}

    def _op_shutdown(self, request: Dict[str, Any]) -> Dict[str, Any]:
        for tenant in self._tenants.values():
            tenant.session.drain()
        written = self.snapshot_all() if self.config.snapshot_dir else 0
        self.request_stop()
        return {"ok": True, "snapshots": written, "stopping": True}


async def serve(config: Optional[ServeConfig] = None) -> None:
    """Run a service until a client sends ``shutdown`` (or cancellation)."""
    await ServeService(config).run()
