"""Command-line entry point for the graph service.

Run a service::

    python -m repro.serve --port 7471 --snapshot-dir state/ --snapshot-every 4

``--port 0`` binds an ephemeral port; ``--port-file`` writes the bound
port to a file once the service is listening (how the conformance check
and the benchmark find their subprocess servers).

Conformance mode (the CI gate)::

    python -m repro.serve --check

``--check`` proves the crash-safety contract end to end, twice over:

1. **Uninterrupted run** — a service subprocess serves two tenants
   (``mis`` and ``matching``) through a verified churn stream; every
   epoch must certify clean.
2. **Crashed run** — a second subprocess serves the *same* stream but is
   ``SIGKILL``-ed mid-stream, restarted on the same snapshot directory,
   and the client replays the whole stream with sequence numbers (the
   already-processed prefix must be acknowledged as duplicates).

Exit status is 0 iff both runs certify clean AND the crashed run's final
solutions, qualities, and per-epoch certificates after the snapshot
cursor are byte-identical to the uninterrupted run's.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.serve.client import ServeClient
from repro.serve.service import ServeConfig, ServeService
from repro.stream.updates import EdgeBatch, make_scenario

CHECK_TASKS = (("alice", "mis"), ("bob", "matching"))
CHECK_N = 64
CHECK_EPOCHS = 8
CHECK_CHURN = 0.05
CHECK_SEED = 20180723
CHECK_KILL_AFTER = 5  # epochs ingested before SIGKILL
CHECK_SNAPSHOT_EVERY = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.serve",
        description="Crash-safe multi-tenant streaming graph service.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="0 binds an ephemeral port"
    )
    parser.add_argument(
        "--port-file",
        default=None,
        help="write the bound port here once listening",
    )
    parser.add_argument(
        "--snapshot-dir",
        default=None,
        help="directory for per-tenant snapshots (enables restore-at-boot)",
    )
    parser.add_argument(
        "--snapshot-every",
        type=int,
        default=0,
        metavar="EPOCHS",
        help="snapshot a tenant every EPOCHS processed epochs (0 = only "
        "on demand and at shutdown)",
    )
    parser.add_argument("--max-queue", type=int, default=64)
    parser.add_argument("--max-pending-edits", type=int, default=100_000)
    parser.add_argument(
        "--check",
        action="store_true",
        help="run the kill -9 crash-safety conformance check and exit",
    )
    return parser


async def _run_service(args: argparse.Namespace) -> None:
    service = ServeService(
        ServeConfig(
            host=args.host,
            port=args.port,
            snapshot_dir=args.snapshot_dir,
            snapshot_every=args.snapshot_every,
            max_queue=args.max_queue,
            max_pending_edits=args.max_pending_edits,
        )
    )
    await service.start()
    print(
        f"repro.serve listening on {args.host}:{service.port} "
        f"({len(service._tenants)} tenant(s) restored)",
        flush=True,
    )
    if args.port_file:
        with open(args.port_file, "w", encoding="utf-8") as stream:
            stream.write(str(service.port))
    await service.serve_until_stopped()


# -- conformance -------------------------------------------------------------


def _spawn_server(snapshot_dir: str, port_file: str) -> subprocess.Popen:
    if os.path.exists(port_file):
        os.unlink(port_file)
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.serve",
            "--port",
            "0",
            "--port-file",
            port_file,
            "--snapshot-dir",
            snapshot_dir,
            "--snapshot-every",
            str(CHECK_SNAPSHOT_EVERY),
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    return process


def _wait_for_port(port_file: str, process: subprocess.Popen, timeout: float = 60.0) -> int:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise RuntimeError(
                f"service subprocess exited early with {process.returncode}"
            )
        try:
            with open(port_file, "r", encoding="utf-8") as stream:
                text = stream.read().strip()
            if text:
                return int(text)
        except OSError:
            pass
        time.sleep(0.05)
    raise RuntimeError("timed out waiting for the service to listen")


def _check_streams() -> Dict[str, Tuple[Any, List[EdgeBatch]]]:
    streams = {}
    for offset, (tenant, task) in enumerate(CHECK_TASKS):
        graph, batches = make_scenario(
            "churn",
            n=CHECK_N,
            epochs=CHECK_EPOCHS,
            churn_fraction=CHECK_CHURN,
            seed=CHECK_SEED + offset,
        )
        streams[tenant] = (task, graph, batches)
    return streams


def _open_all(client: ServeClient, streams: Dict[str, Any]) -> None:
    for tenant, (task, graph, _) in streams.items():
        response = client.open(
            tenant,
            task,
            n=graph.num_vertices,
            edges=graph.edge_list(),
            seed=CHECK_SEED,
            verify=True,
        )
        assert response["ok"]


def _ingest_range(
    client: ServeClient,
    streams: Dict[str, Any],
    start: int,
    stop: int,
) -> int:
    duplicates = 0
    for index in range(start, stop):
        for tenant, (_, _, batches) in streams.items():
            response = client.ingest(
                tenant, batches[index], seq=index + 1, sync=True
            )
            if response["outcome"] == "duplicate":
                duplicates += 1
    return duplicates


def _final_state(client: ServeClient, streams: Dict[str, Any]) -> Dict[str, Any]:
    state = {}
    for tenant in streams:
        client.flush(tenant)
        state[tenant] = {
            "solution": client.solution(tenant),
            "quality": client.quality(tenant),
            "certificate": client.certificate(tenant),
            "verifications": [
                record["verification"] for record in client.epochs(tenant)
            ],
        }
    return state


def run_check() -> int:
    failures: List[str] = []
    streams = _check_streams()

    with tempfile.TemporaryDirectory(prefix="repro-serve-check-") as root:
        # Run 1: uninterrupted.
        port_file = os.path.join(root, "a.port")
        snap_a = os.path.join(root, "snap-a")
        server = _spawn_server(snap_a, port_file)
        try:
            port = _wait_for_port(port_file, server)
            with ServeClient(port=port) as client:
                _open_all(client, streams)
                _ingest_range(client, streams, 0, CHECK_EPOCHS)
                baseline = _final_state(client, streams)
                report = client.report()
                if not report.ok:
                    failures.append("uninterrupted run has failing epochs")
                client.shutdown()
            server.wait(timeout=30)
        finally:
            if server.poll() is None:
                server.kill()
        print(
            f"[serve --check] uninterrupted: {CHECK_EPOCHS} epochs x "
            f"{len(streams)} tenants certified", flush=True,
        )

        # Run 2: SIGKILL mid-stream, restart on the same snapshot dir,
        # replay everything.
        port_file = os.path.join(root, "b.port")
        snap_b = os.path.join(root, "snap-b")
        server = _spawn_server(snap_b, port_file)
        try:
            port = _wait_for_port(port_file, server)
            with ServeClient(port=port) as client:
                _open_all(client, streams)
                _ingest_range(client, streams, 0, CHECK_KILL_AFTER)
            server.send_signal(signal.SIGKILL)
            server.wait(timeout=30)
        finally:
            if server.poll() is None:
                server.kill()
        print(
            f"[serve --check] killed -9 after {CHECK_KILL_AFTER} epochs; "
            "restarting on the snapshot directory", flush=True,
        )

        server = _spawn_server(snap_b, port_file)
        try:
            port = _wait_for_port(port_file, server)
            with ServeClient(port=port) as client:
                restored = client.ping()["tenants"]
                if sorted(restored) != sorted(streams):
                    failures.append(
                        f"restored tenants {restored} != {sorted(streams)}"
                    )
                # Idempotent re-open must report the restored sessions.
                for tenant, (task, graph, _) in streams.items():
                    response = client.open(tenant, task)
                    if not response.get("existing"):
                        failures.append(f"re-open of {tenant!r} not existing")
                duplicates = _ingest_range(client, streams, 0, CHECK_EPOCHS)
                if duplicates == 0:
                    failures.append(
                        "replay after restore acknowledged no duplicates"
                    )
                recovered = _final_state(client, streams)
                report = client.report()
                if not report.ok:
                    failures.append("recovered run has failing epochs")
                for tenant in streams:
                    restores = report.tenant(tenant).counters.get("restores", 0)
                    if restores < 1:
                        failures.append(f"{tenant!r} did not count a restore")
                client.shutdown()
            server.wait(timeout=30)
        finally:
            if server.poll() is None:
                server.kill()

    # The crash must be invisible in the final state: same solution, same
    # quality, and byte-identical certificates for every epoch both runs
    # actually certified (the recovered run re-certifies everything after
    # the snapshot cursor; the prefix rides along in the snapshot).
    for tenant, base in baseline.items():
        got = recovered[tenant]
        if got["solution"] != base["solution"]:
            failures.append(f"{tenant!r}: final solution diverged")
        if got["quality"] != base["quality"]:
            failures.append(f"{tenant!r}: final quality diverged")
        if got["certificate"] != base["certificate"]:
            failures.append(f"{tenant!r}: final certificate diverged")
        if got["verifications"] != base["verifications"]:
            failures.append(f"{tenant!r}: per-epoch certificates diverged")

    if failures:
        for failure in failures:
            print(f"[serve --check] FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        "[serve --check] OK: kill -9 + restore converged byte-identically "
        f"({len(streams)} tenants, {CHECK_EPOCHS} epochs, "
        f"snapshot every {CHECK_SNAPSHOT_EVERY})", flush=True,
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.check:
        return run_check()
    try:
        asyncio.run(_run_service(args))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
