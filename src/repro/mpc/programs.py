"""Classic distributed algorithms as vertex programs.

Message-passing realizations of Luby's MIS and a maximal matching process,
expressed over :class:`~repro.mpc.engine.PregelEngine`.  They compute the
same objects as the direct implementations in :mod:`repro.baselines` —
the test suite cross-checks invariants and round shapes — while exercising
the engine's message accounting on real workloads.

Luby's algorithm as a vertex program uses a 2-supersteps-per-round
protocol:

* **propose** — every live vertex draws its round value and sends it to
  its neighbors;
* **resolve** — a vertex beaten by no live neighbor joins the MIS and
  notifies its neighbors, which die; survivors repeat.

(The algorithmic rounds therefore cost exactly 2 engine supersteps, i.e.
2 measured MPC rounds — the constant the direct implementation charges.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.graph.csr import CSRGraph, gather_rows
from repro.graph.graph import Edge, Graph, canonical_edge
from repro.mpc.engine import (
    BatchSuperstep,
    EngineResult,
    PregelEngine,
    VertexContext,
)
from repro.utils.rng import SeedLike

# Vertex lifecycle states shared by the programs below.
_LIVE = "live"
_IN_SET = "in_set"
_DEAD = "dead"

_PHASE_PROPOSE = 0
_PHASE_RESOLVE = 1

# Integer statuses of the batched kernels (same lifecycle, array-encoded).
_S_LIVE = 0
_S_IN_SET = 1
_S_DEAD = 2

# Message kinds (the engine only accounts volume; kinds are program-level).
_MSG_DRAW = 0
_MSG_JOINED = 1
_MSG_PROPOSE = 2
_MSG_ACCEPT = 3
_MSG_DEAD = 4


def _segment_min_draws(
    csr: CSRGraph, sender_mask: np.ndarray, draw: np.ndarray
) -> np.ndarray:
    """Per-vertex minimum of ``draw`` over neighbors inside ``sender_mask``.

    One ``minimum.reduceat`` pass over the CSR slots; rows with no
    in-mask neighbor read ``+inf``.
    """
    n = csr.num_vertices
    indptr = csr.indptr
    slots = csr.indices
    result = np.full(n, np.inf)
    if not len(slots):
        return result
    values = np.where(sender_mask[slots], draw[slots], np.inf)
    starts = indptr[:-1]
    # reduceat cannot express empty segments; reduce over the non-empty
    # rows only (consecutive non-empty starts bound exactly one row's
    # slots, because empty rows contribute no slots in between).
    nonempty = starts < indptr[1:]
    result[nonempty] = np.minimum.reduceat(values, starts[nonempty])
    return result


@dataclass
class DistributedMISResult:
    """Outcome of the Luby vertex program."""

    mis: Set[int]
    supersteps: int
    rounds: int
    max_machine_message_words: int
    total_message_words: int = 0


class LubyBatchProgram:
    """Luby's MIS as a *batched* vertex program (see module docstring).

    Implements the same 2-superstep propose/resolve protocol as the
    per-vertex closure below, one whole superstep at a time: the propose
    kernel draws for every live vertex in one batched hashing pass and
    queues one draw message per incident edge; the resolve kernel decides
    every vertex with one segment-min over the CSR slots.  Messages,
    halts, and draws replicate the per-vertex program exactly, so the
    engine's superstep/round/word accounting — and the MIS itself — are
    byte-identical (pinned by ``tests/test_backend_parity.py`` and the
    batch-vs-per-vertex parity tests).
    """

    def initialize(self, graph: CSRGraph) -> None:
        n = graph.num_vertices
        self.csr = graph
        self.status = np.zeros(n, dtype=np.int8)
        self.draw = np.zeros(n, dtype=np.float64)
        self.proposers = np.empty(0, dtype=np.int64)
        self.last_winners = np.empty(0, dtype=np.int64)

    def compute_batch(self, step: BatchSuperstep) -> None:
        csr = self.csr
        active = step.active
        statuses = self.status[active]
        if step.superstep % 2 == _PHASE_PROPOSE:
            # Mail-woken in-set/dead vertices halt again immediately.
            step.halt(active[statuses != _S_LIVE])
            live = active[statuses == _S_LIVE]
            if self.last_winners.size:
                # A neighbor joined the set last resolve step: die.
                joined = np.zeros(csr.num_vertices, dtype=bool)
                joined[csr.neighbors_bulk(self.last_winners)] = True
                hit = joined[live]
                dying = live[hit]
                self.status[dying] = _S_DEAD
                step.halt(dying)
                live = live[~hit]
                self.last_winners = np.empty(0, dtype=np.int64)
            self.draw[live] = step.random(live)
            self.proposers = live
            step.send(csr.neighbors_bulk(live), kind=_MSG_DRAW)
        else:
            step.halt(active[statuses != _S_LIVE])
            live = active[statuses == _S_LIVE]
            winners = self._winners(live)
            self.status[winners] = _S_IN_SET
            step.halt(winners)
            self.last_winners = winners
            if winners.size:
                step.send(csr.neighbors_bulk(winners), kind=_MSG_JOINED)

    def _winners(self, live: np.ndarray) -> np.ndarray:
        """Vertices whose ``(draw, id)`` beats every proposing neighbor's."""
        csr = self.csr
        sender = np.zeros(csr.num_vertices, dtype=bool)
        sender[self.proposers] = True
        best = _segment_min_draws(csr, sender, self.draw)
        mine = self.draw[live]
        neighborhood_best = best[live]
        wins = mine < neighborhood_best
        # Exact (draw, id) lexicographic ties — measure-zero, but the
        # per-vertex program resolves them by id, so replicate.
        for where in np.flatnonzero(mine == neighborhood_best).tolist():
            v = int(live[where])
            row = csr.neighbors(v)
            tied = row[sender[row] & (self.draw[row] == mine[where])]
            wins[where] = v < int(tied.min())
        return live[wins]


def luby_vertex_program(
    graph: Graph,
    seed: SeedLike = None,
    words_per_machine: Optional[int] = None,
    batched: bool = True,
) -> DistributedMISResult:
    """Luby's MIS as a message-passing vertex program.

    ``batched=True`` (the default) runs the vectorized superstep kernel;
    ``batched=False`` runs the original per-vertex closures.  Both produce
    identical results under the same seed.
    """
    if batched:
        engine = PregelEngine(
            graph, words_per_machine=words_per_machine, seed=seed
        )
        program = LubyBatchProgram()
        outcome = engine.run_program(program)
        degrees = program.csr.degrees()
        mis = set(
            np.flatnonzero((program.status == _S_IN_SET) | (degrees == 0)).tolist()
        )
        return DistributedMISResult(
            mis=mis,
            supersteps=outcome.supersteps,
            rounds=outcome.rounds,
            max_machine_message_words=outcome.max_machine_message_words,
            total_message_words=outcome.total_message_words,
        )

    def initial_state(vertex: int) -> Dict[str, Any]:
        return {"status": _LIVE}

    def compute(ctx: VertexContext, messages: List[Any]) -> None:
        state = ctx.state
        if state["status"] == _DEAD:
            ctx.vote_to_halt()
            return
        phase = ctx.superstep % 2
        if phase == _PHASE_PROPOSE:
            if state["status"] == _IN_SET:
                ctx.vote_to_halt()
                return
            # A neighbor joined the set last resolve step: die.
            if any(kind == "joined" for kind, _ in messages):
                state["status"] = _DEAD
                ctx.vote_to_halt()
                return
            value = (ctx.random(), ctx.vertex)
            state["draw"] = value
            ctx.send_to_neighbors(("draw", value))
        else:
            if state["status"] != _LIVE:
                ctx.vote_to_halt()
                return
            draws = [payload for kind, payload in messages if kind == "draw"]
            my_draw = state["draw"]
            if all(my_draw < other for other in draws):
                state["status"] = _IN_SET
                ctx.send_to_neighbors(("joined", ctx.vertex))
                ctx.vote_to_halt()
            # Losers stay live and propose again next superstep.

    engine = PregelEngine(
        graph, words_per_machine=words_per_machine, seed=seed
    )
    outcome = engine.run(compute, initial_state=initial_state)
    mis = {
        v
        for v, state in outcome.states.items()
        if state["status"] == _IN_SET or graph.degree(v) == 0
    }
    return DistributedMISResult(
        mis=mis,
        supersteps=outcome.supersteps,
        rounds=outcome.rounds,
        max_machine_message_words=outcome.max_machine_message_words,
        total_message_words=outcome.total_message_words,
    )


@dataclass
class DistributedMatchingResult:
    """Outcome of the proposal-matching vertex program."""

    matching: Set[Edge]
    supersteps: int
    rounds: int
    max_machine_message_words: int = 0
    total_message_words: int = 0


class MatchingBatchProgram:
    """The [II86]-flavor propose/accept handshake as a batched program.

    Three kernels per algorithmic round, mirroring the per-vertex
    protocol's supersteps exactly:

    * **propose** — apply last round's death notices to the shared
      live-view (a vertex only ever leaves its neighbors' views by
      announcing, so one global mask is exact), rebuild the filtered
      live-view adjacency in one pass, silently retire vertices with no
      live neighbor, and draw once per live vertex — the per-vertex
      program's role *and* target derive from the same ``(v, superstep)``
      draw, so one batched hashing pass covers both.
    * **accept** — group proposals by target with one ``minimum.at``; each
      accepting acceptor records its mate and queues one acceptance.  (All
      proposals come from live, never-announced neighbors, so the
      per-vertex liveness filter is vacuous here.)
    * **finalize** — matched proposers record their mates; every newly
      matched vertex notifies its live-view except the mate and halts.

    Message multisets, halts, and draws replicate the per-vertex program,
    so supersteps/rounds/words and the matching are byte-identical.
    """

    def initialize(self, graph: CSRGraph) -> None:
        n = graph.num_vertices
        self.csr = graph
        self.status = np.zeros(n, dtype=np.int8)
        self.mate = np.full(n, -1, dtype=np.int64)
        self.announced = np.zeros(n, dtype=bool)
        self.pending_announced = np.empty(0, dtype=np.int64)
        self.proposers = np.empty(0, dtype=np.int64)
        self.targets = np.empty(0, dtype=np.int64)
        self.round_live = np.empty(0, dtype=np.int64)
        self.chosen = np.full(n, -1, dtype=np.int64)
        self.fdst = np.empty(0, dtype=np.int64)
        self.findptr = np.zeros(n + 1, dtype=np.int64)

    # -- per-phase kernels ---------------------------------------------------

    def _propose(self, step: BatchSuperstep) -> None:
        csr = self.csr
        n = csr.num_vertices
        if self.pending_announced.size:
            self.announced[self.pending_announced] = True
            self.pending_announced = np.empty(0, dtype=np.int64)
        active = step.active
        statuses = self.status[active]
        step.halt(active[statuses == _S_DEAD])
        live = active[statuses == _S_LIVE]
        # Filtered live-view adjacency: every live vertex's view is its
        # neighbors minus the announced dead (one pass over the slots).
        in_view = ~self.announced[csr.indices]
        self.fdst = csr.indices[in_view]
        counts = np.bincount(csr.src[in_view], minlength=n)
        np.cumsum(counts, out=self.findptr[1:])
        live_counts = counts[live]
        retiring = (self.mate[live] >= 0) | (live_counts == 0)
        dying = live[retiring]
        self.status[dying] = _S_DEAD
        step.halt(dying)
        live = live[~retiring]
        live_counts = live_counts[~retiring]
        self.round_live = live
        draws = step.random(live)
        is_proposer = draws < 0.5
        proposers = live[is_proposer]
        # The same draw picks the target: live[int(r * 7919) % deg], and
        # the filtered rows are ascending, matching sorted(live_neighbors).
        pick = (draws[is_proposer] * 7919).astype(np.int64) % live_counts[
            is_proposer
        ]
        self.proposers = proposers
        self.targets = self.fdst[self.findptr[proposers] + pick]
        self.chosen.fill(-1)
        step.send(self.targets, kind=_MSG_PROPOSE, ival=proposers)

    def _accept(self, step: BatchSuperstep) -> None:
        active = step.active
        step.halt(active[self.status[active] == _S_DEAD])
        if not self.proposers.size:
            return
        n = self.csr.num_vertices
        smallest = np.full(n, n, dtype=np.int64)
        np.minimum.at(smallest, self.targets, self.proposers)
        acceptors = np.unique(self.targets)
        # Only acceptors act on proposals; proposers ignore incoming ones.
        proposer_mask = np.zeros(n, dtype=bool)
        proposer_mask[self.proposers] = True
        acceptors = acceptors[~proposer_mask[acceptors]]
        chosen = smallest[acceptors]
        self.chosen[acceptors] = chosen
        self.mate[acceptors] = chosen
        step.send(chosen, kind=_MSG_ACCEPT, ival=acceptors)

    def _finalize(self, step: BatchSuperstep) -> None:
        active = step.active
        step.halt(active[self.status[active] == _S_DEAD])
        proposers = self.proposers
        if proposers.size:
            accepted = self.chosen[self.targets] == proposers
            matched = proposers[accepted]
            self.mate[matched] = self.targets[accepted]
        live = self.round_live
        dying = live[self.mate[live] >= 0]
        if dying.size:
            # Death notices go to the whole live-view except the mate.
            counts = self.findptr[dying + 1] - self.findptr[dying]
            senders = np.repeat(dying, counts)
            slots = gather_rows(self.fdst, self.findptr, dying)
            step.send(slots[slots != self.mate[senders]], kind=_MSG_DEAD)
        self.status[dying] = _S_DEAD
        step.halt(dying)
        self.pending_announced = dying

    def compute_batch(self, step: BatchSuperstep) -> None:
        phase = step.superstep % 3
        if phase == 0:
            self._propose(step)
        elif phase == 1:
            self._accept(step)
        else:
            self._finalize(step)


def matching_vertex_program(
    graph: Graph,
    seed: SeedLike = None,
    words_per_machine: Optional[int] = None,
    batched: bool = True,
) -> DistributedMatchingResult:
    """Maximal matching by a randomized propose/accept handshake ([II86]
    flavor).

    ``batched=True`` (the default) runs the vectorized superstep kernels of
    :class:`MatchingBatchProgram`; ``batched=False`` runs the original
    per-vertex closures.  Both produce identical results under the same
    seed.

    Per algorithmic round (3 supersteps):

    * **propose** — every live vertex flips a coin: *proposers* send a
      proposal to one random live neighbor; *acceptors* wait.  (The random
      role split prevents a vertex from matching twice in one round.)
    * **accept** — an acceptor receiving proposals picks the smallest
      proposer, records it as its mate, and sends an acceptance.
    * **finalize** — a proposer receiving an acceptance records the mate;
      both endpoints notify their neighborhoods that they left the graph.

    Every acceptor with at least one proposing neighbor matches, which is
    the constant-progress engine behind the O(log n)-round bound.
    """
    if batched:
        engine = PregelEngine(
            graph, words_per_machine=words_per_machine, seed=seed
        )
        program = MatchingBatchProgram()
        outcome = engine.run_program(program)
        mate = program.mate
        matched = np.flatnonzero(mate >= 0)
        matching: Set[Edge] = {
            canonical_edge(int(v), int(mate[v]))
            for v in matched.tolist()
            if mate[mate[v]] == v
        }
        return DistributedMatchingResult(
            matching=matching,
            supersteps=outcome.supersteps,
            rounds=outcome.rounds,
            max_machine_message_words=outcome.max_machine_message_words,
            total_message_words=outcome.total_message_words,
        )

    def initial_state(vertex: int) -> Dict[str, Any]:
        return {"status": _LIVE, "mate": None, "live_neighbors": None}

    def compute(ctx: VertexContext, messages: List[Any]) -> None:
        state = ctx.state
        if state["live_neighbors"] is None:
            state["live_neighbors"] = set(ctx.neighbors)
        if state["status"] == _DEAD:
            ctx.vote_to_halt()
            return
        phase = ctx.superstep % 3
        if phase == 0:  # propose
            for kind, payload in messages:
                if kind == "dead":
                    state["live_neighbors"].discard(payload)
            if state["mate"] is not None or not state["live_neighbors"]:
                state["status"] = _DEAD
                ctx.vote_to_halt()
                return
            is_proposer = ctx.random() < 0.5
            state["role"] = "proposer" if is_proposer else "acceptor"
            state["proposed_to"] = None
            if is_proposer:
                live = sorted(state["live_neighbors"])
                target = live[int(ctx.random() * 7919) % len(live)]
                state["proposed_to"] = target
                ctx.send_to(target, ("propose", ctx.vertex))
        elif phase == 1:  # accept
            if state["role"] == "acceptor":
                proposers = sorted(
                    payload for kind, payload in messages if kind == "propose"
                )
                live_proposers = [
                    u for u in proposers if u in state["live_neighbors"]
                ]
                if live_proposers:
                    chosen = live_proposers[0]
                    state["mate"] = chosen
                    ctx.send_to(chosen, ("accept", ctx.vertex))
        else:  # finalize
            if state["role"] == "proposer":
                accepts = [
                    payload for kind, payload in messages if kind == "accept"
                ]
                if accepts:
                    # An acceptor accepts at most one proposer and we
                    # proposed to exactly one vertex, so this is unique.
                    state["mate"] = accepts[0]
            if state["mate"] is not None:
                state["status"] = _DEAD
                for u in state["live_neighbors"]:
                    if u != state["mate"]:
                        ctx.send_to(u, ("dead", ctx.vertex))
                ctx.vote_to_halt()

    engine = PregelEngine(
        graph, words_per_machine=words_per_machine, seed=seed
    )
    outcome = engine.run(compute, initial_state=initial_state)
    matching: Set[Edge] = set()
    for v, state in outcome.states.items():
        mate = state.get("mate")
        if mate is not None and outcome.states[mate].get("mate") == v:
            matching.add(canonical_edge(v, mate))
    return DistributedMatchingResult(
        matching=matching,
        supersteps=outcome.supersteps,
        rounds=outcome.rounds,
        max_machine_message_words=outcome.max_machine_message_words,
        total_message_words=outcome.total_message_words,
    )
