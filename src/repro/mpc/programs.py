"""Classic distributed algorithms as vertex programs.

Message-passing realizations of Luby's MIS and a maximal matching process,
expressed over :class:`~repro.mpc.engine.PregelEngine`.  They compute the
same objects as the direct implementations in :mod:`repro.baselines` —
the test suite cross-checks invariants and round shapes — while exercising
the engine's message accounting on real workloads.

Luby's algorithm as a vertex program uses a 2-supersteps-per-round
protocol:

* **propose** — every live vertex draws its round value and sends it to
  its neighbors;
* **resolve** — a vertex beaten by no live neighbor joins the MIS and
  notifies its neighbors, which die; survivors repeat.

(The algorithmic rounds therefore cost exactly 2 engine supersteps, i.e.
2 measured MPC rounds — the constant the direct implementation charges.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.graph.graph import Edge, Graph, canonical_edge
from repro.mpc.engine import EngineResult, PregelEngine, VertexContext
from repro.utils.rng import SeedLike

# Vertex lifecycle states shared by the programs below.
_LIVE = "live"
_IN_SET = "in_set"
_DEAD = "dead"

_PHASE_PROPOSE = 0
_PHASE_RESOLVE = 1


@dataclass
class DistributedMISResult:
    """Outcome of the Luby vertex program."""

    mis: Set[int]
    supersteps: int
    rounds: int
    max_machine_message_words: int
    total_message_words: int = 0


def luby_vertex_program(
    graph: Graph,
    seed: SeedLike = None,
    words_per_machine: Optional[int] = None,
) -> DistributedMISResult:
    """Luby's MIS as a message-passing vertex program."""

    def initial_state(vertex: int) -> Dict[str, Any]:
        return {"status": _LIVE}

    def compute(ctx: VertexContext, messages: List[Any]) -> None:
        state = ctx.state
        if state["status"] == _DEAD:
            ctx.vote_to_halt()
            return
        phase = ctx.superstep % 2
        if phase == _PHASE_PROPOSE:
            if state["status"] == _IN_SET:
                ctx.vote_to_halt()
                return
            # A neighbor joined the set last resolve step: die.
            if any(kind == "joined" for kind, _ in messages):
                state["status"] = _DEAD
                ctx.vote_to_halt()
                return
            value = (ctx.random(), ctx.vertex)
            state["draw"] = value
            ctx.send_to_neighbors(("draw", value))
        else:
            if state["status"] != _LIVE:
                ctx.vote_to_halt()
                return
            draws = [payload for kind, payload in messages if kind == "draw"]
            my_draw = state["draw"]
            if all(my_draw < other for other in draws):
                state["status"] = _IN_SET
                ctx.send_to_neighbors(("joined", ctx.vertex))
                ctx.vote_to_halt()
            # Losers stay live and propose again next superstep.

    engine = PregelEngine(
        graph, words_per_machine=words_per_machine, seed=seed
    )
    outcome = engine.run(compute, initial_state=initial_state)
    mis = {
        v
        for v, state in outcome.states.items()
        if state["status"] == _IN_SET or graph.degree(v) == 0
    }
    return DistributedMISResult(
        mis=mis,
        supersteps=outcome.supersteps,
        rounds=outcome.rounds,
        max_machine_message_words=outcome.max_machine_message_words,
        total_message_words=outcome.total_message_words,
    )


@dataclass
class DistributedMatchingResult:
    """Outcome of the proposal-matching vertex program."""

    matching: Set[Edge]
    supersteps: int
    rounds: int
    max_machine_message_words: int = 0
    total_message_words: int = 0


def matching_vertex_program(
    graph: Graph,
    seed: SeedLike = None,
    words_per_machine: Optional[int] = None,
) -> DistributedMatchingResult:
    """Maximal matching by a randomized propose/accept handshake ([II86]
    flavor).

    Per algorithmic round (3 supersteps):

    * **propose** — every live vertex flips a coin: *proposers* send a
      proposal to one random live neighbor; *acceptors* wait.  (The random
      role split prevents a vertex from matching twice in one round.)
    * **accept** — an acceptor receiving proposals picks the smallest
      proposer, records it as its mate, and sends an acceptance.
    * **finalize** — a proposer receiving an acceptance records the mate;
      both endpoints notify their neighborhoods that they left the graph.

    Every acceptor with at least one proposing neighbor matches, which is
    the constant-progress engine behind the O(log n)-round bound.
    """

    def initial_state(vertex: int) -> Dict[str, Any]:
        return {"status": _LIVE, "mate": None, "live_neighbors": None}

    def compute(ctx: VertexContext, messages: List[Any]) -> None:
        state = ctx.state
        if state["live_neighbors"] is None:
            state["live_neighbors"] = set(ctx.neighbors)
        if state["status"] == _DEAD:
            ctx.vote_to_halt()
            return
        phase = ctx.superstep % 3
        if phase == 0:  # propose
            for kind, payload in messages:
                if kind == "dead":
                    state["live_neighbors"].discard(payload)
            if state["mate"] is not None or not state["live_neighbors"]:
                state["status"] = _DEAD
                ctx.vote_to_halt()
                return
            is_proposer = ctx.random() < 0.5
            state["role"] = "proposer" if is_proposer else "acceptor"
            state["proposed_to"] = None
            if is_proposer:
                live = sorted(state["live_neighbors"])
                target = live[int(ctx.random() * 7919) % len(live)]
                state["proposed_to"] = target
                ctx.send_to(target, ("propose", ctx.vertex))
        elif phase == 1:  # accept
            if state["role"] == "acceptor":
                proposers = sorted(
                    payload for kind, payload in messages if kind == "propose"
                )
                live_proposers = [
                    u for u in proposers if u in state["live_neighbors"]
                ]
                if live_proposers:
                    chosen = live_proposers[0]
                    state["mate"] = chosen
                    ctx.send_to(chosen, ("accept", ctx.vertex))
        else:  # finalize
            if state["role"] == "proposer":
                accepts = [
                    payload for kind, payload in messages if kind == "accept"
                ]
                if accepts:
                    # An acceptor accepts at most one proposer and we
                    # proposed to exactly one vertex, so this is unique.
                    state["mate"] = accepts[0]
            if state["mate"] is not None:
                state["status"] = _DEAD
                for u in state["live_neighbors"]:
                    if u != state["mate"]:
                        ctx.send_to(u, ("dead", ctx.vertex))
                ctx.vote_to_halt()

    engine = PregelEngine(
        graph, words_per_machine=words_per_machine, seed=seed
    )
    outcome = engine.run(compute, initial_state=initial_state)
    matching: Set[Edge] = set()
    for v, state in outcome.states.items():
        mate = state.get("mate")
        if mate is not None and outcome.states[mate].get("mate") == v:
            matching.add(canonical_edge(v, mate))
    return DistributedMatchingResult(
        matching=matching,
        supersteps=outcome.supersteps,
        rounds=outcome.rounds,
        max_machine_message_words=outcome.max_machine_message_words,
        total_message_words=outcome.total_message_words,
    )
