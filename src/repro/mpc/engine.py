"""A vertex-centric (Pregel-style) execution engine on the MPC substrate.

The frameworks the paper abstracts (Section 1, MapReduce/Hadoop/Spark/
Dryad) are programmed through bulk-synchronous vertex programs: per
superstep, every active vertex processes its inbox, updates local state,
and sends messages along edges.  This engine runs such programs on an
:class:`~repro.mpc.cluster.MPCCluster`, so that

* one superstep costs exactly one MPC round (charged via the cluster);
* per-machine message volume is validated against the word budget —
  a program whose communication exceeds ``O(S)`` per machine fails loudly;
* vertex placement follows the same i.i.d. partitioning the paper's
  algorithms use.

:mod:`repro.baselines.luby` and friends implement the classic per-round
algorithms directly; :mod:`repro.mpc.programs` re-implements them as
vertex programs over this engine, giving an independent, genuinely
message-passing realization that the test suite cross-checks against the
direct versions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Protocol, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph
from repro.mpc.cluster import Message, MPCCluster
from repro.mpc.spec import ClusterSpec
from repro.utils.rng import RngStream, SeedLike, make_rng

# Word cost of one vertex-to-vertex payload (destination id + one value).
WORDS_PER_VERTEX_MESSAGE = 2


@dataclass
class VertexContext:
    """Per-vertex view handed to a vertex program at every superstep.

    Programs mutate :attr:`state`, call :meth:`send_to` /
    :meth:`send_to_neighbors`, and :meth:`vote_to_halt` when done.  A
    halted vertex is reactivated automatically by an incoming message.
    """

    vertex: int
    superstep: int
    neighbors: Tuple[int, ...]
    state: Dict[str, Any]
    rng_stream: RngStream
    _outbox: List[Tuple[int, Any]] = field(default_factory=list)
    _halted: bool = False

    def send_to(self, destination: int, payload: Any) -> None:
        """Queue one message for ``destination`` (delivered next superstep)."""
        self._outbox.append((destination, payload))

    def send_to_neighbors(self, payload: Any) -> None:
        """Queue the same message to every neighbor."""
        for u in self.neighbors:
            self._outbox.append((u, payload))

    def vote_to_halt(self) -> None:
        """Mark this vertex inactive until a message arrives."""
        self._halted = True

    def random(self) -> float:
        """A uniform draw that is a pure function of (seed, vertex, step)."""
        return self.rng_stream.random(self.vertex, self.superstep)


ComputeFn = Callable[[VertexContext, List[Any]], None]


@dataclass
class EngineResult:
    """Outcome of a vertex-program run."""

    states: Dict[int, Dict[str, Any]]
    supersteps: int
    rounds: int
    max_machine_message_words: int
    total_message_words: int = 0


class BatchSuperstep:
    """One superstep's batched view, handed to ``compute_batch``.

    The per-vertex API processes one :class:`VertexContext` at a time; the
    batched API hands the whole superstep over at once: ``active`` is the
    array of vertex ids being computed (live vertices plus mail-woken
    ones), ``graph`` is the topology as an immutable CSR, and the
    program's state lives in whatever arrays the program object owns.
    Incoming messages are the previous superstep's send buffers,
    concatenated (``inbox_dst``/``inbox_kind``/``inbox_ival``); programs
    that derive inboxes from their own state (the usual case — the sender
    set is program state) can ignore them.

    ``send`` queues messages by destination array only: the engine charges
    per-machine volume exactly as the per-vertex path does (one bincount
    over the placement array), so a batched program that emits the same
    message multiset has byte-identical round/word accounting.  ``halt``
    marks vertices that vote to halt this superstep; everything else in
    ``active`` stays (or becomes) live, mirroring ``VertexContext``.
    """

    __slots__ = (
        "superstep",
        "active",
        "graph",
        "inbox_dst",
        "_inbox_kind_parts",
        "_inbox_ival_parts",
        "_inbox_kind",
        "_inbox_ival",
        "_stream",
        "_send_dst",
        "_send_kind",
        "_send_ival",
        "_halted",
    )

    def __init__(
        self,
        superstep: int,
        active: np.ndarray,
        graph: CSRGraph,
        inbox_dst: np.ndarray,
        inbox_kind_parts: List[np.ndarray],
        inbox_ival_parts: List[np.ndarray],
        stream: RngStream,
    ) -> None:
        self.superstep = superstep
        self.active = active
        self.graph = graph
        self.inbox_dst = inbox_dst
        self._inbox_kind_parts = inbox_kind_parts
        self._inbox_ival_parts = inbox_ival_parts
        self._inbox_kind: Optional[np.ndarray] = None
        self._inbox_ival: Optional[np.ndarray] = None
        self._stream = stream
        self._send_dst: List[np.ndarray] = []
        self._send_kind: List[np.ndarray] = []
        self._send_ival: List[np.ndarray] = []
        self._halted: List[np.ndarray] = []

    @property
    def inbox_kind(self) -> np.ndarray:
        """Kinds of the incoming messages, aligned with ``inbox_dst``.

        Concatenated lazily: programs that derive inboxes from their own
        state (the usual case) never pay for the full-message-volume pass.
        """
        if self._inbox_kind is None:
            self._inbox_kind = (
                np.concatenate(self._inbox_kind_parts)
                if self._inbox_kind_parts
                else np.empty(0, dtype=np.int64)
            )
        return self._inbox_kind

    @property
    def inbox_ival(self) -> np.ndarray:
        """Integer payloads of the incoming messages, aligned with
        ``inbox_dst`` (lazily concatenated, see :attr:`inbox_kind`)."""
        if self._inbox_ival is None:
            self._inbox_ival = (
                np.concatenate(self._inbox_ival_parts)
                if self._inbox_ival_parts
                else np.empty(0, dtype=np.int64)
            )
        return self._inbox_ival

    def random(self, vertices: np.ndarray) -> np.ndarray:
        """Per-``(vertex, superstep)`` uniform draws, batched.

        Bit-for-bit identical to :meth:`VertexContext.random` for the same
        vertices — the draw is the same pure function of
        ``(seed, vertex, superstep)``, materialized through one batched
        hashing pass.
        """
        return self._stream.random_batch(vertices, self.superstep)

    def send(self, destinations: np.ndarray, kind: int = 0, ival=None) -> None:
        """Queue one message per entry of ``destinations``."""
        dst = np.asarray(destinations, dtype=np.int64)
        payload = (
            np.zeros(len(dst), dtype=np.int64)
            if ival is None
            else np.asarray(ival, dtype=np.int64)
        )
        if len(payload) != len(dst):
            raise ValueError(
                f"ival length {len(payload)} != destinations length {len(dst)}"
            )
        self._send_dst.append(dst)
        self._send_kind.append(np.full(len(dst), kind, dtype=np.int64))
        self._send_ival.append(payload)

    def halt(self, vertices: np.ndarray) -> None:
        """Mark ``vertices`` as voting to halt this superstep."""
        self._halted.append(np.asarray(vertices, dtype=np.int64))


class BatchVertexProgram(Protocol):
    """What :meth:`PregelEngine.run_batch` drives.

    ``initialize`` receives the CSR topology and allocates whatever state
    arrays the program needs; ``compute_batch`` is called once per
    superstep with a :class:`BatchSuperstep`.
    """

    def initialize(self, graph: CSRGraph) -> None: ...

    def compute_batch(self, step: BatchSuperstep) -> None: ...


@dataclass
class BatchEngineResult:
    """Outcome of a batched vertex-program run (state stays on the program)."""

    supersteps: int
    rounds: int
    max_machine_message_words: int
    total_message_words: int = 0


class PregelEngine:
    """Bulk-synchronous vertex-program executor with MPC accounting."""

    def __init__(
        self,
        graph: Graph,
        words_per_machine: Optional[int] = None,
        num_machines: Optional[int] = None,
        seed: SeedLike = None,
    ) -> None:
        self._graph = graph
        spec = ClusterSpec.from_graph(graph, machines="sqrt")
        self._words = words_per_machine if words_per_machine else spec.words_per_machine
        machines = num_machines if num_machines else spec.num_machines
        self._cluster = MPCCluster(machines, self._words)
        rng = make_rng(seed)
        self._owner = {
            v: rng.randrange(machines) for v in graph.vertices()
        }
        # Flat-array copy of the placement map for the batched outbox
        # accounting in :meth:`run` (one bincount instead of a dict lookup
        # per message).
        self._owner_array = np.fromiter(
            (self._owner[v] for v in graph.vertices()),
            dtype=np.int64,
            count=graph.num_vertices,
        )
        self._num_machines = machines
        self._stream = RngStream(rng.getrandbits(64), namespace="pregel")
        self._csr: Optional[CSRGraph] = None  # built lazily by run_batch

    @property
    def cluster(self) -> MPCCluster:
        """The underlying cluster (round counter, memory stats)."""
        return self._cluster

    def _charge_superstep_volume(
        self, destinations: np.ndarray, superstep: int
    ) -> int:
        """Charge one communication superstep for messages to ``destinations``.

        The single accounting path shared by :meth:`run` and
        :meth:`run_batch`: per-machine volume is one bincount over the
        placement array, validated by the cluster exchange.  Returns the
        largest per-machine word volume of this superstep.
        """
        machine_words: Dict[int, int] = {}
        if destinations.size:
            volume = np.bincount(
                self._owner_array[destinations], minlength=self._num_machines
            ) * WORDS_PER_VERTEX_MESSAGE
            machine_words = {
                machine: int(words)
                for machine, words in enumerate(volume.tolist())
                if words
            }
        outboxes = {
            machine: [Message(destination=machine, words=words, payload=None)]
            for machine, words in machine_words.items()
        }
        self._cluster.exchange(outboxes, context=f"pregel superstep {superstep}")
        return max(machine_words.values(), default=0)

    def run_program(
        self, program: Any, max_supersteps: int = 10_000
    ) -> "BatchEngineResult | EngineResult":
        """Run ``program`` on its best available representation.

        A program that provides a vectorized ``compute_batch`` kernel runs
        through :meth:`run_batch`; otherwise it falls back to the
        per-vertex ``compute`` path (``program.compute`` +
        ``program.initial_state``) via :meth:`run`.
        """
        if hasattr(program, "compute_batch"):
            return self.run_batch(program, max_supersteps=max_supersteps)
        return self.run(
            program.compute,
            max_supersteps=max_supersteps,
            initial_state=getattr(program, "initial_state", None),
        )

    def run_batch(
        self, program: BatchVertexProgram, max_supersteps: int = 10_000
    ) -> BatchEngineResult:
        """Execute a batched vertex program until every vertex halts.

        The superstep loop mirrors :meth:`run` exactly — same activation
        rule (live ∪ mail), same per-machine volume accounting through the
        cluster, same quiescence/raise semantics — so a batched program
        that emits the per-vertex program's message multiset produces
        byte-identical supersteps, rounds, and word counts.
        """
        graph = self._graph
        csr = self._csr
        if csr is None:
            csr = self._csr = CSRGraph.from_graph(graph)
        n = graph.num_vertices
        program.initialize(csr)
        live = np.ones(n, dtype=bool)
        mail = np.zeros(n, dtype=bool)
        empty_i = np.empty(0, dtype=np.int64)
        inbox_dst = empty_i
        inbox_kind_parts: List[np.ndarray] = []
        inbox_ival_parts: List[np.ndarray] = []

        superstep = 0
        max_words = 0
        while True:
            if superstep >= max_supersteps:
                raise RuntimeError(
                    f"vertex program did not quiesce within {max_supersteps} supersteps"
                )
            active_mask = live | mail
            active = np.flatnonzero(active_mask)
            if active.size == 0:
                break
            step = BatchSuperstep(
                superstep, active, csr, inbox_dst, inbox_kind_parts,
                inbox_ival_parts, self._stream,
            )
            program.compute_batch(step)
            live[active] = True
            if step._halted:
                live[np.concatenate(step._halted)] = False
            destinations = (
                np.concatenate(step._send_dst) if step._send_dst else empty_i
            )
            max_words = max(
                max_words,
                self._charge_superstep_volume(destinations, superstep),
            )
            mail = np.zeros(n, dtype=bool)
            if destinations.size:
                mail[destinations] = True
            inbox_dst = destinations
            inbox_kind_parts = step._send_kind
            inbox_ival_parts = step._send_ival
            superstep += 1

        return BatchEngineResult(
            supersteps=superstep,
            rounds=self._cluster.rounds,
            max_machine_message_words=max_words,
            total_message_words=self._cluster.total_comm_words,
        )

    def run(
        self,
        compute: ComputeFn,
        max_supersteps: int = 10_000,
        initial_state: Optional[Callable[[int], Dict[str, Any]]] = None,
    ) -> EngineResult:
        """Execute ``compute`` until every vertex halts with no mail.

        ``initial_state`` builds each vertex's starting state dict
        (default: empty).  Raises ``RuntimeError`` at ``max_supersteps`` —
        a vertex program that never quiesces is a bug, not a long run.
        """
        graph = self._graph
        states: Dict[int, Dict[str, Any]] = {
            v: (initial_state(v) if initial_state else {})
            for v in graph.vertices()
        }
        inboxes: Dict[int, List[Any]] = {}
        neighbor_cache: Dict[int, Tuple[int, ...]] = {
            v: tuple(sorted(graph.neighbors_view(v))) for v in graph.vertices()
        }
        # Non-halted vertices, maintained incrementally: a full
        # ``graph.vertices()`` scan per superstep made late supersteps (few
        # live vertices, large n) cost O(n) instead of O(active).
        live: set = set(graph.vertices())

        superstep = 0
        max_words = 0
        while True:
            if superstep >= max_supersteps:
                raise RuntimeError(
                    f"vertex program did not quiesce within {max_supersteps} supersteps"
                )
            # A halted vertex is reactivated by pending mail.
            active = sorted(live.union(inboxes))
            if not active:
                break
            destinations: List[int] = []
            payloads: List[Any] = []
            for v in active:
                context = VertexContext(
                    vertex=v,
                    superstep=superstep,
                    neighbors=neighbor_cache[v],
                    state=states[v],
                    rng_stream=self._stream,
                )
                compute(context, inboxes.get(v, []))
                if context._halted:
                    live.discard(v)
                else:
                    live.add(v)
                for destination, payload in context._outbox:
                    destinations.append(destination)
                    payloads.append(payload)
            # Batched delivery: group the whole superstep's outbox by
            # destination (one stable sort); volume accounting is the same
            # shared bincount-over-placement path run_batch uses.
            pending: Dict[int, List[Any]] = {}
            dest_array = np.fromiter(
                destinations, dtype=np.int64, count=len(destinations)
            )
            if destinations:
                order = np.argsort(dest_array, kind="stable")
                sorted_dest = dest_array[order]
                unique_dest, starts = np.unique(sorted_dest, return_index=True)
                bounds = np.append(starts, len(sorted_dest))
                order_list = order.tolist()
                for which, destination in enumerate(unique_dest.tolist()):
                    pending[destination] = [
                        payloads[i]
                        for i in order_list[bounds[which] : bounds[which + 1]]
                    ]
            # Charge the communication superstep and validate volumes.
            max_words = max(
                max_words,
                self._charge_superstep_volume(dest_array, superstep),
            )
            inboxes = pending
            superstep += 1

        return EngineResult(
            states=states,
            supersteps=superstep,
            rounds=self._cluster.rounds,
            max_machine_message_words=max_words,
            total_message_words=self._cluster.total_comm_words,
        )
