"""A vertex-centric (Pregel-style) execution engine on the MPC substrate.

The frameworks the paper abstracts (Section 1, MapReduce/Hadoop/Spark/
Dryad) are programmed through bulk-synchronous vertex programs: per
superstep, every active vertex processes its inbox, updates local state,
and sends messages along edges.  This engine runs such programs on an
:class:`~repro.mpc.cluster.MPCCluster`, so that

* one superstep costs exactly one MPC round (charged via the cluster);
* per-machine message volume is validated against the word budget —
  a program whose communication exceeds ``O(S)`` per machine fails loudly;
* vertex placement follows the same i.i.d. partitioning the paper's
  algorithms use.

:mod:`repro.baselines.luby` and friends implement the classic per-round
algorithms directly; :mod:`repro.mpc.programs` re-implements them as
vertex programs over this engine, giving an independent, genuinely
message-passing realization that the test suite cross-checks against the
direct versions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.graph.graph import Graph
from repro.mpc.cluster import Message, MPCCluster
from repro.mpc.spec import ClusterSpec
from repro.utils.rng import RngStream, SeedLike, make_rng

# Word cost of one vertex-to-vertex payload (destination id + one value).
WORDS_PER_VERTEX_MESSAGE = 2


@dataclass
class VertexContext:
    """Per-vertex view handed to a vertex program at every superstep.

    Programs mutate :attr:`state`, call :meth:`send_to` /
    :meth:`send_to_neighbors`, and :meth:`vote_to_halt` when done.  A
    halted vertex is reactivated automatically by an incoming message.
    """

    vertex: int
    superstep: int
    neighbors: Tuple[int, ...]
    state: Dict[str, Any]
    rng_stream: RngStream
    _outbox: List[Tuple[int, Any]] = field(default_factory=list)
    _halted: bool = False

    def send_to(self, destination: int, payload: Any) -> None:
        """Queue one message for ``destination`` (delivered next superstep)."""
        self._outbox.append((destination, payload))

    def send_to_neighbors(self, payload: Any) -> None:
        """Queue the same message to every neighbor."""
        for u in self.neighbors:
            self._outbox.append((u, payload))

    def vote_to_halt(self) -> None:
        """Mark this vertex inactive until a message arrives."""
        self._halted = True

    def random(self) -> float:
        """A uniform draw that is a pure function of (seed, vertex, step)."""
        return self.rng_stream.random(self.vertex, self.superstep)


ComputeFn = Callable[[VertexContext, List[Any]], None]


@dataclass
class EngineResult:
    """Outcome of a vertex-program run."""

    states: Dict[int, Dict[str, Any]]
    supersteps: int
    rounds: int
    max_machine_message_words: int
    total_message_words: int = 0


class PregelEngine:
    """Bulk-synchronous vertex-program executor with MPC accounting."""

    def __init__(
        self,
        graph: Graph,
        words_per_machine: Optional[int] = None,
        num_machines: Optional[int] = None,
        seed: SeedLike = None,
    ) -> None:
        self._graph = graph
        spec = ClusterSpec.from_graph(graph, machines="sqrt")
        self._words = words_per_machine if words_per_machine else spec.words_per_machine
        machines = num_machines if num_machines else spec.num_machines
        self._cluster = MPCCluster(machines, self._words)
        rng = make_rng(seed)
        self._owner = {
            v: rng.randrange(machines) for v in graph.vertices()
        }
        # Flat-array copy of the placement map for the batched outbox
        # accounting in :meth:`run` (one bincount instead of a dict lookup
        # per message).
        self._owner_array = np.fromiter(
            (self._owner[v] for v in graph.vertices()),
            dtype=np.int64,
            count=graph.num_vertices,
        )
        self._num_machines = machines
        self._stream = RngStream(rng.getrandbits(64), namespace="pregel")

    @property
    def cluster(self) -> MPCCluster:
        """The underlying cluster (round counter, memory stats)."""
        return self._cluster

    def run(
        self,
        compute: ComputeFn,
        max_supersteps: int = 10_000,
        initial_state: Optional[Callable[[int], Dict[str, Any]]] = None,
    ) -> EngineResult:
        """Execute ``compute`` until every vertex halts with no mail.

        ``initial_state`` builds each vertex's starting state dict
        (default: empty).  Raises ``RuntimeError`` at ``max_supersteps`` —
        a vertex program that never quiesces is a bug, not a long run.
        """
        graph = self._graph
        states: Dict[int, Dict[str, Any]] = {
            v: (initial_state(v) if initial_state else {})
            for v in graph.vertices()
        }
        inboxes: Dict[int, List[Any]] = {}
        neighbor_cache: Dict[int, Tuple[int, ...]] = {
            v: tuple(sorted(graph.neighbors_view(v))) for v in graph.vertices()
        }
        # Non-halted vertices, maintained incrementally: a full
        # ``graph.vertices()`` scan per superstep made late supersteps (few
        # live vertices, large n) cost O(n) instead of O(active).
        live: set = set(graph.vertices())

        superstep = 0
        max_words = 0
        while True:
            if superstep >= max_supersteps:
                raise RuntimeError(
                    f"vertex program did not quiesce within {max_supersteps} supersteps"
                )
            # A halted vertex is reactivated by pending mail.
            active = sorted(live.union(inboxes))
            if not active:
                break
            destinations: List[int] = []
            payloads: List[Any] = []
            for v in active:
                context = VertexContext(
                    vertex=v,
                    superstep=superstep,
                    neighbors=neighbor_cache[v],
                    state=states[v],
                    rng_stream=self._stream,
                )
                compute(context, inboxes.get(v, []))
                if context._halted:
                    live.discard(v)
                else:
                    live.add(v)
                for destination, payload in context._outbox:
                    destinations.append(destination)
                    payloads.append(payload)
            # Batched delivery: group the whole superstep's outbox by
            # destination (one stable sort) and charge per-machine volume
            # with one bincount over the placement array, instead of a
            # dict lookup per message.
            pending: Dict[int, List[Any]] = {}
            machine_words: Dict[int, int] = {}
            if destinations:
                dest_array = np.fromiter(
                    destinations, dtype=np.int64, count=len(destinations)
                )
                volume = np.bincount(
                    self._owner_array[dest_array], minlength=self._num_machines
                ) * WORDS_PER_VERTEX_MESSAGE
                machine_words = {
                    machine: int(words)
                    for machine, words in enumerate(volume.tolist())
                    if words
                }
                order = np.argsort(dest_array, kind="stable")
                sorted_dest = dest_array[order]
                unique_dest, starts = np.unique(sorted_dest, return_index=True)
                bounds = np.append(starts, len(sorted_dest))
                order_list = order.tolist()
                for which, destination in enumerate(unique_dest.tolist()):
                    pending[destination] = [
                        payloads[i]
                        for i in order_list[bounds[which] : bounds[which + 1]]
                    ]
            # Charge the communication superstep and validate volumes.
            outboxes = {
                machine: [
                    Message(destination=machine, words=words, payload=None)
                ]
                for machine, words in machine_words.items()
            }
            self._cluster.exchange(outboxes, context=f"pregel superstep {superstep}")
            max_words = max(max_words, max(machine_words.values(), default=0))
            inboxes = pending
            superstep += 1

        return EngineResult(
            states=states,
            supersteps=superstep,
            rounds=self._cluster.rounds,
            max_machine_message_words=max_words,
            total_message_words=self._cluster.total_comm_words,
        )
