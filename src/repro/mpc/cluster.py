"""The MPC cluster: machines, supersteps, and round accounting.

Communication happens through :meth:`MPCCluster.exchange`: every machine
submits an outbox of ``(destination, words, payload)`` messages, the
cluster validates that no outbox and no resulting inbox exceeds the word
budget (both directions are bounded by local memory in the MPC model,
Section 1.1.1 of the paper), delivers, and advances the round counter.

Algorithms that use *standard techniques* the paper cites as O(1)-round
black boxes (sorted load balancing of [GSZ11], aggregation trees) call
:meth:`charge_rounds` with a reason string; the trace of charges is
auditable in tests and experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.mpc.errors import MemoryExceededError, ProtocolError
from repro.mpc.machine import Machine
from repro.utils.trace import Trace, maybe_record


@dataclass(frozen=True)
class Message:
    """One point-to-point message: destination machine, word cost, payload."""

    destination: int
    words: int
    payload: Any


class MPCCluster:
    """A synchronous cluster of :class:`Machine` objects.

    Parameters
    ----------
    num_machines:
        Number of machines ``m``.
    words_per_machine:
        Memory budget ``S`` in words.  For the paper's regime this is
        ``Θ(n)``; callers size it as ``memory_factor * n``.
    trace:
        Optional :class:`Trace` receiving one event per round charged.
    """

    def __init__(
        self,
        num_machines: int,
        words_per_machine: int,
        trace: Optional[Trace] = None,
    ) -> None:
        if num_machines <= 0:
            raise ValueError(f"num_machines must be positive, got {num_machines}")
        self._machines = [
            Machine(machine_id, words_per_machine)
            for machine_id in range(num_machines)
        ]
        self._words_per_machine = words_per_machine
        self._rounds = 0
        self._total_comm_words = 0
        self._peak_transient_words = 0
        self._trace = trace
        self._governor = None

    # -- accessors ----------------------------------------------------------

    @property
    def num_machines(self) -> int:
        """Number of machines."""
        return len(self._machines)

    @property
    def words_per_machine(self) -> int:
        """Per-machine word budget ``S``."""
        return self._words_per_machine

    @property
    def rounds(self) -> int:
        """Total MPC rounds consumed so far."""
        return self._rounds

    @property
    def total_comm_words(self) -> int:
        """Total words shipped through the cluster so far (all machines).

        Every :meth:`exchange` message, :meth:`ship_to_machine` bulk
        object, and :meth:`broadcast` payload is summed here, so budget
        auditors can check the run's aggregate communication volume
        alongside the per-machine peaks.
        """
        return self._total_comm_words

    @property
    def peak_transient_words(self) -> int:
        """Hottest single-machine transient load seen in any superstep.

        The largest validated inbox of any :meth:`exchange` receiver and
        the largest :meth:`broadcast` payload — loads a machine must hold
        for the duration of a round without necessarily :meth:`storing
        <repro.mpc.machine.Machine.store>` them.  Solvers whose phases are
        exchange-only (the matching family) report this as their peak.
        """
        return self._peak_transient_words

    def machine(self, machine_id: int) -> Machine:
        """The machine with id ``machine_id``."""
        if not 0 <= machine_id < len(self._machines):
            raise ProtocolError(
                f"machine id {machine_id} out of range [0, {len(self._machines)})"
            )
        return self._machines[machine_id]

    def machines(self) -> List[Machine]:
        """All machines."""
        return list(self._machines)

    def peak_words(self) -> int:
        """Largest peak residency across machines."""
        return max(m.peak_words for m in self._machines)

    @property
    def governor(self):
        """The attached :class:`repro.govern.Governor`, if any."""
        return self._governor

    def attach_governor(self, governor) -> None:
        """Wire soft-watermark overload signals to ``governor``.

        Sets every machine's ``soft_limit_words`` to the governor's soft
        budget and routes store-time overload callbacks to it.  Detach
        with ``attach_governor(None)``.
        """
        self._governor = governor
        soft = governor.soft_words if governor is not None else None
        callback = governor.record_watermark if governor is not None else None
        for machine in self._machines:
            machine.soft_limit_words = soft
            machine.on_overload = (
                None
                if callback is None
                else lambda _mid, used, cap, ctx, _cb=callback: _cb(
                    ctx, used, cap
                )
            )

    # -- round accounting -----------------------------------------------------

    def charge_rounds(self, count: int, reason: str) -> None:
        """Consume ``count`` rounds for a cited O(1)-round primitive."""
        if count < 0:
            raise ValueError(f"round count must be >= 0, got {count}")
        self._rounds += count
        maybe_record(self._trace, "rounds_charged", count=count, reason=reason)

    # -- communication ---------------------------------------------------------

    def exchange(
        self, outboxes: Dict[int, List[Message]], context: str = "exchange"
    ) -> Dict[int, List[Message]]:
        """Run one communication superstep.

        ``outboxes`` maps sender machine id to its message list.  Validates
        that each sender's outbox and each receiver's inbox fit in machine
        memory, advances the round counter by 1, and returns the inboxes.
        """
        inbox_words: Dict[int, int] = {}
        inboxes: Dict[int, List[Message]] = {}
        for sender, messages in outboxes.items():
            self.machine(sender)  # validates the id
            out_words = sum(msg.words for msg in messages)
            if out_words > self._words_per_machine:
                raise MemoryExceededError(
                    sender, out_words, self._words_per_machine, f"{context}: outbox"
                )
            for msg in messages:
                self.machine(msg.destination)
                inbox_words[msg.destination] = (
                    inbox_words.get(msg.destination, 0) + msg.words
                )
                inboxes.setdefault(msg.destination, []).append(msg)
        for receiver, words in inbox_words.items():
            if words > self._words_per_machine:
                raise MemoryExceededError(
                    receiver, words, self._words_per_machine, f"{context}: inbox"
                )
        self._total_comm_words += sum(inbox_words.values())
        if inbox_words:
            self._peak_transient_words = max(
                self._peak_transient_words, max(inbox_words.values())
            )
        self._rounds += 1
        if self._governor is not None and inbox_words:
            # Post-delivery observation: per-receiver volumes feed the
            # peak-hold estimator so the *next* phase is predicted with
            # this phase's imbalance in hand.
            self._governor.observe_loads(inbox_words.values(), context)
        maybe_record(
            self._trace,
            "rounds_charged",
            count=1,
            reason=context,
            max_inbox_words=max(inbox_words.values(), default=0),
        )
        return inboxes

    def ship_to_machine(
        self,
        destination: int,
        key: str,
        value: Any,
        words: int,
        context: str = "ship",
    ) -> None:
        """Deliver one bulk object to ``destination`` in one round.

        Models the common "send the induced subgraph to one machine" step:
        validates the object fits, stores it, and charges one round.
        """
        machine = self.machine(destination)
        machine.store(key, value, words, context=context)
        self._total_comm_words += words
        self._rounds += 1
        maybe_record(
            self._trace, "rounds_charged", count=1, reason=context, words=words
        )

    def broadcast(self, words: int, context: str = "broadcast") -> None:
        """Broadcast ``words`` of shared state from one machine to all.

        Validates the payload fits in every machine's memory and charges one
        round (machine-to-machine broadcast is one round in MPC as long as
        the payload fits; larger payloads must be split by the caller).
        """
        if words > self._words_per_machine:
            raise MemoryExceededError(
                0, words, self._words_per_machine, f"{context}: broadcast payload"
            )
        if self._governor is not None and words > self._governor.soft_words:
            # A broadcast that fits the hard cap but crosses the soft
            # watermark is pressure worth recording (callers going through
            # the governor's chunked broadcast never land here).
            self._governor.record_watermark(context, words, self._words_per_machine)
        # One copy lands on every other machine.
        self._total_comm_words += words * max(0, self.num_machines - 1)
        self._peak_transient_words = max(self._peak_transient_words, words)
        self._rounds += 1
        maybe_record(
            self._trace, "rounds_charged", count=1, reason=context, words=words
        )

    def release_all(self) -> None:
        """Clear every machine's store (end of a phase)."""
        for machine in self._machines:
            machine.clear()

    def __repr__(self) -> str:
        return (
            f"MPCCluster(machines={self.num_machines}, "
            f"S={self._words_per_machine} words, rounds={self._rounds})"
        )
