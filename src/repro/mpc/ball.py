"""Ball gathering by graph exponentiation.

The sparsified-MIS finish (our substitute for [Gha17], see DESIGN.md §5)
relies on the standard round-compression fact: after ``k`` doubling steps
each vertex knows its radius-``2^k`` ball, so collecting radius-``R`` balls
costs ``ceil(log2(R)) + 1`` rounds.  Any ``R``-round LOCAL algorithm whose
per-vertex output depends only on the ``R``-ball and shared randomness can
then be simulated locally with **zero** further communication.

The functions here compute the balls (for the simulation), the round
charge, and the per-vertex memory footprint (for budget validation).
"""

from __future__ import annotations

import math
from typing import Dict, List, Set

from repro.graph.graph import Graph
from repro.mpc.words import WORDS_PER_EDGE


def ball_gather_rounds(radius: int) -> int:
    """Rounds to collect radius-``radius`` balls by doubling."""
    if radius < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    if radius <= 1:
        return 1
    return math.ceil(math.log2(radius)) + 1


def gather_balls(graph: Graph, radius: int) -> Dict[int, Set[int]]:
    """The radius-``radius`` ball (vertex set) around every vertex.

    Implemented as truncated BFS per vertex; on the polylog-degree graphs
    where this is invoked the total work is ``O(n * Δ^radius)`` bounded by
    the memory validation in :func:`ball_memory_words`.
    """
    balls: Dict[int, Set[int]] = {}
    for v in graph.vertices():
        frontier = {v}
        ball = {v}
        for _ in range(radius):
            next_frontier: Set[int] = set()
            for u in frontier:
                for w in graph.neighbors_view(u):
                    if w not in ball:
                        ball.add(w)
                        next_frontier.add(w)
            if not next_frontier:
                break
            frontier = next_frontier
        balls[v] = ball
    return balls


def ball_memory_words(graph: Graph, balls: Dict[int, Set[int]]) -> int:
    """Words needed to store every vertex's ball topology.

    A ball's topology is its induced edge set; we charge each ball's edges
    at ``WORDS_PER_EDGE`` per edge plus one word per member id.  The total
    is what a cluster storing one ball per vertex (spread over machines
    holding ``O(n / m)`` vertices each) must budget for.
    """
    total = 0
    for ball in balls.values():
        members = len(ball)
        internal_edges = 0
        for u in ball:
            for w in graph.neighbors_view(u):
                if w > u and w in ball:
                    internal_edges += 1
        total += members + WORDS_PER_EDGE * internal_edges
    return total
