"""MPC (Massively Parallel Computation) substrate.

Implements the model of Karloff–Suri–Vassilvitskii as refined in
[GSZ11, BKS13, ANOY14] and used by the paper (Section 1.1.1): ``m``
machines with ``S`` words of memory each, synchronous rounds, per-round
communication bounded by machine memory.  The substrate *measures* round
complexity and *enforces* memory limits; algorithms never assert their own
costs.
"""

from repro.mpc.cluster import MPCCluster
from repro.mpc.errors import MemoryExceededError, ProtocolError
from repro.mpc.machine import Machine
from repro.mpc.words import (
    WORDS_PER_EDGE,
    WORDS_PER_FLOAT,
    WORDS_PER_ID,
    edge_words,
    id_words,
)
from repro.mpc.primitives import partition_vertices
from repro.mpc.ball import ball_gather_rounds, gather_balls
from repro.mpc.engine import EngineResult, PregelEngine, VertexContext
from repro.mpc.sort import mpc_prefix_sums, mpc_sort
from repro.mpc.spec import ClusterSpec

__all__ = [
    "ClusterSpec",
    "EngineResult",
    "PregelEngine",
    "VertexContext",
    "mpc_prefix_sums",
    "mpc_sort",
    "MPCCluster",
    "Machine",
    "MemoryExceededError",
    "ProtocolError",
    "WORDS_PER_EDGE",
    "WORDS_PER_FLOAT",
    "WORDS_PER_ID",
    "edge_words",
    "id_words",
    "partition_vertices",
    "ball_gather_rounds",
    "gather_balls",
]
