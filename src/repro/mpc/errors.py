"""Exceptions raised by the MPC and CONGESTED-CLIQUE substrates."""

from __future__ import annotations


class ProtocolError(RuntimeError):
    """An algorithm violated the communication protocol of the model.

    Examples: sending to a nonexistent machine, routing more messages
    through Lenzen's scheme than its precondition allows.
    """


class MemoryExceededError(ProtocolError):
    """A machine's word budget was exceeded.

    Carries enough context to debug which step of which algorithm blew the
    budget — memory violations are the primary failure mode the paper's
    lemmas (3.1, 4.7) rule out, so tests assert both that normal runs never
    raise this and that undersized clusters do.
    """

    def __init__(self, machine_id: int, used_words: int, capacity_words: int, context: str = "") -> None:
        detail = f" during {context}" if context else ""
        super().__init__(
            f"machine {machine_id} needs {used_words} words but has "
            f"capacity {capacity_words}{detail}"
        )
        self.machine_id = machine_id
        self.used_words = used_words
        self.capacity_words = capacity_words
        self.context = context
