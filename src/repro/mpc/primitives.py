"""Shared MPC communication patterns.

These are the "standard techniques" the paper invokes (random vertex
partitioning from [CŁM+18], gather-to-leader, result broadcast), packaged
so every algorithm charges them identically.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.graph.graph import Edge, Graph
from repro.mpc.cluster import Message, MPCCluster
from repro.mpc.words import edge_words, id_words
from repro.utils.rng import SeedLike, make_rng


def partition_vertices(
    vertices: Iterable[int], num_parts: int, seed: SeedLike = None
) -> List[List[int]]:
    """Random vertex partitioning: each vertex i.i.d. uniform over parts.

    This is the vertex-based sampling of [CŁM+18] used at Line (d) of
    MPC-Simulation and in the matching phases; i.i.d. assignment (rather
    than balanced chunking) is what the Chernoff-based size bounds
    (Lemma 4.7) are proved for.
    """
    if num_parts <= 0:
        raise ValueError(f"num_parts must be positive, got {num_parts}")
    rng = make_rng(seed)
    parts: List[List[int]] = [[] for _ in range(num_parts)]
    for v in vertices:
        parts[rng.randrange(num_parts)].append(v)
    return parts


def assignment_map(parts: Sequence[Sequence[int]]) -> Dict[int, int]:
    """Invert a partition into a vertex → part-index map."""
    owner: Dict[int, int] = {}
    for index, part in enumerate(parts):
        for v in part:
            owner[v] = index
    return owner


def scatter_induced_subgraphs(
    cluster: MPCCluster,
    graph: Graph,
    parts: Sequence[Sequence[int]],
    context: str = "scatter-induced",
) -> List[List[Edge]]:
    """Deliver ``G[V_i]`` to machine ``i`` for every part, in one exchange.

    Each edge of an induced subgraph is sent by the machine currently
    holding it; the substrate validates that every machine's share fits.
    Returns the per-machine edge lists (original labels).
    """
    outboxes: Dict[int, List[Message]] = {}
    induced: List[List[Edge]] = []
    for index, part in enumerate(parts):
        edges = graph.induced_edges(part)
        induced.append(edges)
        outboxes.setdefault(index % cluster.num_machines, []).append(
            Message(destination=index, words=edge_words(len(edges)), payload=edges)
        )
    cluster.exchange(outboxes, context=context)
    for index, edges in enumerate(induced):
        cluster.machine(index).store(
            "induced_edges", edges, edge_words(len(edges)), context=context
        )
    return induced


def gather_edges_to_leader(
    cluster: MPCCluster,
    edges: List[Edge],
    leader: int = 0,
    context: str = "gather-to-leader",
) -> None:
    """Ship an edge set to the leader machine (one round, size-validated)."""
    cluster.ship_to_machine(
        leader, "gathered_edges", edges, edge_words(len(edges)), context=context
    )


def broadcast_vertex_set(
    cluster: MPCCluster,
    vertex_set: Iterable[int],
    context: str = "broadcast-set",
    governor=None,
) -> None:
    """Broadcast a vertex subset (e.g. newly found MIS vertices) to all.

    With a :class:`repro.govern.Governor` attached, a set too large for
    the soft watermark goes out as sequential chunked broadcasts instead
    of tripping the hard cap (exact pass-through otherwise).
    """
    as_list = list(vertex_set)
    words = id_words(len(as_list))
    if governor is None:
        cluster.broadcast(words, context=context)
    else:
        governor.broadcast(cluster, words, context)
