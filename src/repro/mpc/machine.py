"""A single MPC machine: a word-budgeted local store."""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.mpc.errors import MemoryExceededError


class Machine:
    """One machine of an MPC cluster.

    A machine is a named bag of word-costed objects.  The cluster charges
    loads through :meth:`store` / :meth:`release`; the machine tracks its
    peak residency so experiments can report the true memory footprint
    (the quantity Lemma 3.1 / Lemma 4.7 bound).
    """

    __slots__ = (
        "machine_id",
        "capacity_words",
        "soft_limit_words",
        "on_overload",
        "_used_words",
        "_peak_words",
        "_store",
    )

    def __init__(self, machine_id: int, capacity_words: int) -> None:
        if capacity_words <= 0:
            raise ValueError(f"capacity_words must be positive, got {capacity_words}")
        self.machine_id = machine_id
        self.capacity_words = capacity_words
        # Soft watermark (repro.govern): a residency line *below* the hard
        # cap.  Crossing it never raises — it fires ``on_overload`` so a
        # governor can see pressure while there is still headroom to act.
        self.soft_limit_words: Optional[int] = None
        self.on_overload: Optional[Callable[[int, int, int, str], None]] = None
        self._used_words = 0
        self._peak_words = 0
        self._store: Dict[str, Any] = {}

    @property
    def used_words(self) -> int:
        """Words currently resident."""
        return self._used_words

    @property
    def peak_words(self) -> int:
        """Maximum words ever resident on this machine."""
        return self._peak_words

    @property
    def overloaded(self) -> bool:
        """Whether current residency is above the soft watermark."""
        return (
            self.soft_limit_words is not None
            and self._used_words > self.soft_limit_words
        )

    def store(self, key: str, value: Any, words: int, context: str = "") -> None:
        """Place ``value`` (costing ``words``) under ``key``.

        Replacing an existing key first releases its words.  Raises
        :class:`MemoryExceededError` if the budget would be exceeded.
        """
        if words < 0:
            raise ValueError(f"words must be >= 0, got {words}")
        if key in self._store:
            self.release(key)
        if self._used_words + words > self.capacity_words:
            raise MemoryExceededError(
                self.machine_id, self._used_words + words, self.capacity_words, context
            )
        self._store[key] = (value, words)
        self._used_words += words
        self._peak_words = max(self._peak_words, self._used_words)
        if (
            self.soft_limit_words is not None
            and self._used_words > self.soft_limit_words
            and self.on_overload is not None
        ):
            self.on_overload(
                self.machine_id, self._used_words, self.capacity_words, context
            )

    def load(self, key: str) -> Any:
        """Retrieve the value stored under ``key``."""
        return self._store[key][0]

    def has(self, key: str) -> bool:
        """Whether ``key`` is resident."""
        return key in self._store

    def release(self, key: str) -> None:
        """Free the words held by ``key``."""
        _, words = self._store.pop(key)
        self._used_words -= words

    def clear(self) -> None:
        """Free everything (end of a phase)."""
        self._store.clear()
        self._used_words = 0

    def __repr__(self) -> str:
        return (
            f"Machine(id={self.machine_id}, used={self._used_words}/"
            f"{self.capacity_words} words)"
        )
