"""O(1)-round MPC sorting — the [GSZ11] black box.

The paper's implementation notes (Lemma 4.5, Section 3.2) lean on the
standard toolbox of Goodrich, Sitchinava, and Zhang: sorting, prefix sums,
and predecessor queries in O(1) MPC rounds when machine memory is
``n^{Ω(1)}``.  This module implements the TeraSort-style scheme:

1. every machine samples keys at rate ``Θ(log(total)/S)`` and ships the
   sample to a coordinator (1 round, sample fits w.h.p.);
2. the coordinator picks ``m - 1`` splitters and broadcasts them (1 round);
3. every machine routes each key to the machine owning its splitter bucket
   (1 round, bucket sizes ``O(total/m + S·log)`` w.h.p.);
4. machines sort locally.

Total: 3 rounds, validated against the word budget by the substrate.  The
algorithms in :mod:`repro.core` charge their "standard technique" steps at
this cost; this module exists so the charge is backed by a real, tested
implementation rather than a citation alone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.mpc.cluster import Message, MPCCluster
from repro.utils.rng import SeedLike, make_rng

SORT_ROUND_COST = 3


@dataclass
class SortOutcome:
    """Result of a distributed sort."""

    shards: List[List[Any]]
    rounds_used: int
    max_shard_size: int

    def flattened(self) -> List[Any]:
        """The fully sorted sequence (concatenation of shards)."""
        return [item for shard in self.shards for item in shard]


def mpc_sort(
    cluster: MPCCluster,
    shards: Sequence[Sequence[Any]],
    key: Optional[Callable[[Any], Any]] = None,
    words_per_item: int = 1,
    seed: SeedLike = None,
) -> SortOutcome:
    """Sort items distributed over machines, in O(1) rounds.

    Parameters
    ----------
    shards:
        ``shards[i]`` is the data resident on machine ``i``; there must be
        at most ``cluster.num_machines`` shards.
    key:
        Sort key (default: identity).
    words_per_item:
        Word cost of one item, for memory validation during the shuffle.

    Returns the sorted shards (shard ``i`` holds keys entirely preceding
    shard ``i+1``'s) and the measured round cost.
    """
    if len(shards) > cluster.num_machines:
        raise ValueError(
            f"{len(shards)} shards exceed {cluster.num_machines} machines"
        )
    key = key if key is not None else lambda item: item
    rng = make_rng(seed)
    num_machines = cluster.num_machines
    total = sum(len(shard) for shard in shards)
    rounds_before = cluster.rounds

    if total == 0:
        cluster.charge_rounds(SORT_ROUND_COST, "mpc-sort: empty input")
        return SortOutcome(
            shards=[[] for _ in range(num_machines)],
            rounds_used=SORT_ROUND_COST,
            max_shard_size=0,
        )

    # Round 1: sample keys to the coordinator.
    sample_rate = min(
        1.0, (8.0 * math.log(total + 2) * num_machines) / max(1, total)
    )
    sample = [
        key(item)
        for shard in shards
        for item in shard
        if rng.random() < sample_rate
    ]
    cluster.ship_to_machine(
        0,
        "sort_sample",
        sample,
        words=max(1, words_per_item * len(sample)),
        context="mpc-sort: sample to coordinator",
    )

    # Round 2: coordinator broadcasts m-1 splitters.
    sample.sort()
    splitters = [
        sample[(i * len(sample)) // num_machines]
        for i in range(1, num_machines)
        if sample
    ]
    cluster.broadcast(
        max(1, words_per_item * len(splitters)), context="mpc-sort: splitters"
    )

    # Round 3: route every item to its bucket machine.
    buckets: List[List[Any]] = [[] for _ in range(num_machines)]
    for shard in shards:
        for item in shard:
            buckets[_bucket_of(key(item), splitters)].append(item)
    outboxes: Dict[int, List[Message]] = {}
    for index, bucket in enumerate(buckets):
        outboxes.setdefault(index, []).append(
            Message(
                destination=index,
                words=max(1, words_per_item * len(bucket)),
                payload=None,
            )
        )
    cluster.exchange(outboxes, context="mpc-sort: bucket shuffle")

    for bucket in buckets:
        bucket.sort(key=key)
    return SortOutcome(
        shards=buckets,
        rounds_used=cluster.rounds - rounds_before,
        max_shard_size=max(len(bucket) for bucket in buckets),
    )


def _bucket_of(value: Any, splitters: List[Any]) -> int:
    """Index of the bucket whose key range contains ``value`` (binary search)."""
    lo, hi = 0, len(splitters)
    while lo < hi:
        mid = (lo + hi) // 2
        if splitters[mid] <= value:
            lo = mid + 1
        else:
            hi = mid
    return lo


def mpc_prefix_sums(
    cluster: MPCCluster, shards: Sequence[Sequence[float]]
) -> Tuple[List[List[float]], int]:
    """Per-item global prefix sums over distributed data, in 2 rounds.

    Round 1: every machine ships its local total to the coordinator.
    Round 2: the coordinator broadcasts the per-machine offsets; machines
    add them locally.  Returns (prefix shards, rounds used).
    """
    rounds_before = cluster.rounds
    totals = [sum(shard) for shard in shards]
    cluster.ship_to_machine(
        0, "prefix_totals", totals, words=max(1, len(totals)),
        context="mpc-prefix: totals to coordinator",
    )
    offsets = []
    running = 0.0
    for value in totals:
        offsets.append(running)
        running += value
    cluster.broadcast(max(1, len(offsets)), context="mpc-prefix: offsets")

    result: List[List[float]] = []
    for shard, offset in zip(shards, offsets):
        acc = offset
        row = []
        for value in shard:
            acc += value
            row.append(acc)
        result.append(row)
    return result, cluster.rounds - rounds_before
