"""Cluster sizing: the single home of the memory-factor derivation.

Every MPC algorithm in the library sizes its simulated cluster the same
way — ``S = memory_factor * n`` words per machine (the ``O~(n)`` regime of
Section 1.1.1) with the machine count chosen either so the input fits
(``m = ceil(total_words / S) + 1``, the ``S * m = Θ(N)`` regime) or as
``Θ(√n)`` for the vertex-partitioned algorithms.  Before this module the
derivation was re-implemented in :mod:`repro.core.mis_mpc`,
:mod:`repro.core.matching_mpc`, :mod:`repro.core.integral`,
:mod:`repro.core.weighted_matching`, and :mod:`repro.mpc.engine`;
:class:`ClusterSpec` replaces all of those copies so a sizing change (or a
future sharding/caching layer) happens in exactly one place.

The class lives in the ``mpc`` layer (below ``core``) so algorithm modules
can import it without cycles; :mod:`repro.api` re-exports it as part of the
public façade.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.mpc.cluster import MPCCluster
from repro.mpc.words import edge_words
from repro.utils.trace import Trace

# Below this budget a machine cannot hold even a handful of edges plus the
# bookkeeping ids, and the substrate's validation becomes vacuous noise.
MIN_WORDS_PER_MACHINE = 64


def paper_memory_words(
    n: int,
    alpha: float = 1.0,
    memory_factor: float = 8.0,
    min_words: int = MIN_WORDS_PER_MACHINE,
) -> int:
    """Per-machine budget ``S = memory_factor * n^alpha`` words.

    The paper's headline regime is strictly sublinear memory
    (``S = n^alpha`` for a constant ``alpha < 1``, Section 1.1.1); the
    library's algorithms run in the near-linear ``O~(n)`` regime, which is
    ``alpha = 1`` here.  :mod:`repro.verify.budgets` audits measured
    per-machine peaks against this budget, so lowering ``alpha`` tightens
    the conformance assertion toward the paper's sublinear claim.
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    if memory_factor <= 0:
        raise ValueError(f"memory_factor must be positive, got {memory_factor}")
    return max(min_words, math.ceil(memory_factor * max(0, n) ** alpha))


@dataclass(frozen=True)
class ClusterSpec:
    """A fully-derived cluster shape: machine count and per-machine words.

    Attributes
    ----------
    num_machines:
        Number of machines ``m``.
    words_per_machine:
        Memory budget ``S`` in words per machine.
    memory_factor:
        The factor the spec was derived from (kept for report snapshots).
    """

    num_machines: int
    words_per_machine: int
    memory_factor: float = 0.0

    def __post_init__(self) -> None:
        if self.num_machines <= 0:
            raise ValueError(
                f"num_machines must be positive, got {self.num_machines}"
            )
        if self.words_per_machine <= 0:
            raise ValueError(
                f"words_per_machine must be positive, got {self.words_per_machine}"
            )

    @classmethod
    def from_graph(
        cls,
        graph: Any,
        memory_factor: float = 8.0,
        machines: str = "fit",
        min_words: int = MIN_WORDS_PER_MACHINE,
    ) -> "ClusterSpec":
        """Derive the cluster shape for ``graph``.

        Parameters
        ----------
        graph:
            Anything exposing ``num_vertices`` and ``num_edges`` (a
            :class:`~repro.graph.graph.Graph` or a weighted wrapper).
        memory_factor:
            Per-machine memory in units of ``n`` words.
        machines:
            ``"fit"`` — ``ceil(total_words / S) + 1`` machines so the input
            fits with one spare (the MIS algorithm's regime);
            ``"sqrt"`` — ``√n + 1`` machines (the vertex-partitioned
            matching regime and the Pregel engine default).
        """
        if memory_factor <= 0:
            raise ValueError(f"memory_factor must be positive, got {memory_factor}")
        n = graph.num_vertices
        words = max(int(memory_factor * n), min_words)
        if machines == "fit":
            total_words = edge_words(graph.num_edges) + n
            count = max(2, -(-total_words // words) + 1)
        elif machines == "sqrt":
            count = max(2, math.isqrt(max(1, n)) + 1)
        else:
            raise ValueError(
                f"machines must be 'fit' or 'sqrt', got {machines!r}"
            )
        return cls(
            num_machines=count,
            words_per_machine=words,
            memory_factor=memory_factor,
        )

    @classmethod
    def from_alpha(
        cls,
        graph: Any,
        alpha: float,
        memory_factor: float = 8.0,
        machines: str = "fit",
        min_words: int = MIN_WORDS_PER_MACHINE,
    ) -> "ClusterSpec":
        """Derive a cluster in the paper's ``S = n^alpha`` sublinear regime.

        Like :meth:`from_graph` but the per-machine budget comes from
        :func:`paper_memory_words`, so ``alpha < 1`` yields a strictly
        sublinear per-machine memory and the machine count grows to
        compensate (the ``S * m = Θ(N)`` invariant).
        """
        n = graph.num_vertices
        words = paper_memory_words(
            n, alpha=alpha, memory_factor=memory_factor, min_words=min_words
        )
        if machines == "fit":
            total_words = edge_words(graph.num_edges) + n
            count = max(2, -(-total_words // words) + 1)
        elif machines == "sqrt":
            count = max(2, math.isqrt(max(1, n)) + 1)
        else:
            raise ValueError(
                f"machines must be 'fit' or 'sqrt', got {machines!r}"
            )
        return cls(
            num_machines=count,
            words_per_machine=words,
            memory_factor=memory_factor,
        )

    def build_cluster(self, trace: Optional[Trace] = None) -> MPCCluster:
        """Instantiate the :class:`MPCCluster` this spec describes."""
        return MPCCluster(self.num_machines, self.words_per_machine, trace=trace)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready snapshot (stored in :class:`repro.api.RunReport`)."""
        return {
            "num_machines": self.num_machines,
            "words_per_machine": self.words_per_machine,
            "memory_factor": self.memory_factor,
        }
