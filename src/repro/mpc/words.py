"""Memory accounting units.

The MPC model counts machine memory in *words* of ``O(log n)`` bits.  This
module centralizes the word cost of every object the algorithms ship so the
accounting is consistent across the library:

* a vertex id, rank, or iteration index: 1 word;
* an undirected edge (two endpoints): 2 words;
* a float edge weight or threshold: 1 word.
"""

from __future__ import annotations

from typing import Iterable, Sized, Tuple

WORDS_PER_ID = 1
WORDS_PER_EDGE = 2
WORDS_PER_FLOAT = 1


def id_words(count: int) -> int:
    """Words needed for ``count`` vertex ids."""
    return WORDS_PER_ID * count


def edge_words(count: int) -> int:
    """Words needed for ``count`` undirected edges."""
    return WORDS_PER_EDGE * count


def edge_list_words(edges: Sized) -> int:
    """Words needed to store an edge collection."""
    return edge_words(len(edges))


def weighted_edge_words(count: int) -> int:
    """Words for ``count`` edges each carrying a float weight."""
    return (WORDS_PER_EDGE + WORDS_PER_FLOAT) * count
