"""Measurement and experiment harness for the reproduction.

* :mod:`repro.analysis.metrics` — ratios, growth-curve summaries.
* :mod:`repro.analysis.concentration` — the Lemma 4.11/4.15 coupling
  measurements (bad-vertex fraction, estimate deviations).
* :mod:`repro.analysis.experiments` — one ``run_eXX`` function per
  experiment in DESIGN.md's index; benchmarks and EXPERIMENTS.md both
  regenerate from these.
* :mod:`repro.analysis.tables` — plain-text table formatting.
"""

from repro.analysis.metrics import (
    approximation_ratio,
    doubling_ratios,
    loglog_slope,
)
from repro.analysis.tables import format_table

__all__ = [
    "approximation_ratio",
    "doubling_ratios",
    "loglog_slope",
    "format_table",
]
