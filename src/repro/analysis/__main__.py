"""Command-line experiment harness.

Regenerate any experiment table from the shell::

    python -m repro.analysis e01        # one experiment
    python -m repro.analysis a01        # one ablation
    python -m repro.analysis all        # every experiment (minutes)
    python -m repro.analysis --list     # show what exists
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List

from repro.analysis import ablations, experiments
from repro.analysis.tables import format_table
from repro.analysis.whp_audit import run_e14_whp_audit

_REGISTRY: Dict[str, Callable[[], List[dict]]] = {
    "e01": experiments.run_e01_mis_rounds,
    "e02": experiments.run_e02_mis_memory,
    "e03": experiments.run_e03_central,
    "e04": experiments.run_e04_mpc_matching,
    "e05": experiments.run_e05_matching_memory,
    "e06": experiments.run_e06_rounding,
    "e07": experiments.run_e07_integral,
    "e08": experiments.run_e08_one_plus_eps,
    "e09": experiments.run_e09_weighted,
    "e10": experiments.run_e10_baselines,
    "e11": experiments.run_e11_concentration,
    "e12": experiments.run_e12_congested_clique,
    "e13": experiments.run_e13_residual_degree,
    "e14": run_e14_whp_audit,
    "a01": ablations.run_a01_threshold_ablation,
    "a02": ablations.run_a02_alpha_ablation,
    "a03": ablations.run_a03_iterations_scale_ablation,
    "a04": ablations.run_a04_memory_ablation,
    "a05": ablations.run_a05_sparse_strategy,
}


def main(argv: List[str]) -> int:
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    if argv[0] == "--list":
        for name, fn in _REGISTRY.items():
            first_line = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name}  {first_line}")
        return 0
    targets = list(_REGISTRY) if argv[0] == "all" else argv
    for target in targets:
        fn = _REGISTRY.get(target)
        if fn is None:
            print(f"unknown experiment {target!r}; try --list", file=sys.stderr)
            return 2
        rows = fn()
        print(format_table(rows, title=f"[{target}] {fn.__name__}"))
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
