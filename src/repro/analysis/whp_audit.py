"""Empirical auditing of "with high probability" claims.

The paper proves its guarantees w.h.p.; the reproduction cannot prove
tail bounds, but it can *measure* failure rates: run a predicate over
many independent seeds and report how often it fails (DESIGN.md §5,
substitution 4).  Experiment E14 audits the load-bearing invariants this
way; the harness is generic so downstream users can audit their own
claims.

The per-trial predicates are built from :mod:`repro.verify.checkers` —
the same invariant checkers the facade's ``verify=`` hook and the
differential harness run — so "what E14 measures" and "what a
certificate asserts" cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence

from repro.core.config import MatchingConfig, MISConfig
from repro.core.integral import mpc_maximum_matching
from repro.core.matching_mpc import mpc_fractional_matching
from repro.core.mis_mpc import mis_mpc
from repro.graph.generators import gnp_random_graph
from repro.graph.graph import Graph
from repro.verify.checkers import (
    check_fractional_matching,
    check_matching,
    check_matching_ratio,
    check_mis,
    check_vertex_cover,
)


@dataclass
class AuditReport:
    """Failure counts of one predicate over many seeds."""

    name: str
    trials: int
    failures: int
    failing_seeds: List[int] = field(default_factory=list)

    @property
    def failure_rate(self) -> float:
        """Fraction of trials on which the predicate failed."""
        return self.failures / self.trials if self.trials else 0.0


def audit(
    name: str,
    predicate: Callable[[int], bool],
    seeds: Sequence[int],
) -> AuditReport:
    """Evaluate ``predicate(seed)`` over ``seeds``; count False results.

    Exceptions are *not* swallowed: a predicate that crashes indicates a
    bug, not a low-probability event, and must surface.
    """
    failing = [seed for seed in seeds if not predicate(seed)]
    return AuditReport(
        name=name,
        trials=len(seeds),
        failures=len(failing),
        failing_seeds=failing,
    )


def run_e14_whp_audit(
    n: int = 256,
    avg_degree: float = 16.0,
    trials: int = 30,
    epsilon: float = 0.1,
) -> List[Dict[str, Any]]:
    """E14: failure rates of the w.h.p. invariants over independent seeds.

    Each trial draws a fresh graph *and* fresh algorithm randomness.  The
    audited claims: MIS maximality (Thm 1.1), fractional validity + cover
    coverage + Lemma 4.7 memory (Lemma 4.2), integral matching validity
    and its (2+ε) factor (Thm 1.2).
    """
    p = min(1.0, avg_degree / max(1, n - 1))
    matching_config = MatchingConfig(epsilon=epsilon)

    def graph_for(seed: int) -> Graph:
        return gnp_random_graph(n, p, seed=seed)

    def all_passed(checks) -> bool:
        return all(check.passed for check in checks)

    def mis_ok(seed: int) -> bool:
        graph = graph_for(seed)
        return all_passed(check_mis(graph, mis_mpc(graph, seed=seed).mis))

    def fractional_ok(seed: int) -> bool:
        graph = graph_for(seed)
        result = mpc_fractional_matching(graph, config=matching_config, seed=seed)
        return (
            all_passed(
                check_fractional_matching(graph, result.matching.weights)
            )
            and all_passed(check_vertex_cover(graph, result.vertex_cover))
            and result.max_machine_edges <= 4 * n
        )

    def integral_ok(seed: int) -> bool:
        graph = graph_for(seed)
        result = mpc_maximum_matching(graph, config=matching_config, seed=seed)
        return all_passed(
            check_matching(graph, result.matching)
            # The paper's literal 2+eps (not the conservative 2+O(eps)
            # envelope of matching_factor) — E14 exists to measure how
            # often the tight constant fails, not to always pass.  The
            # cap override forces the exact Blossom comparison at any n
            # the caller chose; a skipped oracle would read as a pass.
            + check_matching_ratio(
                graph, result.matching, 2.0 + epsilon, cap=graph.num_vertices
            )
        )

    seeds = list(range(trials))
    reports = [
        audit("MIS maximal (Thm 1.1)", mis_ok, seeds),
        audit("fractional valid + cover + memory (Lemma 4.2/4.7)", fractional_ok, seeds),
        audit("integral matching (2+eps) (Thm 1.2)", integral_ok, seeds),
    ]
    return [
        {
            "claim": report.name,
            "trials": report.trials,
            "failures": report.failures,
            "failure_rate": report.failure_rate,
            "failing_seeds": str(report.failing_seeds[:5]),
        }
        for report in reports
    ]
