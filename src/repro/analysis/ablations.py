"""Ablation experiments for the design choices DESIGN.md calls out.

* **A1 — random freezing thresholds** (the paper's central device,
  Section 4.2 "Random Thresholding to the Rescue"): couple the processes
  with and without the random interval and compare bad-vertex fractions.
* **A2 — the rank-prefix exponent α** (Section 3.2 fixes α = 3/4): sweep
  α and observe the phase-count / shipped-volume trade-off.
* **A3 — iterations per phase** (the ``I = Θ(log m)`` schedule of
  Lemma 4.8): sweep the scale constant and observe phases vs quality.
* **A4 — machine memory**: sweep the word budget down to the point of
  failure, demonstrating that the substrate's enforcement is real.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.analysis.concentration import coupled_run
from repro.baselines.blossom import maximum_matching
from repro.core.config import MatchingConfig, MISConfig
from repro.core.matching_mpc import mpc_fractional_matching
from repro.core.mis_mpc import mis_mpc
from repro.graph.generators import gnp_random_graph
from repro.mpc.errors import MemoryExceededError

Row = Dict[str, Any]


def run_a01_threshold_ablation(
    sizes: Sequence[int] = (256, 512, 1024),
    epsilon: float = 0.1,
    avg_degree: float = 16.0,
    seed: int = 101,
) -> List[Row]:
    """A1: bad-vertex fraction with random vs fixed thresholds."""
    rows: List[Row] = []
    config = MatchingConfig(epsilon=epsilon)
    for n in sizes:
        graph = gnp_random_graph(n, min(1.0, avg_degree / (n - 1)), seed=seed)
        randomized = coupled_run(
            graph, config=config, seed=seed, randomized_thresholds=True
        )
        fixed = coupled_run(
            graph, config=config, seed=seed, randomized_thresholds=False
        )
        rows.append(
            {
                "n": n,
                "bad_fraction_random": round(randomized.bad_fraction, 4),
                "bad_fraction_fixed": round(fixed.bad_fraction, 4),
                "cover_diff_random": randomized.cover_symmetric_difference,
                "cover_diff_fixed": fixed.cover_symmetric_difference,
            }
        )
    return rows


def run_a02_alpha_ablation(
    n: int = 2048,
    alphas: Sequence[float] = (0.5, 0.75, 0.9),
    avg_degree: float = 192.0,
    seed: int = 102,
) -> List[Row]:
    """A2: rank-prefix exponent vs phases and shipped volume."""
    graph = gnp_random_graph(n, min(1.0, avg_degree / (n - 1)), seed=seed)
    rows: List[Row] = []
    for alpha in alphas:
        config = MISConfig(alpha=alpha)
        result = mis_mpc(graph, seed=seed, config=config)
        rows.append(
            {
                "alpha": alpha,
                "prefix_phases": result.prefix_phases,
                "rounds": result.rounds,
                "max_shipped_edges": result.max_shipped_edges,
                "mis_size": len(result.mis),
            }
        )
    return rows


def run_a03_iterations_scale_ablation(
    n: int = 1024,
    scales: Sequence[float] = (1.0, 2.0, 4.0),
    epsilon: float = 0.1,
    avg_degree: float = 16.0,
    seed: int = 103,
) -> List[Row]:
    """A3: iterations-per-phase scale vs phases, rounds, and quality."""
    graph = gnp_random_graph(n, min(1.0, avg_degree / (n - 1)), seed=seed)
    optimum = len(maximum_matching(graph))
    rows: List[Row] = []
    for scale in scales:
        config = MatchingConfig(epsilon=epsilon, iterations_scale=scale)
        result = mpc_fractional_matching(graph, config=config, seed=seed)
        rows.append(
            {
                "iterations_scale": scale,
                "phases": result.phases,
                "rounds": result.rounds,
                "weight_ratio": round(optimum / max(result.weight, 1e-9), 3),
                "max_machine_edges": result.max_machine_edges,
            }
        )
    return rows


def run_a04_memory_ablation(
    n: int = 512,
    memory_factors: Sequence[float] = (8.0, 1.0, 0.5, 0.2),
    avg_degree: float = 16.0,
    seed: int = 104,
) -> List[Row]:
    """A4: shrink the word budget and report success or enforcement failure."""
    graph = gnp_random_graph(n, min(1.0, avg_degree / (n - 1)), seed=seed)
    rows: List[Row] = []
    for factor in memory_factors:
        config = MatchingConfig(memory_factor=factor)
        try:
            result = mpc_fractional_matching(graph, config=config, seed=seed)
            rows.append(
                {
                    "memory_factor": factor,
                    "status": "ok",
                    "rounds": result.rounds,
                    "max_machine_edges": result.max_machine_edges,
                }
            )
        except MemoryExceededError as error:
            rows.append(
                {
                    "memory_factor": factor,
                    "status": f"memory exceeded ({error.used_words} words)",
                    "rounds": -1,
                    "max_machine_edges": -1,
                }
            )
    return rows


def run_a05_sparse_strategy(
    n: int = 1024,
    avg_degree: float = 32.0,
    seed: int = 105,
) -> List[Row]:
    """A5: Luby vs Ghaffari desire-level process in the sparsified finish."""
    from repro.graph.properties import is_maximal_independent_set

    graph = gnp_random_graph(n, min(1.0, avg_degree / (n - 1)), seed=seed)
    rows: List[Row] = []
    for strategy in ("luby", "ghaffari"):
        config = MISConfig(sparse_strategy=strategy)
        result = mis_mpc(graph, seed=seed, config=config)
        rows.append(
            {
                "strategy": strategy,
                "rounds": result.rounds,
                "local_rounds_simulated": result.luby_rounds_simulated,
                "mis_size": len(result.mis),
                "maximal": is_maximal_independent_set(graph, result.mis),
            }
        )
    return rows
