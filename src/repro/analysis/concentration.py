"""Coupling measurements for Lemmas 4.11–4.15 (experiment E11).

The paper's key technical step couples MPC-Simulation to Central-Rand
through shared thresholds ``T_{v,t}`` and argues that *bad* vertices —
those whose freeze decision diverges between the two processes — stay rare
(probability ``≤ m^{-0.1}/ε`` per vertex), keeping estimate deviations
``|y_v − y~_v|`` below ``m^{-0.1}``.

We realize the coupling exactly: run both processes with the *same*
:class:`~repro.core.thresholds.ThresholdOracle`, then compare per-vertex
freeze iterations and final loads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.central import NEVER_FROZEN, run_freezing_process
from repro.core.config import MatchingConfig
from repro.core.matching_mpc import MatchingMPCResult, mpc_fractional_matching
from repro.core.thresholds import ThresholdOracle
from repro.graph.graph import Graph
from repro.utils.rng import SeedLike, make_rng


@dataclass
class CouplingReport:
    """Divergence statistics between the coupled processes.

    Attributes
    ----------
    bad_fraction:
        Fraction of vertices whose freeze iteration differs between
        Central-Rand and MPC-Simulation (the paper's *bad* vertices,
        Definition 4.9, measured at run end).
    mean_load_deviation / max_load_deviation:
        Statistics of ``|y_v − y^MPC_v|`` over vertices present in both.
    cover_symmetric_difference:
        Size of the symmetric difference of the two vertex covers.
    central_weight / mpc_weight:
        The two fractional matching weights (should agree to ``O(ε)``).
    """

    bad_fraction: float
    mean_load_deviation: float
    max_load_deviation: float
    cover_symmetric_difference: int
    central_weight: float
    mpc_weight: float


def coupled_run(
    graph: Graph,
    config: Optional[MatchingConfig] = None,
    seed: SeedLike = None,
    randomized_thresholds: bool = True,
) -> CouplingReport:
    """Run Central-Rand and MPC-Simulation with shared thresholds.

    ``randomized_thresholds=False`` replaces the random interval
    ``[1-4ε, 1-2ε]`` with the fixed threshold ``1-2ε`` in *both* processes —
    the ablation of the paper's "Random Thresholding to the Rescue" device
    (Section 4.2).  The paper predicts markedly more bad vertices without
    the randomness; experiment A1 measures exactly that.
    """
    config = config or MatchingConfig()
    rng = make_rng(seed)
    if randomized_thresholds:
        oracle = ThresholdOracle(
            config.threshold_low, config.threshold_high, seed=rng.getrandbits(64)
        )
    else:
        oracle = ThresholdOracle(
            config.threshold_high, config.threshold_high, seed=rng.getrandbits(64)
        )

    mpc = mpc_fractional_matching(
        graph, config=config, seed=rng.getrandbits(64), oracle=oracle
    )
    n = graph.num_vertices
    central = run_freezing_process(
        graph=graph,
        epsilon=config.epsilon,
        oracle=oracle,
        initial_weight=(1.0 - 2.0 * config.epsilon) / max(1, n),
        max_iterations=100_000,
    )

    bad = 0
    relevant = 0
    for v in graph.vertices():
        if graph.degree(v) == 0:
            continue
        relevant += 1
        central_freeze = central.freeze_iteration.get(v, NEVER_FROZEN)
        mpc_freeze = mpc.freeze_iteration.get(v, NEVER_FROZEN)
        if central_freeze != mpc_freeze:
            bad += 1

    central_loads = central.matching.vertex_loads()
    mpc_loads = mpc.matching.vertex_loads()
    deviations: List[float] = []
    for v in graph.vertices():
        if graph.degree(v) == 0 or v in mpc.heavy_removed:
            continue
        deviations.append(
            abs(central_loads.get(v, 0.0) - mpc_loads.get(v, 0.0))
        )

    return CouplingReport(
        bad_fraction=bad / relevant if relevant else 0.0,
        mean_load_deviation=(
            sum(deviations) / len(deviations) if deviations else 0.0
        ),
        max_load_deviation=max(deviations, default=0.0),
        cover_symmetric_difference=len(
            central.vertex_cover ^ mpc.vertex_cover
        ),
        central_weight=central.weight,
        mpc_weight=mpc.weight,
    )
