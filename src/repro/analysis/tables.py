"""Plain-text table rendering for benchmark harness output."""

from __future__ import annotations

from typing import Any, Dict, List, Sequence


def format_table(rows: Sequence[Dict[str, Any]], title: str = "") -> str:
    """Render dict rows as an aligned ASCII table (column order = first row).

    Floats render with 3 decimals; everything else via ``str``.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())

    def cell(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    rendered = [[cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered))
        for i, col in enumerate(columns)
    ]
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "-+-".join("-" * w for w in widths)
    body = "\n".join(
        " | ".join(r[i].ljust(widths[i]) for i in range(len(columns)))
        for r in rendered
    )
    table = f"{header}\n{separator}\n{body}"
    return f"{title}\n{table}" if title else table
