"""Experiment harness: one ``run_eXX`` function per DESIGN.md experiment.

Each function returns a list of row dicts (one per parameter point) that
the benchmarks print via :func:`repro.analysis.tables.format_table` and
that EXPERIMENTS.md records.  Sizes default to values that finish in
seconds; benchmarks may pass larger sweeps.

Paper-algorithm runs go through :func:`repro.api.solve` — one dispatch
path for every task×backend pair, with backend measurements preserved in
``RunReport.extras``.  Experiments probing *internals* the façade does not
expose (coupled threshold oracles, rounding details, residual-degree
curves) still call the algorithm modules directly.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.concentration import coupled_run
from repro.analysis.metrics import approximation_ratio, loglog_slope
from repro.api import solve
from repro.baselines.blossom import maximum_matching
from repro.baselines.exact import brute_force_maximum_weight_matching
from repro.baselines.filtering import filtering_maximal_matching
from repro.baselines.greedy import greedy_maximal_matching
from repro.baselines.israeli_itai import israeli_itai_matching
from repro.baselines.luby import luby_mis
from repro.core.central import central_fractional_matching
from repro.core.config import MatchingConfig
from repro.core.matching_mpc import mpc_fractional_matching
from repro.core.rounding import round_fractional_matching_detailed
from repro.graph.generators import (
    gnp_random_graph,
    planted_matching_graph,
    random_weighted_graph,
)
from repro.graph.graph import Graph
from repro.mpc.spec import ClusterSpec

Row = Dict[str, Any]

_DEFAULT_SIZES = (256, 512, 1024, 2048, 4096)


def _avg_degree_p(n: int, avg_degree: float) -> float:
    """The G(n,p) edge probability giving expected average degree."""
    if n <= 1:
        return 0.0
    return min(1.0, avg_degree / (n - 1))


def run_e01_mis_rounds(
    sizes: Sequence[int] = _DEFAULT_SIZES,
    avg_degree: float = 192.0,
    seed: int = 1,
) -> List[Row]:
    """E1: MIS rounds vs n — paper's O(log log Δ) against Luby's O(log n)."""
    rows: List[Row] = []
    for n in sizes:
        graph = gnp_random_graph(n, _avg_degree_p(n, avg_degree), seed=seed)
        paper = solve("mis", graph, backend="mpc", seed=seed)
        baseline = luby_mis(graph, seed=seed)
        rows.append(
            {
                "n": n,
                "max_degree": graph.max_degree(),
                "loglog_n": round(math.log2(max(2.0, math.log2(n))), 2),
                "paper_rounds": paper.rounds,
                "luby_rounds": baseline.rounds,
                "prefix_phases": paper.extras["prefix_phases"],
            }
        )
    return rows


def run_e02_mis_memory(
    sizes: Sequence[int] = _DEFAULT_SIZES,
    avg_degree: float = 192.0,
    seed: int = 2,
) -> List[Row]:
    """E2: max edges shipped to one machine, normalized by n (Lemma 3.1)."""
    rows: List[Row] = []
    for n in sizes:
        graph = gnp_random_graph(n, _avg_degree_p(n, avg_degree), seed=seed)
        result = solve("mis", graph, backend="mpc", seed=seed)
        shipped = result.extras["max_shipped_edges"]
        rows.append(
            {
                "n": n,
                "edges": graph.num_edges,
                "max_shipped_edges": shipped,
                "shipped_over_n": shipped / n,
                "peak_words_over_n": result.max_machine_words / n,
            }
        )
    return rows


def run_e03_central(
    sizes: Sequence[int] = (128, 256, 512),
    epsilons: Sequence[float] = (0.05, 0.1),
    avg_degree: float = 8.0,
    seed: int = 3,
) -> List[Row]:
    """E3: Central's iteration count and approximation factors (Lemma 4.1)."""
    rows: List[Row] = []
    for n in sizes:
        graph = gnp_random_graph(n, _avg_degree_p(n, avg_degree), seed=seed)
        optimum = len(maximum_matching(graph))
        for eps in epsilons:
            result = central_fractional_matching(graph, epsilon=eps, seed=seed)
            ratio = approximation_ratio(result.weight, float(optimum))
            rows.append(
                {
                    "n": n,
                    "epsilon": eps,
                    "iterations": result.iterations,
                    "log_n_over_eps": round(math.log(n) / eps, 1),
                    "fractional_weight": round(result.weight, 2),
                    "max_matching": optimum,
                    "matching_ratio": round(ratio, 3),
                    "cover_size": len(result.vertex_cover),
                    "cover_over_matching": round(
                        len(result.vertex_cover) / max(1, optimum), 3
                    ),
                }
            )
    return rows


def run_e04_mpc_matching(
    sizes: Sequence[int] = (256, 512, 1024, 2048),
    epsilon: float = 0.1,
    avg_degree: float = 16.0,
    seed: int = 4,
) -> List[Row]:
    """E4: MPC-Simulation phases/rounds and fractional quality (Lemma 4.2)."""
    rows: List[Row] = []
    for n in sizes:
        graph = gnp_random_graph(n, _avg_degree_p(n, avg_degree), seed=seed)
        result = solve(
            "fractional_matching",
            graph,
            backend="mpc",
            config={"epsilon": epsilon},
            seed=seed,
        )
        optimum = len(maximum_matching(graph))
        weight = result.metrics["weight"]
        rows.append(
            {
                "n": n,
                "phases": result.extras["phases"],
                "rounds": result.rounds,
                "iterations": result.extras["iterations"],
                "fractional_weight": round(weight, 2),
                "max_matching": optimum,
                "weight_ratio": round(
                    approximation_ratio(weight, float(optimum)), 3
                ),
                "cover_over_matching": round(
                    result.extras["cover_size"] / max(1, optimum), 3
                ),
            }
        )
    return rows


def run_e05_matching_memory(
    sizes: Sequence[int] = (256, 512, 1024, 2048),
    epsilon: float = 0.1,
    avg_degree: float = 16.0,
    seed: int = 5,
) -> List[Row]:
    """E5: per-machine induced subgraph size during phases (Lemma 4.7)."""
    rows: List[Row] = []
    for n in sizes:
        graph = gnp_random_graph(n, _avg_degree_p(n, avg_degree), seed=seed)
        result = solve(
            "fractional_matching",
            graph,
            backend="mpc",
            config={"epsilon": epsilon},
            seed=seed,
        )
        machine_edges = result.extras["max_machine_edges"]
        rows.append(
            {
                "n": n,
                "edges": graph.num_edges,
                "max_machine_edges": machine_edges,
                "machine_edges_over_n": machine_edges / n,
            }
        )
    return rows


def run_e06_rounding(
    sizes: Sequence[int] = (512, 1024, 2048),
    epsilon: float = 0.1,
    avg_degree: float = 16.0,
    seed: int = 6,
) -> List[Row]:
    """E6: rounding yield vs the |C~|/50 guarantee (Lemma 5.1)."""
    rows: List[Row] = []
    config = MatchingConfig(epsilon=epsilon)
    for n in sizes:
        graph = gnp_random_graph(n, _avg_degree_p(n, avg_degree), seed=seed)
        fractional = mpc_fractional_matching(graph, config=config, seed=seed)
        candidates = fractional.rounding_candidates(epsilon)
        outcome = round_fractional_matching_detailed(
            graph, fractional.matching.weights, candidates, seed=seed
        )
        yield_constant = (
            len(outcome.matching) / len(candidates) if candidates else 0.0
        )
        rows.append(
            {
                "n": n,
                "candidates": len(candidates),
                "rounded_matching": len(outcome.matching),
                "proposals": outcome.proposals,
                "collisions": outcome.collisions,
                "yield_per_candidate": round(yield_constant, 3),
                "paper_guarantee": 1.0 / 50.0,
            }
        )
    return rows


def run_e07_integral(
    sizes: Sequence[int] = (256, 512, 1024),
    epsilons: Sequence[float] = (0.1,),
    avg_degree: float = 12.0,
    seed: int = 7,
) -> List[Row]:
    """E7: integral matching + cover quality and rounds (Theorem 1.2)."""
    rows: List[Row] = []
    for n in sizes:
        graph = gnp_random_graph(n, _avg_degree_p(n, avg_degree), seed=seed)
        optimum = len(maximum_matching(graph))
        for eps in epsilons:
            config = MatchingConfig(epsilon=eps)
            result = solve("matching", graph, config=config, seed=seed)
            cover = solve("vertex_cover", graph, config=config, seed=seed)
            rows.append(
                {
                    "n": n,
                    "epsilon": eps,
                    "matching": result.size,
                    "max_matching": optimum,
                    "ratio": round(
                        approximation_ratio(result.size, float(optimum)), 3
                    ),
                    "guarantee": round(2.0 + eps, 2),
                    "rounds": result.rounds,
                    "passes": result.extras["passes"],
                    "cover_size": cover.size,
                    "cover_over_matching": round(cover.size / max(1, optimum), 3),
                }
            )
    return rows


def run_e08_one_plus_eps(
    n: int = 512,
    epsilons: Sequence[float] = (0.5, 0.33, 0.2),
    avg_degree: float = 8.0,
    seed: int = 8,
) -> List[Row]:
    """E8: (1+ε) matching quality vs ε (Corollary 1.3)."""
    graph = gnp_random_graph(n, _avg_degree_p(n, avg_degree), seed=seed)
    optimum = len(maximum_matching(graph))
    rows: List[Row] = []
    for eps in epsilons:
        result = solve(
            "one_plus_eps_matching", graph, config={"epsilon": eps}, seed=seed
        )
        rows.append(
            {
                "n": n,
                "epsilon": eps,
                "matching": result.size,
                "max_matching": optimum,
                "ratio": round(
                    approximation_ratio(result.size, float(optimum)), 4
                ),
                "guarantee": round(1.0 + eps, 2),
                "max_path_length": result.extras["max_path_length"],
                "rounds": result.rounds,
                "sweeps": result.extras["sweeps"],
            }
        )
    return rows


def run_e09_weighted(
    sizes: Sequence[int] = (64, 128, 256),
    epsilon: float = 0.1,
    avg_degree: float = 8.0,
    seed: int = 9,
) -> List[Row]:
    """E9: weighted matching quality (Corollary 1.4).

    Exact baselines via brute force are only feasible at tiny sizes, so the
    first row uses brute force and larger rows compare against the greedy
    weight upper bound ``2 * OPT >= greedy`` heuristic baseline.
    """
    rows: List[Row] = []
    for n in sizes:
        weighted = random_weighted_graph(
            n, _avg_degree_p(n, avg_degree), distribution="zipf", seed=seed
        )
        result = solve(
            "weighted_matching", weighted, config={"epsilon": epsilon}, seed=seed
        )
        weight = result.metrics["weight"]
        row: Row = {
            "n": n,
            "classes": result.extras["classes"],
            "matching_weight": round(weight, 3),
            "rounds": result.rounds,
        }
        if weighted.num_edges <= 60:
            _, opt_weight = brute_force_maximum_weight_matching(weighted)
            row["optimal_weight"] = round(opt_weight, 3)
            row["ratio"] = round(approximation_ratio(weight, opt_weight), 3)
        rows.append(row)
    return rows


def run_e10_baselines(
    n: int = 1024,
    avg_degree: float = 16.0,
    seed: int = 10,
) -> List[Row]:
    """E10: head-to-head rounds/quality table across algorithms."""
    graph = gnp_random_graph(n, _avg_degree_p(n, avg_degree), seed=seed)
    optimum = len(maximum_matching(graph))
    config = MatchingConfig()
    words = ClusterSpec.from_graph(graph, config.memory_factor).words_per_machine

    paper_mis = solve("mis", graph, backend="mpc", seed=seed)
    luby = luby_mis(graph, seed=seed)
    paper_matching = solve("matching", graph, config=config, seed=seed)
    filtering = filtering_maximal_matching(graph, words_per_machine=words, seed=seed)
    israeli = israeli_itai_matching(graph, seed=seed)
    greedy = greedy_maximal_matching(graph, seed=seed)

    return [
        {
            "algorithm": "paper MIS (Thm 1.1)",
            "rounds": paper_mis.rounds,
            "output_size": paper_mis.size,
            "quality": "maximal independent set",
        },
        {
            "algorithm": "Luby MIS [Lub86]",
            "rounds": luby.rounds,
            "output_size": len(luby.mis),
            "quality": "maximal independent set",
        },
        {
            "algorithm": "paper matching (Thm 1.2)",
            "rounds": paper_matching.rounds,
            "output_size": paper_matching.size,
            "quality": f"ratio {approximation_ratio(paper_matching.size, float(optimum)):.3f}",
        },
        {
            "algorithm": "LMSV11 filtering",
            "rounds": filtering.rounds,
            "output_size": len(filtering.matching),
            "quality": f"ratio {approximation_ratio(len(filtering.matching), float(optimum)):.3f}",
        },
        {
            "algorithm": "Israeli-Itai [II86]",
            "rounds": israeli.rounds,
            "output_size": len(israeli.matching),
            "quality": f"ratio {approximation_ratio(len(israeli.matching), float(optimum)):.3f}",
        },
        {
            "algorithm": "greedy maximal (sequential)",
            "rounds": graph.num_edges,
            "output_size": len(greedy),
            "quality": f"ratio {approximation_ratio(len(greedy), float(optimum)):.3f}",
        },
    ]


def run_e11_concentration(
    sizes: Sequence[int] = (256, 512, 1024),
    epsilon: float = 0.1,
    avg_degree: float = 16.0,
    seed: int = 11,
) -> List[Row]:
    """E11: coupled-process divergence statistics (Lemmas 4.11-4.15)."""
    rows: List[Row] = []
    config = MatchingConfig(epsilon=epsilon)
    for n in sizes:
        graph = gnp_random_graph(n, _avg_degree_p(n, avg_degree), seed=seed)
        report = coupled_run(graph, config=config, seed=seed)
        rows.append(
            {
                "n": n,
                "bad_fraction": round(report.bad_fraction, 4),
                "mean_load_dev": round(report.mean_load_deviation, 4),
                "max_load_dev": round(report.max_load_deviation, 4),
                "cover_sym_diff": report.cover_symmetric_difference,
                "central_weight": round(report.central_weight, 2),
                "mpc_weight": round(report.mpc_weight, 2),
            }
        )
    return rows


def run_e12_congested_clique(
    sizes: Sequence[int] = (256, 512, 1024, 2048),
    avg_degree: float = 192.0,
    seed: int = 12,
) -> List[Row]:
    """E12: CONGESTED-CLIQUE MIS rounds and Lenzen routing volume."""
    rows: List[Row] = []
    for n in sizes:
        graph = gnp_random_graph(n, _avg_degree_p(n, avg_degree), seed=seed)
        result = solve("mis", graph, backend="congested_clique", seed=seed)
        routed = result.extras["max_routed_messages"]
        rows.append(
            {
                "n": n,
                "rounds": result.rounds,
                "prefix_phases": result.extras["prefix_phases"],
                "max_routed": routed,
                "routed_over_n": routed / n,
            }
        )
    return rows


def run_e13_residual_degree(
    n: int = 2048,
    avg_degree: float = 256.0,
    rank_fractions: Sequence[float] = (0.01, 0.02, 0.05, 0.1, 0.2, 0.5),
    seed: int = 13,
) -> List[Row]:
    """E13: residual max degree after greedy up to rank r (Lemma 3.1).

    The lemma (inherited from [ACG+15]) states that after the randomized
    greedy process consumes ranks 1..r, the residual graph's maximum degree
    is O(n log n / r) w.h.p.  This experiment measures the decay curve and
    reports it against the explicit 20 n ln(n) / r bound from the proof.
    """
    from repro.core.greedy_mis import residual_after_prefix
    from repro.utils.rng import make_rng

    graph = gnp_random_graph(n, _avg_degree_p(n, avg_degree), seed=seed)
    ranks = list(range(n))
    make_rng(seed).shuffle(ranks)
    rows: List[Row] = []
    for fraction in rank_fractions:
        r = max(1, int(fraction * n))
        residual, mis = residual_after_prefix(graph, ranks, up_to_rank=r)
        bound = 20.0 * n * math.log(n) / r
        measured = residual.max_degree()
        rows.append(
            {
                "rank_fraction": fraction,
                "rank": r,
                "residual_max_degree": measured,
                "lemma_bound": round(bound, 1),
                "measured_over_bound": round(measured / bound, 4),
                "mis_so_far": len(mis),
            }
        )
    return rows
