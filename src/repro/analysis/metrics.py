"""Measurement helpers for the experiment harness."""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple


def approximation_ratio(measured: float, optimal: float) -> float:
    """``optimal / measured`` for maximization problems (≥ 1 when valid).

    For minimization problems pass the arguments swapped.  A zero
    ``measured`` with nonzero ``optimal`` returns ``inf``.
    """
    if optimal == 0:
        return 1.0
    if measured == 0:
        return math.inf
    return optimal / measured


def doubling_ratios(values: Sequence[float]) -> List[float]:
    """Successive ratios ``values[i+1]/values[i]``.

    For a series measured at doubling problem sizes: ratios near 1 indicate
    (doubly-)logarithmic growth, near 2 linear growth.
    """
    return [
        values[i + 1] / values[i] if values[i] else math.inf
        for i in range(len(values) - 1)
    ]


def loglog_slope(sizes: Sequence[int], rounds: Sequence[float]) -> float:
    """Least-squares slope of ``rounds`` against ``log2 log2 size``.

    The paper's headline claim is rounds ``= O(log log n)``: a bounded,
    modest slope here (with small residuals) is the measurable form of the
    claim.  Sizes must be > 2 so ``log log`` is defined.
    """
    if len(sizes) != len(rounds) or len(sizes) < 2:
        raise ValueError("need two equal-length series of length >= 2")
    xs = [math.log2(max(1.001, math.log2(s))) for s in sizes]
    ys = list(rounds)
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    covariance = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    variance = sum((x - mean_x) ** 2 for x in xs)
    if variance == 0:
        return 0.0
    return covariance / variance


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def quantiles(values: Sequence[float], points: Sequence[float]) -> List[float]:
    """Empirical quantiles (nearest-rank) of ``values`` at ``points``."""
    if not values:
        raise ValueError("quantiles of empty sequence")
    ordered = sorted(values)
    result = []
    for p in points:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"quantile point {p} outside [0, 1]")
        rank = min(len(ordered) - 1, max(0, math.ceil(p * len(ordered)) - 1))
        result.append(ordered[rank])
    return result
