"""Synthetic graph generators used by tests, examples, and benchmarks.

The paper's algorithms are evaluated on families that stress different
regimes: dense Erdős–Rényi graphs (large Δ, exercising the rank-prefix
compression), power-law graphs (heterogeneous degrees, the "social network"
workload the MPC literature motivates), bipartite graphs (matching
workloads), and structured families (paths, grids, stars) whose optima are
known in closed form — those anchor the approximation-ratio experiments.

All generators are deterministic given ``seed``.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.graph.graph import Graph, canonical_edge
from repro.graph.weighted import WeightedGraph
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import require, require_probability


def gnp_random_graph(n: int, p: float, seed: SeedLike = None) -> Graph:
    """Erdős–Rényi ``G(n, p)``: each pair is an edge independently w.p. ``p``.

    Uses the geometric skipping method (Batagelj–Brandes), so generation is
    ``O(n + m)`` rather than ``O(n^2)`` — benchmarks sweep to ``n = 2^14``.
    """
    require(n >= 0, f"n must be >= 0, got {n}")
    require_probability(p, "p")
    graph = Graph(n)
    if p == 0.0 or n < 2:
        return graph
    if p == 1.0:
        for u in range(n):
            for v in range(u + 1, n):
                graph.add_edge(u, v)
        return graph
    rng = make_rng(seed)
    log_q = math.log(1.0 - p)
    v, w = 1, -1
    while v < n:
        w += 1 + int(math.log(1.0 - rng.random()) / log_q)
        while w >= v and v < n:
            w -= v
            v += 1
        if v < n:
            graph.add_edge(v, w)
    return graph


def gnm_random_graph(n: int, m: int, seed: SeedLike = None) -> Graph:
    """Uniform random graph with exactly ``m`` distinct edges."""
    require(n >= 0, f"n must be >= 0, got {n}")
    max_edges = n * (n - 1) // 2
    require(0 <= m <= max_edges, f"m must be in [0, {max_edges}], got {m}")
    rng = make_rng(seed)
    graph = Graph(n)
    if m > max_edges // 2:
        # Dense: sample the complement instead.
        all_edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
        chosen = rng.sample(all_edges, m)
        for u, v in chosen:
            graph.add_edge(u, v)
        return graph
    seen = set()
    while len(seen) < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        edge = canonical_edge(u, v)
        if edge not in seen:
            seen.add(edge)
            graph.add_edge(*edge)
    return graph


def barabasi_albert(n: int, attachment: int, seed: SeedLike = None) -> Graph:
    """Preferential-attachment (power-law) graph.

    Starts from a clique on ``attachment + 1`` vertices; each new vertex
    attaches to ``attachment`` distinct existing vertices chosen with
    probability proportional to degree (implemented with the repeated-
    endpoint trick: sampling a uniform element of the edge-endpoint list is
    degree-proportional sampling).
    """
    require(attachment >= 1, f"attachment must be >= 1, got {attachment}")
    require(
        n > attachment,
        f"n must exceed attachment ({attachment}), got {n}",
    )
    rng = make_rng(seed)
    graph = Graph(n)
    endpoint_pool: List[int] = []
    seed_size = attachment + 1
    for u in range(seed_size):
        for v in range(u + 1, seed_size):
            graph.add_edge(u, v)
            endpoint_pool.extend((u, v))
    for v in range(seed_size, n):
        targets = set()
        while len(targets) < attachment:
            targets.add(rng.choice(endpoint_pool))
        for u in targets:
            graph.add_edge(u, v)
            endpoint_pool.extend((u, v))
    return graph


def random_bipartite_graph(
    left: int, right: int, p: float, seed: SeedLike = None
) -> Graph:
    """Bipartite ``G(left + right, p)``: sides ``0..left-1`` and ``left..``."""
    require(left >= 0 and right >= 0, "side sizes must be >= 0")
    require_probability(p, "p")
    rng = make_rng(seed)
    graph = Graph(left + right)
    for u in range(left):
        for v in range(left, left + right):
            if rng.random() < p:
                graph.add_edge(u, v)
    return graph


def planted_matching_graph(
    pairs: int, noise_edges: int, seed: SeedLike = None
) -> Tuple[Graph, List[Tuple[int, int]]]:
    """A graph with a planted perfect matching plus random noise edges.

    Returns ``(graph, planted)`` where ``planted`` is a perfect matching of
    size ``pairs`` — a known lower bound on the maximum matching, used to
    check approximation factors on sizes too large for exact solvers.
    """
    require(pairs >= 1, f"pairs must be >= 1, got {pairs}")
    rng = make_rng(seed)
    n = 2 * pairs
    vertices = list(range(n))
    rng.shuffle(vertices)
    planted = [
        canonical_edge(vertices[2 * i], vertices[2 * i + 1]) for i in range(pairs)
    ]
    graph = Graph(n, planted)
    added = 0
    while added < noise_edges:
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
            added += 1
    return graph, sorted(planted)


def path_graph(n: int) -> Graph:
    """The path ``0 - 1 - ... - n-1``."""
    return Graph(n, ((i, i + 1) for i in range(n - 1)))


def cycle_graph(n: int) -> Graph:
    """The cycle on ``n >= 3`` vertices."""
    require(n >= 3, f"cycle needs n >= 3, got {n}")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Graph(n, edges)


def star_graph(leaves: int) -> Graph:
    """A star: center ``0`` joined to ``leaves`` leaf vertices."""
    require(leaves >= 0, f"leaves must be >= 0, got {leaves}")
    return Graph(leaves + 1, ((0, i) for i in range(1, leaves + 1)))


def complete_graph(n: int) -> Graph:
    """The complete graph ``K_n``."""
    return Graph(n, ((u, v) for u in range(n) for v in range(u + 1, n)))


def grid_graph(rows: int, cols: int) -> Graph:
    """The ``rows x cols`` grid graph."""
    require(rows >= 1 and cols >= 1, "grid dimensions must be >= 1")
    graph = Graph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                graph.add_edge(v, v + 1)
            if r + 1 < rows:
                graph.add_edge(v, v + cols)
    return graph


def caterpillar(spine: int, legs_per_vertex: int) -> Graph:
    """A caterpillar tree: a path spine with pendant legs.

    Maximum matching and minimum vertex cover are easy to reason about on
    caterpillars, making them good approximation-ratio fixtures.
    """
    require(spine >= 1, f"spine must be >= 1, got {spine}")
    require(legs_per_vertex >= 0, "legs_per_vertex must be >= 0")
    n = spine + spine * legs_per_vertex
    graph = Graph(n)
    for i in range(spine - 1):
        graph.add_edge(i, i + 1)
    next_leaf = spine
    for i in range(spine):
        for _ in range(legs_per_vertex):
            graph.add_edge(i, next_leaf)
            next_leaf += 1
    return graph


def random_weighted_graph(
    n: int,
    p: float,
    max_weight: float = 100.0,
    distribution: str = "uniform",
    seed: SeedLike = None,
) -> WeightedGraph:
    """A ``G(n, p)`` graph with random positive edge weights.

    ``distribution`` is ``"uniform"`` (weights in ``(0, max_weight]``) or
    ``"zipf"`` (heavy-tailed, weight ``max_weight / rank``) — the latter
    models marketplace-style valuations where a few edges dominate, the
    regime where weight-oblivious matching fails badly.
    """
    require(distribution in ("uniform", "zipf"), "unknown weight distribution")
    structure = gnp_random_graph(n, p, seed=seed)
    weight_rng = make_rng(make_rng(seed).getrandbits(64) ^ 0x5EED5)
    weighted = WeightedGraph(n)
    for rank, (u, v) in enumerate(structure.edges(), start=1):
        if distribution == "uniform":
            w = weight_rng.uniform(1e-9, max_weight)
        else:
            w = max_weight / rank
        weighted.add_edge(u, v, w)
    return weighted
