"""Edge-weighted graphs, used by the weighted matching reduction (Cor 1.4)."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Tuple

from repro.graph.graph import Edge, Graph, canonical_edge


class WeightedGraph:
    """An undirected simple graph with positive edge weights.

    Composition over inheritance: wraps a :class:`Graph` plus a weight map,
    so every unweighted algorithm can run on :attr:`structure` directly.
    """

    __slots__ = ("_graph", "_weights")

    def __init__(
        self,
        num_vertices: int,
        weighted_edges: Iterable[Tuple[int, int, float]] = (),
    ) -> None:
        self._graph = Graph(num_vertices)
        self._weights: Dict[Edge, float] = {}
        for u, v, w in weighted_edges:
            self.add_edge(u, v, w)

    @property
    def structure(self) -> Graph:
        """The underlying unweighted graph (shared, do not mutate)."""
        return self._graph

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return self._graph.num_vertices

    @property
    def num_edges(self) -> int:
        """Number of edges."""
        return self._graph.num_edges

    def add_edge(self, u: int, v: int, weight: float) -> None:
        """Insert edge ``{u, v}`` with ``weight > 0``."""
        if weight <= 0:
            raise ValueError(f"edge weight must be positive, got {weight!r}")
        self._graph.add_edge(u, v)
        self._weights[canonical_edge(u, v)] = float(weight)

    def weight(self, u: int, v: int) -> float:
        """Weight of edge ``{u, v}``."""
        return self._weights[canonical_edge(u, v)]

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate ``(u, v, weight)`` triples in canonical edge order."""
        for u, v in self._graph.edges():
            yield u, v, self._weights[(u, v)]

    def max_weight(self) -> float:
        """Largest edge weight (0.0 on an edgeless graph)."""
        return max(self._weights.values(), default=0.0)

    def min_weight(self) -> float:
        """Smallest edge weight (0.0 on an edgeless graph)."""
        return min(self._weights.values(), default=0.0)

    def matching_weight(self, matching: Iterable[Edge]) -> float:
        """Total weight of a set of edges."""
        return sum(self._weights[canonical_edge(u, v)] for u, v in matching)

    def subgraph_with_weight_at_least(self, threshold: float) -> "WeightedGraph":
        """The sub-weighted-graph keeping edges of weight ``>= threshold``."""
        kept = [
            (u, v, w) for u, v, w in self.edges() if w >= threshold
        ]
        return WeightedGraph(self.num_vertices, kept)

    def __repr__(self) -> str:
        return f"WeightedGraph(n={self.num_vertices}, m={self.num_edges})"
