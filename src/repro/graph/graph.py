"""An undirected simple graph with integer vertices ``0..n-1``.

The representation is an adjacency list of Python sets, the right trade-off
for this library: the MPC algorithms repeatedly take induced subgraphs,
delete closed neighborhoods, and iterate neighbor sets, all of which are
O(degree) here.  Vertices are dense integers so permutation ranks (Section 3
of the paper) and machine assignments are plain list lookups.

Edges are canonically stored as ``(min(u, v), max(u, v))`` tuples everywhere
in the library.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Sequence, Set, Tuple

Edge = Tuple[int, int]


def canonical_edge(u: int, v: int) -> Edge:
    """The canonical ``(small, large)`` form of edge ``{u, v}``."""
    return (u, v) if u < v else (v, u)


class Graph:
    """Undirected simple graph on vertex set ``{0, ..., n-1}``.

    Parameters
    ----------
    num_vertices:
        Size of the vertex set.  Isolated vertices are allowed and common
        (residual graphs in the greedy MIS simulation shrink by deletion).
    edges:
        Optional iterable of ``(u, v)`` pairs.  Self-loops are rejected;
        duplicate edges are collapsed.
    """

    __slots__ = ("_n", "_adj", "_num_edges")

    def __init__(self, num_vertices: int, edges: Iterable[Edge] = ()) -> None:
        if num_vertices < 0:
            raise ValueError(f"num_vertices must be >= 0, got {num_vertices}")
        self._n = num_vertices
        self._adj: List[Set[int]] = [set() for _ in range(num_vertices)]
        self._num_edges = 0
        for u, v in edges:
            self.add_edge(u, v)

    # -- construction -----------------------------------------------------

    @classmethod
    def from_edges(cls, edges: Iterable[Edge]) -> "Graph":
        """Build a graph sized to the maximum endpoint in ``edges``."""
        edge_list = [canonical_edge(u, v) for u, v in edges]
        n = 1 + max((e[1] for e in edge_list), default=-1)
        return cls(n, edge_list)

    def add_edge(self, u: int, v: int) -> None:
        """Insert edge ``{u, v}``; no-op if already present."""
        if u == v:
            raise ValueError(f"self-loop at vertex {u} is not allowed")
        self._check_vertex(u)
        self._check_vertex(v)
        if v not in self._adj[u]:
            self._adj[u].add(v)
            self._adj[v].add(u)
            self._num_edges += 1

    def remove_edge(self, u: int, v: int) -> None:
        """Delete edge ``{u, v}``; raises ``KeyError`` if absent."""
        self._adj[u].remove(v)
        self._adj[v].remove(u)
        self._num_edges -= 1

    def copy(self) -> "Graph":
        """An independent deep copy."""
        clone = Graph(self._n)
        clone._adj = [set(neighbors) for neighbors in self._adj]
        clone._num_edges = self._num_edges
        return clone

    # -- basic accessors ---------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of edges ``|E|``."""
        return self._num_edges

    def vertices(self) -> range:
        """The vertex set as a range."""
        return range(self._n)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge."""
        return 0 <= u < self._n and v in self._adj[u]

    def neighbors(self, v: int) -> FrozenSet[int]:
        """The neighborhood ``N(v)`` as an immutable set."""
        self._check_vertex(v)
        return frozenset(self._adj[v])

    def neighbors_view(self, v: int) -> Set[int]:
        """The live neighbor set of ``v`` (do not mutate; hot-path access)."""
        return self._adj[v]

    def degree(self, v: int) -> int:
        """Degree of ``v``."""
        self._check_vertex(v)
        return len(self._adj[v])

    def max_degree(self) -> int:
        """Maximum degree ``Δ`` (0 on the empty graph)."""
        if self._n == 0:
            return 0
        return max(len(neighbors) for neighbors in self._adj)

    def degrees(self) -> List[int]:
        """Degree sequence indexed by vertex."""
        return [len(neighbors) for neighbors in self._adj]

    def edges(self) -> Iterator[Edge]:
        """Iterate edges in canonical form, ascending."""
        for u in range(self._n):
            for v in self._adj[u]:
                if u < v:
                    yield (u, v)

    def edge_list(self) -> List[Edge]:
        """All edges as a sorted list."""
        return sorted(self.edges())

    # -- structural operations ---------------------------------------------

    def induced_subgraph(self, vertex_subset: Iterable[int]) -> "Graph":
        """The induced subgraph ``G[V']`` *re-labelled* onto ``0..|V'|-1``.

        Returns a graph whose vertex ``i`` corresponds to the ``i``-th
        smallest vertex of ``vertex_subset``.  Use
        :meth:`induced_edges` when original labels must be preserved.
        """
        ordered = sorted(set(vertex_subset))
        index = {v: i for i, v in enumerate(ordered)}
        sub = Graph(len(ordered))
        for v in ordered:
            for u in self._adj[v]:
                if u > v and u in index:
                    sub.add_edge(index[v], index[u])
        return sub

    def induced_edges(self, vertex_subset: Iterable[int]) -> List[Edge]:
        """Edges of ``G[V']`` with original labels."""
        subset = set(vertex_subset)
        result: List[Edge] = []
        for v in subset:
            for u in self._adj[v]:
                if u > v and u in subset:
                    result.append((v, u))
        return result

    def remove_closed_neighborhood(self, v: int) -> Set[int]:
        """Delete ``v`` and all its neighbors; return the deleted set.

        Deletion means "isolate": the vertex keeps its label but loses all
        incident edges, matching how the greedy MIS residual graph evolves.
        """
        removed = set(self._adj[v]) | {v}
        for w in removed:
            self.isolate(w)
        return removed

    def isolate(self, v: int) -> None:
        """Remove all edges incident to ``v``."""
        for u in list(self._adj[v]):
            self.remove_edge(v, u)

    def line_graph(self) -> Tuple["Graph", List[Edge]]:
        """The line graph ``L(G)`` and the edge ordering defining its vertices.

        Vertex ``i`` of ``L(G)`` is ``edge_order[i]``; two line-graph
        vertices are adjacent iff the underlying edges share an endpoint.
        Running an MIS algorithm on ``L(G)`` yields a maximal matching of
        ``G`` (Luby's classic reduction, referenced in the paper's intro).
        """
        edge_order = self.edge_list()
        index: Dict[Edge, int] = {e: i for i, e in enumerate(edge_order)}
        lg = Graph(len(edge_order))
        for v in range(self._n):
            incident = sorted(self._adj[v])
            for a_idx in range(len(incident)):
                for b_idx in range(a_idx + 1, len(incident)):
                    e1 = canonical_edge(v, incident[a_idx])
                    e2 = canonical_edge(v, incident[b_idx])
                    lg.add_edge(index[e1], index[e2])
        return lg, edge_order

    def connected_components(self) -> List[List[int]]:
        """Connected components as sorted vertex lists."""
        seen = [False] * self._n
        components: List[List[int]] = []
        for start in range(self._n):
            if seen[start]:
                continue
            stack = [start]
            seen[start] = True
            component = []
            while stack:
                v = stack.pop()
                component.append(v)
                for u in self._adj[v]:
                    if not seen[u]:
                        seen[u] = True
                        stack.append(u)
            components.append(sorted(component))
        return components

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._n == other._n and self._adj == other._adj

    def __hash__(self) -> int:  # pragma: no cover - graphs are mutable
        raise TypeError("Graph is mutable and unhashable")

    def __repr__(self) -> str:
        return f"Graph(n={self._n}, m={self._num_edges})"

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self._n:
            raise ValueError(f"vertex {v} out of range [0, {self._n})")
