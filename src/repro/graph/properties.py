"""Graph-solution validators.

Every algorithm's output is checked against these predicates in the test
suite; they are the ground-truth definitions of the objects the paper
computes (Section 2, Preliminaries).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Set, Tuple

from repro.graph.graph import Edge, Graph, canonical_edge


def is_independent_set(graph: Graph, vertex_set: Iterable[int]) -> bool:
    """Whether no two vertices of ``vertex_set`` are adjacent."""
    chosen = set(vertex_set)
    for v in chosen:
        if any(u in chosen for u in graph.neighbors_view(v)):
            return False
    return True


def is_maximal_independent_set(graph: Graph, vertex_set: Iterable[int]) -> bool:
    """Whether ``vertex_set`` is independent and no vertex can be added."""
    chosen = set(vertex_set)
    if not is_independent_set(graph, chosen):
        return False
    for v in graph.vertices():
        if v in chosen:
            continue
        if not any(u in chosen for u in graph.neighbors_view(v)):
            return False
    return True


def is_matching(graph: Graph, edges: Iterable[Edge]) -> bool:
    """Whether ``edges`` are graph edges and pairwise vertex-disjoint."""
    used: Set[int] = set()
    for u, v in edges:
        if not graph.has_edge(u, v):
            return False
        if u in used or v in used:
            return False
        used.add(u)
        used.add(v)
    return True


def is_maximal_matching(graph: Graph, edges: Iterable[Edge]) -> bool:
    """Whether ``edges`` is a matching that no graph edge can extend."""
    matching = [canonical_edge(u, v) for u, v in edges]
    if not is_matching(graph, matching):
        return False
    matched = matching_vertices(matching)
    for u, v in graph.edges():
        if u not in matched and v not in matched:
            return False
    return True


def matching_vertices(edges: Iterable[Edge]) -> Set[int]:
    """The set of endpoints of a set of edges."""
    covered: Set[int] = set()
    for u, v in edges:
        covered.add(u)
        covered.add(v)
    return covered


def is_vertex_cover(graph: Graph, vertex_set: Iterable[int]) -> bool:
    """Whether every edge has at least one endpoint in ``vertex_set``."""
    cover = set(vertex_set)
    return all(u in cover or v in cover for u, v in graph.edges())


def is_valid_fractional_matching(
    graph: Graph, weights: Mapping[Edge, float], tolerance: float = 1e-9
) -> bool:
    """Whether edge weights are nonnegative and each vertex's sum is ≤ 1.

    This is the LP-feasibility condition the paper's duality argument
    (Lemma 4.1) rests on; ``tolerance`` absorbs float accumulation.
    """
    loads: Dict[int, float] = {}
    for (u, v), x in weights.items():
        if x < -tolerance:
            return False
        if not graph.has_edge(u, v):
            return False
        loads[u] = loads.get(u, 0.0) + x
        loads[v] = loads.get(v, 0.0) + x
    return all(load <= 1.0 + tolerance for load in loads.values())


def fractional_matching_weight(weights: Mapping[Edge, float]) -> float:
    """Total weight ``sum_e x_e`` of a fractional matching."""
    return sum(weights.values())


def vertex_loads(weights: Mapping[Edge, float]) -> Dict[int, float]:
    """Per-vertex load ``y_v = sum_{e ∋ v} x_e``."""
    loads: Dict[int, float] = {}
    for (u, v), x in weights.items():
        loads[u] = loads.get(u, 0.0) + x
        loads[v] = loads.get(v, 0.0) + x
    return loads
