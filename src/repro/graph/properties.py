"""Graph-solution validators.

Every algorithm's output is checked against these predicates in the test
suite; they are the ground-truth definitions of the objects the paper
computes (Section 2, Preliminaries).

CSR inputs (:class:`~repro.graph.csr.CSRGraph`, including the
memory-mapped out-of-core subclass) take vectorized chunked paths that
scan adjacency through
:meth:`~repro.graph.csr.CSRGraph.adjacency_chunks` — same predicates,
O(chunk) residency, no per-vertex Python loops.  That is what lets the
n=10M counter-mode solutions be validated at all (see OUT_OF_CORE.md).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Set, Tuple, Union

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.graph import Edge, Graph, canonical_edge

GraphLike = Union[Graph, CSRGraph]


def _vertex_mask(n: int, vertex_set: Iterable[int]) -> np.ndarray:
    """Boolean membership mask over ``range(n)`` (raises if out of range)."""
    if isinstance(vertex_set, np.ndarray):
        ids = vertex_set.astype(np.int64, copy=False)
    else:
        ids = np.fromiter(vertex_set, dtype=np.int64)
    mask = np.zeros(n, dtype=bool)
    mask[ids] = True
    return mask


def is_independent_set(graph: GraphLike, vertex_set: Iterable[int]) -> bool:
    """Whether no two vertices of ``vertex_set`` are adjacent."""
    if isinstance(graph, CSRGraph):
        chosen = _vertex_mask(graph.num_vertices, vertex_set)
        return not any(
            bool(np.any(chosen[src] & chosen[dst]))
            for src, dst in graph.adjacency_chunks()
        )
    chosen = set(vertex_set)
    for v in chosen:
        if any(u in chosen for u in graph.neighbors_view(v)):
            return False
    return True


def is_maximal_independent_set(
    graph: GraphLike, vertex_set: Iterable[int]
) -> bool:
    """Whether ``vertex_set`` is independent and no vertex can be added."""
    if isinstance(graph, CSRGraph):
        # Single adjacency pass: an edge inside the set refutes
        # independence; otherwise every out-of-set vertex needs a chosen
        # neighbor (isolated unchosen vertices correctly fail).
        chosen = _vertex_mask(graph.num_vertices, vertex_set)
        covered = np.zeros(graph.num_vertices, dtype=bool)
        for src, dst in graph.adjacency_chunks():
            if np.any(chosen[src] & chosen[dst]):
                return False
            covered[src[chosen[dst]]] = True
        return bool(np.all(chosen | covered))
    chosen = set(vertex_set)
    if not is_independent_set(graph, chosen):
        return False
    for v in graph.vertices():
        if v in chosen:
            continue
        if not any(u in chosen for u in graph.neighbors_view(v)):
            return False
    return True


def is_matching(graph: Graph, edges: Iterable[Edge]) -> bool:
    """Whether ``edges`` are graph edges and pairwise vertex-disjoint."""
    used: Set[int] = set()
    for u, v in edges:
        if not graph.has_edge(u, v):
            return False
        if u in used or v in used:
            return False
        used.add(u)
        used.add(v)
    return True


def is_maximal_matching(graph: Graph, edges: Iterable[Edge]) -> bool:
    """Whether ``edges`` is a matching that no graph edge can extend."""
    matching = [canonical_edge(u, v) for u, v in edges]
    if not is_matching(graph, matching):
        return False
    matched = matching_vertices(matching)
    for u, v in graph.edges():
        if u not in matched and v not in matched:
            return False
    return True


def matching_vertices(edges: Iterable[Edge]) -> Set[int]:
    """The set of endpoints of a set of edges."""
    covered: Set[int] = set()
    for u, v in edges:
        covered.add(u)
        covered.add(v)
    return covered


def is_vertex_cover(graph: GraphLike, vertex_set: Iterable[int]) -> bool:
    """Whether every edge has at least one endpoint in ``vertex_set``."""
    if isinstance(graph, CSRGraph):
        cover = _vertex_mask(graph.num_vertices, vertex_set)
        return not any(
            bool(np.any(~cover[src] & ~cover[dst]))
            for src, dst in graph.adjacency_chunks()
        )
    cover = set(vertex_set)
    return all(u in cover or v in cover for u, v in graph.edges())


def is_valid_fractional_matching(
    graph: GraphLike, weights: Mapping[Edge, float], tolerance: float = 1e-9
) -> bool:
    """Whether edge weights are nonnegative and each vertex's sum is ≤ 1.

    This is the LP-feasibility condition the paper's duality argument
    (Lemma 4.1) rests on; ``tolerance`` absorbs float accumulation.
    """
    if isinstance(graph, CSRGraph):
        return _is_valid_fractional_matching_csr(graph, weights, tolerance)
    loads: Dict[int, float] = {}
    for (u, v), x in weights.items():
        if x < -tolerance:
            return False
        if not graph.has_edge(u, v):
            return False
        loads[u] = loads.get(u, 0.0) + x
        loads[v] = loads.get(v, 0.0) + x
    return all(load <= 1.0 + tolerance for load in loads.values())


def _is_valid_fractional_matching_csr(
    graph: CSRGraph, weights: Mapping[Edge, float], tolerance: float
) -> bool:
    """Array form of the feasibility check, chunked over adjacency.

    Edge membership is decided by sorted-key intersection against the
    forward (``src < dst``) slots of each adjacency chunk — each
    canonical edge appears in exactly one chunk, so one pass marks every
    resolvable query.
    """
    if not weights:
        return True
    n = graph.num_vertices
    count = len(weights)
    eu = np.fromiter((edge[0] for edge in weights), dtype=np.int64, count=count)
    ev = np.fromiter((edge[1] for edge in weights), dtype=np.int64, count=count)
    x = np.fromiter(weights.values(), dtype=np.float64, count=count)
    if bool(np.any(x < -tolerance)):
        return False
    in_range = (eu >= 0) & (eu < n) & (ev >= 0) & (ev < n)
    if not bool(np.all(in_range)):
        return False
    lo = np.minimum(eu, ev)
    hi = np.maximum(eu, ev)
    if bool(np.any(lo == hi)):
        return False  # self-loops are never edges of a simple graph
    query = np.sort(lo * np.int64(n) + hi)
    found = np.zeros(len(query), dtype=bool)
    for src, dst in graph.adjacency_chunks():
        forward = src < dst
        slot_keys = src[forward] * np.int64(n) + dst[forward]
        if len(slot_keys) == 0:
            continue
        pos = np.searchsorted(slot_keys, query)
        hit = pos < len(slot_keys)
        hit[hit] = slot_keys[pos[hit]] == query[hit]
        found |= hit
    if not bool(np.all(found)):
        return False
    loads = np.bincount(eu, weights=x, minlength=n) + np.bincount(
        ev, weights=x, minlength=n
    )
    return bool(np.all(loads <= 1.0 + tolerance))


def fractional_matching_weight(weights: Mapping[Edge, float]) -> float:
    """Total weight ``sum_e x_e`` of a fractional matching."""
    return sum(weights.values())


def vertex_loads(weights: Mapping[Edge, float]) -> Dict[int, float]:
    """Per-vertex load ``y_v = sum_{e ∋ v} x_e``."""
    loads: Dict[int, float] = {}
    for (u, v), x in weights.items():
        loads[u] = loads.get(u, 0.0) + x
        loads[v] = loads.get(v, 0.0) + x
    return loads
