"""Plain-text edge-list I/O, with optional gzip compression.

Format: optional comment lines starting with ``#``, then one ``u v`` pair
per line; a header line ``n <num_vertices>`` may pin the vertex count so
trailing isolated vertices survive a round-trip.  Paths ending in ``.gz``
are transparently gzip-compressed on write and decompressed on read.

:func:`read_edge_list` materializes the whole graph; streaming consumers
(:mod:`repro.stream` file replay) use :func:`iter_edge_list`, which yields
bounded chunks of edges without ever holding the full file in memory.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import IO, Iterator, List, Tuple, Union

from repro.graph.graph import Edge, Graph

PathLike = Union[str, Path]

# An edge-list chunk: (num_vertices seen so far, edges in this chunk).
# The vertex count is cumulative — header-declared or implied by the
# largest endpoint read up to and including this chunk — so a consumer
# can size its graph correctly after every chunk.
EdgeChunk = Tuple[int, List[Edge]]

DEFAULT_CHUNK_EDGES = 65536


def open_text(path: PathLike, mode: str) -> IO[str]:
    """Open ``path`` as text, transparently gzipped for ``.gz`` suffixes."""
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def write_edge_list(graph: Graph, path: PathLike) -> None:
    """Write ``graph`` to ``path`` in edge-list format (gzipped if ``.gz``)."""
    with open_text(path, "w") as stream:
        stream.write(f"n {graph.num_vertices}\n")
        for u, v in graph.edges():
            stream.write(f"{u} {v}\n")


def iter_edge_list(
    path: PathLike, chunk_edges: int = DEFAULT_CHUNK_EDGES
) -> Iterator[EdgeChunk]:
    """Stream an edge list as ``(num_vertices, edges)`` chunks.

    Reads line-by-line, so files far larger than memory replay fine; each
    yielded chunk holds at most ``chunk_edges`` edges.  At least one chunk
    is always yielded (possibly with an empty edge list), so the declared
    vertex count of an edge-free file still reaches the consumer.
    """
    if chunk_edges <= 0:
        raise ValueError(f"chunk_edges must be positive, got {chunk_edges}")
    num_vertices = 0
    chunk: List[Edge] = []
    yielded = False
    with open_text(path, "r") as stream:
        for raw_line in stream:
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            if line.startswith("n "):
                num_vertices = max(num_vertices, int(line.split()[1]))
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(f"malformed edge line: {raw_line!r}")
            u, v = int(parts[0]), int(parts[1])
            chunk.append((u, v))
            num_vertices = max(num_vertices, u + 1, v + 1)
            if len(chunk) >= chunk_edges:
                yield num_vertices, chunk
                yielded = True
                chunk = []
    if chunk or not yielded:
        yield num_vertices, chunk


def read_edge_list(path: PathLike) -> Graph:
    """Read a graph written by :func:`write_edge_list` (or any ``u v`` list)."""
    num_vertices = 0
    edges: List[Edge] = []
    for seen_vertices, chunk in iter_edge_list(path):
        num_vertices = seen_vertices
        edges.extend(chunk)
    return Graph(num_vertices, edges)
