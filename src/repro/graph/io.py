"""Plain-text edge-list I/O, with optional gzip compression.

Format: optional comment lines starting with ``#``, then one ``u v`` pair
per line; a header line ``n <num_vertices>`` may pin the vertex count so
trailing isolated vertices survive a round-trip.  Paths ending in ``.gz``
are transparently gzip-compressed on write and decompressed on read.

A header is a *declaration*, not a hint: once some line declares
``n <count>``, any endpoint ``>= count`` (before or after the header) is
an inconsistency and raises a line-numbered :class:`ValueError` instead
of silently growing the vertex count past the declaration.

:func:`read_edge_list` materializes the whole graph; streaming consumers
(:mod:`repro.stream` file replay) use :func:`iter_edge_list`, which yields
bounded chunks of edges without ever holding the full file in memory.
:func:`iter_edge_array` is the bulk variant — NumPy ``(k, 2)`` chunks
parsed a block at a time — feeding the out-of-core builder
(:mod:`repro.ooc.build`) at ~10x the per-line loop's throughput.
"""

from __future__ import annotations

import gzip
import re
from pathlib import Path
from typing import IO, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.graph.graph import Edge, Graph

PathLike = Union[str, Path]

# An edge-list chunk: (num_vertices seen so far, edges in this chunk).
# The vertex count is cumulative — header-declared or implied by the
# largest endpoint read up to and including this chunk — so a consumer
# can size its graph correctly after every chunk.
EdgeChunk = Tuple[int, List[Edge]]

DEFAULT_CHUNK_EDGES = 65536

# Characters per block read of the bulk parser (~4 MB resident).
_BLOCK_CHARS = 1 << 22


def open_text(path: PathLike, mode: str) -> IO[str]:
    """Open ``path`` as text, transparently gzipped for ``.gz`` suffixes."""
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def write_edge_list(graph: Graph, path: PathLike) -> None:
    """Write ``graph`` to ``path`` in edge-list format (gzipped if ``.gz``)."""
    with open_text(path, "w") as stream:
        stream.write(f"n {graph.num_vertices}\n")
        for u, v in graph.edges():
            stream.write(f"{u} {v}\n")


def _header_too_small(path: PathLike, line_no: int, value: int, seen: int):
    return ValueError(
        f"{path}:{line_no}: header declares n={value} but an endpoint "
        f"up to {seen - 1} was already read"
    )


def _endpoint_out_of_range(path: PathLike, line_no: int, endpoint: int, declared: int):
    return ValueError(
        f"{path}:{line_no}: endpoint {endpoint} out of range for "
        f"declared n={declared}"
    )


def iter_edge_list(
    path: PathLike, chunk_edges: int = DEFAULT_CHUNK_EDGES
) -> Iterator[EdgeChunk]:
    """Stream an edge list as ``(num_vertices, edges)`` chunks.

    Reads line-by-line, so files far larger than memory replay fine; each
    yielded chunk holds at most ``chunk_edges`` edges.  At least one chunk
    is always yielded (possibly with an empty edge list), so the declared
    vertex count of an edge-free file still reaches the consumer.
    Endpoints inconsistent with a ``n <count>`` header raise a
    line-numbered :class:`ValueError`.
    """
    if chunk_edges <= 0:
        raise ValueError(f"chunk_edges must be positive, got {chunk_edges}")
    num_vertices = 0
    declared: Optional[int] = None
    chunk: List[Edge] = []
    yielded = False
    with open_text(path, "r") as stream:
        for line_no, raw_line in enumerate(stream, start=1):
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            if line.startswith("n "):
                value = int(line.split()[1])
                if value < num_vertices:
                    raise _header_too_small(path, line_no, value, num_vertices)
                declared = value if declared is None else max(declared, value)
                num_vertices = max(num_vertices, value)
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(
                    f"{path}:{line_no}: malformed edge line: {raw_line!r}"
                )
            u, v = int(parts[0]), int(parts[1])
            top = max(u, v)
            if declared is not None and top >= declared:
                raise _endpoint_out_of_range(path, line_no, top, declared)
            chunk.append((u, v))
            num_vertices = max(num_vertices, top + 1)
            if len(chunk) >= chunk_edges:
                yield num_vertices, chunk
                yielded = True
                chunk = []
    if chunk or not yielded:
        yield num_vertices, chunk


# An edge-array chunk: (num_vertices seen so far, (k, 2) int64 array).
EdgeArrayChunk = Tuple[int, np.ndarray]


class _ArrayParser:
    """Shared header/endpoint bookkeeping for the block parser."""

    def __init__(self, path: PathLike) -> None:
        self.path = path
        self.declared: Optional[int] = None
        self.num_vertices = 0

    def note_header(self, line_no: int, value: int) -> None:
        if value < self.num_vertices:
            raise _header_too_small(self.path, line_no, value, self.num_vertices)
        self.declared = (
            value if self.declared is None else max(self.declared, value)
        )
        self.num_vertices = max(self.num_vertices, value)

    def note_edges(self, first_line_no: int, edges: np.ndarray) -> None:
        if not len(edges):
            return
        per_row_top = np.maximum(edges[:, 0], edges[:, 1])
        top = int(per_row_top.max())
        if self.declared is not None and top >= self.declared:
            offender = int(np.argmax(per_row_top >= self.declared))
            raise _endpoint_out_of_range(
                self.path,
                first_line_no + offender,
                int(per_row_top[offender]),
                self.declared,
            )
        self.num_vertices = max(self.num_vertices, top + 1)


# A block the vectorized tokenizer may handle: strictly `u v` lines.
# Anything else (comments, headers, blanks, malformed lines) drops to the
# per-line parser, which reports exact line numbers.
_FAST_BLOCK = re.compile(r"\d+ \d+(?:\n\d+ \d+)*\Z")


def _parse_block_fast(body: str) -> Optional[np.ndarray]:
    """Parse a block of pure ``u v`` lines; None when it needs the slow path."""
    if _FAST_BLOCK.match(body) is None:
        return None
    tokens = body.split()
    try:
        flat = np.fromiter(map(int, tokens), dtype=np.int64, count=len(tokens))
    except (ValueError, OverflowError):
        return None
    return flat.reshape(-1, 2)


def _parse_block_slow(
    body: str, line_base: int, parser: _ArrayParser
) -> np.ndarray:
    """Line-at-a-time parse of a block with comments/headers/blanks."""
    rows: List[Edge] = []
    pending_start = 0
    out: List[np.ndarray] = []

    def flush() -> None:
        nonlocal rows
        if rows:
            arr = np.array(rows, dtype=np.int64)
            parser.note_edges(pending_start, arr)
            out.append(arr)
            rows = []

    for offset, raw_line in enumerate(body.split("\n")):
        line_no = line_base + offset
        line = raw_line.strip()
        if not line or line.startswith("#"):
            flush()
            continue
        if line.startswith("n "):
            flush()
            parser.note_header(line_no, int(line.split()[1]))
            continue
        parts = line.split()
        if len(parts) != 2:
            flush()
            raise ValueError(
                f"{parser.path}:{line_no}: malformed edge line: {raw_line!r}"
            )
        if not rows:
            pending_start = line_no
        rows.append((int(parts[0]), int(parts[1])))
    flush()
    if not out:
        return np.empty((0, 2), dtype=np.int64)
    return out[0] if len(out) == 1 else np.concatenate(out)


def iter_edge_array(
    path: PathLike, chunk_edges: int = DEFAULT_CHUNK_EDGES
) -> Iterator[EdgeArrayChunk]:
    """Stream an edge list as ``(num_vertices, (k, 2) int64 array)`` chunks.

    Same format, validation, and cumulative-count semantics as
    :func:`iter_edge_list`, but parsed a ~4 MB text block at a time with
    a vectorized tokenizer (blocks containing comments, headers, or
    blank lines fall back to a per-line parse so error messages keep
    exact line numbers).  Each yielded array holds at most
    ``chunk_edges`` rows; at least one chunk is always yielded.
    """
    if chunk_edges <= 0:
        raise ValueError(f"chunk_edges must be positive, got {chunk_edges}")
    parser = _ArrayParser(path)
    pending: List[np.ndarray] = []
    pending_rows = 0
    yielded = False
    line_base = 1  # 1-indexed line number of the first line of `body`
    with open_text(path, "r") as stream:
        leftover = ""
        exhausted = False
        while not exhausted:
            block = stream.read(_BLOCK_CHARS)
            if not block:
                body = leftover
                leftover = ""
                exhausted = True
                if not body:
                    break
            else:
                text = leftover + block
                cut = text.rfind("\n")
                if cut < 0:
                    leftover = text
                    continue
                body, leftover = text[:cut], text[cut + 1 :]
            edges = _parse_block_fast(body)
            if edges is None:
                edges = _parse_block_slow(body, line_base, parser)
            else:
                parser.note_edges(line_base, edges)
            line_base += body.count("\n") + 1
            if len(edges):
                pending.append(edges)
                pending_rows += len(edges)
            while pending_rows >= chunk_edges:
                merged = (
                    pending[0] if len(pending) == 1 else np.concatenate(pending)
                )
                yield parser.num_vertices, merged[:chunk_edges]
                yielded = True
                rest = merged[chunk_edges:]
                pending = [rest] if len(rest) else []
                pending_rows = len(rest)
    if pending_rows or not yielded:
        merged = (
            pending[0]
            if len(pending) == 1
            else (
                np.concatenate(pending)
                if pending
                else np.empty((0, 2), dtype=np.int64)
            )
        )
        yield parser.num_vertices, merged


def read_edge_list(path: PathLike) -> Graph:
    """Read a graph written by :func:`write_edge_list` (or any ``u v`` list)."""
    num_vertices = 0
    edges: List[Edge] = []
    for seen_vertices, chunk in iter_edge_list(path):
        num_vertices = seen_vertices
        edges.extend(chunk)
    return Graph(num_vertices, edges)
