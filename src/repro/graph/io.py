"""Plain-text edge-list I/O.

Format: optional comment lines starting with ``#``, then one ``u v`` pair
per line; a header line ``n <num_vertices>`` may pin the vertex count so
trailing isolated vertices survive a round-trip.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.graph.graph import Graph

PathLike = Union[str, Path]


def write_edge_list(graph: Graph, path: PathLike) -> None:
    """Write ``graph`` to ``path`` in edge-list format."""
    lines = [f"n {graph.num_vertices}"]
    lines.extend(f"{u} {v}" for u, v in graph.edges())
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def read_edge_list(path: PathLike) -> Graph:
    """Read a graph written by :func:`write_edge_list` (or any ``u v`` list)."""
    num_vertices = 0
    edges = []
    for raw_line in Path(path).read_text(encoding="utf-8").splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("n "):
            num_vertices = int(line.split()[1])
            continue
        parts = line.split()
        if len(parts) != 2:
            raise ValueError(f"malformed edge line: {raw_line!r}")
        u, v = int(parts[0]), int(parts[1])
        edges.append((u, v))
        num_vertices = max(num_vertices, u + 1, v + 1)
    return Graph(num_vertices, edges)
