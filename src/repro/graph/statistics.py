"""Workload characterization: degree and structure statistics.

The MPC matching/MIS literature's claims are parameterized by structural
quantities — maximum degree Δ (the `log log Δ` bounds), degree skew (the
power-law motivation), component structure.  This module computes them so
experiments and examples can report *what kind* of graph a measurement
was taken on, and so tests can assert generator families land in their
intended regimes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.graph.graph import Graph


@dataclass(frozen=True)
class DegreeStatistics:
    """Summary of a graph's degree sequence."""

    minimum: int
    maximum: int
    mean: float
    median: int
    variance: float
    isolated_vertices: int

    @property
    def skew_ratio(self) -> float:
        """max/mean — large values indicate hub-dominated (power-law) graphs."""
        return self.maximum / self.mean if self.mean else 0.0


def degree_statistics(graph: Graph) -> DegreeStatistics:
    """Compute the degree summary of ``graph`` (O(n))."""
    degrees = graph.degrees()
    if not degrees:
        return DegreeStatistics(0, 0, 0.0, 0, 0.0, 0)
    n = len(degrees)
    mean = sum(degrees) / n
    variance = sum((d - mean) ** 2 for d in degrees) / n
    ordered = sorted(degrees)
    return DegreeStatistics(
        minimum=ordered[0],
        maximum=ordered[-1],
        mean=mean,
        median=ordered[n // 2],
        variance=variance,
        isolated_vertices=sum(1 for d in degrees if d == 0),
    )


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """Map degree value → number of vertices with that degree."""
    histogram: Dict[int, int] = {}
    for d in graph.degrees():
        histogram[d] = histogram.get(d, 0) + 1
    return histogram


def loglog_degree_bound(graph: Graph) -> float:
    """``log2 log2 Δ`` — the quantity Theorem 1.1's round bound scales with."""
    delta = graph.max_degree()
    if delta < 4:
        return 1.0
    return math.log2(math.log2(delta))


def clustering_coefficient(graph: Graph, vertex: int) -> float:
    """Local clustering coefficient of ``vertex`` (triangle density)."""
    neighbors = sorted(graph.neighbors_view(vertex))
    degree = len(neighbors)
    if degree < 2:
        return 0.0
    closed = 0
    for i in range(degree):
        for j in range(i + 1, degree):
            if graph.has_edge(neighbors[i], neighbors[j]):
                closed += 1
    return 2.0 * closed / (degree * (degree - 1))


def average_clustering(graph: Graph, sample: int = 0, seed: int = 0) -> float:
    """Mean local clustering; optionally over a random vertex sample."""
    vertices: List[int] = list(graph.vertices())
    if not vertices:
        return 0.0
    if sample and sample < len(vertices):
        import random

        vertices = random.Random(seed).sample(vertices, sample)
    return sum(clustering_coefficient(graph, v) for v in vertices) / len(vertices)


def component_size_distribution(graph: Graph) -> List[int]:
    """Sizes of connected components, descending."""
    return sorted(
        (len(component) for component in graph.connected_components()),
        reverse=True,
    )
