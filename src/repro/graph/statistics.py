"""Workload characterization: degree and structure statistics.

The MPC matching/MIS literature's claims are parameterized by structural
quantities — maximum degree Δ (the `log log Δ` bounds), degree skew (the
power-law motivation), component structure.  This module computes them so
experiments and examples can report *what kind* of graph a measurement
was taken on, and so tests can assert generator families land in their
intended regimes.

The degree summaries are vectorized over the degrees array (a CSR graph
hands one over for free via ``np.diff(indptr)``), so they are cheap
enough for the load governor to call on every solve:
:func:`load_summary` is the hot-path entry the governor's peak-hold
estimator primes itself from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.graph.graph import Graph


@dataclass(frozen=True)
class DegreeStatistics:
    """Summary of a graph's degree sequence."""

    minimum: int
    maximum: int
    mean: float
    median: int
    variance: float
    isolated_vertices: int

    @property
    def skew_ratio(self) -> float:
        """max/mean — large values indicate hub-dominated (power-law) graphs."""
        return self.maximum / self.mean if self.mean else 0.0


def _degrees_array(graph) -> np.ndarray:
    """Degrees of ``graph`` (a :class:`Graph` or CSR graph) as int64."""
    return np.asarray(graph.degrees(), dtype=np.int64)


def degree_statistics(graph: Graph) -> DegreeStatistics:
    """Compute the degree summary of ``graph`` (vectorized, O(n))."""
    degrees = _degrees_array(graph)
    if degrees.size == 0:
        return DegreeStatistics(0, 0, 0.0, 0, 0.0, 0)
    n = degrees.size
    mean = float(degrees.mean())
    variance = float(np.mean((degrees - mean) ** 2))
    ordered = np.sort(degrees)
    return DegreeStatistics(
        minimum=int(ordered[0]),
        maximum=int(ordered[-1]),
        mean=mean,
        median=int(ordered[n // 2]),
        variance=variance,
        isolated_vertices=int(np.count_nonzero(degrees == 0)),
    )


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """Map degree value → number of vertices with that degree."""
    degrees = _degrees_array(graph)
    if degrees.size == 0:
        return {}
    counts = np.bincount(degrees)
    present = np.flatnonzero(counts)
    return {int(d): int(counts[d]) for d in present}


@dataclass(frozen=True)
class LoadSummary:
    """The structural figures the load governor consumes.

    ``skew_ratio`` (max/mean degree) primes the peak-hold imbalance
    estimator before the first scatter; the percentiles and the two-hop
    ball estimate contextualize it in reports.
    """

    num_vertices: int
    num_edges: int
    mean_degree: float
    max_degree: int
    p50_degree: int
    p90_degree: int
    p99_degree: int
    skew_ratio: float
    estimated_ball_size: float

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form for report extras."""
        return {
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "mean_degree": self.mean_degree,
            "max_degree": self.max_degree,
            "p50_degree": self.p50_degree,
            "p90_degree": self.p90_degree,
            "p99_degree": self.p99_degree,
            "skew_ratio": self.skew_ratio,
            "estimated_ball_size": self.estimated_ball_size,
        }


def load_summary(graph) -> LoadSummary:
    """Degree-percentile / ball-size summary of a :class:`Graph` or CSR.

    ``estimated_ball_size`` is the expected radius-2 ball size from a
    uniform vertex, ``1 + d̄ + d̄ · E[d²]/E[d]`` (the second factor is the
    friendship-paradox mean neighbor degree), capped at ``n`` — the
    quantity a ball-growing phase would materialize per vertex.
    """
    degrees = _degrees_array(graph)
    n = int(degrees.size)
    if n == 0:
        return LoadSummary(0, 0, 0.0, 0, 0, 0, 0, 0.0, 0.0)
    total = float(degrees.sum())
    mean = total / n
    ordered = np.sort(degrees)
    maximum = int(ordered[-1])
    if mean > 0.0:
        neighbor_mean = float(np.square(degrees, dtype=np.float64).sum()) / total
        ball = min(float(n), 1.0 + mean + mean * neighbor_mean)
        skew = maximum / mean
    else:
        ball = 1.0
        skew = 0.0
    return LoadSummary(
        num_vertices=n,
        num_edges=int(total) // 2,
        mean_degree=mean,
        max_degree=maximum,
        p50_degree=int(ordered[n // 2]),
        p90_degree=int(ordered[min(n - 1, (9 * n) // 10)]),
        p99_degree=int(ordered[min(n - 1, (99 * n) // 100)]),
        skew_ratio=skew,
        estimated_ball_size=ball,
    )


def loglog_degree_bound(graph: Graph) -> float:
    """``log2 log2 Δ`` — the quantity Theorem 1.1's round bound scales with."""
    delta = graph.max_degree()
    if delta < 4:
        return 1.0
    return math.log2(math.log2(delta))


def clustering_coefficient(graph: Graph, vertex: int) -> float:
    """Local clustering coefficient of ``vertex`` (triangle density)."""
    neighbors = sorted(graph.neighbors_view(vertex))
    degree = len(neighbors)
    if degree < 2:
        return 0.0
    closed = 0
    for i in range(degree):
        for j in range(i + 1, degree):
            if graph.has_edge(neighbors[i], neighbors[j]):
                closed += 1
    return 2.0 * closed / (degree * (degree - 1))


def average_clustering(graph: Graph, sample: int = 0, seed: int = 0) -> float:
    """Mean local clustering; optionally over a random vertex sample."""
    vertices: List[int] = list(graph.vertices())
    if not vertices:
        return 0.0
    if sample and sample < len(vertices):
        import random

        vertices = random.Random(seed).sample(vertices, sample)
    return sum(clustering_coefficient(graph, v) for v in vertices) / len(vertices)


def component_size_distribution(graph: Graph) -> List[int]:
    """Sizes of connected components, descending."""
    return sorted(
        (len(component) for component in graph.connected_components()),
        reverse=True,
    )
