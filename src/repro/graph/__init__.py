"""Graph substrate: graph types, generators, validators, and I/O."""

from repro.graph.graph import Graph
from repro.graph.csr import CSRGraph, GraphView, as_csr, as_graph
from repro.graph.weighted import WeightedGraph
from repro.graph.generators import (
    barabasi_albert,
    caterpillar,
    complete_graph,
    cycle_graph,
    gnm_random_graph,
    gnp_random_graph,
    grid_graph,
    path_graph,
    planted_matching_graph,
    random_bipartite_graph,
    star_graph,
)
from repro.graph.properties import (
    is_independent_set,
    is_matching,
    is_maximal_independent_set,
    is_maximal_matching,
    is_valid_fractional_matching,
    is_vertex_cover,
    matching_vertices,
)

__all__ = [
    "CSRGraph",
    "Graph",
    "GraphView",
    "WeightedGraph",
    "as_csr",
    "as_graph",
    "barabasi_albert",
    "caterpillar",
    "complete_graph",
    "cycle_graph",
    "gnm_random_graph",
    "gnp_random_graph",
    "grid_graph",
    "path_graph",
    "planted_matching_graph",
    "random_bipartite_graph",
    "star_graph",
    "is_independent_set",
    "is_matching",
    "is_maximal_independent_set",
    "is_maximal_matching",
    "is_valid_fractional_matching",
    "is_vertex_cover",
    "matching_vertices",
]
