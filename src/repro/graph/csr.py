"""NumPy-backed CSR graph kernels — the vectorized hot-path layer.

Every algorithm in the library bottoms out in the same few primitives:
degree queries, threshold filtering, vertex-subset sampling, induced
subgraphs, neighborhood deletion, and edge counting over a vertex mask.
:class:`CSRGraph` stores the adjacency structure once as two flat arrays
(``indptr``/``indices``, the classic compressed-sparse-row layout) and
exposes each primitive as a vectorized kernel, so the per-phase scans of
the MPC algorithms run at NumPy speed instead of per-element Python.

Design points:

* ``CSRGraph`` is **immutable**.  Algorithms that "delete" vertices (the
  greedy-MIS residual, Luby rounds, survivor sets) carry a boolean *mask*
  and pass it to the kernels — deletion is O(1) bookkeeping and every scan
  stays a flat array pass.  This matches how the residual graphs actually
  evolve: vertices are only ever isolated, never re-wired, so the residual
  edge set is exactly "original edges with both endpoints alive".
* Conversion to/from the set-based :class:`~repro.graph.graph.Graph` is
  lossless; the pure-Python class remains the reference implementation
  the property-test suite cross-checks against.
* Neighbor lists are sorted ascending within each row, which makes
  ``has_edge`` a binary search and lets the edge kernels emit canonical
  ``(u, v), u < v`` output in ascending order for free.

The :class:`GraphView` protocol names the read-only surface shared by
both representations so call sites can stay representation-agnostic.
"""

from __future__ import annotations

from array import array
from typing import (
    Iterable,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

import numpy as np

from repro.graph.graph import Edge, Graph

# Sentinel "never frozen / no vertex" value for int64 bookkeeping arrays.
NO_VERTEX = np.iinfo(np.int64).max

# Below this many gathered rows, a per-row slice concatenation beats the
# ragged-gather index arithmetic (see ``neighbors_bulk``); the crossover is
# pinned by the ``remove_closed_neighborhoods_small`` kernel benchmark.
SMALL_GATHER_ROWS = 64

MaskLike = Union[np.ndarray, Iterable[int], None]


@runtime_checkable
class GraphView(Protocol):
    """The read-only surface shared by :class:`Graph` and :class:`CSRGraph`.

    Call sites written against this protocol work with either
    representation; :func:`as_csr` / :func:`as_graph` convert when a
    specific one is required.
    """

    @property
    def num_vertices(self) -> int: ...

    @property
    def num_edges(self) -> int: ...

    def vertices(self) -> range: ...

    def degree(self, v: int) -> int: ...

    def max_degree(self) -> int: ...

    def has_edge(self, u: int, v: int) -> bool: ...

    def edges(self) -> Iterator[Edge]: ...


class CSRGraph:
    """Immutable undirected simple graph in compressed-sparse-row form.

    ``indptr`` has length ``n + 1``; the neighbors of vertex ``v`` are
    ``indices[indptr[v]:indptr[v + 1]]``, sorted ascending.  Each
    undirected edge appears twice (once per direction), so
    ``len(indices) == 2 * num_edges``.
    """

    __slots__ = ("_n", "_indptr", "_indices", "_src")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray) -> None:
        self._n = len(indptr) - 1
        self._indptr = indptr
        self._indices = indices
        self._src: Optional[np.ndarray] = None  # lazily built row-id array

    # -- construction -------------------------------------------------------

    @classmethod
    def from_graph(cls, graph: Graph, mask: MaskLike = None) -> "CSRGraph":
        """Lossless conversion from the set-based reference representation.

        With ``mask``, only edges with *both* endpoints inside the mask are
        kept (labels preserved, out-of-mask vertices isolated) — i.e. the
        CSR of the residual graph, built directly from the adjacency sets
        without materializing the full conversion first.

        Hot-path layout: neighbor sets are drained row-by-row through an
        ``array('q')`` buffer (C-level set iteration, no per-element Python
        objects), and the within-row ascending order is restored with one
        flat sort of ``row * n + neighbor`` keys instead of a two-key
        lexsort.
        """
        n = graph.num_vertices
        adjacency: List = [graph.neighbors_view(v) for v in range(n)]
        if mask is not None:
            arr = np.asarray(mask)
            if arr.dtype == np.bool_:
                if len(arr) != n:
                    raise ValueError(
                        f"mask length {len(arr)} != num_vertices {n}"
                    )
                selected = arr
            else:
                selected = np.zeros(n, dtype=bool)
                selected[arr.astype(np.int64, copy=False)] = True
            keep = set(np.flatnonzero(selected).tolist())
            adjacency = [
                neighbors & keep if selected[v] else set()
                for v, neighbors in enumerate(adjacency)
            ]
        degrees = np.fromiter(map(len, adjacency), dtype=np.int64, count=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        buffer = array("q")
        extend = buffer.extend
        for neighbors in adjacency:
            extend(neighbors)
        if len(buffer):
            key = np.repeat(np.arange(n, dtype=np.int64), degrees)
            key *= np.int64(n)
            key += np.frombuffer(buffer, dtype=np.int64)
            key.sort()
            indices = key % np.int64(n)
        else:
            indices = np.empty(0, dtype=np.int64)
        return cls(indptr, indices)

    @classmethod
    def from_edge_array(cls, num_vertices: int, edges: np.ndarray) -> "CSRGraph":
        """Build from an ``(m, 2)`` array of distinct undirected edges.

        Self-loops are rejected; duplicate edges (in either orientation)
        are collapsed.
        """
        if num_vertices < 0:
            raise ValueError(f"num_vertices must be >= 0, got {num_vertices}")
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if edges.size:
            if edges.min() < 0 or edges.max() >= num_vertices:
                raise ValueError("edge endpoint out of range")
            if (edges[:, 0] == edges[:, 1]).any():
                raise ValueError("self-loops are not allowed")
            lo = np.minimum(edges[:, 0], edges[:, 1])
            hi = np.maximum(edges[:, 0], edges[:, 1])
            canonical = np.unique(lo * np.int64(num_vertices) + hi)
            lo = canonical // num_vertices
            hi = canonical % num_vertices
            src = np.concatenate([lo, hi])
            dst = np.concatenate([hi, lo])
        else:
            src = np.empty(0, dtype=np.int64)
            dst = np.empty(0, dtype=np.int64)
        return cls._from_directed(num_vertices, src, dst)

    @classmethod
    def from_edges(cls, num_vertices: int, edges: Iterable[Edge]) -> "CSRGraph":
        """Build from an iterable of ``(u, v)`` pairs."""
        edge_list = list(edges)
        array = (
            np.array(edge_list, dtype=np.int64)
            if edge_list
            else np.empty((0, 2), dtype=np.int64)
        )
        return cls.from_edge_array(num_vertices, array)

    @classmethod
    def _from_directed(
        cls, num_vertices: int, src: np.ndarray, dst: np.ndarray
    ) -> "CSRGraph":
        """Assemble CSR from directed slot arrays (both directions present)."""
        order = np.lexsort((dst, src))
        src = src[order]
        dst = dst[order]
        counts = np.bincount(src, minlength=num_vertices).astype(np.int64)
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, dst)

    def to_graph(self) -> Graph:
        """Lossless conversion back to the set-based representation."""
        graph = Graph(self._n)
        for u, v in self.edge_array():
            graph.add_edge(int(u), int(v))
        return graph

    # -- basic accessors ----------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``|E|``."""
        return len(self._indices) // 2

    @property
    def indptr(self) -> np.ndarray:
        """The CSR row-pointer array (length ``n + 1``); do not mutate."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """The CSR column array (length ``2m``); do not mutate."""
        return self._indices

    @property
    def src(self) -> np.ndarray:
        """Row id of every directed slot: ``src[k]`` owns ``indices[k]``."""
        if self._src is None:
            self._src = np.repeat(
                np.arange(self._n, dtype=np.int64), np.diff(self._indptr)
            )
        return self._src

    def vertices(self) -> range:
        """The vertex set as a range."""
        return range(self._n)

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbors of ``v``, sorted ascending (a read-only view)."""
        return self._indices[self._indptr[v] : self._indptr[v + 1]]

    def degree(self, v: int) -> int:
        """Degree of ``v``."""
        return int(self._indptr[v + 1] - self._indptr[v])

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge (binary search, rows are sorted)."""
        if not (0 <= u < self._n and 0 <= v < self._n):
            return False
        row = self.neighbors(u)
        pos = np.searchsorted(row, v)
        return pos < len(row) and row[pos] == v

    def edges(self) -> Iterator[Edge]:
        """Iterate edges in canonical ``(u, v), u < v`` form, ascending."""
        for u, v in self.edge_array():
            yield (int(u), int(v))

    def edge_array(self) -> np.ndarray:
        """All edges as a canonical ``(m, 2)`` array, ascending."""
        forward = self.src < self._indices
        return np.column_stack((self.src[forward], self._indices[forward]))

    def edge_list(self) -> List[Edge]:
        """All edges as a sorted list of tuples."""
        return [(int(u), int(v)) for u, v in self.edge_array()]

    # -- vectorized kernels --------------------------------------------------

    def _as_mask(self, vertices: MaskLike) -> Optional[np.ndarray]:
        """Normalize a mask argument to a boolean array (or None = all)."""
        if vertices is None:
            return None
        array = np.asarray(vertices)
        if array.dtype == np.bool_:
            if len(array) != self._n:
                raise ValueError(
                    f"mask length {len(array)} != num_vertices {self._n}"
                )
            return array
        mask = np.zeros(self._n, dtype=bool)
        mask[array.astype(np.int64, copy=False)] = True
        return mask

    def degrees(self, mask: MaskLike = None) -> np.ndarray:
        """Degree sequence; with ``mask``, the degree sequence of ``G[mask]``.

        ``degrees(mask)[v]`` counts neighbors of ``v`` inside the mask for
        masked vertices and reads 0 outside it — exactly the per-phase
        residual-degree scan the MPC algorithms need.
        """
        selected = self._as_mask(mask)
        if selected is None:
            return np.diff(self._indptr)
        inside = selected[self.src] & selected[self._indices]
        return np.bincount(self.src[inside], minlength=self._n)

    def max_degree(self, mask: MaskLike = None) -> int:
        """Maximum degree ``Δ`` (restricted to ``mask`` when given)."""
        if self._n == 0:
            return 0
        return int(self.degrees(mask).max())

    def sample_vertices(self, p: float, rng) -> np.ndarray:
        """I.i.d. vertex sample: each vertex kept with probability ``p``.

        ``rng`` is a ``numpy.random.Generator`` or a seed accepted by
        ``numpy.random.default_rng``.  Returns the sampled vertex ids,
        ascending.  This is the vertex-based sampling step of the
        [CŁM+18]-style partitioning (Line (d) of MPC-Simulation).
        """
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        return np.flatnonzero(rng.random(self._n) < p)

    def count_edges_within(self, mask: MaskLike) -> int:
        """Number of edges with *both* endpoints inside ``mask``."""
        selected = self._as_mask(mask)
        if selected is None:
            return self.num_edges
        inside = selected[self.src] & selected[self._indices]
        return int(np.count_nonzero(inside)) // 2

    def induced_edges(self, mask: MaskLike) -> np.ndarray:
        """Edges of ``G[mask]`` with original labels, canonical ascending."""
        selected = self._as_mask(mask)
        src = self.src
        forward = src < self._indices
        if selected is not None:
            forward &= selected[src] & selected[self._indices]
        return np.column_stack((src[forward], self._indices[forward]))

    def induced_subgraph(self, mask: MaskLike) -> Tuple["CSRGraph", np.ndarray]:
        """``G[mask]`` relabelled onto ``0..k-1``; returns ``(sub, vertices)``.

        ``vertices[i]`` is the original label of new vertex ``i`` (the
        ``i``-th smallest selected vertex), matching the semantics of
        :meth:`Graph.induced_subgraph`.
        """
        selected = self._as_mask(mask)
        if selected is None:
            selected = np.ones(self._n, dtype=bool)
        keep = np.flatnonzero(selected)
        new_id = np.full(self._n, NO_VERTEX, dtype=np.int64)
        new_id[keep] = np.arange(len(keep), dtype=np.int64)
        inside = selected[self.src] & selected[self._indices]
        sub = CSRGraph._from_directed(
            len(keep), new_id[self.src[inside]], new_id[self._indices[inside]]
        )
        return sub, keep

    def filter_edges(self, mask: MaskLike) -> "CSRGraph":
        """Same vertex set, keeping only edges with both endpoints in ``mask``.

        This is the "residual graph" materializer: vertices outside the
        mask become isolated, labels are preserved.
        """
        selected = self._as_mask(mask)
        if selected is None:
            return self
        inside = selected[self.src] & selected[self._indices]
        src = self.src[inside]
        dst = self._indices[inside]
        counts = np.bincount(src, minlength=self._n).astype(np.int64)
        indptr = np.zeros(self._n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        # Slot order is preserved, so rows stay sorted.
        return CSRGraph(indptr, dst)

    def neighbors_bulk(self, vertices: Sequence[int]) -> np.ndarray:
        """Concatenated neighbor lists of ``vertices`` (ragged gather)."""
        return gather_rows(self._indices, self._indptr, vertices)

    def remove_closed_neighborhoods(
        self, vertices: Sequence[int], mask: MaskLike = None
    ) -> np.ndarray:
        """Alive-mask after deleting ``vertices`` and all their neighbors.

        Returns a *new* boolean mask (the input mask is not mutated) with
        every listed vertex and each of its *original-graph* neighbors set
        to ``False``.  When the listed vertices form an independent set —
        how the greedy-MIS and Luby hot paths call it — this is exactly
        the result of applying :meth:`Graph.remove_closed_neighborhood`
        sequentially.
        """
        selected = self._as_mask(mask)
        out = (
            np.ones(self._n, dtype=bool) if selected is None else selected.copy()
        )
        vs = np.asarray(vertices, dtype=np.int64)
        if vs.size:
            out[vs] = False
            out[self.neighbors_bulk(vs)] = False
        return out

    def adjacency_chunks(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(src, dst)`` directed-slot blocks covering all ``2m`` slots.

        Blocks arrive in slot order (ascending ``src``, rows sorted), so
        concatenating them reproduces ``(self.src, self.indices)`` exactly.
        The in-RAM graph yields one block; the memory-mapped subclass
        (:class:`repro.ooc.MMapCSRGraph`) yields bounded blocks and
        releases the backing pages between them — kernels written against
        this iterator are residency-bounded on out-of-core graphs for
        free.
        """
        yield self.src, self._indices

    def threshold_filter(self, deg_cap: int, mask: MaskLike = None) -> np.ndarray:
        """Boolean mask of vertices whose (residual) degree is ``<= deg_cap``.

        With ``mask``, degrees are counted within the mask and vertices
        outside it are excluded from the result — the "keep the low-degree
        regime" filter of the sparsified finish.
        """
        selected = self._as_mask(mask)
        keep = self.degrees(selected) <= deg_cap
        if selected is not None:
            keep &= selected
        return keep

    # -- dunder --------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            self._n == other._n
            and np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._indices, other._indices)
        )

    def __hash__(self) -> int:  # pragma: no cover - parity with Graph
        raise TypeError("CSRGraph is unhashable (compare by value instead)")

    def __repr__(self) -> str:
        return f"CSRGraph(n={self._n}, m={self.num_edges})"


def gather_rows(
    flat: np.ndarray, indptr: np.ndarray, rows: Sequence[int]
) -> np.ndarray:
    """Concatenated ``flat`` rows delimited by ``indptr`` (ragged gather).

    The gather behind :meth:`CSRGraph.neighbors_bulk`, shared with callers
    that maintain their own compressed row structures (e.g. the batched
    Pregel kernels' filtered live-view adjacency).  Below
    :data:`SMALL_GATHER_ROWS` gathered rows, per-row slice views are
    concatenated directly — the batch-sized temporaries of the index
    arithmetic dominate at a handful of rows (the n=1k regression in
    BENCH_kernels.json).
    """
    vs = np.asarray(rows, dtype=np.int64)
    if vs.size == 0:
        return np.empty(0, dtype=np.int64)
    if vs.size <= SMALL_GATHER_ROWS:
        return np.concatenate(
            [flat[indptr[v] : indptr[v + 1]] for v in vs.tolist()]
        )
    starts = indptr[vs]
    counts = indptr[vs + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # Standard ragged-gather index arithmetic: for each selected row, emit
    # starts[i], starts[i]+1, ..., starts[i]+counts[i]-1.
    row_of_slot = np.repeat(np.arange(len(vs)), counts)
    offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    return flat[starts[row_of_slot] + offsets]


def as_csr(graph: Union[Graph, CSRGraph]) -> CSRGraph:
    """``graph`` as a :class:`CSRGraph` (identity when already CSR)."""
    if isinstance(graph, CSRGraph):
        return graph
    return CSRGraph.from_graph(graph)


def as_graph(graph: Union[Graph, CSRGraph]) -> Graph:
    """``graph`` as a set-based :class:`Graph` (identity when already one)."""
    if isinstance(graph, Graph):
        return graph
    return graph.to_graph()
