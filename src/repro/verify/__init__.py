"""``repro.verify`` — oracles, invariant checkers, and budget auditors.

The verification subsystem makes every backend differentially testable
and every run auditable against the paper's quantitative guarantees:

* :mod:`repro.verify.checkers` — pure per-task validity + oracle-ratio
  checks (MIS maximality, matching validity, cover coverage, fractional
  feasibility, approximation factors vs the exact baselines);
* :mod:`repro.verify.budgets` — :class:`BudgetPolicy` turning the
  paper's ``O(log log n)`` rounds / ``S = n^α`` memory claims into
  concrete audited budgets;
* :mod:`repro.verify.differential` — the registry-wide harness
  cross-checking backends on shared instances;
* :func:`certify_report` — everything above for one finished run,
  serialized into ``RunReport.verification`` (also reachable as
  ``solve(..., verify=True)``).

``python -m repro.verify --tasks all --backends all`` runs the
conformance sweep from the shell (see VERIFICATION.md).
"""

from repro.verify.budgets import BudgetPolicy, audit_budgets, loglog2
from repro.verify.certificate import Certificate, CheckResult
from repro.verify.certify import certify_report
from repro.verify.checkers import certify_solution
from repro.verify.differential import (
    DEFAULT_FAMILIES,
    FAMILIES,
    DifferentialFailure,
    DifferentialReport,
    agreement_band,
    differential_sweep,
)

__all__ = [
    "BudgetPolicy",
    "Certificate",
    "CheckResult",
    "DifferentialFailure",
    "DifferentialReport",
    "DEFAULT_FAMILIES",
    "FAMILIES",
    "agreement_band",
    "audit_budgets",
    "certify_report",
    "certify_solution",
    "differential_sweep",
    "loglog2",
]
