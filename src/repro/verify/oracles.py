"""Reference oracles: exact optima on instances small enough to afford.

The approximation-ratio checks in :mod:`repro.verify.checkers` compare a
solver's output against the true optimum.  Exact optima come from the
library's baselines — Blossom for maximum matching (polynomial, usable up
to a few hundred vertices) and the brute-force solvers in
:mod:`repro.baselines.exact` (exponential, usable only on tiny graphs).
Each oracle returns ``None`` above its size cap instead of silently
burning CPU; callers record the check as skipped-by-size.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.blossom import maximum_matching_size as _blossom_size
from repro.baselines.exact import (
    brute_force_maximum_weight_matching,
    brute_force_minimum_vertex_cover,
)
from repro.graph.graph import Graph
from repro.graph.weighted import WeightedGraph

# Blossom is O(n^3)-ish: a few hundred vertices stays sub-second.
MATCHING_ORACLE_CAP = 400
# The brute-force solvers enumerate subsets: keep them to toy sizes.
BRUTE_FORCE_VERTEX_CAP = 12
BRUTE_FORCE_EDGE_CAP = 24


def maximum_matching_size(
    graph: Graph, cap: int = MATCHING_ORACLE_CAP
) -> Optional[int]:
    """Exact maximum-matching size ``ν(G)`` via Blossom, or ``None``."""
    if graph.num_vertices > cap:
        return None
    return _blossom_size(graph)


def minimum_vertex_cover_size(
    graph: Graph, cap: int = BRUTE_FORCE_VERTEX_CAP
) -> Optional[int]:
    """Exact minimum vertex-cover size, or ``None`` above the cap."""
    if graph.num_vertices > cap:
        return None
    return len(brute_force_minimum_vertex_cover(graph))


def maximum_weight_matching_weight(
    graph: WeightedGraph,
    vertex_cap: int = BRUTE_FORCE_VERTEX_CAP,
    edge_cap: int = BRUTE_FORCE_EDGE_CAP,
) -> Optional[float]:
    """Exact maximum-weight matching weight, or ``None`` above the caps."""
    if graph.num_vertices > vertex_cap or graph.num_edges > edge_cap:
        return None
    _, weight = brute_force_maximum_weight_matching(graph)
    return weight
