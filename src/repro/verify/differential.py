"""The differential harness: sweep the registry, cross-check the backends.

Every ``(task, backend)`` pair runs on the same (graph-family x size x
seed) matrix with verification enabled, then backends solving the same
instance are compared:

* every run's certificate must pass (validity, oracle ratios, budgets);
* solution *quality* across backends must sit inside the task's
  agreement band — e.g. two maximal-matching backends can differ by at
  most the (2+O(ε)) factor both guarantee, so ``max <= band * min``
  catches a backend silently returning degenerate output even when that
  output is technically a valid matching.

MIS has no quality band (two maximal independent sets legitimately
differ by Θ(n) on a star), so there only the certificates are compared.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.graph.generators import (
    barabasi_albert,
    gnp_random_graph,
    grid_graph,
    random_bipartite_graph,
    star_graph,
)
from repro.graph.graph import Graph
from repro.graph.weighted import WeightedGraph
from repro.utils.rng import make_rng
from repro.verify.budgets import BudgetPolicy
from repro.verify.checkers import matching_factor, one_plus_eps_factor

# ---------------------------------------------------------------------------
# graph families
# ---------------------------------------------------------------------------

# Each family maps (n, seed) -> Graph, covering the regimes the paper's
# experiments stress: sparse/dense G(n,p), power-law degree skew,
# bipartite matching workloads, and structured graphs with known optima.
FAMILIES: Dict[str, Callable[[int, int], Graph]] = {
    "gnp_sparse": lambda n, seed: gnp_random_graph(
        n, min(1.0, 8.0 / max(1, n)), seed=seed
    ),
    "gnp_dense": lambda n, seed: gnp_random_graph(n, 0.25, seed=seed),
    # Adversarial memory regimes: p=0.5 makes m ~ n²/4 (every scatter is
    # hot), attachment=8 makes hubs whose induced subgraphs concentrate
    # on few machines.  These are the cells where undersized budgets
    # abort ungoverned and the repro.govern ladder must save the run.
    "gnp_dense_half": lambda n, seed: gnp_random_graph(n, 0.5, seed=seed),
    "powerlaw": lambda n, seed: barabasi_albert(max(n, 5), 3, seed=seed),
    "powerlaw_heavy": lambda n, seed: barabasi_albert(max(n, 10), 8, seed=seed),
    "bipartite": lambda n, seed: random_bipartite_graph(
        n // 2, n - n // 2, min(1.0, 8.0 / max(1, n)), seed=seed
    ),
    "grid": lambda n, seed: grid_graph(
        max(2, math.isqrt(n)), max(2, math.isqrt(n))
    ),
    "star": lambda n, seed: star_graph(max(1, n - 1)),
}

DEFAULT_FAMILIES = ("gnp_sparse", "gnp_dense", "powerlaw", "grid")

# The families the adversarial-conformance job sweeps under tight budgets
# with governance enabled (see GOVERNANCE.md).
ADVERSARIAL_FAMILIES = ("gnp_dense_half", "powerlaw_heavy")


def attach_weights(graph: Graph, seed: int) -> WeightedGraph:
    """Deterministic positive weights for the weighted-matching task."""
    # Knuth multiplicative hash decouples the weight stream from the
    # structural seed, so weights don't correlate with edge placement.
    rng = make_rng((seed * 2654435761) % 2**32)
    weighted = WeightedGraph(graph.num_vertices)
    for u, v in graph.edges():
        weighted.add_edge(u, v, rng.uniform(0.1, 100.0))
    return weighted


# ---------------------------------------------------------------------------
# agreement bands
# ---------------------------------------------------------------------------


def agreement_band(task: str, epsilon: float = 0.1) -> Optional[float]:
    """Max allowed ratio between backend qualities on the same instance.

    Derived from the per-backend guarantees: if every backend's quality
    ``q`` satisfies ``OPT / f <= q <= u * OPT``, any two backends differ
    by at most ``u * f``.  The factors come from
    :mod:`repro.verify.checkers` so band and certificate constants cannot
    drift apart.  ``None`` means no band (MIS).
    """
    if task == "mis":
        return None
    if task == "one_plus_eps_matching":
        # Everyone is within (1 + O(eps)) of the optimum.
        return one_plus_eps_factor(epsilon)
    if task == "fractional_matching":
        # Upper 3/2 * nu, lower nu / (2 + O(eps)).
        return 1.5 * matching_factor(epsilon)
    # matching / vertex_cover / weighted_matching: (2 + O(eps)) spread.
    return matching_factor(epsilon)


def quality_of(report: Any) -> float:
    """The scalar compared across backends (size, or weight when present).

    Fractional runs add back their reported Line (i) heavy-removal count:
    each removed vertex discarded about one unit of achievable weight, so
    the adjusted quality is what the run *accounted for* — otherwise a
    faithful heavy removal (a star's center overshooting inside one
    compressed phase) reads as a band violation.
    """
    if report.solution_kind == "fractional" or "weight" in report.metrics:
        weight = float(report.metrics.get("weight", 0.0))
        return weight + float(report.extras.get("heavy_removed", 0))
    return float(report.size)


# ---------------------------------------------------------------------------
# harness
# ---------------------------------------------------------------------------


@dataclass
class DifferentialFailure:
    """One failed assertion of the sweep."""

    kind: str  # "run_error" | "certificate" | "band"
    task: str
    backend: str
    family: str
    n: int
    seed: int
    detail: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "task": self.task,
            "backend": self.backend,
            "family": self.family,
            "n": self.n,
            "seed": self.seed,
            "detail": self.detail,
        }


@dataclass
class DifferentialReport:
    """Outcome of :func:`differential_sweep`."""

    reports: List[Any] = field(default_factory=list)
    failures: List[DifferentialFailure] = field(default_factory=list)
    runs: int = 0

    @property
    def ok(self) -> bool:
        """Whether every run certified and every agreement band held."""
        return not self.failures

    def summary_rows(self) -> List[Dict[str, Any]]:
        """Per (task, backend) aggregate rows for table display."""
        grouped: Dict[Tuple[str, str], Dict[str, Any]] = {}
        for report in self.reports:
            row = grouped.setdefault(
                (report.task, report.backend),
                {
                    "task": report.task,
                    "backend": report.backend,
                    "runs": 0,
                    "verified": 0,
                    "max_rounds": 0,
                },
            )
            row["runs"] += 1
            row["verified"] += int(report.verified)
            row["max_rounds"] = max(row["max_rounds"], report.rounds)
        return [grouped[key] for key in sorted(grouped)]


def differential_sweep(
    tasks: Any = "all",
    backends: Any = "all",
    *,
    families: Sequence[str] = DEFAULT_FAMILIES,
    sizes: Sequence[int] = (32, 64),
    seeds: Sequence[int] = (0, 1),
    policy: Optional[BudgetPolicy] = None,
    epsilon: float = 0.1,
    rng: Optional[str] = None,
    budget: Optional[float] = None,
    governance: Any = None,
    on_report: Optional[Callable[[Any], None]] = None,
) -> DifferentialReport:
    """Run the full differential matrix and collect failures.

    Parameters
    ----------
    tasks / backends:
        ``"all"`` or an explicit sequence of names.  Backends are
        intersected with what the registry offers per task.
    families:
        Names from :data:`FAMILIES`.
    sizes / seeds:
        Instance sizes and RNG seeds; each (family, size, seed) triple is
        one shared instance every selected backend must agree on.
    policy:
        Budget policy threaded into each run's certificate.
    epsilon:
        ε used for the agreement bands (runs use backend-default configs,
        whose ε is 0.1).
    rng:
        Randomness-mode override threaded into every run (see
        :func:`repro.api.solve`).  ``"counter"`` is how the out-of-core
        fast generator gets statistically validated: counter-mode MPC
        runs must still certify and must sit inside the same
        cross-backend agreement bands as the sha-pinned baselines.
    budget:
        Per-machine memory budget (units of ``n`` words) threaded into
        every run.  Combined with the adversarial families this is how
        the matrix reaches the cells where ungoverned runs abort.
    governance:
        Governance opt-in threaded into every run (``True``, a policy,
        or its dict; see :func:`repro.api.solve`).  Governed runs must
        still certify and sit inside the same agreement bands — that is
        the whole point of auditing them here instead of byte-pinning.
    on_report:
        Optional callback per finished report (progress streaming).
    """
    from repro.api import solve
    from repro.api.registry import BACKENDS, registry

    policy = policy or BudgetPolicy()
    known_tasks = registry.tasks()
    task_list = list(known_tasks) if tasks == "all" else list(tasks)
    # Unknown names raise rather than silently shrinking the matrix: a
    # typo (or a rename) must not turn the conformance sweep's "exit 0
    # iff clean" contract into a vacuous pass over zero runs.
    bad_tasks = [name for name in task_list if name not in known_tasks]
    if bad_tasks:
        raise ValueError(f"unknown tasks {bad_tasks}; known: {known_tasks}")
    if backends != "all":
        bad_backends = [name for name in backends if name not in BACKENDS]
        if bad_backends:
            raise ValueError(
                f"unknown backends {bad_backends}; known: {list(BACKENDS)}"
            )
    unknown = [name for name in families if name not in FAMILIES]
    if unknown:
        raise ValueError(
            f"unknown families {unknown}; known: {sorted(FAMILIES)}"
        )

    outcome = DifferentialReport()
    for task in task_list:
        available = registry.backends(task)
        if backends == "all":
            chosen = available
        else:
            chosen = [name for name in backends if name in available]
        if not chosen:
            continue
        band = agreement_band(task, epsilon)
        for family in families:
            for n in sizes:
                for seed in seeds:
                    graph = FAMILIES[family](n, seed)
                    if task == "weighted_matching":
                        instance: Any = attach_weights(graph, seed)
                    else:
                        instance = graph
                    siblings: List[Any] = []
                    for backend in chosen:
                        outcome.runs += 1
                        try:
                            report = solve(
                                task,
                                instance,
                                backend=backend,
                                seed=seed,
                                rng=rng,
                                budget=budget,
                                governance=governance,
                                verify=policy,
                            )
                        except Exception as error:
                            outcome.failures.append(
                                DifferentialFailure(
                                    kind="run_error",
                                    task=task,
                                    backend=backend,
                                    family=family,
                                    n=n,
                                    seed=seed,
                                    detail=f"{type(error).__name__}: {error}",
                                )
                            )
                            continue
                        outcome.reports.append(report)
                        siblings.append(report)
                        if on_report is not None:
                            on_report(report)
                        if not report.verified:
                            failed = [
                                check["name"]
                                for check in report.verification.get("checks", [])
                                if not check["passed"]
                            ]
                            outcome.failures.append(
                                DifferentialFailure(
                                    kind="certificate",
                                    task=task,
                                    backend=backend,
                                    family=family,
                                    n=n,
                                    seed=seed,
                                    detail=f"failed checks: {', '.join(failed)}",
                                )
                            )
                    if band is None or len(siblings) < 2:
                        continue
                    qualities = {
                        report.backend: quality_of(report) for report in siblings
                    }
                    low_backend = min(qualities, key=qualities.get)
                    high_backend = max(qualities, key=qualities.get)
                    low = qualities[low_backend]
                    high = qualities[high_backend]
                    if high > band * low + 1e-6:
                        # Blame the degenerate side: for a minimization
                        # task an oversized result is the outlier; for
                        # maximization an undersized one is.
                        suspect = (
                            high_backend if task == "vertex_cover" else low_backend
                        )
                        outcome.failures.append(
                            DifferentialFailure(
                                kind="band",
                                task=task,
                                backend=suspect,
                                family=family,
                                n=n,
                                seed=seed,
                                detail=(
                                    f"quality spread {low:.6g} ({low_backend}) vs "
                                    f"{high:.6g} ({high_backend}) exceeds band "
                                    f"{band:g}"
                                ),
                            )
                        )
    return outcome
