"""Command-line conformance runner for the verification subsystem.

Examples::

    python -m repro.verify --tasks all --backends all
    python -m repro.verify --tasks mis,matching --families gnp_sparse,grid \\
        --sizes 64,128 --seeds 0,1,2 --alpha 0.9 --jsonl verified.jsonl

Exit status is 0 iff every run certified (validity, oracle ratios,
round/memory/communication budgets) *and* every cross-backend agreement
band held.  ``--jsonl`` streams each verified RunReport for offline
analysis with :func:`repro.api.read_jsonl`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.tables import format_table
from repro.api.__main__ import _parse_governance
from repro.verify.budgets import BudgetPolicy
from repro.verify.differential import (
    DEFAULT_FAMILIES,
    FAMILIES,
    differential_sweep,
)


def _csv(text: str) -> List[str]:
    return [item for item in text.split(",") if item]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.verify",
        description="Differential-oracle + paper-budget conformance sweep.",
    )
    parser.add_argument(
        "--tasks", default="all", help="'all' or comma-separated task names"
    )
    parser.add_argument(
        "--backends", default="all", help="'all' or comma-separated backends"
    )
    parser.add_argument(
        "--families",
        default=",".join(DEFAULT_FAMILIES),
        help=f"comma-separated graph families (known: {', '.join(sorted(FAMILIES))})",
    )
    parser.add_argument(
        "--sizes", default="32,64", help="comma-separated instance sizes"
    )
    parser.add_argument(
        "--seeds", default="0,1", help="comma-separated seeds"
    )
    parser.add_argument(
        "--alpha",
        type=float,
        default=1.0,
        help="memory exponent of S = memory_factor * n^alpha (default 1.0)",
    )
    parser.add_argument(
        "--memory-factor",
        type=float,
        default=8.0,
        help="constant in the memory budget (default 8.0)",
    )
    parser.add_argument(
        "--loglog-factor",
        type=float,
        default=8.0,
        help="constant in the O(log log n) round budget (default 8.0)",
    )
    parser.add_argument(
        "--rounds-offset",
        type=float,
        default=8.0,
        help="additive slack of the round budgets (default 8.0)",
    )
    parser.add_argument(
        "--rng",
        choices=("sha", "counter"),
        default=None,
        help=(
            "randomness mode threaded into every run; 'counter' audits "
            "the out-of-core fast generator against the same certificates "
            "and cross-backend agreement bands (default: backend configs)"
        ),
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=None,
        help=(
            "per-machine memory budget in units of n threaded into every "
            "run (pair with a matching --memory-factor so the certificate "
            "audits the same cap the run was given)"
        ),
    )
    parser.add_argument(
        "--governance",
        default=None,
        metavar="JSON",
        help=(
            "govern every run (repro.govern): GovernancePolicy fields as "
            "JSON ('{}' = defaults, 'off' = disabled); with adversarial "
            "families + a tight --budget this is the cell where ungoverned "
            "runs abort and governed runs must still certify"
        ),
    )
    parser.add_argument(
        "--jsonl", default=None, help="stream verified reports to this file"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    policy = BudgetPolicy(
        loglog_factor=args.loglog_factor,
        rounds_offset=args.rounds_offset,
        alpha=args.alpha,
        memory_factor=args.memory_factor,
    )
    tasks = "all" if args.tasks == "all" else _csv(args.tasks)
    backends = "all" if args.backends == "all" else _csv(args.backends)

    stream = open(args.jsonl, "w", encoding="utf-8") if args.jsonl else None

    def on_report(report) -> None:
        if stream is not None:
            stream.write(report.to_json() + "\n")
            stream.flush()

    try:
        outcome = differential_sweep(
            tasks,
            backends,
            families=_csv(args.families),
            sizes=[int(s) for s in _csv(args.sizes)],
            seeds=[int(s) for s in _csv(args.seeds)],
            policy=policy,
            rng=args.rng,
            budget=args.budget,
            governance=_parse_governance(args.governance),
            on_report=on_report,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        if stream is not None:
            stream.close()

    print(
        format_table(
            outcome.summary_rows(),
            title=f"verify: {outcome.runs} runs, {len(outcome.failures)} failures",
        )
    )
    if outcome.failures:
        print(f"\n{len(outcome.failures)} failures:", file=sys.stderr)
        for failure in outcome.failures:
            print(f"  {failure.to_dict()}", file=sys.stderr)
        return 1
    if args.jsonl:
        print(f"\nwrote {len(outcome.reports)} verified reports to {args.jsonl}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
