"""Invariant checkers: pure functions from (graph, solution) to checks.

One module holds the ground-truth definition of "this output is correct"
for every task the registry solves, expressed as :class:`CheckResult`
lists so callers (the facade's ``verify=`` hook, the differential
harness, :mod:`repro.analysis.whp_audit`) share a single implementation
instead of re-asserting ad-hoc predicates:

* **structural validity** — MIS independence + maximality, matching
  vertex-disjointness, vertex-cover coverage, fractional LP feasibility
  with ε-slack (the Section 2 definitions, via
  :mod:`repro.graph.properties`);
* **oracle ratios** — on instances small enough for the exact baselines
  (:mod:`repro.verify.oracles`), the output is compared against the true
  optimum at the paper's claimed approximation factor (Theorem 1.2's
  ``2+ε``, Corollary 1.3's ``1+ε``, Corollary 1.4's ``2+O(ε)``, Lemma
  4.1's duality sandwich for fractional matchings).

The factor constants mirror what the existing test suite asserts (e.g.
``2 + 50ε`` as the conservative ``2 + O(ε)`` envelope for the MPC
fractional process) so the checkers codify, rather than re-invent, the
reproduction's empirical bands.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional

from repro.graph.graph import Edge, Graph, canonical_edge
from repro.graph.properties import (
    is_independent_set,
    is_matching,
    is_maximal_independent_set,
    is_valid_fractional_matching,
    is_vertex_cover,
)
from repro.graph.weighted import WeightedGraph
from repro.verify import oracles
from repro.verify.certificate import CheckResult

# Float slack absorbing accumulation error in weight comparisons.
TOLERANCE = 1e-9


def _skipped(name: str, reason: str) -> CheckResult:
    """A vacuously-passing check that records why it did not run."""
    return CheckResult(name=name, passed=True, detail=f"skipped: {reason}")


# ---------------------------------------------------------------------------
# structural validity
# ---------------------------------------------------------------------------


def check_mis(graph: Graph, vertices: Iterable[int]) -> List[CheckResult]:
    """Independence and maximality — the two halves of Theorem 1.1's object."""
    chosen = set(vertices)
    independent = is_independent_set(graph, chosen)
    maximal = independent and is_maximal_independent_set(graph, chosen)
    return [
        CheckResult(
            name="mis_independent",
            passed=independent,
            detail="" if independent else "two chosen vertices are adjacent",
        ),
        CheckResult(
            name="mis_maximal",
            passed=maximal,
            detail="" if maximal else "some vertex could still be added",
        ),
    ]


def check_matching(graph: Graph, edges: Iterable[Edge]) -> List[CheckResult]:
    """Edges exist in the graph and are pairwise vertex-disjoint."""
    matching = [canonical_edge(u, v) for u, v in edges]
    valid = is_matching(graph, matching)
    return [
        CheckResult(
            name="matching_valid",
            passed=valid,
            detail="" if valid else "non-edge or shared endpoint in matching",
        )
    ]


def check_vertex_cover(graph: Graph, cover: Iterable[int]) -> List[CheckResult]:
    """Every edge has at least one endpoint in the cover."""
    covered = is_vertex_cover(graph, set(cover))
    return [
        CheckResult(
            name="cover_covers_all_edges",
            passed=covered,
            detail="" if covered else "some edge has no endpoint in the cover",
        )
    ]


def check_fractional_matching(
    graph: Graph,
    weights: Mapping[Edge, float],
    tolerance: float = TOLERANCE,
) -> List[CheckResult]:
    """LP feasibility with ε-slack: ``x_e >= 0`` and ``y_v <= 1 + tol``.

    This is the feasibility half of Lemma 4.1's duality argument;
    ``tolerance`` absorbs float accumulation across the multiplicative
    weight updates.
    """
    feasible = is_valid_fractional_matching(graph, weights, tolerance=tolerance)
    return [
        CheckResult(
            name="fractional_feasible",
            passed=feasible,
            detail=""
            if feasible
            else "negative weight, non-edge, or vertex load above 1",
        )
    ]


# ---------------------------------------------------------------------------
# oracle ratios (small instances only; skipped above the oracle caps)
# ---------------------------------------------------------------------------


def check_matching_ratio(
    graph: Graph,
    edges: Iterable[Edge],
    factor: float,
    name: str = "matching_ratio",
    cap: Optional[int] = None,
) -> List[CheckResult]:
    """``|M| * factor >= ν(G)`` against the Blossom oracle.

    ``cap`` overrides the default oracle size cap — pass
    ``graph.num_vertices`` to force the exact comparison regardless of
    size (the E14 audit does; Blossom is polynomial, merely slow).
    """
    optimum = oracles.maximum_matching_size(
        graph, cap=oracles.MATCHING_ORACLE_CAP if cap is None else cap
    )
    if optimum is None:
        return [_skipped(name, "graph above matching-oracle cap")]
    size = len(list(edges))
    passed = size * factor >= optimum - TOLERANCE
    return [
        CheckResult(
            name=name,
            passed=passed,
            detail=f"|M|={size}, ν={optimum}, factor={factor:g}",
            observed=float(size),
            bound=optimum / factor if factor else 0.0,
        )
    ]


def check_vertex_cover_ratio(
    graph: Graph, cover: Iterable[int], factor: float
) -> List[CheckResult]:
    """``|C| <= factor * OPT_vc`` against the brute-force oracle."""
    optimum = oracles.minimum_vertex_cover_size(graph)
    if optimum is None:
        return [_skipped("cover_ratio", "graph above brute-force cap")]
    size = len(set(cover))
    bound = factor * optimum
    passed = size <= bound + TOLERANCE
    return [
        CheckResult(
            name="cover_ratio",
            passed=passed,
            detail=f"|C|={size}, OPT={optimum}, factor={factor:g}",
            observed=float(size),
            bound=bound,
        )
    ]


def check_fractional_bands(
    graph: Graph,
    weights: Mapping[Edge, float],
    lower_factor: float,
    slack_vertices: int = 0,
) -> List[CheckResult]:
    """Duality sandwich for a fractional matching's total weight ``W``.

    Upper: ``W <= 3/2 * ν`` (the fractional-matching polytope bound for
    simple graphs); lower: ``W * lower_factor >= ν - slack_vertices``
    (Lemma 4.1's constant-fraction guarantee, with the reproduction's
    conservative ``2 + O(ε)`` envelope).  ``slack_vertices`` is the
    number of Line (i) heavy removals the run reported: each removed
    vertex had load about 1 when its edges were discarded, so it accounts
    for at most one unit of lost matching — at feasible input sizes these
    removals are not the vanishing-probability events the paper's
    asymptotic analysis makes them (e.g. a large star's center routinely
    overshoots inside one compressed phase), so the band must discount
    them rather than flag faithful behavior.
    """
    optimum = oracles.maximum_matching_size(graph)
    if optimum is None:
        return [_skipped("fractional_bands", "graph above matching-oracle cap")]
    weight = sum(weights.values())
    upper = 1.5 * optimum + TOLERANCE
    upper_ok = weight <= upper
    target = max(0, optimum - max(0, slack_vertices))
    lower_ok = weight * lower_factor >= target - TOLERANCE
    return [
        CheckResult(
            name="fractional_upper_band",
            passed=upper_ok,
            detail=f"W={weight:.6g}, ν={optimum}",
            observed=weight,
            bound=upper,
        ),
        CheckResult(
            name="fractional_lower_band",
            passed=lower_ok,
            detail=(
                f"W={weight:.6g}, ν={optimum}, factor={lower_factor:g}, "
                f"heavy_removed={slack_vertices}"
            ),
            observed=weight,
            bound=target / lower_factor if lower_factor else 0.0,
        ),
    ]


def check_weighted_matching_ratio(
    graph: WeightedGraph, edges: Iterable[Edge], factor: float
) -> List[CheckResult]:
    """``w(M) * factor >= OPT_w`` against the brute-force weighted oracle."""
    optimum = oracles.maximum_weight_matching_weight(graph)
    if optimum is None:
        return [_skipped("weighted_ratio", "graph above brute-force cap")]
    weight = graph.matching_weight([canonical_edge(u, v) for u, v in edges])
    passed = weight * factor >= optimum - TOLERANCE
    return [
        CheckResult(
            name="weighted_ratio",
            passed=passed,
            detail=f"w(M)={weight:.6g}, OPT={optimum:.6g}, factor={factor:g}",
            observed=weight,
            bound=optimum / factor if factor else 0.0,
        )
    ]


# ---------------------------------------------------------------------------
# per-task dispatch
# ---------------------------------------------------------------------------

# The claimed approximation factor per task, as a function of ε.  These are
# the conservative envelopes the test suite has always asserted: Theorem
# 1.2's 2+O(ε) with the O(ε) constant at 50 (matching
# tests/test_matching_mpc.py), Corollary 1.3's 1+ε with a 5x envelope, and
# Corollary 1.4's 2+O(ε) for weighted matchings.


def matching_factor(epsilon: float) -> float:
    """(2 + O(ε)) for maximal-matching-flavoured outputs (Theorem 1.2)."""
    return 2.0 + 50.0 * epsilon


def one_plus_eps_factor(epsilon: float) -> float:
    """(1 + O(ε)) for the augmenting-path refinement (Corollary 1.3)."""
    return 1.0 + 5.0 * epsilon


def weighted_factor(epsilon: float) -> float:
    """(2 + O(ε)) for the weight-class reduction (Corollary 1.4)."""
    return 2.0 + 50.0 * epsilon


def certify_solution(
    task: str,
    graph: Graph,
    solution: object,
    epsilon: float = 0.1,
    weighted_graph: Optional[WeightedGraph] = None,
    heavy_removed: int = 0,
) -> List[CheckResult]:
    """All validity + ratio checks for one task's canonical solution.

    ``solution`` uses the canonical report shapes: a vertex list for
    ``mis``/``vertex_cover``, an edge list for the matching tasks, and
    ``[u, v, x]`` triples for ``fractional_matching``.
    ``weighted_graph`` supplies weights for ``weighted_matching``;
    ``heavy_removed`` is the run's reported Line (i) removal count
    (discounted by the fractional lower band).
    """
    if task == "mis":
        return check_mis(graph, solution)
    if task == "vertex_cover":
        return check_vertex_cover(graph, solution) + check_vertex_cover_ratio(
            graph, solution, matching_factor(epsilon)
        )
    if task == "matching":
        edges = [(u, v) for u, v in solution]
        return check_matching(graph, edges) + check_matching_ratio(
            graph, edges, matching_factor(epsilon)
        )
    if task == "one_plus_eps_matching":
        edges = [(u, v) for u, v in solution]
        return check_matching(graph, edges) + check_matching_ratio(
            graph, edges, one_plus_eps_factor(epsilon), name="one_plus_eps_ratio"
        )
    if task == "weighted_matching":
        edges = [(u, v) for u, v in solution]
        results = check_matching(graph, edges)
        if weighted_graph is not None:
            results += check_weighted_matching_ratio(
                weighted_graph, edges, weighted_factor(epsilon)
            )
        return results
    if task == "fractional_matching":
        weights: Mapping[Edge, float] = {
            (int(u), int(v)): float(x) for u, v, x in solution
        }
        return check_fractional_matching(graph, weights) + check_fractional_bands(
            graph, weights, matching_factor(epsilon), slack_vertices=heavy_removed
        )
    raise ValueError(f"unknown task {task!r}")
