"""``certify_report`` — one call from a finished run to a full certificate.

This is the glue the facade's ``verify=`` hook and the differential
harness share: given the input graph and the :class:`RunReport` a solver
produced, run every applicable invariant checker plus the budget
auditors and bundle the results.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.graph.weighted import WeightedGraph
from repro.verify.budgets import BudgetPolicy, audit_budgets
from repro.verify.certificate import Certificate
from repro.verify.checkers import certify_solution

DEFAULT_EPSILON = 0.1


def report_epsilon(report: Any) -> float:
    """The ε the run was configured with (config snapshot or default)."""
    value = report.config.get("epsilon") if report.config else None
    return float(value) if value is not None else DEFAULT_EPSILON


def certify_report(
    graph: Any,
    report: Any,
    *,
    entry: Any = None,
    policy: Optional[BudgetPolicy] = None,
) -> Certificate:
    """Invariant + ratio + budget checks for one run.

    Parameters
    ----------
    graph:
        The graph the run solved (a :class:`~repro.graph.graph.Graph`, or
        a :class:`WeightedGraph` for weighted tasks).
    report:
        The :class:`~repro.api.report.RunReport` to certify.
    entry:
        The registry :class:`~repro.api.registry.SolverEntry` that
        produced the report (resolved from the global registry when
        omitted); supplies the declared round-bound class.
    policy:
        Budget policy (default :class:`BudgetPolicy`).
    """
    if entry is None:
        from repro.api.registry import registry

        entry = registry.get(report.task, report.backend)
    weighted = graph if isinstance(graph, WeightedGraph) else None
    structure = graph.structure if weighted is not None else graph

    certificate = Certificate()
    certificate.extend(
        certify_solution(
            report.task,
            structure,
            report.solution,
            epsilon=report_epsilon(report),
            weighted_graph=weighted,
            heavy_removed=int(report.extras.get("heavy_removed", 0)),
        )
    )
    certificate.extend(
        audit_budgets(
            report,
            policy,
            rounds_bound=entry.rounds_bound,
            rounds_constant=entry.rounds_constant,
        )
    )
    return certificate
