"""Budget auditors: the paper's resource bounds as executable assertions.

The paper's headline claims are *quantitative*: O(log log n) rounds
(Theorems 1.1/1.2) and strictly sublinear per-machine memory
(``S = n^α``, Section 1.1.1).  :class:`BudgetPolicy` turns them into
concrete budgets —

* ``rounds <= loglog_factor * c * log2(log2 n) + rounds_offset`` for
  entries declaring ``rounds_bound="loglog"`` (``c`` is the entry's
  ``rounds_constant``, the implementation's hidden constant),
* ``rounds <= log_factor * c * log2 n + rounds_offset`` for the classic
  per-round baselines (``rounds_bound="log"``),
* ``max_machine_words <= memory_factor * n^alpha`` words (via
  :func:`repro.mpc.spec.paper_memory_words`, the same derivation cluster
  sizing uses), and
* ``total_comm_words <= comm_round_factor * rounds * max(S, input)`` —
  per round no machine ships more than its memory ``S``, and the cluster
  holds ``machines x S >= input`` words, so aggregate volume is bounded
  by rounds x cluster memory; ``comm_round_factor`` is the slack
  constant.

Every audit emits a :class:`CheckResult` even when vacuous (a backend
with no round claim, a backend that does not meter memory) so each
``RunReport`` records *what was and was not* asserted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, List, Optional

from repro.mpc.spec import MIN_WORDS_PER_MACHINE, paper_memory_words
from repro.verify.certificate import CheckResult


def loglog2(n: int) -> float:
    """``log2(log2 n)`` clamped to stay defined on tiny inputs."""
    return math.log2(max(2.0, math.log2(max(4, n))))


@dataclass(frozen=True)
class BudgetPolicy:
    """Configurable paper bounds a run is audited against.

    Attributes
    ----------
    loglog_factor / log_factor / rounds_offset:
        The multiplicative constants and additive offset of the round
        budgets (see the module docstring for the formulas).
    alpha:
        Memory exponent of ``S = memory_factor * n^alpha``.  The library
        runs the near-linear regime (``alpha = 1``); lowering it tightens
        the audit toward the paper's strictly sublinear claim.  See
        VERIFICATION.md ("Tuning α").
    memory_factor:
        The constant in front of ``n^alpha``, matching the default
        ``memory_factor`` of the algorithm configs.
    min_words:
        Floor below which a memory budget is meaningless (same floor as
        :class:`repro.mpc.spec.ClusterSpec`).
    comm_round_factor:
        Machines-worth of ``S`` the whole cluster may ship per round in
        the total-communication audit.
    """

    loglog_factor: float = 8.0
    log_factor: float = 4.0
    rounds_offset: float = 8.0
    alpha: float = 1.0
    memory_factor: float = 8.0
    min_words: int = MIN_WORDS_PER_MACHINE
    comm_round_factor: float = 8.0

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {self.alpha}")
        for field_name in ("loglog_factor", "log_factor", "memory_factor"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")

    def rounds_budget(self, n: int, bound: str, constant: float = 1.0) -> Optional[float]:
        """The round budget for a graph of ``n`` vertices (None = no claim)."""
        if bound == "loglog":
            return self.loglog_factor * constant * loglog2(n) + self.rounds_offset
        if bound == "log":
            return (
                self.log_factor * constant * math.log2(max(2, n))
                + self.rounds_offset
            )
        if bound == "none":
            return None
        raise ValueError(f"unknown rounds bound {bound!r}")

    def memory_budget(self, n: int) -> int:
        """Per-machine word budget ``S`` for a graph of ``n`` vertices."""
        return paper_memory_words(
            n,
            alpha=self.alpha,
            memory_factor=self.memory_factor,
            min_words=self.min_words,
        )


def audit_budgets(
    report: Any,
    policy: Optional[BudgetPolicy] = None,
    *,
    rounds_bound: str = "none",
    rounds_constant: float = 1.0,
) -> List[CheckResult]:
    """Round/memory/communication audits for one ``RunReport``.

    ``rounds_bound``/``rounds_constant`` come from the registry entry
    that produced the report (the declared guarantee class).
    """
    policy = policy or BudgetPolicy()
    checks: List[CheckResult] = []

    budget = policy.rounds_budget(report.n, rounds_bound, rounds_constant)
    if budget is None:
        checks.append(
            CheckResult(
                name="rounds_budget",
                passed=True,
                detail=f"no round bound claimed (rounds={report.rounds} recorded)",
                observed=float(report.rounds),
            )
        )
    else:
        checks.append(
            CheckResult(
                name="rounds_budget",
                passed=report.rounds <= budget,
                detail=(
                    f"{rounds_bound} bound: rounds={report.rounds}, "
                    f"budget={budget:.1f} at n={report.n}"
                ),
                observed=float(report.rounds),
                bound=budget,
            )
        )

    memory_budget = policy.memory_budget(report.n)
    if report.max_machine_words <= 0:
        checks.append(
            CheckResult(
                name="memory_budget",
                passed=True,
                detail="backend records no per-machine memory",
            )
        )
    else:
        checks.append(
            CheckResult(
                name="memory_budget",
                passed=report.max_machine_words <= memory_budget,
                detail=(
                    f"S = {policy.memory_factor:g} * n^{policy.alpha:g}: "
                    f"peak={report.max_machine_words} words, "
                    f"budget={memory_budget} at n={report.n}"
                ),
                observed=float(report.max_machine_words),
                bound=float(memory_budget),
            )
        )

    total = getattr(report, "total_comm_words", 0)
    if total <= 0 or report.rounds <= 0:
        checks.append(
            CheckResult(
                name="communication_budget",
                passed=True,
                detail="backend records no total communication volume",
            )
        )
    else:
        # Per round the whole cluster ships at most (machines x S) words,
        # and the cluster is sized to hold the input — so machines x S is
        # max(S, input words).  Flooring at S keeps the bound identical to
        # the historical one whenever the input fits on few machines, and
        # makes undersized-S runs (tight --budget, many machines) auditable
        # instead of spuriously red.
        input_words = 2 * report.num_edges + report.n
        cluster_words = max(memory_budget, input_words)
        comm_budget = policy.comm_round_factor * report.rounds * cluster_words
        checks.append(
            CheckResult(
                name="communication_budget",
                passed=total <= comm_budget,
                detail=(
                    f"total={total} words over {report.rounds} rounds, "
                    f"budget={comm_budget:.0f}"
                ),
                observed=float(total),
                bound=comm_budget,
            )
        )
    return checks
