"""The certificate model: one named check, and a bundle of them.

Every verification component — invariant checkers, oracle ratio checks,
budget auditors — produces :class:`CheckResult` values; a
:class:`Certificate` aggregates them for one run and serializes into
``RunReport.verification`` so a JSONL sweep is a self-describing audit
trail: each row says not just *what* the solver returned but *which paper
guarantees that output was checked against and whether they held*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one named check.

    ``observed`` and ``bound`` are the two sides of the comparison when
    the check is quantitative (measured rounds vs round budget, solution
    size vs oracle optimum), kept so failures are diagnosable from the
    serialized report alone.
    """

    name: str
    passed: bool
    detail: str = ""
    observed: Optional[float] = None
    bound: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        """A compact JSON-ready snapshot (``None`` fields elided)."""
        payload: Dict[str, Any] = {"name": self.name, "passed": self.passed}
        if self.detail:
            payload["detail"] = self.detail
        if self.observed is not None:
            payload["observed"] = self.observed
        if self.bound is not None:
            payload["bound"] = self.bound
        return payload


@dataclass
class Certificate:
    """All checks recorded for one solver run."""

    checks: List[CheckResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every recorded check passed."""
        return all(check.passed for check in self.checks)

    def failures(self) -> List[CheckResult]:
        """The failing checks, in recorded order."""
        return [check for check in self.checks if not check.passed]

    def extend(self, results: List[CheckResult]) -> "Certificate":
        """Append ``results`` (returns self for chaining)."""
        self.checks.extend(results)
        return self

    def to_dict(self) -> Dict[str, Any]:
        """The shape stored in ``RunReport.verification``."""
        return {
            "ok": self.ok,
            "checks": [check.to_dict() for check in self.checks],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Certificate":
        """Rebuild from :meth:`to_dict` output (e.g. a loaded report)."""
        return cls(
            checks=[
                CheckResult(
                    name=item["name"],
                    passed=bool(item["passed"]),
                    detail=item.get("detail", ""),
                    observed=item.get("observed"),
                    bound=item.get("bound"),
                )
                for item in payload.get("checks", [])
            ]
        )
