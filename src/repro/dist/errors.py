"""Failure types of the distributed executor.

The distributed layer turns every worker-side failure into a single,
catchable exception family.  A kernel that raises, a worker process that
dies mid-phase, a reply that misses its receive deadline, a message that
fails its CRC32 integrity check, and a transport used after teardown all
surface as :class:`DistExecutionError` (or a subclass) in the driver —
never as a hang on a pipe read, and never as a bare ``EOFError`` whose
origin the caller cannot place.

Every error carries *structured* context — which phase, which worker,
how many attempts the supervision layer made, and what recovery action
it took — so callers (and the recovery log) never have to parse the
message string.
"""

from __future__ import annotations

from typing import Optional


class DistExecutionError(RuntimeError):
    """A distributed step failed (worker death, kernel error, closed transport).

    Attributes
    ----------
    worker_id:
        The worker the failure was observed on, or ``None`` when the
        failure is not attributable to one worker (e.g. transport closed).
    phase:
        The kernel/phase name the failure happened in (``"install 's'"``
        style strings for session commands), or ``None`` when unknown.
    attempts:
        How many times the step was attempted before this error was
        raised (1 on the unsupervised fail-fast path), or ``None``.
    recovery:
        The recovery action taken before raising: ``"none"`` (nothing to
        recover), ``"transport-closed"`` (fail-fast teardown),
        ``"retries-exhausted"`` / ``"respawn-budget-exhausted"`` /
        ``"respawn-failed"`` (supervision gave up), or ``None``.
    """

    def __init__(
        self,
        message: str,
        worker_id: Optional[int] = None,
        *,
        phase: Optional[str] = None,
        attempts: Optional[int] = None,
        recovery: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.worker_id = worker_id
        self.phase = phase
        self.attempts = attempts
        self.recovery = recovery


class DistTimeoutError(DistExecutionError):
    """A worker reply missed its receive deadline (poll-based, never a hang).

    The stuck worker is killed when this is detected: a pipe whose reply
    may still arrive later can no longer be trusted to stay frame-aligned
    with subsequent steps.
    """


class DistCorruptionError(DistExecutionError):
    """A message failed its CRC32 integrity check.

    Raised driver-side for a corrupt worker reply; a worker receiving a
    corrupt command replies with an error instead (the frame-delimited
    protocol keeps the stream aligned either way).
    """
