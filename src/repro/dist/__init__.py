"""``repro.dist`` — true parallel execution of the MPC cluster.

The simulated :class:`~repro.mpc.cluster.MPCCluster` stays the model's
source of truth (round charging, word budgets, per-machine memory
audits); this package is the *execution* substrate that runs the
machine-local work of the MPC solvers on real workers:

* :mod:`repro.dist.transport` — the :class:`Transport` protocol with an
  in-process reference (:class:`LocalTransport`), a persistent
  shared-memory multiprocessing pool (:class:`MultiprocessTransport`),
  and a documented mpi4py mapping (:class:`MPITransport`);
* :mod:`repro.dist.kernels` — the named worker kernels wrapping the
  existing machine-local phase logic unchanged;
* :mod:`repro.dist.executor` — the phase-structured driver
  (:class:`DistExecutor`) the solvers program against;
* :mod:`repro.dist.faults` — deterministic fault injection
  (:class:`FaultPlan` + :class:`ChaosTransport`) and the supervised
  recovery path (:class:`FaultPolicy` + :class:`SupervisedTransport`
  + :class:`RecoveryLog`): retries with backoff, worker respawn with
  journal replay, graceful degradation to :class:`LocalTransport`;
* :mod:`repro.dist.pool` — shared multiprocessing plumbing (also used by
  :func:`repro.api.batch.solve_many`).

Entry point: ``solve(task, graph, backend="mpc", executor="parallel",
workers=K)`` — outputs and budget audits are byte-identical to the
sequential simulator under fixed seeds (see DISTRIBUTED.md).
"""

from repro.dist.errors import (
    DistCorruptionError,
    DistExecutionError,
    DistTimeoutError,
)
from repro.dist.executor import DistExecutor, resolve_executor
from repro.dist.faults import (
    ChaosTransport,
    FaultPlan,
    FaultPolicy,
    FaultSpec,
    RecoveryLog,
    SupervisedTransport,
)
from repro.dist.transport import (
    LocalTransport,
    MPITransport,
    MultiprocessTransport,
    Transport,
)

__all__ = [
    "ChaosTransport",
    "DistCorruptionError",
    "DistExecutionError",
    "DistExecutor",
    "DistTimeoutError",
    "FaultPlan",
    "FaultPolicy",
    "FaultSpec",
    "LocalTransport",
    "MPITransport",
    "MultiprocessTransport",
    "RecoveryLog",
    "SupervisedTransport",
    "Transport",
    "resolve_executor",
]
