"""Transports: where distributed kernels actually run.

A :class:`Transport` owns a fixed set of workers and moves three kinds of
traffic between the driver and them:

* ``install(key, arrays)`` — a *session*: named immutable NumPy arrays
  (CSR ``indptr``/``indices``, rank permutations) every worker can read
  for the session's lifetime.  :class:`MultiprocessTransport` places them
  in ``multiprocessing.shared_memory`` segments mapped read-only by every
  worker, so a 50k-vertex graph costs one copy total, not one per worker.
* ``step(kernel, payloads)`` — one superstep barrier: payload ``i`` goes
  to worker ``i``, the named kernel (see :mod:`repro.dist.kernels`) runs
  on each, and the per-worker results come back in worker order.  Round
  payloads move as pickle-protocol-5 messages whose NumPy buffers travel
  out-of-band through chunked, CRC32-checksummed pipe frames.
* ``drop``/``close`` — session and worker teardown.

:class:`LocalTransport` is the in-process reference implementation: the
same sessions, the same kernels, run sequentially in the driver process.
It defines the semantics the real transports must reproduce,
``executor="local"`` benchmarks against it, and the supervision layer
(:mod:`repro.dist.faults`) degrades onto it when the worker pool is
beyond saving.  :class:`MPITransport` documents how the same interface
maps onto ``mpi4py`` without importing it (the container has no MPI
stack).

Failure surface (the contract the fault tests pin):

* every driver-side receive is **poll-based with a deadline** — there is
  no bare blocking ``recv_bytes`` anywhere on the driver, so a wedged or
  sleeping worker raises :class:`~repro.dist.errors.DistTimeoutError`
  instead of hanging the caller;
* every message carries CRC32 checksums over its frames; a corrupt reply
  raises :class:`~repro.dist.errors.DistCorruptionError`;
* a worker process dying mid-phase surfaces as
  :class:`~repro.dist.errors.DistExecutionError` with structured context
  (worker, phase, recovery action).

The fail-fast methods (``step``) tear the transport down on a fatal
worker failure.  The supervision layer builds on the non-raising
per-worker primitives instead — :meth:`MultiprocessTransport.step_partial`
(per-worker outcomes), :meth:`MultiprocessTransport.respawn_worker`
(replace one dead worker, re-attaching the still-linked shared-memory
sessions), and the fault-injection hooks (:meth:`kill_worker`,
:meth:`delay_next_receive`, :meth:`corrupt_next_receive`) that
:class:`~repro.dist.faults.ChaosTransport` drives deterministically.
"""

from __future__ import annotations

import atexit
import gc
import pickle
import time
import traceback
import weakref
import zlib
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.dist.errors import (
    DistCorruptionError,
    DistExecutionError,
    DistTimeoutError,
)
from repro.dist.pool import mp_context

# Pipe frame size for out-of-band buffers.  Large arrays are sent as
# multiple frames so no single ``send_bytes`` call materializes an
# unbounded intermediate copy.
_CHUNK_BYTES = 1 << 23  # 8 MiB

#: Default driver-side receive deadline per message.  Finite on purpose:
#: even the unsupervised fail-fast transport must never block forever on
#: a wedged worker (the supervised policy usually tightens this a lot).
DEFAULT_STEP_TIMEOUT_S = 300.0

#: Granularity of the deadline poll loop.
_POLL_INTERVAL_S = 0.02

#: Per-worker step outcome: ``(kind, value)`` where kind is one of
#: ``"ok"`` (value = kernel result), ``"kernel_error"`` (value = worker
#: traceback text), ``"died"``, ``"timeout"``, ``"corrupt"``.
Outcome = Tuple[str, Any]


class Session:
    """One installed session on one worker: shared arrays + mutable state.

    ``arrays`` holds the read-only install payload; ``state`` is the
    kernel scratch space that persists across ``step`` calls (e.g. the
    direct-simulation per-worker vertex state).
    """

    def __init__(self, arrays: Dict[str, np.ndarray]) -> None:
        self.arrays = arrays
        self.state: Dict[str, Any] = {}


class WorkerContext:
    """What a kernel sees: its identity and the installed sessions."""

    def __init__(self, worker_id: int, num_workers: int) -> None:
        self.worker_id = worker_id
        self.num_workers = num_workers
        self._sessions: Dict[str, Session] = {}

    def add_session(self, key: str, arrays: Dict[str, np.ndarray]) -> None:
        self._sessions[key] = Session(arrays)

    def drop_session(self, key: str) -> None:
        self._sessions.pop(key, None)

    def session(self, key: str) -> Session:
        try:
            return self._sessions[key]
        except KeyError:
            raise KeyError(
                f"no session {key!r} installed on worker {self.worker_id}"
            ) from None


class Transport:
    """Abstract transport; see the module docstring for the contract."""

    #: Whether workers execute in separate processes.  The executor layer
    #: uses this to decide between the plain sequential solver path
    #: (reference behavior) and the kernel-partitioned distributed path.
    distributed = False

    @property
    def workers(self) -> int:
        raise NotImplementedError

    def install(self, key: str, arrays: Dict[str, np.ndarray]) -> None:
        raise NotImplementedError

    def drop(self, key: str) -> None:
        raise NotImplementedError

    def step(self, kernel: str, payloads: Sequence[Any]) -> List[Any]:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class LocalTransport(Transport):
    """The reference transport: kernels run inline, one worker at a time.

    Sessions share the driver's arrays by reference (no copies), so
    kernels must treat ``Session.arrays`` and received payloads as
    read-only — the process-isolated transports enforce by construction
    what this one enforces by convention, and the parity suite checks the
    two agree.
    """

    distributed = False

    def __init__(self, workers: int = 2) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._contexts = [WorkerContext(i, workers) for i in range(workers)]
        self._closed = False

    @property
    def workers(self) -> int:
        return len(self._contexts)

    def install(self, key: str, arrays: Dict[str, np.ndarray]) -> None:
        self._ensure_open()
        for ctx in self._contexts:
            ctx.add_session(key, dict(arrays))

    def drop(self, key: str) -> None:
        # Dropping on a closed transport is benign cleanup (solver
        # ``finally`` blocks run after a failure already closed us) — it
        # must not raise and mask the original error.
        if self._closed:
            return
        for ctx in self._contexts:
            ctx.drop_session(key)

    def step(self, kernel: str, payloads: Sequence[Any]) -> List[Any]:
        self._ensure_open()
        self._check_payloads(payloads)
        from repro.dist.kernels import get_kernel

        fn = get_kernel(kernel)
        results = []
        for ctx, payload in zip(self._contexts, payloads):
            try:
                results.append(fn(ctx, payload))
            except Exception as error:
                raise DistExecutionError(
                    f"kernel {kernel!r} raised on worker {ctx.worker_id}: "
                    f"{type(error).__name__}: {error}",
                    worker_id=ctx.worker_id,
                    phase=kernel,
                    attempts=1,
                    recovery="none",
                ) from error
        return results

    def close(self) -> None:
        self._closed = True
        self._contexts = []

    def _check_payloads(self, payloads: Sequence[Any]) -> None:
        if len(payloads) != self.workers:
            raise ValueError(
                f"step needs one payload per worker "
                f"({self.workers}), got {len(payloads)}"
            )

    def _ensure_open(self) -> None:
        if self._closed:
            raise DistExecutionError("transport is closed")


# ---------------------------------------------------------------------------
# Pipe message protocol (driver <-> worker)
# ---------------------------------------------------------------------------
#
# A message is pickled with protocol 5 so NumPy array payloads detach
# their buffers; frames on the wire are:
#
#   [head pickle] [buffer-size list pickle] [buffer chunks ...] [crc list]
#
# Each buffer is split into <= _CHUNK_BYTES frames.  The receiver
# reassembles the buffers, verifies the CRC32 trailer (head, size list,
# then one checksum per buffer), and feeds them back to ``pickle.loads``
# — a zero-parse copy for array payloads of any size.  Driver-side
# receives go through a poll loop with a deadline; worker-side receives
# block (a worker waiting for work is not a hazard — the driver is).


class _ReceiveTimeout(Exception):
    """Internal: the receive deadline elapsed before a full message arrived."""


def _wait_readable(conn, deadline_ts, pretend_until) -> None:
    """Poll until ``conn`` is readable, honoring deadline and fake delay.

    ``pretend_until`` (a monotonic timestamp, or ``None``) simulates a
    slow worker for fault injection: data already in the pipe is treated
    as not-yet-arrived until the timestamp passes — so an injected delay
    longer than the deadline produces exactly the timeout a genuinely
    stuck worker would.
    """
    while True:
        now = time.monotonic()
        if pretend_until is not None and now < pretend_until:
            if deadline_ts is not None and now >= deadline_ts:
                raise _ReceiveTimeout()
            time.sleep(min(_POLL_INTERVAL_S, pretend_until - now))
            continue
        if deadline_ts is None:
            if conn.poll(_POLL_INTERVAL_S):
                return
            continue
        remaining = deadline_ts - now
        if remaining <= 0:
            raise _ReceiveTimeout()
        if conn.poll(min(_POLL_INTERVAL_S, remaining)):
            return


def _send_msg(conn, obj: Any) -> None:
    buffers: List[pickle.PickleBuffer] = []
    head = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    views = [buf.raw().cast("B") for buf in buffers]
    sizes = pickle.dumps([len(view) for view in views])
    checksums = [zlib.crc32(head), zlib.crc32(sizes)]
    conn.send_bytes(head)
    conn.send_bytes(sizes)
    for view in views:
        checksums.append(zlib.crc32(view))
        for offset in range(0, len(view), _CHUNK_BYTES):
            conn.send_bytes(view[offset : offset + _CHUNK_BYTES])
    conn.send_bytes(pickle.dumps(checksums))


def _recv_msg(
    conn,
    timeout: Optional[float] = None,
    _pretend_delay: Optional[float] = None,
    _corrupt: bool = False,
) -> Any:
    """Receive one message; ``timeout`` covers the whole message.

    ``_pretend_delay`` and ``_corrupt`` are the fault-injection hooks
    (driver-side only): the former defers readability (see
    :func:`_wait_readable`), the latter flips a byte of the head frame
    after receipt so the CRC check fails exactly as real corruption
    would.  With neither a timeout nor injections (the worker side), the
    receive blocks natively.
    """
    deadline_ts = None if timeout is None else time.monotonic() + timeout
    pretend_until = (
        None if _pretend_delay is None else time.monotonic() + _pretend_delay
    )
    blocking = deadline_ts is None and pretend_until is None

    def frame() -> bytes:
        if not blocking:
            _wait_readable(conn, deadline_ts, pretend_until)
        return conn.recv_bytes()

    head = frame()
    if _corrupt and head:
        head = bytes([head[0] ^ 0xFF]) + head[1:]
    sizes_frame = frame()
    sizes = pickle.loads(sizes_frame)
    buffers = []
    for size in sizes:
        data = bytearray(size)
        view = memoryview(data)
        offset = 0
        while offset < size:
            if not blocking:
                _wait_readable(conn, deadline_ts, pretend_until)
            offset += conn.recv_bytes_into(view[offset:])
        buffers.append(data)
    checksums = pickle.loads(frame())
    computed = [zlib.crc32(head), zlib.crc32(sizes_frame)]
    computed.extend(zlib.crc32(buffer) for buffer in buffers)
    if checksums != computed:
        raise DistCorruptionError(
            "message failed its CRC32 integrity check "
            f"(sent {checksums}, computed {computed})"
        )
    return pickle.loads(head, buffers=buffers)


def _attach_shared(name: str):
    """Attach an existing shared-memory segment (worker side).

    CPython's ``resource_tracker`` registers every attach as if the
    process owned the segment.  Because the workers are multiprocessing
    children, they share the *driver's* tracker process, where the
    registration is a set no-op (the driver already registered the name
    at create time) — so no unregister correction is needed, and issuing
    one would strip the driver's own registration out of the shared
    tracker, making the driver's unlink-time unregister fail.
    """
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(name=name)


def _install_session(
    ctx: WorkerContext, segments: Dict[str, list], key: str, specs: Dict
) -> None:
    """Attach a session's shared segments and map them as read-only arrays.

    A helper (not inlined in the worker loop) so that no loop-frame local
    keeps referencing the array views after the session is dropped —
    ``SharedMemory.close`` raises ``BufferError`` while exported pointers
    exist.
    """
    arrays: Dict[str, np.ndarray] = {}
    attached = []
    for name, (shm_name, dtype, shape) in specs.items():
        segment = _attach_shared(shm_name)
        attached.append(segment)
        count = int(np.prod(shape, dtype=np.int64))
        array = np.frombuffer(
            segment.buf, dtype=np.dtype(dtype), count=count
        ).reshape(shape)
        array.flags.writeable = False
        arrays[name] = array
    segments[key] = attached
    ctx.add_session(key, arrays)


def _worker_main(conn, worker_id: int, num_workers: int) -> None:
    """Worker process loop: install/drop/step/close until EOF."""
    from repro.dist.kernels import get_kernel

    ctx = WorkerContext(worker_id, num_workers)
    segments: Dict[str, list] = {}
    try:
        while True:
            try:
                message = _recv_msg(conn)
            except (EOFError, OSError):
                break
            except DistCorruptionError:
                # A corrupt command: the frame-delimited protocol keeps
                # the stream aligned, so reply with the error and keep
                # serving — the driver decides what to do about it.
                try:
                    _send_msg(conn, ("err", traceback.format_exc()))
                except (OSError, ValueError):
                    break
                continue
            command = message[0]
            if command == "close":
                _send_msg(conn, ("ok", None))
                break
            try:
                if command == "install":
                    _, key, specs = message
                    _install_session(ctx, segments, key, specs)
                    _send_msg(conn, ("ok", None))
                elif command == "drop":
                    _, key = message
                    ctx.drop_session(key)
                    # Views into the segment die with the session (and a
                    # collection sweeps any cyclic holders, e.g. cached
                    # CSR wrappers); only then is unmapping safe.
                    gc.collect()
                    for segment in segments.pop(key, []):
                        segment.close()
                    _send_msg(conn, ("ok", None))
                elif command == "step":
                    _, kernel_name, payload = message
                    # Result computed inline: no loop-frame local may
                    # outlive the step holding a shared-array view.
                    _send_msg(
                        conn, ("ok", get_kernel(kernel_name)(ctx, payload))
                    )
                    del payload
                else:
                    _send_msg(conn, ("err", f"unknown command {command!r}"))
            except Exception:
                _send_msg(conn, ("err", traceback.format_exc()))
    finally:
        conn.close()


class _WorkerHandle:
    """One worker process + its duplex pipe, as the driver tracks it."""

    __slots__ = ("worker_id", "process", "conn", "dead")

    def __init__(self, worker_id: int, process, conn) -> None:
        self.worker_id = worker_id
        self.process = process
        self.conn = conn
        self.dead = False


# Driver-owned shared-memory segments outlive an interrupted solve: a
# Ctrl-C mid-step unwinds through frames that still reference the
# transport, ``__del__`` is then at the mercy of GC order during
# interpreter shutdown, and every segment the driver created stays
# linked in /dev/shm (with the resource tracker shouting about leaks it
# cannot safely clean).  One process-wide atexit hook closes whatever
# transports are still live at exit; the WeakSet keeps the hook from
# pinning transports that were closed and collected normally.
_LIVE_TRANSPORTS: "weakref.WeakSet" = weakref.WeakSet()


@atexit.register
def _close_live_transports() -> None:  # pragma: no cover - exercised via subprocess test
    for transport in list(_LIVE_TRANSPORTS):
        try:
            transport.close()
        except Exception:
            pass


class MultiprocessTransport(Transport):
    """A persistent pool of worker *processes* behind the transport API.

    Workers are long-lived: they are forked once (see
    :func:`repro.dist.pool.mp_context`), hold installed sessions in
    shared memory across any number of steps, and die at ``close``.
    Immutable session arrays live in ``shared_memory`` segments the
    driver owns and every worker maps read-only; per-step payloads and
    results move through chunked duplex pipes (see the framing protocol
    above).

    ``step`` is fail-fast: a fatal worker failure (death, timeout,
    corrupt reply) tears the transport down and raises.  The supervision
    layer (:class:`repro.dist.faults.SupervisedTransport`) instead uses
    :meth:`step_partial` + :meth:`respawn_worker` to recover in place.
    """

    distributed = True

    def __init__(
        self,
        workers: int = 2,
        start_method: Optional[str] = None,
        step_timeout_s: Optional[float] = DEFAULT_STEP_TIMEOUT_S,
        close_timeout_s: float = 5.0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        # Start the resource tracker *before* forking so every worker
        # inherits the same tracker process.  Attach-time registrations
        # then land in the shared (idempotent) cache instead of private
        # per-worker trackers that would warn about "leaked" segments
        # they never owned at worker exit.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - tracker internals vary
            pass
        self._context = mp_context(start_method)
        self._num_workers = workers
        self._step_timeout_s = step_timeout_s
        self._close_timeout_s = close_timeout_s
        self._workers: List[_WorkerHandle] = []
        self._segments: Dict[str, list] = {}
        self._session_specs: Dict[str, Dict] = {}
        self._delay_injections: Dict[int, float] = {}
        self._corrupt_injections: Set[int] = set()
        self._closed = False
        # Registered before the first segment can exist, so an interrupt
        # at any later point finds this transport in the atexit sweep.
        _LIVE_TRANSPORTS.add(self)
        try:
            for worker_id in range(workers):
                self._workers.append(self._spawn(worker_id))
        except Exception:
            self.close()
            raise

    @property
    def workers(self) -> int:
        # Stored, not len(self._workers): the count must stay readable
        # for run-report metadata after close() reaps the processes.
        return self._num_workers

    @property
    def step_timeout_s(self) -> Optional[float]:
        """The default per-message receive deadline (None = no deadline)."""
        return self._step_timeout_s

    def install(self, key: str, arrays: Dict[str, np.ndarray]) -> None:
        self._ensure_open()
        if key in self._segments:
            raise ValueError(f"session {key!r} is already installed")
        from multiprocessing import shared_memory

        specs = {}
        segments = []
        try:
            for name, array in arrays.items():
                array = np.ascontiguousarray(array)
                segment = shared_memory.SharedMemory(
                    create=True, size=max(1, array.nbytes)
                )
                segments.append(segment)
                if array.nbytes:
                    shared = np.frombuffer(segment.buf, dtype=array.dtype)
                    shared[: array.size] = array.ravel()
                specs[name] = (segment.name, array.dtype.str, array.shape)
        except Exception:
            for segment in segments:
                segment.close()
                segment.unlink()
            raise
        self._segments[key] = segments
        self._session_specs[key] = specs
        self._command_all(("install", key, specs), context=f"install {key!r}")

    def drop(self, key: str) -> None:
        # Benign after close (see LocalTransport.drop): cleanup paths in
        # solver ``finally`` blocks must not mask the original failure.
        if self._closed:
            return
        if key not in self._segments:
            return
        self._session_specs.pop(key, None)
        self._command_all(("drop", key), context=f"drop {key!r}")
        for segment in self._segments.pop(key):
            segment.close()
            segment.unlink()

    def step(self, kernel: str, payloads: Sequence[Any]) -> List[Any]:
        outcomes = self.step_partial(kernel, payloads)
        return self._failfast_results(kernel, outcomes)

    def step_partial(
        self,
        kernel: str,
        payloads: Sequence[Any],
        only: Optional[Set[int]] = None,
        deadline: Optional[float] = None,
    ) -> Dict[int, Outcome]:
        """One barrier step, returning per-worker outcomes instead of raising.

        ``payloads`` is always the full one-per-worker list; ``only``
        restricts dispatch to a subset of workers (the supervision layer
        retries only the workers that failed).  ``deadline`` overrides
        the transport's default receive deadline for this step.

        Outcome kinds: ``"ok"``/``"kernel_error"`` (worker alive and
        serving), ``"corrupt"`` (worker alive, reply unreadable),
        ``"died"``/``"timeout"`` (worker gone — a timed-out worker is
        killed because its pipe can no longer be trusted to stay
        frame-aligned).  Dead workers need :meth:`respawn_worker` before
        they can serve again.
        """
        self._ensure_open()
        if len(payloads) != self.workers:
            raise ValueError(
                f"step needs one payload per worker "
                f"({self.workers}), got {len(payloads)}"
            )
        targets = (
            list(range(self.workers)) if only is None else sorted(only)
        )
        if deadline is None:
            deadline = self._step_timeout_s
        outcomes: Dict[int, Outcome] = {}
        await_reply: List[int] = []
        for worker_id in targets:
            handle = self._workers[worker_id]
            if handle.dead:
                outcomes[worker_id] = ("died", "worker process is not running")
                continue
            try:
                _send_msg(handle.conn, ("step", kernel, payloads[worker_id]))
            except (OSError, ValueError) as error:
                self._retire(handle)
                outcomes[worker_id] = (
                    "died",
                    f"{type(error).__name__} while sending",
                )
            else:
                await_reply.append(worker_id)
        for worker_id in await_reply:
            handle = self._workers[worker_id]
            delay = self._delay_injections.pop(worker_id, None)
            corrupt = worker_id in self._corrupt_injections
            self._corrupt_injections.discard(worker_id)
            started = time.monotonic()
            try:
                status, value = _recv_msg(
                    handle.conn,
                    timeout=deadline,
                    _pretend_delay=delay,
                    _corrupt=corrupt,
                )
            except _ReceiveTimeout:
                self._retire(handle)
                outcomes[worker_id] = ("timeout", time.monotonic() - started)
            except DistCorruptionError as error:
                outcomes[worker_id] = ("corrupt", str(error))
            except (EOFError, OSError) as error:
                self._retire(handle)
                outcomes[worker_id] = ("died", type(error).__name__)
            else:
                outcomes[worker_id] = (
                    ("ok", value) if status == "ok" else ("kernel_error", value)
                )
        return outcomes

    def close(self) -> None:
        """Tear down: close, then escalate terminate → kill, always unlink.

        Never blocks on a wedged worker: each join is bounded by
        ``close_timeout_s``, a worker that survives ``terminate()`` (e.g.
        SIGTERM masked) is ``kill()``-ed, and shared-memory segments are
        unlinked in a ``finally`` so no failure path leaks them.
        """
        if self._closed:
            return
        self._closed = True
        _LIVE_TRANSPORTS.discard(self)
        try:
            for handle in self._workers:
                if handle.dead:
                    continue
                try:
                    _send_msg(handle.conn, ("close",))
                except (OSError, ValueError):
                    pass
            for handle in self._workers:
                process = handle.process
                process.join(timeout=self._close_timeout_s)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=self._close_timeout_s)
                if process.is_alive():  # SIGTERM ignored/blocked: escalate
                    process.kill()
                    process.join()
            for handle in self._workers:
                try:
                    handle.conn.close()
                except OSError:  # pragma: no cover - already gone
                    pass
        finally:
            for segments in self._segments.values():
                for segment in segments:
                    try:
                        segment.close()
                        segment.unlink()
                    except FileNotFoundError:  # pragma: no cover
                        pass
            self._segments.clear()
            self._session_specs.clear()
            self._workers = []

    # -- supervision & fault-injection surface ------------------------------

    def respawn_worker(self, worker_id: int) -> None:
        """Replace a dead/stuck worker process with a fresh one.

        The shared-memory segments are driver-owned and still linked, so
        the fresh process *re-attaches* every live session — no array is
        copied.  Kernel session **state** is not restored here; that is
        the supervision layer's job (journal replay — see
        :class:`repro.dist.faults.SupervisedTransport`).
        """
        self._ensure_open()
        handle = self._workers[worker_id]
        self._retire(handle)
        self._delay_injections.pop(worker_id, None)
        self._corrupt_injections.discard(worker_id)
        fresh = self._spawn(worker_id)
        self._workers[worker_id] = fresh
        for key, specs in self._session_specs.items():
            try:
                _send_msg(fresh.conn, ("install", key, specs))
                status, value = _recv_msg(
                    fresh.conn, timeout=self._step_timeout_s
                )
            except (_ReceiveTimeout, EOFError, OSError, ValueError) as error:
                self._retire(fresh)
                raise DistExecutionError(
                    f"respawned worker {worker_id} failed to re-attach "
                    f"session {key!r} ({type(error).__name__})",
                    worker_id=worker_id,
                    phase="respawn",
                    recovery="respawn-failed",
                ) from error
            if status != "ok":
                raise DistExecutionError(
                    f"respawned worker {worker_id} rejected session "
                    f"{key!r}:\n{value}",
                    worker_id=worker_id,
                    phase="respawn",
                    recovery="respawn-failed",
                )

    def kill_worker(self, worker_id: int) -> None:
        """Fault-injection hook: SIGKILL a worker process outright.

        Used by :class:`repro.dist.faults.ChaosTransport` (``crash``
        faults) and the fault tests; the death is then observed through
        the normal pipe-EOF path, exactly like an OOM kill or segfault.
        """
        self._ensure_open()
        handle = self._workers[worker_id]
        if handle.process.is_alive():
            handle.process.kill()
        handle.process.join()

    def delay_next_receive(self, worker_id: int, seconds: float) -> None:
        """Fault-injection hook: treat the worker's next reply as late.

        The reply is considered unreadable for ``seconds`` even if it is
        already in the pipe — a delay longer than the receive deadline
        produces exactly the timeout a genuinely stuck worker would.
        """
        self._ensure_open()
        self._delay_injections[worker_id] = float(seconds)

    def corrupt_next_receive(self, worker_id: int) -> None:
        """Fault-injection hook: corrupt the worker's next reply in flight.

        A byte of the received head frame is flipped before the CRC32
        verification, so detection runs through the real integrity-check
        path.
        """
        self._ensure_open()
        self._corrupt_injections.add(worker_id)

    # -- internals ----------------------------------------------------------

    def _spawn(self, worker_id: int) -> _WorkerHandle:
        parent, child = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_worker_main,
            args=(child, worker_id, self._num_workers),
            daemon=True,
        )
        process.start()
        child.close()
        return _WorkerHandle(worker_id, process, parent)

    def _retire(self, handle: _WorkerHandle) -> None:
        """Mark a worker dead: kill if needed, reap, close its pipe."""
        handle.dead = True
        if handle.process.is_alive():
            handle.process.kill()
        handle.process.join()
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover - already gone
            pass

    def _failfast_results(
        self, kernel: str, outcomes: Dict[int, Outcome]
    ) -> List[Any]:
        """Fold per-worker outcomes into fail-fast ``step`` semantics.

        Fatal failures (death, timeout, corruption) tear the transport
        down; kernel errors leave it usable and raise the first one by
        worker order — every reply was already drained by
        :meth:`step_partial`, so the pipes stay step-aligned.
        """
        for worker_id in sorted(outcomes):
            kind, info = outcomes[worker_id]
            if kind == "died":
                self.close()
                raise DistExecutionError(
                    f"worker {worker_id} died during {kernel} ({info}); "
                    f"transport closed",
                    worker_id=worker_id,
                    phase=kernel,
                    attempts=1,
                    recovery="transport-closed",
                )
            if kind == "timeout":
                self.close()
                raise DistTimeoutError(
                    f"worker {worker_id} timed out after {info:.2f}s during "
                    f"{kernel}; transport closed",
                    worker_id=worker_id,
                    phase=kernel,
                    attempts=1,
                    recovery="transport-closed",
                )
            if kind == "corrupt":
                self.close()
                raise DistCorruptionError(
                    f"reply from worker {worker_id} during {kernel} failed "
                    f"its checksum ({info}); transport closed",
                    worker_id=worker_id,
                    phase=kernel,
                    attempts=1,
                    recovery="transport-closed",
                )
        first_error: Optional[DistExecutionError] = None
        results: List[Any] = []
        for worker_id in sorted(outcomes):
            kind, value = outcomes[worker_id]
            if kind == "ok":
                results.append(value)
            elif first_error is None:
                # Kernel-level failure: the worker survived and the
                # transport stays usable; re-raise the worker traceback
                # driver-side.
                first_error = DistExecutionError(
                    f"worker {worker_id} failed during {kernel}:\n{value}",
                    worker_id=worker_id,
                    phase=kernel,
                    attempts=1,
                    recovery="none",
                )
        if first_error is not None:
            raise first_error
        return results

    def _command_all(self, message, context: str) -> None:
        for handle in self._workers:
            try:
                _send_msg(handle.conn, message)
            except (OSError, ValueError) as error:
                self._fail(handle, context, error)
        for handle in self._workers:
            try:
                status, value = _recv_msg(
                    handle.conn, timeout=self._step_timeout_s
                )
            except _ReceiveTimeout as error:
                self._retire(handle)
                self._fail(handle, context, error, timed_out=True)
            except (EOFError, OSError, DistCorruptionError) as error:
                self._fail(handle, context, error)
            else:
                if status == "err":
                    # Kernel/command-level failure: the worker survived
                    # and the transport stays usable.
                    raise DistExecutionError(
                        f"worker {handle.worker_id} failed during "
                        f"{context}:\n{value}",
                        worker_id=handle.worker_id,
                        phase=context,
                        attempts=1,
                        recovery="none",
                    )

    def _fail(
        self,
        handle: _WorkerHandle,
        context: str,
        error: Exception,
        timed_out: bool = False,
    ) -> None:
        """A worker died mid-command: tear everything down, raise cleanly."""
        self.close()
        error_type = DistTimeoutError if timed_out else DistExecutionError
        raise error_type(
            f"worker {handle.worker_id} died during {context} "
            f"({type(error).__name__}); transport closed",
            worker_id=handle.worker_id,
            phase=context,
            attempts=1,
            recovery="transport-closed",
        ) from error

    def _ensure_open(self) -> None:
        if self._closed:
            raise DistExecutionError("transport is closed")

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass


class MPITransport(Transport):
    """How the same interface maps onto ``mpi4py`` (documentation stub).

    The container image has no MPI stack, so this class only records the
    mapping a real deployment would implement behind the identical
    driver-facing API (see DISTRIBUTED.md for the full sketch):

    * construction — ``MPI.COMM_WORLD`` with the driver on rank 0 and
      ``workers = comm.Get_size() - 1``; worker ranks sit in the same
      install/drop/step/close command loop as
      :func:`_worker_main`, driven by ``comm.bcast`` of the command tuple.
    * ``install`` — one ``comm.Bcast`` per array (dtype/shape first, then
      the raw buffer); node-local ranks may further share one copy via
      ``MPI.Win.Allocate_shared``.
    * ``step`` — ``comm.scatter`` of the payload list (driver contributes
      a ``None`` slot), kernel execution on each rank, ``comm.gather`` of
      the results; the gather is the per-phase barrier.
    * ``close`` — broadcast the close command, then ``comm.Barrier``.

    Failure mapping: a dead rank surfaces as an ``MPI.Exception`` /
    aborted communicator, which the driver wraps in
    :class:`DistExecutionError` exactly like a dead pipe.
    """

    distributed = True

    def __init__(self, *args, **kwargs) -> None:
        raise NotImplementedError(
            "MPITransport is a documented mapping, not an implementation: "
            "this environment has no mpi4py. See DISTRIBUTED.md."
        )
