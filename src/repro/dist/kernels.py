"""Named worker kernels the transports dispatch by string.

A kernel is ``fn(ctx, payload) -> result`` where ``ctx`` is the worker's
:class:`~repro.dist.transport.WorkerContext`.  Kernels are resolved by
name inside each worker (the registry is populated at module import, so
forked and spawned workers see the same table), which keeps step payloads
free of code objects.

The solver kernels here wrap the *existing* machine-local MPC phase logic
— :func:`repro.core.matching_mpc._machine_insertions`,
:func:`repro.core.greedy_mis.greedy_mis_on_prefix_csr`,
:func:`repro.baselines.filtering.filtering_maximal_matching` — unchanged;
the distributed executor only changes *where* those units run, never what
they compute, which is what keeps ``executor="parallel"`` byte-identical
to the sequential simulator.

Worker-resident state (the direct-simulation vertex slices) lives in
``ctx.session(key).state`` and survives across steps until the session is
dropped.

The ``debug.*`` kernels are the transport test surface, including the
fault-injection hook the worker-death test uses.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Dict, List, Set, Tuple

import numpy as np

_KERNELS: Dict[str, Callable] = {}
_STATEFUL: Set[str] = set()


def kernel(name: str, stateful: bool = False) -> Callable[[Callable], Callable]:
    """Register a kernel under ``name`` (must be unique).

    ``stateful=True`` declares that the kernel *mutates* worker-resident
    session state (``ctx.session(key).state``).  The supervision layer
    uses this to pick a recovery strategy: a failed stateless step can be
    retried in place (same inputs, same outputs), while a failed stateful
    step may have partially mutated state, so the worker must be
    respawned and its journal replayed before re-dispatch.
    """

    def wrap(fn: Callable) -> Callable:
        if name in _KERNELS:
            raise ValueError(f"kernel {name!r} is already registered")
        _KERNELS[name] = fn
        if stateful:
            _STATEFUL.add(name)
        return fn

    return wrap


def is_stateful(name: str) -> bool:
    """Whether ``name`` mutates worker-resident session state."""
    return name in _STATEFUL


def get_kernel(name: str) -> Callable:
    """Resolve a kernel by name (raises ``KeyError`` for unknown names)."""
    try:
        return _KERNELS[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; registered: {sorted(_KERNELS)}"
        ) from None


def kernel_names() -> List[str]:
    """Registered kernel names, sorted."""
    return sorted(_KERNELS)


# ---------------------------------------------------------------------------
# debug / test kernels
# ---------------------------------------------------------------------------


@kernel("debug.echo")
def _echo(ctx, payload: Any) -> Any:
    """Echo the payload plus worker identity; sums any named session array."""
    sums = {}
    for key in payload.get("sessions", ()):
        session = ctx.session(key)
        sums[key] = {
            name: float(np.sum(array)) for name, array in session.arrays.items()
        }
    return {
        "worker_id": ctx.worker_id,
        "num_workers": ctx.num_workers,
        "payload": payload.get("value"),
        "session_sums": sums,
    }


@kernel("debug.fail")
def _fail(ctx, payload: Any) -> Any:
    """Raise on selected workers (kernel-error path: transport survives)."""
    if payload.get("fail"):
        raise ValueError(f"injected kernel failure on worker {ctx.worker_id}")
    return "ok"


@kernel("debug.crash")
def _crash(ctx, payload: Any) -> Any:
    """Kill the worker process outright (worker-death path: clean error).

    ``os._exit`` skips all cleanup, exactly like a segfault or OOM kill
    would — the driver must observe a dead pipe, not a reply.
    """
    if payload.get("exit") is not None:
        os._exit(int(payload["exit"]))
    return "alive"


@kernel("debug.sleep")
def _sleep(ctx, payload: Any) -> Any:
    """Sleep before replying (timeout path: the deadline must fire)."""
    time.sleep(float(payload.get("seconds", 0.0)))
    return {"worker_id": ctx.worker_id, "slept": payload.get("seconds", 0.0)}


@kernel("debug.wedge")
def _wedge(ctx, payload: Any) -> Any:
    """Ignore SIGTERM, then sleep — only ``Process.kill()`` can reap this.

    Exercises the ``close()`` escalation path: a worker wedged like this
    survives ``terminate()`` and must be SIGKILL-ed within the close
    timeout instead of hanging the driver.
    """
    import signal

    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    time.sleep(float(payload.get("seconds", 30.0)))
    return "woke"


@kernel("debug.counter", stateful=True)
def _counter(ctx, payload: Any) -> int:
    """Accumulate into session state (the journal-replay unit-test target).

    Each step adds ``payload["add"]`` to a per-session counter and returns
    the running total — so a respawned worker whose journal was replayed
    correctly returns exactly the total an uninterrupted worker would.
    """
    session = ctx.session(payload["session"])
    session.state["count"] = session.state.get("count", 0) + int(
        payload.get("add", 0)
    )
    return session.state["count"]


# ---------------------------------------------------------------------------
# matching: compressed-phase machine simulation (Lemma 4.2, Lines (e))
# ---------------------------------------------------------------------------


@kernel("matching.machines")
def _matching_machines(ctx, payload: Any) -> List[List[Tuple[int, int]]]:
    """Run this worker's chunk of per-machine local Central-Rand blocks.

    ``payload["tasks"]`` is a list of ``(part_ids, local_u, local_v,
    y_part)`` machine inputs; ``payload["shared"]`` carries the oracle and
    the phase constants.  Returns one freeze-insertion list per task, in
    task order — the driver replays them machine-by-machine, reproducing
    the sequential simulator's ``freeze_iteration`` updates exactly.
    """
    from repro.core.matching_mpc import _machine_insertions

    shared = payload["shared"]
    oracle = shared["oracle"]
    return [
        _machine_insertions(
            part_ids=part_ids,
            local_u=local_u,
            local_v=local_v,
            y_part=y_part,
            oracle=oracle,
            start_iteration=shared["start"],
            iterations=shared["iterations"],
            num_machines=shared["machines"],
            w0=shared["w0"],
            growth=shared["growth"],
        )
        for part_ids, local_u, local_v, y_part in payload["tasks"]
    ]


# ---------------------------------------------------------------------------
# matching: distributed direct Central-Rand simulation (Line (4))
# ---------------------------------------------------------------------------
#
# The driver partitions the vertex range over the workers.  Each worker
# owns the mutable per-vertex state (active flag, active degree, frozen
# load) for its slice and reads the immutable CSR adjacency from the
# session's shared arrays.  One step per iteration:
#
#   1. *apply* the previous iteration's global freeze list: every
#      occurrence of an owned vertex in a newly-frozen vertex's (active-
#      filtered) adjacency row adds the previous weight w_{t-1} to its
#      frozen load and decrements its active degree — ``np.add.at`` with
#      repeated indices performs the same per-accumulator sequence of
#      equal-value additions as the sequential neighbor loop, so the
#      float results are bit-identical;
#   2. drop owned vertices whose active degree reached zero;
#   3. report the owned active count (the driver's allreduce decides
#      termination and round charging *before* consuming decisions);
#   4. *decide* iteration t through the same ThresholdOracle batch call
#      the sequential path uses and return the newly-frozen owned ids.
#
# Updates land unconditionally on every initially-active occurrence:
# vertices that already froze or went inactive can never re-enter the
# active set, so their (divergent) load/degree cells are never read —
# only currently-active cells matter, and those receive exactly the
# sequential increments.


@kernel("matching.direct_init", stateful=True)
def _direct_init(ctx, payload: Any) -> int:
    session = ctx.session(payload["session"])
    lo = int(payload["lo"])
    hi = int(payload["hi"])
    active_mask = np.asarray(payload["active"], dtype=bool)
    state = {
        "lo": lo,
        "hi": hi,
        # Full initially-active mask: filters adjacency rows to the live
        # active-active edges the sequential neighbor lists contain.
        "init_mask": active_mask,
        "active": active_mask[lo:hi].copy(),
        "degree": np.array(payload["degree"], dtype=np.int64),
        "load": np.array(payload["load"], dtype=np.float64),
        "oracle": payload["oracle"],
        "w0": float(payload["w0"]),
        "growth": float(payload["growth"]),
    }
    session.state["direct"] = state
    return int(state["active"].sum())


@kernel("matching.direct_step", stateful=True)
def _direct_step(ctx, payload: Any) -> Tuple[np.ndarray, int]:
    session = ctx.session(payload["session"])
    state = session.state["direct"]
    indptr = session.arrays["indptr"]
    indices = session.arrays["indices"]
    lo = state["lo"]
    hi = state["hi"]
    t = int(payload["t"])
    prev = np.asarray(payload["prev"], dtype=np.int64)

    if prev.size:
        w_prev = state["w0"] * state["growth"] ** (t - 1)
        # Vectorized multi-row CSR gather of every neighbor of prev.
        # Order within `hits` is irrelevant: all increments this step
        # equal w_prev, and equal-value np.add.at accumulation is
        # bitwise order-independent per cell (see the header comment).
        starts = indptr[prev]
        counts = indptr[prev + 1] - starts
        ends_cum = np.cumsum(counts)
        total = int(ends_cum[-1]) if counts.size else 0
        bases = np.repeat(starts - (ends_cum - counts), counts)
        hits = indices[bases + np.arange(total, dtype=np.int64)]
        hits = hits[state["init_mask"][hits]]
        own = hits[(hits >= lo) & (hits < hi)] - lo
        if own.size:
            np.add.at(state["load"], own, w_prev)
            np.subtract.at(state["degree"], own, 1)
        state["active"] &= state["degree"] != 0

    count = int(state["active"].sum())
    if count == 0:
        return prev[:0], 0

    w_t = state["w0"] * state["growth"] ** t
    act = np.flatnonzero(state["active"]).astype(np.int64) + lo
    estimates = state["load"][act - lo] + state["degree"][act - lo] * w_t
    crossed = state["oracle"].crosses_batch(act, t, estimates)
    newly = act[crossed]
    state["active"][newly - lo] = False
    return newly, count


# ---------------------------------------------------------------------------
# mis: rank-prefix greedy on one machine (Theorem 1.1, step 2)
# ---------------------------------------------------------------------------


@kernel("mis.prefix_greedy")
def _mis_prefix_greedy(ctx, payload: Any) -> List[np.ndarray]:
    """Walk each shipped rank prefix greedily (the single-leader phase).

    The session holds the CSR arrays and the shared rank permutation; the
    tasks are prefix vertex arrays.  Pure function of its inputs, so
    dispatching it to a worker is output-neutral by construction.
    """
    from repro.core.greedy_mis import greedy_mis_on_prefix_csr
    from repro.graph.csr import CSRGraph

    session = ctx.session(payload["shared"]["session"])
    csr = session.state.get("csr")
    if csr is None:
        csr = CSRGraph(session.arrays["indptr"], session.arrays["indices"])
        session.state["csr"] = csr
    ranks = session.arrays["ranks"]
    return [
        greedy_mis_on_prefix_csr(csr, ranks, np.asarray(prefix, dtype=np.int64))
        for prefix in payload["tasks"]
    ]


# ---------------------------------------------------------------------------
# weighted matching: per-class filtering maximal matching (Corollary 1.4)
# ---------------------------------------------------------------------------


@kernel("weighted.filtering")
def _weighted_filtering(ctx, payload: Any) -> List[Tuple[list, int]]:
    """Run the LMSV11 filtering maximal matching on one weight class.

    Tasks are ``(n, edges, words_per_machine, seed)``; the per-class seed
    is drawn by the driver (in the same RNG position as the sequential
    path), so the worker-side run is deterministic and identical.
    """
    from repro.baselines.filtering import filtering_maximal_matching
    from repro.graph.graph import Graph

    results = []
    for n, edges, words_per_machine, class_seed in payload["tasks"]:
        outcome = filtering_maximal_matching(
            Graph(n, edges),
            words_per_machine=words_per_machine,
            seed=class_seed,
        )
        results.append((sorted(outcome.matching), outcome.rounds))
    return results
