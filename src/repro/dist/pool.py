"""Shared ``multiprocessing`` plumbing for the batch runner and transports.

Two pieces every parallel entry point in the library needs, extracted so
:func:`repro.api.batch.solve_many` and
:class:`repro.dist.transport.MultiprocessTransport` stop growing private
copies:

* **context selection** — :func:`mp_context` prefers the ``fork`` start
  method where the platform offers it (workers inherit loaded modules and
  the kernel registry for free; task dispatch needs no re-imports) and
  falls back to the platform default elsewhere;
* **ship-once object tables** — large immutable objects (sweep graphs)
  are sent to each worker exactly once through a pool initializer and
  referenced by index afterwards, keeping per-task payloads O(1)
  regardless of object size.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Dict, List, Optional, Sequence, Tuple

# Per-worker object table, installed once by the pool initializer.
_WORKER_OBJECTS: List[Any] = []


def _install_objects(objects: List[Any]) -> None:
    """Pool initializer: receive the shipped object table once."""
    global _WORKER_OBJECTS
    _WORKER_OBJECTS = objects


def worker_object(index: int) -> Any:
    """Look up object ``index`` in this worker's shipped table."""
    return _WORKER_OBJECTS[index]


def mp_context(start_method: Optional[str] = None):
    """The multiprocessing context parallel components should use.

    ``start_method=None`` picks ``fork`` when available (POSIX) so worker
    processes inherit the already-imported library; otherwise the platform
    default (``spawn`` on macOS/Windows) — every shipped payload is
    picklable, so both work.
    """
    if start_method is None:
        methods = multiprocessing.get_all_start_methods()
        start_method = "fork" if "fork" in methods else None
    return multiprocessing.get_context(start_method)


def object_pool(
    processes: int,
    objects: List[Any],
    start_method: Optional[str] = None,
):
    """A ``multiprocessing.Pool`` whose workers hold ``objects``.

    The table is shipped once per worker via the initializer; tasks refer
    to entries by index through :func:`worker_object`.
    """
    return mp_context(start_method).Pool(
        processes, initializer=_install_objects, initargs=(objects,)
    )


def object_executor(
    processes: int,
    objects: List[Any],
    start_method: Optional[str] = None,
):
    """A ``ProcessPoolExecutor`` whose workers hold ``objects``.

    Same ship-once initializer pattern as :func:`object_pool`, but on
    ``concurrent.futures`` — which, unlike ``multiprocessing.Pool``,
    surfaces a worker process dying mid-task as a prompt
    ``BrokenProcessPool`` on the affected futures instead of hanging the
    result iterator.  :func:`repro.api.batch.solve_many` builds its
    degrade-gracefully sweep path on this.
    """
    from concurrent.futures import ProcessPoolExecutor

    return ProcessPoolExecutor(
        max_workers=processes,
        mp_context=mp_context(start_method),
        initializer=_install_objects,
        initargs=(objects,),
    )


def dedupe_by_identity(items: Sequence[Any]) -> Tuple[List[Any], List[int]]:
    """Collapse ``items`` into a table of distinct objects + per-item indices.

    Identity-based (``id``), not equality-based: the point is to ship each
    *object* once, and two equal-but-distinct graphs still cost two ships.
    Returns ``(table, indices)`` with ``table[indices[i]] is items[i]``.
    """
    table: List[Any] = []
    index_of: Dict[int, int] = {}
    indices: List[int] = []
    for item in items:
        position = index_of.get(id(item))
        if position is None:
            position = len(table)
            index_of[id(item)] = position
            table.append(item)
        indices.append(position)
    return table, indices
