"""Deterministic fault injection and the supervised recovery layer.

Everything in this module leans on one fact about the distributed
design: every worker-side phase is a *deterministic pure function* of
(the immutable shared-memory session arrays, the step payload, the
worker's accumulated session state), and that session state is itself
the deterministic product of the stateful steps dispatched so far.  The
threshold draws inside the kernels come from
:class:`repro.core.thresholds.ThresholdOracle`, which is a pure function
of ``(seed, vertex, t)`` — not a consumed stream — so re-executing a
phase cannot skew later randomness.  A failed phase can therefore be
re-executed on the same worker, on a respawned worker whose journal was
replayed, or on an in-process :class:`LocalTransport` — and produce the
same bytes every time.  Fault tolerance here is a provable property, and
the chaos conformance suite (tests/test_faults.py) proves it with the
same parity machinery that validates the fault-free path.

Three layers, composing bottom-up:

* :class:`FaultPlan` / :class:`FaultSpec` — a seeded, declarative
  schedule of faults (crash worker W at the Nth dispatch of phase P,
  delay a reply past the deadline, corrupt reply bytes, raise inside the
  kernel).  Serializable (``to_dict``/``from_dict``) so the CLI can take
  plans as JSON; :meth:`FaultPlan.random` derives a reproducible plan
  from a seed.
* :class:`ChaosTransport` — wraps a :class:`MultiprocessTransport` and
  converts the plan into real faults through the transport's injection
  hooks: crashes are ``SIGKILL``, delays defer pipe readability past the
  deadline, corruption flips bytes upstream of the CRC check.  The
  observed failures are indistinguishable from organic ones because they
  travel the same code paths.
* :class:`FaultPolicy` / :class:`SupervisedTransport` /
  :class:`RecoveryLog` — the recovery driver: per-phase outcomes from
  ``step_partial``, bounded retries with exponential backoff, worker
  respawn with journal replay for stateful kernels, and — when the
  budget is gone — mid-solve degradation onto :class:`LocalTransport`,
  continuing the solve sequentially without losing a byte.  Every
  recovery action lands in the :class:`RecoveryLog`, which the facade
  surfaces as ``RunReport.extras["faults"]``.
"""

from __future__ import annotations

import fnmatch
import random as _random_mod
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.dist.errors import (
    DistCorruptionError,
    DistExecutionError,
    DistTimeoutError,
)
from repro.dist.kernels import is_stateful
from repro.dist.transport import LocalTransport, Transport

#: Fault kinds a :class:`FaultSpec` may carry.
FAULT_KINDS = ("crash", "delay", "corrupt", "kernel_raise")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    ``kind``
        ``"crash"`` — SIGKILL the worker process before dispatch;
        ``"delay"`` — the worker's reply is unreadable for ``delay_s``
        seconds (longer than the deadline ⇒ a timeout);
        ``"corrupt"`` — flip a byte of the worker's reply upstream of
        the CRC32 check;
        ``"kernel_raise"`` — the kernel raises on that worker (injected
        driver-side *without dispatching*, so session state is never
        touched — the one fault kind that must not risk a real partial
        mutation, because it models a deterministic kernel bug, not a
        machine failure).
    ``worker``
        The worker id the fault targets.
    ``kernel``
        An ``fnmatch`` pattern over kernel names (``"*"`` = any phase,
        ``"matching.direct_*"`` = the stateful direct simulation).
    ``step`` / ``times``
        Fire on dispatches ``step .. step+times-1`` of matching phases
        (0-based, counted per spec).  ``times > 1`` models a repeatedly
        failing machine; large ``times`` with a small respawn budget is
        how the conformance matrix forces degradation.
    ``delay_s``
        Delay length for ``kind="delay"``.
    """

    kind: str
    worker: int
    kernel: str = "*"
    step: int = 0
    times: int = 1
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if self.worker < 0:
            raise ValueError(f"worker must be >= 0, got {self.worker}")
        if self.step < 0 or self.times < 1:
            raise ValueError(
                f"need step >= 0 and times >= 1, got step={self.step} "
                f"times={self.times}"
            )
        if self.kind == "delay" and self.delay_s <= 0:
            raise ValueError("delay faults need delay_s > 0")


class FaultPlan:
    """A deterministic schedule of :class:`FaultSpec` entries.

    The plan keeps one dispatch counter per spec (how many steps matching
    that spec's kernel pattern have been *observed*, including the
    supervision layer's retries); a spec fires while its counter is in
    ``[step, step+times)``.  Because retries advance the counters too, a
    ``times=1`` fault does not re-fire on the retry of the step it broke
    — which is exactly how a transient real-world fault behaves.
    """

    def __init__(self, specs: Sequence[FaultSpec] = ()) -> None:
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self._seen = [0] * len(self.specs)

    def fire(self, kernel: str) -> List[FaultSpec]:
        """Record one dispatch of ``kernel``; return the specs firing now."""
        firing = []
        for index, spec in enumerate(self.specs):
            if not fnmatch.fnmatchcase(kernel, spec.kernel):
                continue
            seen = self._seen[index]
            self._seen[index] = seen + 1
            if spec.step <= seen < spec.step + spec.times:
                firing.append(spec)
        return firing

    def reset(self) -> None:
        """Rewind all dispatch counters (for reusing one plan across runs)."""
        self._seen = [0] * len(self.specs)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "specs": [
                {
                    "kind": spec.kind,
                    "worker": spec.worker,
                    "kernel": spec.kernel,
                    "step": spec.step,
                    "times": spec.times,
                    "delay_s": spec.delay_s,
                }
                for spec in self.specs
            ]
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(data, dict) or "specs" not in data:
            raise ValueError("fault plan dict needs a 'specs' list")
        return cls([FaultSpec(**spec) for spec in data["specs"]])

    @classmethod
    def random(
        cls,
        seed: int,
        workers: int,
        faults: int = 3,
        kinds: Sequence[str] = FAULT_KINDS,
        max_step: int = 6,
        delay_s: float = 0.2,
    ) -> "FaultPlan":
        """A reproducible plan: same seed, same faults, same schedule."""
        rng = _random_mod.Random(seed)
        specs = []
        for _ in range(faults):
            kind = rng.choice(list(kinds))
            specs.append(
                FaultSpec(
                    kind=kind,
                    worker=rng.randrange(workers),
                    step=rng.randrange(max_step),
                    delay_s=delay_s if kind == "delay" else 0.0,
                )
            )
        return cls(specs)

    def __repr__(self) -> str:
        return f"FaultPlan({list(self.specs)!r})"


class ChaosTransport(Transport):
    """Inject a :class:`FaultPlan` into a real multiprocess transport.

    Sits between the supervision layer and the
    :class:`~repro.dist.transport.MultiprocessTransport`, turning plan
    entries into real faults at each ``step_partial`` dispatch: crashes
    SIGKILL the target before its payload is sent, delays and corruption
    arm the transport's receive-side injection hooks, and kernel raises
    are synthesized driver-side (the target is *not* dispatched, so its
    session state provably cannot be half-mutated by a fault that models
    a deterministic kernel bug).

    Recovery traffic deliberately bypasses the plan: the supervision
    layer replays journals through :attr:`raw`, because the plan's
    counters schedule faults against the *solve's* phase stream, and
    letting replays consume (or suffer) scheduled faults would make the
    schedule depend on the recovery history.
    """

    def __init__(self, inner: Transport, plan: FaultPlan) -> None:
        for hook in (
            "step_partial",
            "kill_worker",
            "delay_next_receive",
            "corrupt_next_receive",
        ):
            if not hasattr(inner, hook):
                raise TypeError(
                    f"ChaosTransport needs a transport with {hook!r} "
                    f"(e.g. MultiprocessTransport), got {type(inner).__name__}"
                )
        self._inner = inner
        self.plan = plan

    @property
    def raw(self) -> Transport:
        """The wrapped transport, for fault-exempt recovery traffic."""
        return self._inner

    @property
    def distributed(self) -> bool:  # type: ignore[override]
        return self._inner.distributed

    @property
    def workers(self) -> int:
        return self._inner.workers

    def install(self, key: str, arrays) -> None:
        self._inner.install(key, arrays)

    def drop(self, key: str) -> None:
        self._inner.drop(key)

    def close(self) -> None:
        self._inner.close()

    def step(self, kernel: str, payloads: Sequence[Any]) -> List[Any]:
        outcomes = self.step_partial(kernel, payloads)
        return self._inner._failfast_results(kernel, outcomes)

    def step_partial(
        self,
        kernel: str,
        payloads: Sequence[Any],
        only: Optional[Set[int]] = None,
        deadline: Optional[float] = None,
    ) -> Dict[int, Tuple[str, Any]]:
        targets = set(range(self.workers)) if only is None else set(only)
        synthetic: Dict[int, Tuple[str, Any]] = {}
        for spec in self.plan.fire(kernel):
            if spec.worker not in targets:
                continue
            if spec.kind == "crash":
                self._inner.kill_worker(spec.worker)
            elif spec.kind == "delay":
                self._inner.delay_next_receive(spec.worker, spec.delay_s)
            elif spec.kind == "corrupt":
                self._inner.corrupt_next_receive(spec.worker)
            elif spec.kind == "kernel_raise":
                synthetic[spec.worker] = (
                    "kernel_error",
                    f"FaultSpec(kernel_raise): injected kernel failure on "
                    f"worker {spec.worker} during {kernel}",
                )
                targets.discard(spec.worker)
        outcomes = self._inner.step_partial(
            kernel, payloads, only=targets, deadline=deadline
        )
        outcomes.update(synthetic)
        return outcomes

    # Recovery surface forwarded to the wrapped transport verbatim.
    def respawn_worker(self, worker_id: int) -> None:
        self._inner.respawn_worker(worker_id)

    def kill_worker(self, worker_id: int) -> None:
        self._inner.kill_worker(worker_id)

    def delay_next_receive(self, worker_id: int, seconds: float) -> None:
        self._inner.delay_next_receive(worker_id, seconds)

    def corrupt_next_receive(self, worker_id: int) -> None:
        self._inner.corrupt_next_receive(worker_id)

    def _failfast_results(self, kernel, outcomes):
        return self._inner._failfast_results(kernel, outcomes)


@dataclass(frozen=True)
class FaultPolicy:
    """Knobs of the supervised recovery path.

    ``max_retries``
        Re-dispatches of a failed phase after the first attempt (so a
        phase runs at most ``1 + max_retries`` times before the budget
        is exhausted).
    ``max_respawns``
        Total worker respawns across the whole solve.  Death and timeout
        always consume one (the process is gone); kernel errors and
        corruption respawn only for stateful kernels, where a partial
        mutation would make an in-place retry unsound.
    ``step_timeout_s``
        Per-message receive deadline during supervised steps.
    ``backoff_base_s`` / ``backoff_factor`` / ``backoff_max_s``
        Exponential backoff between attempts:
        ``min(base * factor**(attempt-1), max)``.
    ``degrade``
        When the retry or respawn budget runs out: ``True`` re-runs the
        failed phase — and the rest of the solve — on
        :class:`LocalTransport` (byte-identical by determinism);
        ``False`` raises a structured :class:`DistExecutionError`.
    """

    max_retries: int = 2
    max_respawns: int = 3
    step_timeout_s: float = 30.0
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 1.0
    degrade: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0 or self.max_respawns < 0:
            raise ValueError("retry/respawn budgets must be >= 0")
        if self.step_timeout_s <= 0:
            raise ValueError("step_timeout_s must be > 0")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff times must be >= 0")

    def backoff(self, attempt: int) -> float:
        """Sleep before re-dispatch number ``attempt`` (1-based)."""
        return min(
            self.backoff_base_s * self.backoff_factor ** max(0, attempt - 1),
            self.backoff_max_s,
        )


class RecoveryLog:
    """Everything the supervision layer did to keep the solve alive.

    ``events`` is an append-only list of dicts (``kind`` plus per-kind
    fields: phase, worker, outcome, attempt, latency); :meth:`summary`
    folds it into the shape the facade stores under
    ``RunReport.extras["faults"]``.
    """

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def record(self, kind: str, **fields: Any) -> None:
        self.events.append({"kind": kind, **fields})

    def count(self, kind: str) -> int:
        return sum(1 for event in self.events if event["kind"] == kind)

    @property
    def degraded(self) -> bool:
        return any(event["kind"] == "degrade" for event in self.events)

    def summary(self) -> Dict[str, Any]:
        return {
            "failures": self.count("failure"),
            "retries": self.count("retry"),
            "respawns": self.count("respawn"),
            "degraded": self.degraded,
            "events": [dict(event) for event in self.events],
        }

    def clear(self) -> None:
        self.events = []


class SupervisedTransport(Transport):
    """Retry / respawn / degrade supervision over a multiprocess transport.

    Wraps a transport exposing the per-worker recovery surface
    (``step_partial`` + ``respawn_worker`` — a
    :class:`~repro.dist.transport.MultiprocessTransport`, possibly with a
    :class:`ChaosTransport` in between) and turns its fail-fast ``step``
    into a supervised one:

    1. Dispatch with a per-message deadline; collect per-worker outcomes.
    2. Keep every healthy worker's result — only the failed subset is
       ever re-dispatched.
    3. Before a re-dispatch, repair the failed workers: death and timeout
       always respawn (the process is gone); kernel errors and corruption
       respawn only when the phase kernel is *stateful* (a partial
       mutation would poison an in-place retry), and retry in place
       otherwise.  A respawned worker re-attaches the still-linked
       shared-memory sessions and replays its journal of stateful steps,
       reconstructing its session state byte-identically.
    4. Sleep the policy's exponential backoff, re-dispatch the failed
       subset, repeat within ``max_retries``.
    5. Budget exhausted (or respawn impossible): degrade — tear down the
       worker pool, build a :class:`LocalTransport`, re-install the
       retained session arrays, replay the *full* journal, re-run the
       failed phase, and serve the rest of the solve in-process.  By the
       determinism argument in the module docstring the degraded solve's
       bytes equal the healthy solve's.

    The journal only records *stateful* phases (see
    :func:`repro.dist.kernels.is_stateful`): stateless phases leave no
    worker-resident trace, so replaying them would be pure waste.
    """

    distributed = True

    def __init__(
        self, inner: Transport, policy: Optional[FaultPolicy] = None
    ) -> None:
        for hook in ("step_partial", "respawn_worker"):
            if not hasattr(inner, hook):
                raise TypeError(
                    f"SupervisedTransport needs a transport with {hook!r} "
                    f"(e.g. MultiprocessTransport), got {type(inner).__name__}"
                )
        self._inner = inner
        self._policy = policy or FaultPolicy()
        self._arrays: Dict[str, Dict[str, Any]] = {}
        # (kernel, payloads, session_key) for every *stateful* completed
        # step, in order — the recipe that rebuilds any worker's state.
        self._journal: List[Tuple[str, List[Any], Optional[str]]] = []
        self._respawns_used = 0
        self.recovery_log = RecoveryLog()
        self._local: Optional[LocalTransport] = None

    @property
    def policy(self) -> FaultPolicy:
        return self._policy

    @property
    def workers(self) -> int:
        return self._inner.workers

    @property
    def degraded(self) -> bool:
        return self._local is not None

    def install(self, key: str, arrays) -> None:
        self._arrays[key] = dict(arrays)
        if self._local is not None:
            self._local.install(key, arrays)
            return
        try:
            self._inner.install(key, arrays)
        except DistExecutionError as error:
            self._degrade(f"install {key!r}", error)

    def drop(self, key: str) -> None:
        self._arrays.pop(key, None)
        self._journal = [
            entry for entry in self._journal if entry[2] != key
        ]
        if self._local is not None:
            self._local.drop(key)
            return
        try:
            self._inner.drop(key)
        except DistExecutionError as error:
            # The session is already gone from the retained state, so
            # degradation simply won't re-install it.
            self._degrade(f"drop {key!r}", error)

    def step(self, kernel: str, payloads: Sequence[Any]) -> List[Any]:
        if self._local is not None:
            return self._local.step(kernel, payloads)
        policy = self._policy
        results: Dict[int, Any] = {}
        pending: Set[int] = set(range(self.workers))
        attempt = 0
        while True:
            attempt += 1
            started = time.monotonic()
            outcomes = self._inner.step_partial(
                kernel,
                payloads,
                only=pending,
                deadline=policy.step_timeout_s,
            )
            elapsed = time.monotonic() - started
            failed: Dict[int, Tuple[str, Any]] = {}
            for worker_id, (kind, info) in outcomes.items():
                if kind == "ok":
                    results[worker_id] = info
                else:
                    failed[worker_id] = (kind, info)
            pending = set(failed)
            if not pending:
                break
            for worker_id in sorted(failed):
                kind, _ = failed[worker_id]
                self.recovery_log.record(
                    "failure",
                    phase=kernel,
                    worker=worker_id,
                    outcome=kind,
                    attempt=attempt,
                    latency_s=round(elapsed, 4),
                )
            if attempt > policy.max_retries:
                return self._exhausted(
                    kernel, payloads, failed, attempt, "retries-exhausted"
                )
            time.sleep(policy.backoff(attempt))
            for worker_id in sorted(failed):
                kind, _ = failed[worker_id]
                if not self._needs_respawn(kind, kernel):
                    continue
                if self._respawns_used >= policy.max_respawns:
                    return self._exhausted(
                        kernel,
                        payloads,
                        failed,
                        attempt,
                        "respawn-budget-exhausted",
                    )
                try:
                    self._respawn_and_replay(worker_id, kernel)
                except DistExecutionError:
                    return self._exhausted(
                        kernel, payloads, failed, attempt, "respawn-failed"
                    )
            self.recovery_log.record(
                "retry",
                phase=kernel,
                attempt=attempt + 1,
                workers=sorted(pending),
            )
        self._journal_step(kernel, payloads)
        return [results[worker_id] for worker_id in range(self.workers)]

    def close(self) -> None:
        if self._local is not None:
            self._local.close()
        self._inner.close()

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _needs_respawn(kind: str, kernel: str) -> bool:
        if kind in ("died", "timeout"):
            return True
        # kernel_error / corrupt: the process is alive.  Retry in place
        # for stateless kernels; for stateful ones the failed attempt may
        # have half-mutated session state, so rebuild from the journal.
        return is_stateful(kernel)

    def _respawn_and_replay(self, worker_id: int, phase: str) -> None:
        self._respawns_used += 1
        base = getattr(self._inner, "raw", self._inner)
        base.respawn_worker(worker_id)
        replayed = 0
        for journal_kernel, journal_payloads, _ in self._journal:
            outcomes = base.step_partial(
                journal_kernel,
                journal_payloads,
                only={worker_id},
                deadline=self._policy.step_timeout_s,
            )
            kind, info = outcomes.get(worker_id, ("died", "no outcome"))
            if kind != "ok":
                raise DistExecutionError(
                    f"journal replay of {journal_kernel} failed on "
                    f"respawned worker {worker_id} ({kind}): {info}",
                    worker_id=worker_id,
                    phase=journal_kernel,
                    recovery="respawn-failed",
                )
            replayed += 1
        self.recovery_log.record(
            "respawn",
            phase=phase,
            worker=worker_id,
            replayed_steps=replayed,
            respawns_used=self._respawns_used,
        )

    def _exhausted(
        self,
        kernel: str,
        payloads: Sequence[Any],
        failed: Dict[int, Tuple[str, Any]],
        attempt: int,
        reason: str,
    ) -> List[Any]:
        if self._policy.degrade:
            self._degrade(kernel, reason)
            return self._local.step(kernel, payloads)
        worker_id = min(failed)
        kind, info = failed[worker_id]
        error_type = {
            "timeout": DistTimeoutError,
            "corrupt": DistCorruptionError,
        }.get(kind, DistExecutionError)
        try:
            self._inner.close()
        except Exception:  # pragma: no cover - teardown best-effort
            pass
        raise error_type(
            f"supervision gave up on {kernel} after {attempt} attempt(s): "
            f"worker {worker_id} kept failing ({kind}: {info}); {reason} "
            f"and degradation is disabled",
            worker_id=worker_id,
            phase=kernel,
            attempts=attempt,
            recovery=reason,
        )

    def _degrade(self, phase: str, detail: Any) -> None:
        """Abandon the worker pool; continue the solve on LocalTransport.

        Re-installs the retained session arrays and replays the full
        stateful-step journal, after which the local workers' session
        state equals the pool's — so re-running the failed phase (and
        every later one) locally yields the same bytes the healthy pool
        would have produced.
        """
        workers = self.workers
        self.recovery_log.record(
            "degrade",
            phase=phase,
            detail=str(detail),
            replayed_steps=len(self._journal),
        )
        try:
            self._inner.close()
        except Exception:  # pragma: no cover - teardown best-effort
            pass
        local = LocalTransport(workers)
        for key, arrays in self._arrays.items():
            local.install(key, arrays)
        for journal_kernel, journal_payloads, _ in self._journal:
            local.step(journal_kernel, journal_payloads)
        self._local = local

    def _journal_step(self, kernel: str, payloads: Sequence[Any]) -> None:
        if not is_stateful(kernel):
            return
        self._journal.append(
            (kernel, list(payloads), self._session_of(payloads))
        )

    @staticmethod
    def _session_of(payloads: Sequence[Any]) -> Optional[str]:
        for payload in payloads:
            if isinstance(payload, dict):
                if "session" in payload:
                    return payload["session"]
                shared = payload.get("shared")
                if isinstance(shared, dict) and "session" in shared:
                    return shared["session"]
        return None
