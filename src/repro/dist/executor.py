"""The phase-structured distributed executor behind ``solve(executor=...)``.

:class:`DistExecutor` is what the MPC solvers see: sessions of shared
arrays, scatter/gather of machine tasks, per-iteration broadcast steps
with a driver-side allreduce, and per-phase wall-clock accounting — the
driver shape of the reference cluster harness (SNIPPETS.md Snippet 1:
allreduce the active counts, barrier per phase, gather at the root),
with the transport abstraction underneath choosing where the work runs.

Two execution modes share the class:

* ``distributed=False`` (the ``executor="local"`` default over
  :class:`~repro.dist.transport.LocalTransport`) — the solvers keep
  their plain sequential code path untouched; the executor only
  contributes run metadata.  This is the reference behavior benchmarks
  compare against.
* ``distributed=True`` (``executor="parallel"``, or any transport with
  process isolation) — the solvers partition their machine-local units
  across the transport's workers.  Outputs are byte-identical to the
  sequential simulator by construction, and the parity suite enforces it.

Executors are reusable across ``solve`` calls: the scaling harness builds
one per worker count and amortizes pool startup over every repeat.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.dist.errors import DistExecutionError
from repro.dist.transport import (
    LocalTransport,
    MPITransport,
    MultiprocessTransport,
    Transport,
)

#: Executor names accepted by the façade.
EXECUTOR_KINDS = ("local", "parallel", "mpi")

_DEFAULT_WORKERS = 2


class DistExecutor:
    """Phase-structured driver over a :class:`Transport`."""

    def __init__(
        self,
        transport: Transport,
        kind: Optional[str] = None,
        distributed: Optional[bool] = None,
    ) -> None:
        self._transport = transport
        self.kind = kind or type(transport).__name__
        # Overridable so tests can force the kernel-partitioned path
        # through LocalTransport (in-process, no multiprocessing).
        self.distributed = (
            transport.distributed if distributed is None else bool(distributed)
        )
        self._session_counter = 0
        self._phase_walls: Dict[str, Dict[str, float]] = {}
        self._closed = False

    # -- lifecycle ----------------------------------------------------------

    @property
    def workers(self) -> int:
        """Worker count of the underlying transport."""
        return self._transport.workers

    @property
    def transport(self) -> Transport:
        """The underlying transport (tests and tools introspect it)."""
        return self._transport

    def close(self) -> None:
        """Tear down the transport (idempotent)."""
        self._closed = True
        self._transport.close()

    def __enter__(self) -> "DistExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- sessions -----------------------------------------------------------

    def open_session(self, hint: str, arrays: Dict[str, Any]) -> str:
        """Install ``arrays`` on every worker; returns the session key."""
        self._session_counter += 1
        key = f"{hint}-{self._session_counter}"
        self._transport.install(key, arrays)
        return key

    def close_session(self, key: str) -> None:
        """Drop a session (worker state and shared segments released)."""
        if not self._closed:
            self._transport.drop(key)

    # -- work distribution --------------------------------------------------

    def partition(self, n: int) -> List[Tuple[int, int]]:
        """Contiguous ``[lo, hi)`` vertex ranges, one per worker.

        Balanced to within one vertex.  The solvers' distributed paths
        are range-invariant (the parity suite runs several worker
        counts), so this split only affects load balance, not outputs.
        """
        workers = self.workers
        base, extra = divmod(n, workers)
        bounds = []
        lo = 0
        for worker_id in range(workers):
            hi = lo + base + (1 if worker_id < extra else 0)
            bounds.append((lo, hi))
            lo = hi
        return bounds

    def map_tasks(
        self,
        kernel: str,
        tasks: Sequence[Any],
        shared: Optional[Dict[str, Any]] = None,
        phase: str = "map",
    ) -> List[Any]:
        """Scatter ``tasks`` over the workers, barrier, gather in order.

        Tasks are chunked contiguously; results come back flattened in
        task order regardless of which worker ran each one, so callers
        can merge them exactly as the sequential loop would have.
        """
        chunks = self._chunk(tasks)
        payloads = [{"tasks": chunk, "shared": shared or {}} for chunk in chunks]
        per_worker = self._timed_step(kernel, payloads, phase)
        results: List[Any] = []
        for chunk_results in per_worker:
            results.extend(chunk_results)
        if len(results) != len(tasks):
            raise DistExecutionError(
                f"kernel {kernel!r} returned {len(results)} results "
                f"for {len(tasks)} tasks"
            )
        return results

    def scatter_step(
        self, kernel: str, payloads: Sequence[Any], phase: str = "scatter"
    ) -> List[Any]:
        """One barrier step with an explicit per-worker payload each."""
        return self._timed_step(kernel, payloads, phase)

    def broadcast_step(
        self, kernel: str, payload: Any, phase: str = "step"
    ) -> List[Any]:
        """One barrier step with the same payload on every worker.

        Combined with a driver-side reduction of the returned values this
        is the harness's allreduce: every worker contributes its local
        count, the driver folds, and the folded value gates the next
        round for everyone.
        """
        return self._timed_step(kernel, [payload] * self.workers, phase)

    # -- metrics ------------------------------------------------------------

    @property
    def recovery_log(self):
        """The supervision layer's :class:`~repro.dist.faults.RecoveryLog`.

        ``None`` unless the transport is a
        :class:`~repro.dist.faults.SupervisedTransport` (i.e. a fault
        policy or plan was requested).
        """
        return getattr(self._transport, "recovery_log", None)

    def reset_metrics(self) -> None:
        """Clear per-phase wall accounting (the façade calls this per run)."""
        self._phase_walls = {}
        log = self.recovery_log
        if log is not None:
            log.clear()

    def phase_walls(self) -> List[Dict[str, Any]]:
        """Wall clock per phase label: ``[{phase, wall_s, steps}, ...]``."""
        return [
            {"phase": label, "wall_s": entry["wall_s"], "steps": int(entry["steps"])}
            for label, entry in self._phase_walls.items()
        ]

    # -- internals ----------------------------------------------------------

    def _timed_step(
        self, kernel: str, payloads: Sequence[Any], phase: str
    ) -> List[Any]:
        started = time.perf_counter()
        try:
            return self._transport.step(kernel, payloads)
        finally:
            entry = self._phase_walls.setdefault(
                phase, {"wall_s": 0.0, "steps": 0}
            )
            entry["wall_s"] += time.perf_counter() - started
            entry["steps"] += 1

    def _chunk(self, tasks: Sequence[Any]) -> List[List[Any]]:
        bounds = self.partition(len(tasks))
        return [list(tasks[lo:hi]) for lo, hi in bounds]


ExecutorLike = Union[str, DistExecutor, None]


def _coerce_policy(fault_policy: Any) -> Optional["FaultPolicy"]:
    from repro.dist.faults import FaultPolicy

    if fault_policy is None:
        return None
    if isinstance(fault_policy, FaultPolicy):
        return fault_policy
    if fault_policy is True:
        return FaultPolicy()
    if isinstance(fault_policy, dict):
        return FaultPolicy(**fault_policy)
    raise TypeError(
        f"fault_policy must be None, True, a FaultPolicy, or a dict of "
        f"its fields; got {type(fault_policy).__name__}"
    )


def _coerce_plan(fault_plan: Any) -> Optional["FaultPlan"]:
    from repro.dist.faults import FaultPlan

    if fault_plan is None:
        return None
    if isinstance(fault_plan, FaultPlan):
        return fault_plan
    if isinstance(fault_plan, dict):
        return FaultPlan.from_dict(fault_plan)
    raise TypeError(
        f"fault_plan must be None, a FaultPlan, or its dict form; got "
        f"{type(fault_plan).__name__}"
    )


def resolve_executor(
    executor: ExecutorLike,
    workers: Optional[int] = None,
    fault_policy: Any = None,
    fault_plan: Any = None,
) -> Tuple[Optional[DistExecutor], bool]:
    """Normalize the façade's ``executor=`` argument.

    Returns ``(executor_or_None, owned)`` — ``owned`` tells the caller
    whether it created (and must close) the executor.  Accepted values:
    ``None``, a reusable :class:`DistExecutor` instance, or one of
    ``"local"`` / ``"parallel"`` / ``"mpi"``.

    ``fault_policy`` / ``fault_plan`` opt the ``"parallel"`` executor
    into the supervised path (:mod:`repro.dist.faults`): the policy sets
    retry/respawn/degradation budgets, the plan injects deterministic
    faults underneath the supervision (the chaos-test configuration).  A
    plan without a policy gets the default :class:`FaultPolicy`.  Both
    are meaningless for in-process executors and for an already-built
    ``DistExecutor`` (whose transport stack is fixed), so those
    combinations are rejected.
    """
    policy = _coerce_policy(fault_policy)
    plan = _coerce_plan(fault_plan)
    supervised = policy is not None or plan is not None
    if executor is None:
        if workers is not None:
            raise ValueError("workers= requires an executor= to apply to")
        if supervised:
            raise ValueError(
                "fault_policy/fault_plan require executor='parallel'"
            )
        return None, False
    if isinstance(executor, DistExecutor):
        if workers is not None and workers != executor.workers:
            raise ValueError(
                f"workers={workers} conflicts with the provided executor's "
                f"{executor.workers} workers"
            )
        if supervised:
            raise ValueError(
                "fault_policy/fault_plan cannot rewrap an existing "
                "DistExecutor; build it with executor='parallel' instead"
            )
        return executor, False
    if not isinstance(executor, str):
        raise TypeError(
            f"executor must be None, a DistExecutor, or one of "
            f"{EXECUTOR_KINDS}; got {type(executor).__name__}"
        )
    if supervised and executor != "parallel":
        raise ValueError(
            f"fault_policy/fault_plan require executor='parallel', "
            f"got executor={executor!r}"
        )
    if workers is None:
        workers = _DEFAULT_WORKERS
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if executor == "local":
        return DistExecutor(LocalTransport(workers), kind="local"), True
    if executor == "parallel":
        if supervised:
            from repro.dist.faults import (
                ChaosTransport,
                FaultPolicy,
                SupervisedTransport,
            )

            policy = policy or FaultPolicy()
            transport: Transport = MultiprocessTransport(
                workers, step_timeout_s=policy.step_timeout_s
            )
            if plan is not None:
                transport = ChaosTransport(transport, plan)
            transport = SupervisedTransport(transport, policy)
            return DistExecutor(transport, kind="parallel"), True
        return (
            DistExecutor(MultiprocessTransport(workers), kind="parallel"),
            True,
        )
    if executor == "mpi":
        # Raises NotImplementedError with the documentation pointer.
        return DistExecutor(MPITransport(workers), kind="mpi"), True
    raise ValueError(
        f"unknown executor {executor!r}; expected one of {EXECUTOR_KINDS}"
    )
