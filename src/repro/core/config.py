"""Tunable constants for the paper's algorithms.

The paper states its schedules with asymptotic constants (``log^10 n`` rank
floors, ``I = log m / (10 log 5)`` iterations per phase) that only bite for
astronomically large ``n`` — at every feasible input size ``log^10 n > n``.
A faithful executable reproduction therefore exposes the *shape* of each
schedule with the constants as configuration, defaulted so the claimed
regimes are actually exercised at benchmark sizes.  Every divergence from
the paper's literal constant is documented on the corresponding field.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.validation import require, require_epsilon


@dataclass(frozen=True)
class MISConfig:
    """Parameters for the MIS algorithms (Section 3).

    Attributes
    ----------
    alpha:
        Rank-prefix exponent; iteration ``i`` processes ranks up to
        ``n / Δ^(α^i)``.  The paper fixes ``α = 3/4``.
    sparse_degree_exponent:
        The paper switches to the sparsified algorithm once the maximum
        degree is at most ``log^10 n``; with real inputs that threshold
        exceeds ``n``, which would skip the prefix phases entirely.  We use
        ``(log2 n)^sparse_degree_exponent`` (default exponent 2) so both
        regimes run at benchmark sizes.
    memory_factor:
        Machine memory is ``memory_factor * n`` words (the ``O~(n)``
        regime).
    luby_rounds_factor:
        The sparsified finish simulates ``luby_rounds_factor * log2(m+2)``
        LOCAL rounds via graph exponentiation before shipping the leftover
        graph to the leader.
    sparse_strategy:
        LOCAL process used by the sparsified finish: ``"luby"`` ([Lub86])
        or ``"ghaffari"`` (the desire-level process of [Gha16], closer to
        what [Gha17] compresses).
    rng:
        ``"sha"`` (default) draws from the byte-pinned SHA-256 streams;
        ``"counter"`` uses the vectorized counter-based generator of
        :mod:`repro.utils.counter_rng` — statistically equivalent (audited
        by ``repro.verify``) but not byte-identical to the seeded pins.
        Counter mode also enables the residency-bounded solve path used
        for out-of-core graphs (see OUT_OF_CORE.md); it requires the
        ``"luby"`` sparse strategy.
    """

    alpha: float = 0.75
    sparse_degree_exponent: float = 2.0
    memory_factor: float = 8.0
    luby_rounds_factor: float = 2.0
    sparse_strategy: str = "luby"
    rng: str = "sha"

    def __post_init__(self) -> None:
        require(0.0 < self.alpha < 1.0, f"alpha must be in (0,1), got {self.alpha}")
        require(
            self.sparse_degree_exponent > 0,
            "sparse_degree_exponent must be positive",
        )
        require(self.memory_factor > 0, "memory_factor must be positive")
        require(self.luby_rounds_factor > 0, "luby_rounds_factor must be positive")
        require(
            self.sparse_strategy in ("luby", "ghaffari"),
            f"sparse_strategy must be 'luby' or 'ghaffari', got {self.sparse_strategy!r}",
        )
        require(
            self.rng in ("sha", "counter"),
            f"rng must be 'sha' or 'counter', got {self.rng!r}",
        )
        require(
            not (self.rng == "counter" and self.sparse_strategy == "ghaffari"),
            "rng='counter' supports only sparse_strategy='luby'",
        )

    def sparse_degree_threshold(self, n: int) -> int:
        """Degree below which the sparsified finish takes over."""
        if n < 4:
            return 4
        return max(4, int(math.log2(n) ** self.sparse_degree_exponent))


@dataclass(frozen=True)
class MatchingConfig:
    """Parameters for the matching/vertex-cover algorithms (Section 4).

    Attributes
    ----------
    epsilon:
        The approximation parameter ``ε``; the guarantee is ``2 + O(ε)``.
    iterations_scale:
        Iterations simulated per phase are
        ``max(1, floor(iterations_scale * log2 m))``.  The paper's literal
        ``I = log m / (10 log 5)`` rounds to zero at feasible sizes; any
        ``Θ(log m)`` choice preserves the doubly-exponential degree decay
        ``d ← d^(1-γ)`` of Lemma 4.8, with ``γ`` proportional to the scale.
    degree_floor_exponent:
        The main loop exits once ``d ≤ (log2 n)^degree_floor_exponent``
        (paper: ``log^20 n``, which again exceeds ``n`` in practice).
    memory_factor:
        Machine memory in units of ``n`` words.
    threshold_low / threshold_high:
        The random freezing threshold interval; the paper uses
        ``[1-4ε, 1-2ε]``.
    rng:
        ``"sha"`` (default) keeps the byte-pinned SHA-256 draws;
        ``"counter"`` switches thresholds and machine assignment to the
        vectorized counter-based generator (statistically equivalent,
        not byte-identical — see OUT_OF_CORE.md).
    """

    epsilon: float = 0.1
    iterations_scale: float = 2.0
    degree_floor_exponent: float = 2.0
    memory_factor: float = 8.0
    max_direct_iterations: int = 10_000
    rng: str = "sha"

    def __post_init__(self) -> None:
        require_epsilon(self.epsilon)
        require(self.iterations_scale > 0, "iterations_scale must be positive")
        require(
            self.degree_floor_exponent > 0, "degree_floor_exponent must be positive"
        )
        require(self.memory_factor > 0, "memory_factor must be positive")
        require(self.max_direct_iterations >= 1, "max_direct_iterations must be >= 1")
        require(
            self.rng in ("sha", "counter"),
            f"rng must be 'sha' or 'counter', got {self.rng!r}",
        )

    @property
    def threshold_low(self) -> float:
        """Lower end of the random freezing interval, ``1 - 4ε``."""
        return 1.0 - 4.0 * self.epsilon

    @property
    def threshold_high(self) -> float:
        """Upper end of the random freezing interval, ``1 - 2ε``."""
        return 1.0 - 2.0 * self.epsilon

    def degree_floor(self, n: int) -> int:
        """The ``d`` value at which direct simulation takes over."""
        if n < 4:
            return 4
        return max(4, int(math.log2(n) ** self.degree_floor_exponent))

    def iterations_per_phase(self, num_machines: int) -> int:
        """Iterations of Central-Rand compressed into one phase."""
        if num_machines < 2:
            return 1
        return max(1, int(self.iterations_scale * math.log2(num_machines)))
