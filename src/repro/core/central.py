"""The centralized fractional matching / vertex cover algorithms.

``Central`` (Section 4.1): start every edge at ``x_e = 1/n``; each
iteration freeze every vertex whose load reaches ``1 - 2ε`` (with all its
edges) and multiply every still-active edge by ``1/(1-ε)``.  Terminates in
``O(log n / ε)`` iterations with a ``(2+5ε)``-approximate fractional
matching and vertex cover (Lemma 4.1).

``Central-Rand`` (Section 4.3) is the same process with per-(vertex,
iteration) random thresholds ``T_{v,t} ∈ [1-4ε, 1-2ε]`` — the randomness
that makes the MPC simulation's estimate errors survivable (Lemma 4.11).

The implementation tracks, per vertex, the iteration at which it froze.
Because *every* active edge is scaled by the same factor each iteration,
the final weight of edge ``e = {u, v}`` is determined by
``t'(e) = min(freeze_iteration(u), freeze_iteration(v))`` alone:
``x_e = x_0 / (1-ε)^{t'(e)}``.  This is the same observation the paper's
Line (g) of MPC-Simulation exploits, and it makes each iteration ``O(n)``
after an ``O(m)`` setup.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.fractional import FractionalMatching
from repro.core.thresholds import ThresholdOracle, fixed_oracle
from repro.graph.graph import Edge, Graph
from repro.utils.rng import SeedLike
from repro.utils.trace import Trace, maybe_record
from repro.utils.validation import require, require_epsilon

# Freeze iteration sentinel for "never froze during the run" (all edges are
# frozen at termination, so this only labels isolated vertices).
NEVER_FROZEN = -1


@dataclass
class CentralResult:
    """Outcome of Central / Central-Rand.

    Attributes
    ----------
    matching:
        The fractional matching and the frozen-vertex cover.
    iterations:
        Iterations executed until every edge froze.
    freeze_iteration:
        Per-vertex iteration index at which the vertex froze
        (:data:`NEVER_FROZEN` for vertices that never did).
    """

    matching: FractionalMatching
    iterations: int
    freeze_iteration: Dict[int, int] = field(default_factory=dict)

    @property
    def vertex_cover(self) -> Set[int]:
        """The frozen-vertex cover."""
        return self.matching.vertex_cover

    @property
    def weight(self) -> float:
        """Total fractional weight."""
        return self.matching.weight()


def central_fractional_matching(
    graph: Graph,
    epsilon: float = 0.1,
    randomized_thresholds: bool = False,
    seed: SeedLike = None,
    initial_weight: Optional[float] = None,
    trace: Optional[Trace] = None,
    max_iterations: Optional[int] = None,
) -> CentralResult:
    """Run Central (or Central-Rand) to completion on ``graph``.

    Parameters
    ----------
    epsilon:
        Approximation parameter ``ε ∈ (0, 1/2)``.
    randomized_thresholds:
        ``False`` runs Central (fixed threshold ``1-2ε``); ``True`` runs
        Central-Rand with ``T_{v,t} ~ U[1-4ε, 1-2ε]``.
    initial_weight:
        Starting edge weight; defaults to ``1/n`` as in the paper.  The MPC
        simulation uses ``(1-2ε)/n``.
    max_iterations:
        Safety cap; defaults to a generous multiple of the ``O(log n / ε)``
        bound and raises if exceeded (a termination bug should be loud).
    """
    require_epsilon(epsilon)
    n = graph.num_vertices
    if n == 0 or graph.num_edges == 0:
        return CentralResult(
            matching=FractionalMatching(graph=graph, weights={}, vertex_cover=set()),
            iterations=0,
            freeze_iteration={},
        )

    oracle = (
        ThresholdOracle(1.0 - 4.0 * epsilon, 1.0 - 2.0 * epsilon, seed=seed)
        if randomized_thresholds
        else fixed_oracle(1.0 - 2.0 * epsilon)
    )
    x0 = initial_weight if initial_weight is not None else 1.0 / n
    require(x0 > 0, "initial_weight must be positive")
    if max_iterations is None:
        max_iterations = 10 + 4 * int(math.log(n + 1) / -math.log(1.0 - epsilon))

    outcome = run_freezing_process(
        graph=graph,
        epsilon=epsilon,
        oracle=oracle,
        initial_weight=x0,
        max_iterations=max_iterations,
        trace=trace,
    )
    return outcome


def run_freezing_process(
    graph: Graph,
    epsilon: float,
    oracle: ThresholdOracle,
    initial_weight: float,
    max_iterations: int,
    trace: Optional[Trace] = None,
) -> CentralResult:
    """The shared freezing loop behind Central and Central-Rand.

    Exposed separately so the concentration experiment (E11) can run the
    reference process with the *same* :class:`ThresholdOracle` instance the
    MPC simulation consumes.
    """
    n = graph.num_vertices
    growth = 1.0 / (1.0 - epsilon)

    active_degree = graph.degrees()
    frozen: Dict[int, int] = {}
    frozen_load: List[float] = [0.0] * n  # weight of already-frozen incident edges
    active: Set[int] = {v for v in range(n) if active_degree[v] > 0}

    weight_t = initial_weight
    iteration = 0
    while active:
        if iteration >= max_iterations:
            raise RuntimeError(
                f"freezing process exceeded {max_iterations} iterations; "
                "this indicates a termination bug or a degenerate epsilon"
            )
        to_freeze = []
        for v in active:
            load = frozen_load[v] + active_degree[v] * weight_t
            if load >= oracle.threshold(v, iteration):
                to_freeze.append(v)
        for v in to_freeze:
            frozen[v] = iteration
            active.discard(v)
        # Freezing an edge fixes its weight at the current value; update the
        # neighbors' frozen load and active degree.  An edge freezes when its
        # *first* endpoint freezes.
        newly_frozen = set(to_freeze)
        for v in to_freeze:
            for u in graph.neighbors_view(v):
                if u in newly_frozen:
                    # Edge between two same-iteration freezes: count once by
                    # the smaller endpoint.
                    if u < v:
                        continue
                    frozen_load[v] += weight_t
                    frozen_load[u] += weight_t
                    active_degree[v] -= 1
                    active_degree[u] -= 1
                elif u in frozen:
                    continue  # edge already frozen in an earlier iteration
                else:
                    frozen_load[u] += weight_t
                    active_degree[u] -= 1
                    active_degree[v] -= 1
                    frozen_load[v] += weight_t
        # Drop vertices whose every edge froze; they stay unfrozen (not in
        # the cover) but have no active weight left to grow.
        for v in list(active):
            if active_degree[v] == 0:
                active.discard(v)
        weight_t *= growth
        iteration += 1
        maybe_record(
            trace,
            "central_iteration",
            iteration=iteration,
            frozen_vertices=len(frozen),
            active_vertices=len(active),
        )

    weights = edge_weights_from_freezes(
        graph, frozen, initial_weight, epsilon, final_iteration=iteration
    )
    freeze_map = {v: frozen.get(v, NEVER_FROZEN) for v in range(n)}
    matching = FractionalMatching(
        graph=graph, weights=weights, vertex_cover=set(frozen)
    )
    return CentralResult(
        matching=matching, iterations=iteration, freeze_iteration=freeze_map
    )


def edge_weights_from_freezes(
    graph: Graph,
    frozen: Dict[int, int],
    initial_weight: float,
    epsilon: float,
    final_iteration: int,
) -> Dict[Edge, float]:
    """Reconstruct ``x`` from per-vertex freeze iterations.

    ``x_e = initial_weight / (1-ε)^{t'}`` where ``t'`` is the first
    iteration at which an endpoint of ``e`` froze (both endpoints unfrozen
    means the edge grew until the process ended — only possible when the
    process was truncated externally).
    """
    growth = 1.0 / (1.0 - epsilon)
    weights: Dict[Edge, float] = {}
    for u, v in graph.edges():
        t_u = frozen.get(u, final_iteration)
        t_v = frozen.get(v, final_iteration)
        t_freeze = min(t_u, t_v)
        weights[(u, v)] = initial_weight * (growth ** t_freeze)
    return weights
