"""Small-matching fallback — Section 4.4.5.

The main analysis assumes the maximum matching has size at least polylog;
when it is smaller, the graph has ``O(n · polylog n)`` edges (a cover
vertex covers at most ``n`` edges) and the filtering algorithm of
[LMSV11] finds a *maximal* matching in ``O(log log n)`` rounds with
``Θ(n)`` memory — its endpoints are a 2-approximate vertex cover.

The production entry points run both paths and return the better result,
exactly as the proof of Theorem 1.2 prescribes ("we invoke two methods
separately ... and output the larger of them").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

from repro.baselines.filtering import filtering_maximal_matching
from repro.graph.graph import Edge, Graph
from repro.utils.rng import SeedLike, make_rng
from repro.utils.trace import Trace


@dataclass
class SmallMatchingResult:
    """Maximal matching + derived cover from the filtering path."""

    matching: Set[Edge]
    cover: Set[int]
    rounds: int


def small_matching_fallback(
    graph: Graph,
    words_per_machine: int,
    seed: SeedLike = None,
    trace: Optional[Trace] = None,
) -> SmallMatchingResult:
    """Maximal matching via LMSV11 filtering, with its 2-approximate cover."""
    outcome = filtering_maximal_matching(
        graph, words_per_machine=words_per_machine, seed=seed, trace=trace
    )
    cover: Set[int] = set()
    for u, v in outcome.matching:
        cover.add(u)
        cover.add(v)
    return SmallMatchingResult(
        matching=set(outcome.matching), cover=cover, rounds=outcome.rounds
    )
