"""(1+ε)-approximate matching via short augmenting paths — Corollary 1.3.

The paper obtains Corollary 1.3 by applying McGregor's technique [McG05]
on top of Theorem 1.2.  Our substitute (DESIGN.md §5, substitution 2) uses
the same underlying combinatorics directly: by the Hopcroft–Karp lemma, a
matching with no augmenting path of length at most ``2k - 1`` has size at
least ``k/(k+1)`` of optimal.  Taking ``k = ceil(1/ε)`` and repeatedly
eliminating maximal sets of vertex-disjoint short augmenting paths yields
the ``(1+ε)`` factor, with round cost tracked per elimination sweep —
matching the corollary's ``O(log log n) · (1/ε)^{O(1/ε)}`` shape.

The augmenting-path search is exact on bipartite graphs; on general graphs
blossoms can hide some short augmenting paths, so the guarantee there is
empirical (the E8 experiment measures it against the Blossom baseline).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.config import MatchingConfig
from repro.core.integral import mpc_maximum_matching
from repro.graph.graph import Edge, Graph, canonical_edge
from repro.utils.rng import SeedLike, make_rng
from repro.utils.trace import Trace, maybe_record
from repro.utils.validation import require_epsilon


@dataclass
class AugmentingResult:
    """Outcome of the augmenting-path improvement loop."""

    matching: Set[Edge]
    rounds: int
    sweeps: int
    augmentations: int
    max_path_length: int
    total_comm_words: int = 0
    peak_words: int = 0


def one_plus_eps_matching(
    graph: Graph,
    epsilon: float = 0.2,
    config: Optional[MatchingConfig] = None,
    seed: SeedLike = None,
    trace: Optional[Trace] = None,
    executor=None,
    governor=None,
) -> AugmentingResult:
    """Compute a ``(1+ε)``-approximate matching of ``graph``.

    Starts from the Theorem 1.2 matching and eliminates augmenting paths of
    length up to ``2*ceil(1/ε) - 1``.  ``executor`` parallelizes the base
    Theorem 1.2 passes and ``governor`` governs their memory envelope; the
    path-elimination sweeps stay driver-side.
    """
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"epsilon must lie in (0, 1), got {epsilon!r}")
    config = config or MatchingConfig()
    base = mpc_maximum_matching(
        graph,
        config=config,
        seed=seed,
        trace=trace,
        executor=executor,
        governor=governor,
    )
    matching = set(base.matching)
    rounds = base.rounds

    k = max(1, math.ceil(1.0 / epsilon))
    max_length = 2 * k - 1
    improved = improve_matching(
        graph, matching, max_length, seed=seed, trace=trace
    )
    return AugmentingResult(
        matching=improved.matching,
        rounds=rounds + improved.rounds,
        sweeps=improved.sweeps,
        augmentations=improved.augmentations,
        max_path_length=max_length,
        total_comm_words=base.total_comm_words,
        peak_words=base.peak_words,
    )


@dataclass
class ImprovementOutcome:
    """Result of :func:`improve_matching`."""

    matching: Set[Edge]
    rounds: int
    sweeps: int
    augmentations: int


def improve_matching(
    graph: Graph,
    matching: Set[Edge],
    max_path_length: int,
    seed: SeedLike = None,
    trace: Optional[Trace] = None,
) -> ImprovementOutcome:
    """Eliminate augmenting paths of length ``<= max_path_length``.

    Each sweep finds a maximal vertex-disjoint set of short augmenting
    paths (greedy DFS from every free vertex) and flips them all; sweeps
    repeat until one finds nothing.  Each sweep is chargeable as
    ``O(max_path_length)`` MPC rounds (a path of length ℓ is discoverable
    with ℓ rounds of neighborhood exchange), which is what ``rounds``
    accounts.
    """
    current = {canonical_edge(u, v) for u, v in matching}
    sweeps = 0
    total_augmentations = 0
    rounds = 0
    while True:
        paths = find_disjoint_augmenting_paths(graph, current, max_path_length)
        rounds += max(1, max_path_length)
        sweeps += 1
        if not paths:
            break
        for path in paths:
            _apply_augmentation(current, path)
        total_augmentations += len(paths)
        maybe_record(
            trace, "augment_sweep", sweep=sweeps, paths=len(paths), size=len(current)
        )
    return ImprovementOutcome(
        matching=current,
        rounds=rounds,
        sweeps=sweeps,
        augmentations=total_augmentations,
    )


def find_disjoint_augmenting_paths(
    graph: Graph, matching: Set[Edge], max_path_length: int
) -> List[List[int]]:
    """A maximal set of vertex-disjoint augmenting paths of bounded length.

    Greedy: scan free vertices in order, DFS for an alternating path of
    length ``<= max_path_length`` ending at another free vertex, lock the
    path's vertices, continue.  The DFS tracks per-attempt visitation, so a
    single attempt is ``O(m)`` worst case.
    """
    mate: Dict[int, int] = {}
    for u, v in matching:
        mate[u] = v
        mate[v] = u
    used: Set[int] = set()
    paths: List[List[int]] = []
    for root in graph.vertices():
        if root in mate or root in used:
            continue
        path = _augmenting_dfs(graph, mate, root, max_path_length, used)
        if path is not None:
            paths.append(path)
            used.update(path)
    return paths


def _augmenting_dfs(
    graph: Graph,
    mate: Dict[int, int],
    root: int,
    max_path_length: int,
    locked: Set[int],
) -> Optional[List[int]]:
    """DFS for one augmenting path from free vertex ``root``.

    Explores alternating paths (unmatched, matched, unmatched, ...) of at
    most ``max_path_length`` edges.  Returns the vertex sequence or None.
    """
    visited = {root}

    def extend(v: int, length_left: int) -> Optional[List[int]]:
        for u in graph.neighbors_view(v):
            if u in visited or u in locked:
                continue
            if u not in mate:
                return [v, u]  # unmatched edge to a free vertex: augmenting
            if length_left < 2:
                continue
            partner = mate[u]
            if partner in visited or partner in locked:
                continue
            visited.add(u)
            visited.add(partner)
            tail = extend(partner, length_left - 2)
            if tail is not None:
                return [v, u] + tail
            # Leave u/partner visited: failed sub-searches stay failed for
            # this attempt (standard pruning; exact for bipartite graphs).
        return None

    result = extend(root, max_path_length)
    return result


def _apply_augmentation(matching: Set[Edge], path: Sequence[int]) -> None:
    """Flip the matching along an augmenting path (odd-length, free ends)."""
    for index in range(len(path) - 1):
        edge = canonical_edge(path[index], path[index + 1])
        if index % 2 == 0:
            matching.add(edge)
        else:
            matching.remove(edge)
