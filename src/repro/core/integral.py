"""Integral (2+ε)-approximate maximum matching — Theorem 1.2.

The proof of Theorem 1.2 iterates algorithm ``A``:

1. run MPC-Simulation on the residual graph to get a fractional matching
   ``x`` and the high-load candidate set ``C~`` (at least a third of the
   cover has load ``≥ 1 - 5ε`` by Lemma 4.2);
2. round ``x`` with Lemma 5.1 to an integral matching ``M_i``;
3. delete the matched vertices and repeat.

Each pass extracts a constant fraction of the residual maximum matching,
so ``O(log 1/ε)`` passes leave at most an ``ε`` fraction behind.  The
paper's worst-case constant (1/150 per pass) would mean hundreds of
iterations; measured extraction is vastly better, so the loop simply runs
until the residual fractional weight is negligible (with a safety cap).
Following Section 4.4.5, a final small-matching cleanup handles the
leftover polylog-size matching via the LMSV11 filtering algorithm.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.baselines.filtering import filtering_maximal_matching
from repro.core.config import MatchingConfig
from repro.core.matching_mpc import mpc_fractional_matching
from repro.core.rounding import round_fractional_matching
from repro.graph.graph import Edge, Graph
from repro.graph.properties import matching_vertices
from repro.mpc.spec import ClusterSpec
from repro.utils.rng import SeedLike, make_rng
from repro.utils.trace import Trace, maybe_record


@dataclass
class IntegralMatchingResult:
    """Outcome of the iterated matching extraction.

    Attributes
    ----------
    matching:
        The integral matching (a valid matching of the input graph).
    rounds:
        Total measured MPC rounds across all passes.
    passes:
        Number of algorithm-``A`` passes executed.
    per_pass_sizes:
        Matching edges extracted per pass (monitoring the extraction rate).
    cleanup_edges:
        Edges added by the final small-matching cleanup (Section 4.4.5).
    """

    matching: Set[Edge]
    rounds: int
    passes: int
    per_pass_sizes: List[int] = field(default_factory=list)
    cleanup_edges: int = 0
    total_comm_words: int = 0
    peak_words: int = 0


def mpc_maximum_matching(
    graph: Graph,
    config: Optional[MatchingConfig] = None,
    seed: SeedLike = None,
    max_passes: Optional[int] = None,
    trace: Optional[Trace] = None,
    executor=None,
    governor=None,
) -> IntegralMatchingResult:
    """Compute a ``(2+O(ε))``-approximate integral matching of ``graph``.

    ``executor`` (an optional :class:`repro.dist.DistExecutor`) is handed
    to every per-pass :func:`mpc_fractional_matching` call; rounding and
    cleanup stay driver-side (their sequential RNG order is load-bearing).
    A ``governor`` is likewise handed to every pass — its peak-hold
    estimator persists across passes, so imbalance measured in pass 1
    informs the partition sizing of pass 2.
    """
    config = config or MatchingConfig()
    rng = make_rng(seed)
    if max_passes is None:
        # ln(1/ε) passes at the *measured* extraction rate (>= 1/3 of the
        # residual optimum per pass) leave an ε fraction; the cap is
        # generous so the fixed point, not the cap, ends the loop.
        max_passes = max(8, 4 * int(math.log(1.0 / config.epsilon) + 1))

    matching: Set[Edge] = set()
    residual = graph.copy()
    rounds = 0
    comm_words = 0
    peak_words = 0
    per_pass: List[int] = []
    empty_streak = 0

    for pass_index in range(max_passes):
        fractional = mpc_fractional_matching(
            residual,
            config=config,
            seed=rng.getrandbits(64),
            trace=trace,
            executor=executor,
            governor=governor,
        )
        rounds += fractional.rounds
        comm_words += fractional.total_comm_words
        peak_words = max(peak_words, fractional.peak_words)
        candidates = fractional.rounding_candidates(config.epsilon)
        if fractional.weight < 1.0 or not candidates:
            break
        extracted = round_fractional_matching(
            residual,
            fractional.matching.weights,
            candidates,
            seed=rng.getrandbits(64),
        )
        rounds += 1  # rounding is a single local-decision MPC round
        per_pass.append(len(extracted))
        maybe_record(
            trace,
            "integral_pass",
            pass_index=pass_index,
            extracted=len(extracted),
            fractional_weight=fractional.weight,
        )
        if not extracted:
            empty_streak += 1
            if empty_streak >= 2:
                break
            continue
        empty_streak = 0
        matching |= extracted
        for v in matching_vertices(extracted):
            residual.isolate(v)

    # Section 4.4.5: the residual optimum is now small; the LMSV11 filtering
    # maximal matching finishes it (maximal => 2-approximate on the residual).
    cleanup = filtering_maximal_matching(
        residual,
        words_per_machine=ClusterSpec.from_graph(
            graph, config.memory_factor
        ).words_per_machine,
        seed=rng.getrandbits(64),
    )
    matching |= cleanup.matching
    rounds += cleanup.rounds

    return IntegralMatchingResult(
        matching=matching,
        rounds=rounds,
        passes=len(per_pass),
        per_pass_sizes=per_pass,
        cleanup_edges=len(cleanup.matching),
        total_comm_words=comm_words,
        peak_words=peak_words,
    )
