"""Minimum vertex cover in O(log log n) MPC rounds — the cover half of
Theorem 1.2.

MPC-Simulation's frozen vertices (plus the heavy-removed ones) already form
a ``(2 + 50ε)``-approximate vertex cover (Lemma 4.2); this module wraps
that output in a dedicated API and verifies coverage before returning —
a cover that misses an edge is a bug, never a result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

from repro.core.config import MatchingConfig
from repro.core.matching_mpc import mpc_fractional_matching
from repro.graph.graph import Graph
from repro.graph.properties import is_vertex_cover
from repro.utils.rng import SeedLike
from repro.utils.trace import Trace


@dataclass
class VertexCoverResult:
    """A verified vertex cover with its cost accounting."""

    cover: Set[int]
    rounds: int
    fractional_weight: float
    total_comm_words: int = 0
    peak_words: int = 0

    @property
    def size(self) -> int:
        """Number of cover vertices."""
        return len(self.cover)


def mpc_vertex_cover(
    graph: Graph,
    config: Optional[MatchingConfig] = None,
    seed: SeedLike = None,
    trace: Optional[Trace] = None,
    executor=None,
    governor=None,
) -> VertexCoverResult:
    """Compute a ``(2+O(ε))``-approximate vertex cover of ``graph``.

    Raises ``RuntimeError`` if the computed set fails to cover the graph —
    by Lemma 4.2 this happens with negligible probability, and silently
    returning a non-cover would poison downstream use.
    """
    config = config or MatchingConfig()
    result = mpc_fractional_matching(
        graph,
        config=config,
        seed=seed,
        trace=trace,
        executor=executor,
        governor=governor,
    )
    cover = set(result.vertex_cover)
    if not is_vertex_cover(graph, cover):
        # The paper's freezing invariant guarantees coverage at termination;
        # reaching this branch means the simulation has a bug.
        raise RuntimeError("MPC-Simulation returned a non-covering vertex set")
    return VertexCoverResult(
        cover=cover,
        rounds=result.rounds,
        fractional_weight=result.weight,
        total_comm_words=result.total_comm_words,
        peak_words=result.peak_words,
    )


def cover_from_maximal_matching(graph: Graph, matching: Set) -> Set[int]:
    """The classic 2-approximate cover: endpoints of a maximal matching.

    Used as a baseline and by the small-matching path of Section 4.4.5.
    """
    cover: Set[int] = set()
    for u, v in matching:
        cover.add(u)
        cover.add(v)
    return cover
