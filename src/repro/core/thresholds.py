"""Per-vertex, per-iteration random freezing thresholds.

Central-Rand (Section 4.3) replaces Central's fixed freezing threshold
``1 - 2ε`` with a fresh uniform draw ``T_{v,t} ∈ [1-4ε, 1-2ε]`` per vertex
and iteration.  The point of the construction (Lemma 4.11) is that the MPC
simulation and the centralized reference consume *the same* thresholds, so
the two processes can be coupled; :class:`ThresholdOracle` makes the
threshold a pure function of ``(seed, v, t)`` to realize that coupling
exactly.
"""

from __future__ import annotations

import numpy as np

from repro.utils import counter_rng
from repro.utils.rng import RngStream, SeedLike, make_rng
from repro.utils.validation import require


class ThresholdOracle:
    """Deterministic oracle for the thresholds ``T_{v,t}``.

    ``mode="sha"`` (default) draws from the byte-pinned SHA-256 stream;
    ``mode="counter"`` computes the same pure function of ``(seed, v, t)``
    with the vectorized counter-based generator
    (:mod:`repro.utils.counter_rng`) — different values, same
    distribution, same band short-circuits.
    """

    def __init__(
        self,
        low: float,
        high: float,
        seed: SeedLike = None,
        mode: str = "sha",
    ) -> None:
        require(low <= high, f"threshold interval empty: [{low}, {high}]")
        require(
            mode in ("sha", "counter"),
            f"mode must be 'sha' or 'counter', got {mode!r}",
        )
        self._low = low
        self._high = high
        self._mode = mode
        if mode == "sha":
            self._stream = RngStream(seed, namespace="central-rand-thresholds")
            self._key = 0
        else:
            self._stream = None
            self._key = counter_rng.derive_key(
                make_rng(seed).getrandbits(64), "central-rand-thresholds"
            )

    @property
    def mode(self) -> str:
        """``"sha"`` or ``"counter"`` — stamped into RunReport configs."""
        return self._mode

    @property
    def low(self) -> float:
        """Interval lower end (``1 - 4ε``)."""
        return self._low

    @property
    def high(self) -> float:
        """Interval upper end (``1 - 2ε``)."""
        return self._high

    def threshold(self, vertex: int, iteration: int) -> float:
        """The threshold ``T_{v,t}`` — identical for every caller."""
        if self._low == self._high:
            return self._low
        if self._mode == "counter":
            return float(self.thresholds_batch([vertex], iteration)[0])
        return self._stream.uniform(self._low, self._high, vertex, iteration)

    def crosses(self, vertex: int, iteration: int, estimate: float) -> bool:
        """Whether ``estimate >= T_{v,t}``, computing the threshold lazily.

        ``T_{v,t}`` always lies in ``[low, high]``, so an estimate outside
        the band decides without materializing the draw.  Because the
        threshold is a *pure* function of ``(seed, v, t)`` — not a consumed
        stream — skipping the computation leaves every other draw, and
        therefore every output, bit-for-bit unchanged.  This short-circuit
        is the matching simulation's hottest-path fix: early iterations
        have loads far below ``low``, and each materialized draw costs a
        SHA-256 plus a fresh Mersenne-Twister seeding.
        """
        if estimate < self._low:
            return False
        if estimate >= self._high:
            return True
        return estimate >= self.threshold(vertex, iteration)

    def thresholds_batch(self, vertices, iteration: int) -> np.ndarray:
        """``[self.threshold(v, iteration) for v in vertices]``, batched.

        The SHA-derived draws for the whole batch are materialized through
        one batched hashing pass
        (:meth:`~repro.utils.rng.RngStream.uniform_batch`) instead of
        per-``(v, t)`` scalar oracle calls — values are bit-for-bit identical
        to the scalar method.
        """
        vs = np.asarray(vertices, dtype=np.int64)
        if self._low == self._high:
            return np.full(len(vs), self._low, dtype=np.float64)
        if self._mode == "counter":
            unit = counter_rng.uniform01(self._key, vs, iteration)
            return self._low + (self._high - self._low) * unit
        return self._stream.uniform_batch(self._low, self._high, vs, iteration)

    def crosses_batch(self, vertices, iteration: int, estimates) -> np.ndarray:
        """Vectorized :meth:`crosses` for one iteration's vertex batch.

        Estimates outside the ``[low, high]`` band decide without touching
        the oracle; only the in-band subset materializes thresholds (via
        :meth:`thresholds_batch`).  Decisions equal the scalar method's.
        """
        vs = np.asarray(vertices, dtype=np.int64)
        est = np.asarray(estimates, dtype=np.float64)
        out = est >= self._high
        in_band = ~out & (est >= self._low)
        if in_band.any():
            idx = np.flatnonzero(in_band)
            drawn = self.thresholds_batch(vs[idx], iteration)
            out[idx] = est[idx] >= drawn
        return out


def fixed_oracle(value: float) -> ThresholdOracle:
    """An oracle that always returns ``value`` (plain Central)."""
    return ThresholdOracle(value, value, seed=0)
