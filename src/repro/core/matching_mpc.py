"""MPC-Simulation — fractional matching and vertex cover in O(log log n)
MPC rounds (Section 4.3, Lemma 4.2).

The algorithm simulates Central-Rand in phases.  While the degree bound
``d`` exceeds a polylog floor, one phase:

* partitions the still-relevant vertices ``V'`` over ``m = √d`` machines
  (vertex-based sampling of [CŁM+18], Line (d));
* has each machine run ``I = Θ(log m)`` iterations of Central-Rand on its
  *induced local subgraph*, estimating each vertex's load as
  ``y~_v = m · (local active weight) + y_old_v`` and freezing vertices whose
  estimate crosses their random threshold ``T_{v,t}`` (Lines (e));
* recomputes true weights from freeze times (Line (g) — possible because
  every active edge grows by the same factor per iteration, so
  ``x_e = w_0 / (1-ε)^{t'}`` with ``t'`` the first endpoint-freeze time);
* removes vertices whose true load exceeded 1 (they join the cover;
  Line (i)) and freezes those in ``[1-2ε, 1]`` (Line (j));
* updates ``d ← d(1-ε)^I`` (Line (f)).

Once ``d`` reaches the floor the remaining iterations of Central-Rand are
simulated directly, one round each (Line (4)).

Hot-path layout: the graph's edge list is materialized **once** into flat
NumPy arrays (via :class:`~repro.graph.csr.CSRGraph`) and every per-phase
edge scan — the frozen-load recomputation ``y_old``, the true-load
aggregation of Line (g), the active-subgraph extraction, and the final
weight readout — is a vectorized pass over those arrays instead of a
Python iteration of the adjacency structure.  Freezing decisions go
through :meth:`ThresholdOracle.crosses`, which only materializes the
(SHA-derived) threshold when the load estimate lands inside the random
band.  Both changes are output-preserving: the RNG consumption order
(machine assignment draws) and every freezing comparison are unchanged.

``config.rng == "counter"`` (the out-of-core fast path) swaps the
per-vertex machine-assignment draws and the threshold oracle onto the
order-free counter generator (:mod:`repro.utils.counter_rng`) and drops
the O(n) ``surviving`` Python set in favor of the boolean mask.  Counter
runs are deterministic per seed but not byte-identical to sha runs; the
sha path is untouched (same draws, same order, same outputs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Union

import numpy as np

from repro.core.config import MatchingConfig
from repro.core.fractional import FractionalMatching
from repro.core.thresholds import ThresholdOracle
from repro.govern.governor import governed_broadcast
from repro.graph.csr import CSRGraph, as_csr
from repro.graph.graph import Edge, Graph
from repro.mpc.cluster import Message, MPCCluster
from repro.mpc.spec import ClusterSpec
from repro.mpc.words import edge_words, id_words
from repro.utils import counter_rng
from repro.utils.rng import SeedLike, make_rng
from repro.utils.trace import Trace, maybe_record

# Cap on the phase count, far above the O(log log n) bound; converts a
# schedule bug into an exception instead of a hang.
_MAX_PHASES = 300

# "Never froze" sentinel for the int64 freeze-time array.  Large enough to
# lose every ``min(..., now)`` while staying far from int64 overflow.
_NEVER = np.int64(2**62)


def _edge_weights(
    freeze_at: np.ndarray,
    endpoint_u: np.ndarray,
    endpoint_v: np.ndarray,
    now: int,
    w0: float,
    growth: float,
) -> np.ndarray:
    """Line (g) weights ``x_e = w_0 · growth^{t'}`` for the given edges.

    ``t'`` is the earliest endpoint freeze time, capped at ``now`` — the
    single definition every load/weight readout in this module shares.
    """
    t_prime = np.minimum(
        np.minimum(freeze_at[endpoint_u], freeze_at[endpoint_v]), np.int64(now)
    )
    return w0 * np.power(growth, t_prime)


@dataclass
class MatchingMPCResult:
    """Outcome of MPC-Simulation.

    Attributes
    ----------
    matching:
        Fractional matching on the surviving vertex set ``V'`` together
        with the vertex cover (frozen plus heavy-removed vertices).
    rounds / phases / iterations:
        Measured MPC rounds, phase count, and total Central-Rand iterations
        simulated (compressed + direct).
    freeze_iteration:
        Per-vertex global iteration at which the vertex froze.
    heavy_removed:
        Vertices removed at Line (i) (load exceeded 1); they are in the
        cover but their edges are excluded from the fractional matching.
    max_machine_edges:
        Largest per-machine induced subgraph over all phases (Lemma 4.7's
        ``O(n)`` quantity).
    """

    matching: FractionalMatching
    rounds: int
    phases: int
    iterations: int
    freeze_iteration: Dict[int, int] = field(default_factory=dict)
    heavy_removed: Set[int] = field(default_factory=set)
    max_machine_edges: int = 0
    machine_edges_per_phase: List[int] = field(default_factory=list)
    direct_iterations: int = 0
    total_comm_words: int = 0
    peak_words: int = 0

    @property
    def vertex_cover(self) -> Set[int]:
        """The reported vertex cover."""
        return self.matching.vertex_cover

    @property
    def weight(self) -> float:
        """Total fractional weight."""
        return self.matching.weight()

    def rounding_candidates(self, epsilon: float) -> Set[int]:
        """The high-load cover subset ``C~`` fed to Lemma 5.1 rounding."""
        return self.matching.heavy_vertices(1.0 - 5.0 * epsilon)


def mpc_fractional_matching(
    graph: Union[Graph, CSRGraph],
    config: Optional[MatchingConfig] = None,
    seed: SeedLike = None,
    oracle: Optional[ThresholdOracle] = None,
    trace: Optional[Trace] = None,
    executor=None,
    governor=None,
) -> MatchingMPCResult:
    """Run MPC-Simulation on ``graph``.

    Parameters
    ----------
    config:
        Schedule constants; see :class:`repro.core.config.MatchingConfig`.
    oracle:
        Threshold oracle override — pass the same instance to
        :func:`repro.core.central.run_freezing_process` to couple the two
        processes (used by the Lemma 4.15 concentration experiment).
    executor:
        Optional :class:`repro.dist.DistExecutor`.  When it is
        distributed, the per-machine phase blocks and the direct
        Central-Rand iterations run on its workers (outputs and round
        accounting byte-identical to the in-process path — see
        DISTRIBUTED.md); otherwise this sequential reference path runs.
    governor:
        Optional :class:`repro.govern.Governor`.  Watches per-phase load
        and intervenes before the word budget is breached: raises the
        phase's machine count when the predicted hottest induced
        subgraph would cross the soft watermark (adaptive
        sparsification — changes the owner draws, so governed-and-
        triggered runs are validated by verify bands, not byte pins),
        wave-splits over-budget scatters, and chunks the per-phase
        freeze broadcasts.  Exact pass-through when it never triggers.
    """
    config = config or MatchingConfig()
    epsilon = config.epsilon
    rng = make_rng(seed)
    n = graph.num_vertices

    if n == 0 or graph.num_edges == 0:
        empty = FractionalMatching(graph=graph, weights={}, vertex_cover=set())
        return MatchingMPCResult(
            matching=empty, rounds=0, phases=0, iterations=0
        )

    if oracle is None:
        oracle = ThresholdOracle(
            config.threshold_low,
            config.threshold_high,
            seed=rng.getrandbits(64),
            mode=config.rng,
        )
    growth = 1.0 / (1.0 - epsilon)
    w0 = (1.0 - 2.0 * epsilon) / n

    spec = ClusterSpec.from_graph(graph, config.memory_factor, machines="sqrt")
    cluster = spec.build_cluster(trace=trace)
    if governor is not None:
        governor.bind(cluster)

    counter_mode = config.rng == "counter"
    # The machine-assignment key is drawn once up front so per-phase owner
    # draws are an order-free pure function of (key, phase, vertex).
    owner_key = (
        counter_rng.derive_key(rng.getrandbits(64), "matching-owner")
        if counter_mode
        else 0
    )

    # One-time edge materialization: every per-phase scan below is a flat
    # pass over these canonical (u < v) endpoint arrays.
    csr = as_csr(graph)
    edge_array = csr.edge_array()
    eu = np.ascontiguousarray(edge_array[:, 0])
    ev = np.ascontiguousarray(edge_array[:, 1])

    if governor is not None:
        # Prime the ball-size estimator with the input's degree skew so
        # the first (heaviest) scatter is predicted before any phase has
        # been observed.
        from repro.graph.statistics import load_summary

        governor.estimator.prime(load_summary(csr))

    # The paper's V'.  Counter mode keeps only the mask — a 10M-vertex
    # Python set costs ~500 MB and O(n) hashing per phase.
    surviving: Optional[Set[int]] = None if counter_mode else set(range(n))
    surviving_mask = np.ones(n, dtype=bool)
    freeze_iteration: Dict[int, int] = {}
    freeze_at = np.full(n, _NEVER, dtype=np.int64)
    heavy_removed: Set[int] = set()
    d = float(n)
    t = 0
    phases = 0
    floor = config.degree_floor(n)
    machine_edges_per_phase: List[int] = []

    def vertex_loads(now: int) -> np.ndarray:
        """True loads ``y^MPC`` over ``G[V']`` at iteration ``now`` (Line (g))."""
        inside = surviving_mask[eu] & surviving_mask[ev]
        x = _edge_weights(freeze_at, eu[inside], ev[inside], now, w0, growth)
        return np.bincount(
            eu[inside], weights=x, minlength=n
        ) + np.bincount(ev[inside], weights=x, minlength=n)

    while d > floor:
        if phases >= _MAX_PHASES:
            raise RuntimeError("MPC-Simulation exceeded the phase cap")
        if counter_mode:
            # freeze_at is synced with freeze_iteration at the end of every
            # phase, so the mask form is exactly "surviving and unfrozen".
            active_ids = np.flatnonzero(surviving_mask & (freeze_at == _NEVER))
        else:
            active = [v for v in surviving if v not in freeze_iteration]
            active_ids = np.asarray(active, dtype=np.int64)
        active_mask = np.zeros(n, dtype=bool)
        active_mask[active_ids] = True

        # Active subgraph G' and the per-vertex frozen load y_old (Line (b)):
        # one vectorized pass splits the surviving edges into "both active"
        # (shipped to machines) and "touching a frozen endpoint" (their
        # weight is already locked in and accrues to y_old).
        surv_edge = surviving_mask[eu] & surviving_mask[ev]
        both_active = surv_edge & active_mask[eu] & active_mask[ev]
        frozen_touch = surv_edge & ~both_active
        fu = eu[frozen_touch]
        fv = ev[frozen_touch]
        x = _edge_weights(freeze_at, fu, fv, t, w0, growth)
        y_old = np.bincount(fu, weights=x, minlength=n) + np.bincount(
            fv, weights=x, minlength=n
        )
        active_u = eu[both_active]
        active_v = ev[both_active]

        base_machines = max(2, int(math.sqrt(d)))
        num_machines = base_machines
        partition_context = f"matching: phase {phases + 1} partition"
        if governor is not None:
            # Rung 1 (adaptive sparsification): raising the machine count
            # before the owner draws lowers the same-machine co-location
            # probability, shrinking both the hottest induced subgraph
            # (~ edges/k²) and the shipped volume (~ edges/k).  Returns
            # the base count untouched when the prediction fits — the
            # byte-identity case.
            num_machines = governor.plan_partitions(
                base_machines, edge_words(len(active_u)), partition_context
            )

        # Line (d): i.i.d. random vertex partitioning; one exchange ships
        # each induced subgraph (memory validated by the substrate).  The
        # sha draw order over ``active`` is load-bearing for
        # reproducibility; counter mode evaluates the same partition as a
        # pure function of (owner_key, phase, vertex) in one array pass.
        # Under governance the draw is retried with a doubled part count
        # when multinomial variance lands one induced subgraph over the
        # soft budget anyway (nothing has shipped yet); the ungoverned
        # path runs the body exactly once.
        while True:
            owner_of = np.full(n, -1, dtype=np.int64)
            parts: List[Sequence[int]]
            if counter_mode:
                owner_vals = counter_rng.integers(
                    owner_key, active_ids, phases, num_machines
                )
                owner_of[active_ids] = owner_vals
                grouping = np.argsort(owner_vals, kind="stable")
                sorted_ids = active_ids[grouping]
                part_counts = np.bincount(owner_vals, minlength=num_machines)
                bounds = np.zeros(num_machines + 1, dtype=np.int64)
                np.cumsum(part_counts, out=bounds[1:])
                parts = [
                    sorted_ids[bounds[index] : bounds[index + 1]]
                    for index in range(num_machines)
                ]
            else:
                owner = {v: rng.randrange(num_machines) for v in active}
                parts = [[] for _ in range(num_machines)]
                for v in active:
                    parts[owner[v]].append(v)
                if active:
                    owner_of[active] = [owner[v] for v in active]

            # Same-machine active edges, grouped by machine in one sort.
            same = owner_of[active_u] == owner_of[active_v]
            local_u = active_u[same]
            local_v = active_v[same]
            machine_of_edge = owner_of[local_u]
            grouping = np.argsort(machine_of_edge, kind="stable")
            local_u = local_u[grouping]
            local_v = local_v[grouping]
            counts = np.bincount(machine_of_edge, minlength=num_machines)
            boundaries = np.zeros(num_machines + 1, dtype=np.int64)
            np.cumsum(counts, out=boundaries[1:])
            local_edge_counts = [int(c) for c in counts]

            if governor is None:
                break
            worst = edge_words(max(local_edge_counts, default=0))
            if worst <= governor.soft_words:
                break
            grown = governor.grow_partitions(
                base_machines, num_machines, worst, partition_context
            )
            if grown == num_machines:
                break  # ceiling reached; _ship_partitions decides the fate
            num_machines = grown
        iterations = config.iterations_per_phase(num_machines)

        _ship_partitions(cluster, local_edge_counts, phases, governor=governor)
        machine_edges_per_phase.append(max(local_edge_counts, default=0))

        # Lines (e): every machine simulates I iterations locally.  With a
        # distributed executor the machine blocks are scattered over the
        # workers and the freeze insertions merged back in machine order —
        # exactly the order the sequential loop produces.
        if executor is not None and executor.distributed:
            local_of = np.full(n, -1, dtype=np.int64)
            for part in parts:
                if len(part):
                    local_of[part] = np.arange(len(part), dtype=np.int64)
            tasks = []
            for index, part in enumerate(parts):
                if len(part) == 0:
                    continue
                part_ids = np.asarray(part, dtype=np.int64)
                lo, hi = boundaries[index], boundaries[index + 1]
                tasks.append(
                    (
                        part_ids,
                        local_of[local_u[lo:hi]],
                        local_of[local_v[lo:hi]],
                        y_old[part_ids],
                    )
                )
            results = executor.map_tasks(
                "matching.machines",
                tasks,
                shared={
                    "oracle": oracle,
                    "start": t,
                    "iterations": iterations,
                    "machines": num_machines,
                    "w0": w0,
                    "growth": growth,
                },
                phase="compressed-phases",
            )
            for insertions in results:
                for v, frozen_t in insertions:
                    freeze_iteration[v] = frozen_t
        else:
            for index, part in enumerate(parts):
                _simulate_machine(
                    part=part,
                    edges_u=local_u[boundaries[index] : boundaries[index + 1]],
                    edges_v=local_v[boundaries[index] : boundaries[index + 1]],
                    y_old=y_old,
                    oracle=oracle,
                    freeze_iteration=freeze_iteration,
                    start_iteration=t,
                    iterations=iterations,
                    num_machines=num_machines,
                    w0=w0,
                    growth=growth,
                )
        t += iterations
        d *= (1.0 - epsilon) ** iterations
        phases += 1
        for v, frozen_t in freeze_iteration.items():
            freeze_at[v] = frozen_t

        # One broadcast distributes freeze times (Line (g) inputs), one
        # aggregation round recomputes loads and applies Lines (h)-(j).
        # Governed runs chunk the broadcast into sequential sub-batches
        # when id_words(n) exceeds the soft watermark (rung 2).
        governed_broadcast(
            cluster,
            id_words(n),
            f"matching: phase {phases} freezes",
            governor,
        )
        cluster.charge_rounds(1, f"matching: phase {phases} load aggregation")

        loads = vertex_loads(t)
        over_one = np.flatnonzero(surviving_mask & (loads > 1.0))
        surviving_mask[over_one] = False
        heavy_removed.update(over_one.tolist())
        if surviving is not None:
            surviving.difference_update(over_one.tolist())
        if over_one.size:
            loads = vertex_loads(t)
        newly_frozen = np.flatnonzero(
            surviving_mask
            & (freeze_at == _NEVER)
            & (loads >= 1.0 - 2.0 * epsilon)
        )
        for v in newly_frozen.tolist():
            freeze_iteration[v] = t
            freeze_at[v] = t
        maybe_record(
            trace,
            "matching_phase",
            phase=phases,
            iterations=iterations,
            degree_bound=d,
            machines=num_machines,
            max_machine_edges=max(local_edge_counts, default=0),
            frozen=len(freeze_iteration),
            heavy_removed=len(heavy_removed),
        )

    # Line (4): direct simulation of the remaining Central-Rand iterations.
    t_before_direct = t
    if executor is not None and executor.distributed:
        t = _direct_simulation_dist(
            csr=csr,
            eu=eu,
            ev=ev,
            surviving_mask=surviving_mask,
            freeze_at=freeze_at,
            freeze_iteration=freeze_iteration,
            oracle=oracle,
            cluster=cluster,
            start_iteration=t,
            w0=w0,
            growth=growth,
            max_iterations=config.max_direct_iterations,
            vertex_loads=vertex_loads,
            executor=executor,
        )
    else:
        t = _direct_simulation(
            eu=eu,
            ev=ev,
            surviving_mask=surviving_mask,
            freeze_at=freeze_at,
            freeze_iteration=freeze_iteration,
            oracle=oracle,
            cluster=cluster,
            start_iteration=t,
            w0=w0,
            growth=growth,
            max_iterations=config.max_direct_iterations,
            vertex_loads=vertex_loads,
        )

    inside = surviving_mask[eu] & surviving_mask[ev]
    wu = eu[inside]
    wv = ev[inside]
    x = _edge_weights(freeze_at, wu, wv, t, w0, growth)
    computed: Dict[Edge, float] = {
        (u, v): value
        for u, v, value in zip(wu.tolist(), wv.tolist(), x.tolist())
    }
    # Re-emit in graph.edges() order: downstream consumers (the Lemma 5.1
    # rounding) iterate this dict and draw randomness per edge, so the
    # insertion order is part of the reproducible behavior.  For CSR inputs
    # ``computed`` is already built in canonical ascending order — exactly
    # what ``CSRGraph.edges()`` yields — so the pass is the identity and is
    # skipped (it would cost an O(m) Python iteration per solve).
    weights: Dict[Edge, float]
    if isinstance(graph, CSRGraph):
        weights = computed
    else:
        weights = {
            edge: computed[edge] for edge in graph.edges() if edge in computed
        }
    cover = set(freeze_iteration) | heavy_removed
    matching = FractionalMatching(graph=graph, weights=weights, vertex_cover=cover)
    return MatchingMPCResult(
        matching=matching,
        rounds=cluster.rounds,
        phases=phases,
        iterations=t,
        freeze_iteration=dict(freeze_iteration),
        heavy_removed=heavy_removed,
        max_machine_edges=max(machine_edges_per_phase, default=0),
        machine_edges_per_phase=machine_edges_per_phase,
        direct_iterations=t - t_before_direct,
        total_comm_words=cluster.total_comm_words,
        peak_words=max(cluster.peak_words(), cluster.peak_transient_words),
    )


def _ship_partitions(
    cluster: MPCCluster,
    local_edge_counts: List[int],
    phase: int,
    governor=None,
) -> None:
    """Deliver each machine its induced active subgraph (one exchange).

    Machine ``i`` receives (and, in the shuffle, forwards) part ``i``'s
    induced edges; the substrate validates both directions against the word
    budget — this is exactly the quantity Lemma 4.7 bounds by ``O(n)``.

    With a governor attached, a scatter whose per-machine volume would
    cross the soft watermark is split into sequential waves (rung 2),
    each within budget — extra rounds instead of an abort.  A *single*
    part too large even alone cannot be waved (the machine must hold its
    whole induced subgraph to iterate Central-Rand on it) and degrades.
    """
    context = f"matching: phase {phase + 1} scatter"
    messages = [
        (index % cluster.num_machines, edge_words(count))
        for index, count in enumerate(local_edge_counts)
    ]
    waves: List[List[tuple]] = [messages]
    if governor is not None:
        soft = governor.soft_words
        if any(words > soft for _, words in messages):
            worst = max(words for _, words in messages)
            governor.degrade(
                f"one induced subgraph of {worst} words exceeds the soft "
                f"budget {soft} even after sparsification",
                context,
            )
        elif governor.policy.allow_chunk:
            waves = _scatter_waves(messages, soft)
            if len(waves) > 1:
                hottest = max(
                    sum(w for d, w in messages if d == dest)
                    for dest in {d for d, _ in messages}
                )
                governor.record_chunk(context, hottest, len(waves))
    total = len(waves)
    for wave_index, wave in enumerate(waves):
        outboxes: Dict[int, List[Message]] = {}
        for destination, words in wave:
            outboxes.setdefault(destination, []).append(
                Message(destination=destination, words=words, payload=None)
            )
        wave_context = (
            context
            if total == 1
            else f"{context} [wave {wave_index + 1}/{total}]"
        )
        cluster.exchange(outboxes, context=wave_context)


def _scatter_waves(messages: List[tuple], soft_words: int) -> List[List[tuple]]:
    """Greedy first-fit wave split of ``(destination, words)`` messages.

    Each wave keeps every destination's inbox (and, in this scatter
    topology, each sender's outbox) within ``soft_words``.  Messages are
    taken in order, so an in-budget scatter comes back as exactly one
    wave with the original message order — the pass-through case.
    """
    waves: List[List[tuple]] = [[]]
    loads: List[Dict[int, int]] = [{}]
    for destination, words in messages:
        placed = False
        for wave, load in zip(waves, loads):
            if load.get(destination, 0) + words <= soft_words:
                wave.append((destination, words))
                load[destination] = load.get(destination, 0) + words
                placed = True
                break
        if not placed:
            waves.append([(destination, words)])
            loads.append({destination: words})
    return [wave for wave in waves if wave]


def _simulate_machine(
    part: Sequence[int],
    edges_u: np.ndarray,
    edges_v: np.ndarray,
    y_old: np.ndarray,
    oracle: ThresholdOracle,
    freeze_iteration: Dict[int, int],
    start_iteration: int,
    iterations: int,
    num_machines: int,
    w0: float,
    growth: float,
) -> None:
    """Run ``iterations`` local Central-Rand steps on one machine's part.

    ``edges_u``/``edges_v`` are this machine's local induced edges (both
    endpoints assigned here).  Mutates ``freeze_iteration`` with the
    vertices this machine froze.

    The whole part is decided per iteration through one
    :meth:`ThresholdOracle.crosses_batch` call — local degrees live in a
    part-relabelled array and shrink by masking dead edges, so no
    adjacency sets are materialized.  Freezing decisions are identical to
    the historical per-vertex loop (the threshold is a pure function of
    ``(seed, v, t)`` and the estimate arithmetic is unchanged).
    """
    if len(part) == 0:
        return
    part_ids = np.asarray(part, dtype=np.int64)
    local_of = np.full(len(y_old), -1, dtype=np.int64)
    local_of[part_ids] = np.arange(len(part_ids), dtype=np.int64)
    insertions = _machine_insertions(
        part_ids=part_ids,
        local_u=local_of[edges_u],
        local_v=local_of[edges_v],
        y_part=y_old[part_ids],
        oracle=oracle,
        start_iteration=start_iteration,
        iterations=iterations,
        num_machines=num_machines,
        w0=w0,
        growth=growth,
    )
    for v, now in insertions:
        freeze_iteration[v] = now


def _machine_insertions(
    part_ids: np.ndarray,
    local_u: np.ndarray,
    local_v: np.ndarray,
    y_part: np.ndarray,
    oracle: ThresholdOracle,
    start_iteration: int,
    iterations: int,
    num_machines: int,
    w0: float,
    growth: float,
) -> List[tuple]:
    """One machine's local Central-Rand block, as ``(vertex, t)`` freezes.

    The machine-local unit of :func:`_simulate_machine`, factored so the
    distributed executor can run it on a worker (via the
    ``matching.machines`` kernel) and replay the returned insertions in
    the driver — list order equals the sequential mutation order.
    ``local_u``/``local_v`` are the machine's induced edges relabelled to
    part positions; ``y_part`` is the frozen-load slice for the part.
    """
    insertions: List[tuple] = []
    k = len(part_ids)
    if k == 0:
        return insertions
    edge_alive = np.ones(len(local_u), dtype=bool)
    active = np.ones(k, dtype=bool)
    degree = np.bincount(local_u, minlength=k) + np.bincount(
        local_v, minlength=k
    )
    for step in range(iterations):
        act = np.flatnonzero(active)
        if act.size == 0:
            break
        now = start_iteration + step
        w_t = w0 * growth**now
        # Same association as the scalar path: (m * deg) * w_t + y_old.
        estimates = num_machines * degree[act] * w_t + y_part[act]
        frozen = oracle.crosses_batch(part_ids[act], now, estimates)
        if not frozen.any():
            continue  # nothing froze: degrees are unchanged too
        newly = act[frozen]
        for v in part_ids[newly].tolist():
            insertions.append((v, now))
        active[newly] = False
        edge_alive &= active[local_u] & active[local_v]
        degree = np.bincount(local_u[edge_alive], minlength=k) + np.bincount(
            local_v[edge_alive], minlength=k
        )
    return insertions


def _direct_simulation(
    eu: np.ndarray,
    ev: np.ndarray,
    surviving_mask: np.ndarray,
    freeze_at: np.ndarray,
    freeze_iteration: Dict[int, int],
    oracle: ThresholdOracle,
    cluster: MPCCluster,
    start_iteration: int,
    w0: float,
    growth: float,
    max_iterations: int,
    vertex_loads,
) -> int:
    """Line (4): simulate Central-Rand directly, one MPC round per iteration.

    Returns the final global iteration counter.
    """
    t = start_iteration
    n = len(surviving_mask)
    # Unfrozen survivors with at least one unfrozen surviving neighbor —
    # one vectorized degree scan instead of a per-vertex adjacency walk.
    unfrozen = surviving_mask & (freeze_at == _NEVER)
    live_edge = unfrozen[eu] & unfrozen[ev]
    live_degree = np.bincount(eu[live_edge], minlength=n) + np.bincount(
        ev[live_edge], minlength=n
    )
    initially_active = np.flatnonzero(unfrozen & (live_degree > 0))
    active = set(initially_active.tolist())
    active_degree = np.zeros(n, dtype=np.int64)
    active_degree[initially_active] = live_degree[initially_active]
    frozen_load = np.zeros(n, dtype=np.float64)
    loads = vertex_loads(t)
    # Same association as the historical scalar path:
    # loads[v] - (deg * w0) * growth**t.
    frozen_load[initially_active] = loads[initially_active] - (
        active_degree[initially_active] * w0
    ) * (growth**t)

    # Neighbor lists restricted to the initially-active set; the direct
    # loop below only ever looks at active-active adjacency.
    neighbors: Dict[int, List[int]] = {v: [] for v in active}
    au = eu[live_edge]
    av = ev[live_edge]
    for a, b in zip(au.tolist(), av.tolist()):
        neighbors[a].append(b)
        neighbors[b].append(a)

    steps = 0
    while active:
        if steps >= max_iterations:
            raise RuntimeError(
                "direct Central-Rand simulation exceeded its iteration cap"
            )
        w_t = w0 * growth**t
        # One crosses_batch call per iteration instead of per-vertex oracle
        # queries; in-band thresholds are materialized in one batched
        # hashing pass.  Decisions match the scalar loop exactly.
        act = np.fromiter(active, dtype=np.int64, count=len(active))
        estimates = frozen_load[act] + active_degree[act] * w_t
        to_freeze = act[oracle.crosses_batch(act, t, estimates)].tolist()
        newly = set(to_freeze)
        for v in to_freeze:
            freeze_iteration[v] = t
            freeze_at[v] = t
            active.discard(v)
        for v in to_freeze:
            for u in neighbors[v]:
                if u in newly:
                    if u < v:
                        continue
                    frozen_load[v] += w_t
                    frozen_load[u] += w_t
                    active_degree[v] -= 1
                    active_degree[u] -= 1
                elif u in active:
                    frozen_load[u] += w_t
                    active_degree[u] -= 1
                    frozen_load[v] += w_t
                    active_degree[v] -= 1
        for v in list(active):
            if active_degree[v] == 0:
                active.discard(v)
        t += 1
        steps += 1
        cluster.charge_rounds(1, "matching: direct Central-Rand iteration")
    return t


def _direct_simulation_dist(
    csr: CSRGraph,
    eu: np.ndarray,
    ev: np.ndarray,
    surviving_mask: np.ndarray,
    freeze_at: np.ndarray,
    freeze_iteration: Dict[int, int],
    oracle: ThresholdOracle,
    cluster: MPCCluster,
    start_iteration: int,
    w0: float,
    growth: float,
    max_iterations: int,
    vertex_loads,
    executor,
) -> int:
    """Line (4) on the distributed executor — same outputs, same rounds.

    The vertex range is partitioned contiguously over the workers; each
    worker owns the mutable per-vertex state (active flag, active degree,
    frozen load) for its slice and reads the immutable CSR adjacency from
    shared memory.  Per iteration the driver broadcasts the previous
    iteration's global freeze list, allreduces the surviving active
    counts, and merges the newly-frozen ids — charging exactly one
    cluster round per executed iteration, like the sequential loop.

    Byte-identity with :func:`_direct_simulation` (the parity suite
    enforces it):

    * the CSR rows filtered by the initially-active mask are exactly the
      sequential live-adjacency lists (``eu``/``ev`` come from this CSR,
      and a full-CSR edge with both endpoints initially active is by
      definition a live edge);
    * all load increments within one iteration equal ``w_t``, and
      ``np.add.at`` performs a per-accumulator sequence of equal-value
      additions — bit-identical floats regardless of order;
    * updates landing on initially-active but since-frozen (or
      zero-removed) cells diverge from the sequential arrays, but those
      cells are never read again;
    * termination and the iteration cap gate on the allreduced count
      *before* any round is charged or any freeze applied, mirroring the
      sequential ``while active`` / cap checks.
    """
    t = start_iteration
    n = len(surviving_mask)
    # Identical initialization to the sequential path.
    unfrozen = surviving_mask & (freeze_at == _NEVER)
    live_edge = unfrozen[eu] & unfrozen[ev]
    live_degree = np.bincount(eu[live_edge], minlength=n) + np.bincount(
        ev[live_edge], minlength=n
    )
    initially_active = unfrozen & (live_degree > 0)
    if not initially_active.any():
        return t
    active_ids = np.flatnonzero(initially_active)
    active_degree = np.zeros(n, dtype=np.int64)
    active_degree[active_ids] = live_degree[active_ids]
    frozen_load = np.zeros(n, dtype=np.float64)
    loads = vertex_loads(t)
    frozen_load[active_ids] = loads[active_ids] - (
        active_degree[active_ids] * w0
    ) * (growth**t)

    key = executor.open_session(
        "matching-direct", {"indptr": csr.indptr, "indices": csr.indices}
    )
    try:
        payloads = [
            {
                "session": key,
                "lo": lo,
                "hi": hi,
                "active": initially_active,
                "degree": active_degree[lo:hi],
                "load": frozen_load[lo:hi],
                "oracle": oracle,
                "w0": w0,
                "growth": growth,
            }
            for lo, hi in executor.partition(n)
        ]
        counts = executor.scatter_step(
            "matching.direct_init", payloads, phase="direct-simulation"
        )
        total = sum(counts)
        prev = np.empty(0, dtype=np.int64)
        steps = 0
        while total:
            results = executor.broadcast_step(
                "matching.direct_step",
                {"session": key, "t": t, "prev": prev},
                phase="direct-simulation",
            )
            total = sum(count for _, count in results)
            if total == 0:
                # Everyone went inactive while applying the previous
                # iteration's freezes: the sequential loop would have
                # exited at the top without charging this round.
                break
            if steps >= max_iterations:
                raise RuntimeError(
                    "direct Central-Rand simulation exceeded its iteration cap"
                )
            prev = np.concatenate([newly for newly, _ in results])
            freeze_at[prev] = t
            for v in prev.tolist():
                freeze_iteration[v] = t
            t += 1
            steps += 1
            cluster.charge_rounds(1, "matching: direct Central-Rand iteration")
    finally:
        executor.close_session(key)
    return t
