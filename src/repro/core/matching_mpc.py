"""MPC-Simulation — fractional matching and vertex cover in O(log log n)
MPC rounds (Section 4.3, Lemma 4.2).

The algorithm simulates Central-Rand in phases.  While the degree bound
``d`` exceeds a polylog floor, one phase:

* partitions the still-relevant vertices ``V'`` over ``m = √d`` machines
  (vertex-based sampling of [CŁM+18], Line (d));
* has each machine run ``I = Θ(log m)`` iterations of Central-Rand on its
  *induced local subgraph*, estimating each vertex's load as
  ``y~_v = m · (local active weight) + y_old_v`` and freezing vertices whose
  estimate crosses their random threshold ``T_{v,t}`` (Lines (e));
* recomputes true weights from freeze times (Line (g) — possible because
  every active edge grows by the same factor per iteration, so
  ``x_e = w_0 / (1-ε)^{t'}`` with ``t'`` the first endpoint-freeze time);
* removes vertices whose true load exceeded 1 (they join the cover;
  Line (i)) and freezes those in ``[1-2ε, 1]`` (Line (j));
* updates ``d ← d(1-ε)^I`` (Line (f)).

Once ``d`` reaches the floor the remaining iterations of Central-Rand are
simulated directly, one round each (Line (4)).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.config import MatchingConfig
from repro.core.fractional import FractionalMatching
from repro.core.thresholds import ThresholdOracle
from repro.graph.graph import Edge, Graph
from repro.mpc.cluster import Message, MPCCluster
from repro.mpc.spec import ClusterSpec
from repro.mpc.words import WORDS_PER_FLOAT, edge_words, id_words
from repro.utils.rng import SeedLike, make_rng
from repro.utils.trace import Trace, maybe_record

# Cap on the phase count, far above the O(log log n) bound; converts a
# schedule bug into an exception instead of a hang.
_MAX_PHASES = 300


@dataclass
class MatchingMPCResult:
    """Outcome of MPC-Simulation.

    Attributes
    ----------
    matching:
        Fractional matching on the surviving vertex set ``V'`` together
        with the vertex cover (frozen plus heavy-removed vertices).
    rounds / phases / iterations:
        Measured MPC rounds, phase count, and total Central-Rand iterations
        simulated (compressed + direct).
    freeze_iteration:
        Per-vertex global iteration at which the vertex froze.
    heavy_removed:
        Vertices removed at Line (i) (load exceeded 1); they are in the
        cover but their edges are excluded from the fractional matching.
    max_machine_edges:
        Largest per-machine induced subgraph over all phases (Lemma 4.7's
        ``O(n)`` quantity).
    """

    matching: FractionalMatching
    rounds: int
    phases: int
    iterations: int
    freeze_iteration: Dict[int, int] = field(default_factory=dict)
    heavy_removed: Set[int] = field(default_factory=set)
    max_machine_edges: int = 0
    machine_edges_per_phase: List[int] = field(default_factory=list)
    direct_iterations: int = 0

    @property
    def vertex_cover(self) -> Set[int]:
        """The reported vertex cover."""
        return self.matching.vertex_cover

    @property
    def weight(self) -> float:
        """Total fractional weight."""
        return self.matching.weight()

    def rounding_candidates(self, epsilon: float) -> Set[int]:
        """The high-load cover subset ``C~`` fed to Lemma 5.1 rounding."""
        return self.matching.heavy_vertices(1.0 - 5.0 * epsilon)


def mpc_fractional_matching(
    graph: Graph,
    config: Optional[MatchingConfig] = None,
    seed: SeedLike = None,
    oracle: Optional[ThresholdOracle] = None,
    trace: Optional[Trace] = None,
) -> MatchingMPCResult:
    """Run MPC-Simulation on ``graph``.

    Parameters
    ----------
    config:
        Schedule constants; see :class:`repro.core.config.MatchingConfig`.
    oracle:
        Threshold oracle override — pass the same instance to
        :func:`repro.core.central.run_freezing_process` to couple the two
        processes (used by the Lemma 4.15 concentration experiment).
    """
    config = config or MatchingConfig()
    epsilon = config.epsilon
    rng = make_rng(seed)
    n = graph.num_vertices

    if n == 0 or graph.num_edges == 0:
        empty = FractionalMatching(graph=graph, weights={}, vertex_cover=set())
        return MatchingMPCResult(
            matching=empty, rounds=0, phases=0, iterations=0
        )

    if oracle is None:
        oracle = ThresholdOracle(
            config.threshold_low, config.threshold_high, seed=rng.getrandbits(64)
        )
    growth = 1.0 / (1.0 - epsilon)
    w0 = (1.0 - 2.0 * epsilon) / n

    spec = ClusterSpec.from_graph(graph, config.memory_factor, machines="sqrt")
    cluster = spec.build_cluster(trace=trace)

    surviving: Set[int] = set(range(n))  # the paper's V'
    freeze_iteration: Dict[int, int] = {}
    heavy_removed: Set[int] = set()
    d = float(n)
    t = 0
    phases = 0
    floor = config.degree_floor(n)
    machine_edges_per_phase: List[int] = []

    def edge_weight(u: int, v: int, now: int) -> float:
        """Current weight of edge ``{u, v}`` per Line (g)."""
        t_prime = min(
            freeze_iteration.get(u, now), freeze_iteration.get(v, now), now
        )
        return w0 * growth**t_prime

    def vertex_loads(now: int) -> Dict[int, float]:
        """True loads ``y^MPC`` over ``G[V']`` at iteration ``now``."""
        loads = {v: 0.0 for v in surviving}
        for u, v in graph.edges():
            if u in surviving and v in surviving:
                x = edge_weight(u, v, now)
                loads[u] += x
                loads[v] += x
        return loads

    while d > floor:
        if phases >= _MAX_PHASES:
            raise RuntimeError("MPC-Simulation exceeded the phase cap")
        active = [
            v for v in surviving if v not in freeze_iteration
        ]
        active_set = set(active)
        # Active subgraph G' and the per-vertex frozen load y_old (Line (b)).
        y_old: Dict[int, float] = {v: 0.0 for v in surviving}
        active_adj: Dict[int, Set[int]] = {v: set() for v in active}
        for u, v in graph.edges():
            if u not in surviving or v not in surviving:
                continue
            if u in active_set and v in active_set:
                active_adj[u].add(v)
                active_adj[v].add(u)
            else:
                x = edge_weight(u, v, t)
                y_old[u] += x
                y_old[v] += x

        num_machines = max(2, int(math.sqrt(d)))
        iterations = config.iterations_per_phase(num_machines)

        # Line (d): i.i.d. random vertex partitioning; one exchange ships
        # each induced subgraph (memory validated by the substrate).
        owner = {v: rng.randrange(num_machines) for v in active}
        parts: List[List[int]] = [[] for _ in range(num_machines)]
        for v in active:
            parts[owner[v]].append(v)
        local_edge_counts = _ship_partitions(
            cluster, active_adj, parts, owner, phases
        )
        machine_edges_per_phase.append(max(local_edge_counts, default=0))

        # Lines (e): every machine simulates I iterations locally.
        for part in parts:
            _simulate_machine(
                part=part,
                owner=owner,
                active_adj=active_adj,
                y_old=y_old,
                oracle=oracle,
                freeze_iteration=freeze_iteration,
                start_iteration=t,
                iterations=iterations,
                num_machines=num_machines,
                w0=w0,
                growth=growth,
            )
        t += iterations
        d *= (1.0 - epsilon) ** iterations
        phases += 1

        # One broadcast distributes freeze times (Line (g) inputs), one
        # aggregation round recomputes loads and applies Lines (h)-(j).
        cluster.broadcast(id_words(n), context=f"matching: phase {phases} freezes")
        cluster.charge_rounds(1, f"matching: phase {phases} load aggregation")

        loads = vertex_loads(t)
        over_one = {v for v, load in loads.items() if load > 1.0}
        for v in over_one:
            surviving.discard(v)
            heavy_removed.add(v)
        if over_one:
            loads = vertex_loads(t)
        for v, load in loads.items():
            if v in freeze_iteration or v not in surviving:
                continue
            if load >= 1.0 - 2.0 * epsilon:
                freeze_iteration[v] = t
        maybe_record(
            trace,
            "matching_phase",
            phase=phases,
            iterations=iterations,
            degree_bound=d,
            machines=num_machines,
            max_machine_edges=max(local_edge_counts, default=0),
            frozen=len(freeze_iteration),
            heavy_removed=len(heavy_removed),
        )

    # Line (4): direct simulation of the remaining Central-Rand iterations.
    t_before_direct = t
    t = _direct_simulation(
        graph=graph,
        surviving=surviving,
        freeze_iteration=freeze_iteration,
        oracle=oracle,
        cluster=cluster,
        start_iteration=t,
        w0=w0,
        growth=growth,
        epsilon=epsilon,
        max_iterations=config.max_direct_iterations,
        vertex_loads=vertex_loads,
    )

    weights: Dict[Edge, float] = {}
    for u, v in graph.edges():
        if u in surviving and v in surviving:
            weights[(u, v)] = edge_weight(u, v, t)
    cover = set(freeze_iteration) | heavy_removed
    matching = FractionalMatching(graph=graph, weights=weights, vertex_cover=cover)
    return MatchingMPCResult(
        matching=matching,
        rounds=cluster.rounds,
        phases=phases,
        iterations=t,
        freeze_iteration=dict(freeze_iteration),
        heavy_removed=heavy_removed,
        max_machine_edges=max(machine_edges_per_phase, default=0),
        machine_edges_per_phase=machine_edges_per_phase,
        direct_iterations=t - t_before_direct,
    )


def _ship_partitions(
    cluster: MPCCluster,
    active_adj: Dict[int, Set[int]],
    parts: List[List[int]],
    owner: Dict[int, int],
    phase: int,
) -> List[int]:
    """Deliver each machine its induced active subgraph (one exchange).

    Machine ``i`` receives (and, in the shuffle, forwards) part ``i``'s
    induced edges; the substrate validates both directions against the word
    budget — this is exactly the quantity Lemma 4.7 bounds by ``O(n)``.
    """
    local_edge_counts: List[int] = []
    outboxes: Dict[int, List[Message]] = {}
    for index, part in enumerate(parts):
        count = 0
        for v in part:
            for u in active_adj[v]:
                if u > v and owner[u] == index:
                    count += 1
        local_edge_counts.append(count)
        destination = index % cluster.num_machines
        outboxes.setdefault(destination, []).append(
            Message(destination=destination, words=edge_words(count), payload=None)
        )
    cluster.exchange(outboxes, context=f"matching: phase {phase + 1} scatter")
    return local_edge_counts


def _simulate_machine(
    part: List[int],
    owner: Dict[int, int],
    active_adj: Dict[int, Set[int]],
    y_old: Dict[int, float],
    oracle: ThresholdOracle,
    freeze_iteration: Dict[int, int],
    start_iteration: int,
    iterations: int,
    num_machines: int,
    w0: float,
    growth: float,
) -> None:
    """Run ``iterations`` local Central-Rand steps on one machine's part.

    Mutates ``freeze_iteration`` with the vertices this machine froze.
    """
    machine_index = owner[part[0]] if part else -1
    local_adj: Dict[int, Set[int]] = {}
    for v in part:
        local_adj[v] = {
            u for u in active_adj[v] if owner.get(u) == machine_index
        }
    locally_active = set(part)
    for step in range(iterations):
        now = start_iteration + step
        w_t = w0 * growth**now
        to_freeze = []
        for v in locally_active:
            estimate = num_machines * len(local_adj[v]) * w_t + y_old[v]
            if estimate >= oracle.threshold(v, now):
                to_freeze.append(v)
        for v in to_freeze:
            freeze_iteration[v] = now
            locally_active.discard(v)
            for u in local_adj[v]:
                local_adj[u].discard(v)
            local_adj[v] = set()


def _direct_simulation(
    graph: Graph,
    surviving: Set[int],
    freeze_iteration: Dict[int, int],
    oracle: ThresholdOracle,
    cluster: MPCCluster,
    start_iteration: int,
    w0: float,
    growth: float,
    epsilon: float,
    max_iterations: int,
    vertex_loads,
) -> int:
    """Line (4): simulate Central-Rand directly, one MPC round per iteration.

    Returns the final global iteration counter.
    """
    t = start_iteration
    active = {
        v
        for v in surviving
        if v not in freeze_iteration
        and any(
            u in surviving and u not in freeze_iteration
            for u in graph.neighbors_view(v)
        )
    }
    active_degree = {
        v: sum(
            1
            for u in graph.neighbors_view(v)
            if u in active
        )
        for v in active
    }
    frozen_load = {}
    loads = vertex_loads(t)
    for v in active:
        frozen_load[v] = loads[v] - active_degree[v] * w0 * growth**t

    steps = 0
    while active:
        if steps >= max_iterations:
            raise RuntimeError(
                "direct Central-Rand simulation exceeded its iteration cap"
            )
        w_t = w0 * growth**t
        to_freeze = [
            v
            for v in active
            if frozen_load[v] + active_degree[v] * w_t
            >= oracle.threshold(v, t)
        ]
        newly = set(to_freeze)
        for v in to_freeze:
            freeze_iteration[v] = t
            active.discard(v)
        for v in to_freeze:
            for u in graph.neighbors_view(v):
                if u not in surviving:
                    continue
                if u in newly:
                    if u < v:
                        continue
                    frozen_load[v] += w_t
                    frozen_load[u] += w_t
                    active_degree[v] -= 1
                    active_degree[u] -= 1
                elif u in active:
                    frozen_load[u] += w_t
                    active_degree[u] -= 1
                    frozen_load[v] += w_t
                    active_degree[v] -= 1
        for v in list(active):
            if active_degree[v] == 0:
                active.discard(v)
        t += 1
        steps += 1
        cluster.charge_rounds(1, "matching: direct Central-Rand iteration")
    return t
