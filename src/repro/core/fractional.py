"""Fractional matching result container.

Both the centralized reference algorithms and the MPC simulation produce a
:class:`FractionalMatching`: an edge-weight vector plus the vertex cover of
frozen vertices.  The container owns the LP-side bookkeeping (vertex loads,
validity, the high-load candidate set fed to the rounding procedure).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Set, Tuple

from repro.graph.graph import Edge, Graph, canonical_edge


@dataclass
class FractionalMatching:
    """An edge-weight vector ``x`` with its supporting metadata.

    Attributes
    ----------
    graph:
        The graph the weights live on (weights may cover a subset of edges;
        absent edges have weight 0).
    weights:
        Map from canonical edge to ``x_e >= 0``.
    vertex_cover:
        The frozen-vertex set the algorithm reports as its vertex cover.
    """

    graph: Graph
    weights: Dict[Edge, float]
    vertex_cover: Set[int] = field(default_factory=set)

    def weight(self) -> float:
        """Total fractional weight ``sum_e x_e``."""
        return sum(self.weights.values())

    def vertex_loads(self) -> Dict[int, float]:
        """Per-vertex load ``y_v = sum_{e ∋ v} x_e`` (zero-load omitted)."""
        loads: Dict[int, float] = {}
        for (u, v), x in self.weights.items():
            loads[u] = loads.get(u, 0.0) + x
            loads[v] = loads.get(v, 0.0) + x
        return loads

    def is_valid(self, tolerance: float = 1e-9) -> bool:
        """LP feasibility: nonnegative weights on real edges, loads ≤ 1."""
        for (u, v), x in self.weights.items():
            if x < -tolerance or not self.graph.has_edge(u, v):
                return False
        return all(
            load <= 1.0 + tolerance for load in self.vertex_loads().values()
        )

    def heavy_vertices(self, minimum_load: float) -> Set[int]:
        """Vertices with load at least ``minimum_load``.

        Lemma 4.2 guarantees at least ``|C|/3`` cover vertices reach load
        ``1 - 5ε``; that set is the rounding candidate set ``C~`` of
        Lemma 5.1.
        """
        loads = self.vertex_loads()
        return {v for v, load in loads.items() if load >= minimum_load}

    def restricted_to(self, vertices: Set[int]) -> "FractionalMatching":
        """The sub-fractional-matching on edges inside ``vertices``."""
        kept = {
            e: x
            for e, x in self.weights.items()
            if e[0] in vertices and e[1] in vertices
        }
        return FractionalMatching(
            graph=self.graph,
            weights=kept,
            vertex_cover=self.vertex_cover & vertices,
        )
