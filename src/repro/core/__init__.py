"""The paper's primary contributions.

* :mod:`repro.core.greedy_mis` / :mod:`repro.core.mis_mpc` — Theorem 1.1:
  MIS in ``O(log log Δ)`` MPC rounds via rank-prefix simulation of
  randomized greedy.
* :mod:`repro.core.central` / :mod:`repro.core.matching_mpc` — Lemma 4.1 /
  Lemma 4.2: fractional matching and vertex cover in ``O(log log n)``
  rounds.
* :mod:`repro.core.rounding` / :mod:`repro.core.integral` — Lemma 5.1 /
  Theorem 1.2: integral ``(2+ε)``-approximate matching.
* :mod:`repro.core.augmenting` — Corollary 1.3: ``(1+ε)`` matching.
* :mod:`repro.core.weighted_matching` — Corollary 1.4: weighted matching.
"""

from repro.core.config import MISConfig, MatchingConfig
from repro.core.greedy_mis import greedy_mis, randomized_greedy_mis
from repro.core.mis_mpc import MISResult, mis_mpc
from repro.core.sparsified_mis import sparsified_mis
from repro.core.central import CentralResult, central_fractional_matching
from repro.core.fractional import FractionalMatching
from repro.core.matching_mpc import MatchingMPCResult, mpc_fractional_matching
from repro.core.rounding import round_fractional_matching
from repro.core.integral import IntegralMatchingResult, mpc_maximum_matching
from repro.core.vertex_cover import VertexCoverResult, mpc_vertex_cover
from repro.core.augmenting import one_plus_eps_matching
from repro.core.weighted_matching import WeightedMatchingResult, mpc_weighted_matching
from repro.core.line_graph_matching import (
    LineGraphMatchingResult,
    maximal_matching_via_line_graph,
)
from repro.core.small_matchings import SmallMatchingResult, small_matching_fallback

__all__ = [
    "MISConfig",
    "MatchingConfig",
    "greedy_mis",
    "randomized_greedy_mis",
    "MISResult",
    "mis_mpc",
    "sparsified_mis",
    "CentralResult",
    "central_fractional_matching",
    "FractionalMatching",
    "MatchingMPCResult",
    "mpc_fractional_matching",
    "round_fractional_matching",
    "IntegralMatchingResult",
    "mpc_maximum_matching",
    "VertexCoverResult",
    "mpc_vertex_cover",
    "one_plus_eps_matching",
    "WeightedMatchingResult",
    "mpc_weighted_matching",
    "LineGraphMatchingResult",
    "maximal_matching_via_line_graph",
    "SmallMatchingResult",
    "small_matching_fallback",
]
