"""Sparsified MIS finish for polylog-degree graphs.

Stands in for Theorem 2.1 ([Gha17]) exactly where the paper uses it: once
the rank-prefix phases have driven the maximum degree below polylog, finish
the MIS in ``O(log log Δ')`` rounds.

Our substitute (DESIGN.md §5, substitution 1) is a *round-compressed Luby
process*: the per-vertex outcome of ``R`` rounds of Luby's algorithm is a
deterministic function of the radius-``R`` ball around the vertex and the
shared randomness, so a cluster that gathers balls by doubling simulates
all ``R`` rounds in ``ceil(log2 R) + 1`` MPC/CONGESTED-CLIQUE rounds.  With
``Δ' ≤ polylog n`` we take ``R = Θ(log m)``, i.e. ``O(log log n)``
compressed rounds; the leftover graph is then small enough to ship to a
single machine (validated against the word budget) and finished greedily.

We execute the Luby process centrally — the outputs are identical to the
ball-local simulation because the randomness is shared — and charge rounds
by the exponentiation schedule.  :func:`luby_round` is also reused by the
:mod:`repro.baselines.luby` baseline, which charges one round per Luby step
instead.

Hot-path layout: the default (``"luby"``) strategy runs on the CSR kernel
layer — per-vertex draws are consumed in the same order as the set-based
process (that order is load-bearing for reproducibility), but the winner
determination, neighborhood removal, residual edge count, and leftover
extraction are vectorized mask operations.  Outputs are bit-for-bit
identical to the historical set-based implementation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Set, Union

import numpy as np

from repro.graph.csr import CSRGraph, as_csr
from repro.graph.graph import Graph
from repro.mpc.ball import ball_gather_rounds
from repro.mpc.cluster import MPCCluster
from repro.mpc.words import edge_words
from repro.utils.rng import SeedLike, make_rng
from repro.utils.trace import Trace, maybe_record


def luby_round(residual: Graph, active: Set[int], rng) -> Set[int]:
    """One round of Luby's algorithm; returns the vertices joining the MIS.

    Every active vertex draws a uniform value; a vertex joins when its value
    beats every active neighbor's (ties broken by vertex id, which occurs
    with probability zero in theory and negligibly here).  The caller
    removes the closed neighborhoods of the winners.
    """
    draws = {v: (rng.random(), v) for v in active}
    winners: Set[int] = set()
    for v in active:
        value = draws[v]
        beaten = False
        for u in residual.neighbors_view(v):
            if u in active and draws[u] < value:
                beaten = True
                break
        if not beaten:
            winners.add(v)
    return winners


@dataclass(frozen=True)
class SparsifiedMISOutcome:
    """Result of the sparsified finish."""

    mis: Set[int]
    rounds_charged: int
    luby_rounds_simulated: int
    leftover_edges: int


def sparsified_mis(
    graph: Union[Graph, CSRGraph],
    active: Optional[Set[int]] = None,
    seed: SeedLike = None,
    cluster: Optional[MPCCluster] = None,
    rounds_factor: float = 2.0,
    trace: Optional[Trace] = None,
    strategy: str = "luby",
) -> SparsifiedMISOutcome:
    """Compute an MIS of ``graph`` restricted to ``active`` vertices.

    Parameters
    ----------
    graph:
        The residual graph — set-based or CSR (vertices outside ``active``
        are ignored and must be isolated from it for maximality semantics
        to make sense).
    active:
        Vertices still undecided; defaults to all vertices.
    cluster:
        If given, rounds are charged to it and the leftover-graph shipment
        is memory-validated against its word budget.
    rounds_factor:
        Simulate ``ceil(rounds_factor * log2(m + 2))`` LOCAL rounds before
        the leader finish.
    strategy:
        ``"luby"`` (default) runs Luby's process; ``"ghaffari"`` runs the
        desire-level process of [Gha16] (see
        :mod:`repro.core.ghaffari_local`).  Both have ball-local outputs,
        so the exponentiation charging is identical.
    """
    if strategy not in ("luby", "ghaffari"):
        raise ValueError(f"unknown sparsified-MIS strategy {strategy!r}")
    rng = make_rng(seed)
    csr = as_csr(graph)
    n = csr.num_vertices
    if active is None:
        active = set(range(n))
    else:
        active = set(active)
    active_mask = np.zeros(n, dtype=bool)
    if active:
        active_mask[list(active)] = True
    mis: Set[int] = set()

    num_edges = csr.count_edges_within(active_mask)
    local_rounds = max(1, math.ceil(rounds_factor * math.log2(num_edges + 2)))
    rounds_charged = ball_gather_rounds(local_rounds)
    if cluster is not None:
        cluster.charge_rounds(rounds_charged, "sparsified-mis: ball gathering")

    simulated = 0
    if strategy == "ghaffari":
        from repro.core.ghaffari_local import run_ghaffari_process

        residual = graph.copy() if isinstance(graph, Graph) else csr.to_graph()
        found, simulated = run_ghaffari_process(
            residual, active, rng, rounds=local_rounds
        )
        mis |= found
        active_mask[:] = False
        if active:
            active_mask[list(active)] = True
    else:
        src = csr.src
        dst = csr.indices
        draw = np.empty(n, dtype=np.float64)
        for _ in range(local_rounds):
            if not active:
                break
            # Per-vertex draws, consumed in set-iteration order — exactly
            # the order the set-based luby_round used, so seeded runs are
            # reproduced bit-for-bit.
            for v in active:
                draw[v] = rng.random()
            both = active_mask[src] & active_mask[dst]
            s = src[both]
            t = dst[both]
            beats = (draw[t] < draw[s]) | ((draw[t] == draw[s]) & (t < s))
            beaten = np.zeros(n, dtype=bool)
            beaten[s[beats]] = True
            winners_mask = active_mask & ~beaten
            winners = np.flatnonzero(winners_mask)
            simulated += 1
            mis.update(winners.tolist())
            # Winners form an independent set, so their closed
            # neighborhoods can be removed in one batch.
            removed_mask = winners_mask.copy()
            removed_mask[csr.neighbors_bulk(winners)] = True
            active.difference_update(np.flatnonzero(removed_mask).tolist())
            active_mask &= ~removed_mask

    leftover = csr.induced_edges(active_mask)
    leftover_edges = [(int(u), int(v)) for u, v in leftover]
    if cluster is not None:
        cluster.ship_to_machine(
            0,
            "sparsified_leftover",
            leftover_edges,
            edge_words(len(leftover_edges)),
            context="sparsified-mis: leftover to leader",
        )
        rounds_charged += 1
        cluster.charge_rounds(1, "sparsified-mis: broadcast result")
        rounds_charged += 1

    # Leader finish: greedy over the leftover, then isolated actives join.
    # ``chosen`` is only ever set on active vertices, so testing the full
    # neighbor slice equals testing residual-active adjacency.
    indptr = csr.indptr
    indices = csr.indices
    chosen = np.zeros(n, dtype=bool)
    for v in sorted(active):
        if not chosen[indices[indptr[v] : indptr[v + 1]]].any():
            chosen[v] = True
            mis.add(v)

    maybe_record(
        trace,
        "sparsified_mis",
        luby_rounds=simulated,
        rounds_charged=rounds_charged,
        leftover_edges=len(leftover_edges),
    )
    return SparsifiedMISOutcome(
        mis=mis,
        rounds_charged=rounds_charged,
        luby_rounds_simulated=simulated,
        leftover_edges=len(leftover_edges),
    )
