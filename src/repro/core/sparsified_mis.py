"""Sparsified MIS finish for polylog-degree graphs.

Stands in for Theorem 2.1 ([Gha17]) exactly where the paper uses it: once
the rank-prefix phases have driven the maximum degree below polylog, finish
the MIS in ``O(log log Δ')`` rounds.

Our substitute (DESIGN.md §5, substitution 1) is a *round-compressed Luby
process*: the per-vertex outcome of ``R`` rounds of Luby's algorithm is a
deterministic function of the radius-``R`` ball around the vertex and the
shared randomness, so a cluster that gathers balls by doubling simulates
all ``R`` rounds in ``ceil(log2 R) + 1`` MPC/CONGESTED-CLIQUE rounds.  With
``Δ' ≤ polylog n`` we take ``R = Θ(log m)``, i.e. ``O(log log n)``
compressed rounds; the leftover graph is then small enough to ship to a
single machine (validated against the word budget) and finished greedily.

We execute the Luby process centrally — the outputs are identical to the
ball-local simulation because the randomness is shared — and charge rounds
by the exponentiation schedule.  :func:`luby_round` is also reused by the
:mod:`repro.baselines.luby` baseline, which charges one round per Luby step
instead.

Hot-path layout: the default (``"luby"``) strategy runs on the CSR kernel
layer — per-vertex draws are consumed in the same order as the set-based
process (that order is load-bearing for reproducibility), but the winner
determination, neighborhood removal, residual edge count, and leftover
extraction are vectorized mask operations.  Outputs are bit-for-bit
identical to the historical set-based implementation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Set, Union

import numpy as np

from repro.graph.csr import CSRGraph, as_csr
from repro.graph.graph import Graph
from repro.mpc.ball import ball_gather_rounds
from repro.mpc.cluster import MPCCluster
from repro.mpc.words import edge_words
from repro.utils import counter_rng
from repro.utils.rng import SeedLike, make_rng
from repro.utils.trace import Trace, maybe_record

# Counter-mode compaction threshold: once the residual's both-active slot
# count fits this many entries, the Luby loop switches from chunked
# full-graph scans to an in-RAM compacted slot list (~64 MB at the cap —
# the two int64 slot arrays plus their filter copies are resident
# simultaneously, and the cap is part of the solve-side RSS budget the
# 10M rung is gated on).  Luby halves the residual edge count per round,
# so the switch still lands within the first handful of rounds.
_COMPACT_SLOT_BUDGET = 4_000_000

# Counter draws are pure functions of (key, id, round), so they can be
# computed over bounded id blocks: the flatnonzero ids, the uint64
# mixing temporaries, and the float conversion then peak at block size
# instead of O(n) each (several such arrays are alive at once inside
# one vectorized draw).
_DRAW_BLOCK = 2_000_000


def luby_round(residual: Graph, active: Set[int], rng) -> Set[int]:
    """One round of Luby's algorithm; returns the vertices joining the MIS.

    Every active vertex draws a uniform value; a vertex joins when its value
    beats every active neighbor's (ties broken by vertex id, which occurs
    with probability zero in theory and negligibly here).  The caller
    removes the closed neighborhoods of the winners.
    """
    draws = {v: (rng.random(), v) for v in active}
    winners: Set[int] = set()
    for v in active:
        value = draws[v]
        beaten = False
        for u in residual.neighbors_view(v):
            if u in active and draws[u] < value:
                beaten = True
                break
        if not beaten:
            winners.add(v)
    return winners


@dataclass(frozen=True)
class SparsifiedMISOutcome:
    """Result of the sparsified finish.

    ``mis`` is a set of vertex ids in SHA mode and an ascending ``int64``
    array in counter mode (a 10M-vertex Python set would blow the
    out-of-core residency budget by itself).
    """

    mis: Union[Set[int], np.ndarray]
    rounds_charged: int
    luby_rounds_simulated: int
    leftover_edges: int


def sparsified_mis(
    graph: Union[Graph, CSRGraph],
    active: Union[Set[int], Iterable[int], np.ndarray, None] = None,
    seed: SeedLike = None,
    cluster: Optional[MPCCluster] = None,
    rounds_factor: float = 2.0,
    trace: Optional[Trace] = None,
    strategy: str = "luby",
    rng_mode: str = "sha",
    governor=None,
) -> SparsifiedMISOutcome:
    """Compute an MIS of ``graph`` restricted to ``active`` vertices.

    Parameters
    ----------
    graph:
        The residual graph — set-based or CSR (vertices outside ``active``
        are ignored and must be isolated from it for maximality semantics
        to make sense).
    active:
        Vertices still undecided; defaults to all vertices.  A boolean
        mask or id array is accepted too (the out-of-core callers never
        materialize Python sets).
    cluster:
        If given, rounds are charged to it and the leftover-graph shipment
        is memory-validated against its word budget.
    rounds_factor:
        Simulate ``ceil(rounds_factor * log2(m + 2))`` LOCAL rounds before
        the leader finish.
    strategy:
        ``"luby"`` (default) runs Luby's process; ``"ghaffari"`` runs the
        desire-level process of [Gha16] (see
        :mod:`repro.core.ghaffari_local`).  Both have ball-local outputs,
        so the exponentiation charging is identical.
    rng_mode:
        ``"sha"`` reproduces the byte-pinned draws; ``"counter"`` runs the
        residency-bounded vectorized Luby loop with counter-based draws
        (Luby only) — statistically equivalent, not byte-identical, and
        returns ``mis`` as an array instead of a set.
    governor:
        Optional :class:`repro.govern.Governor`; chunks the leftover
        shipment into sequential sub-batches (ordered by larger
        endpoint, the only point of the leader's ascending greedy walk
        that needs each edge) when it would cross the soft watermark.
        Solution-preserving, exactly like the prefix-ship chunking in
        :mod:`repro.core.mis_mpc`.
    """
    if strategy not in ("luby", "ghaffari"):
        raise ValueError(f"unknown sparsified-MIS strategy {strategy!r}")
    if rng_mode not in ("sha", "counter"):
        raise ValueError(f"unknown rng_mode {rng_mode!r}")
    if rng_mode == "counter" and strategy != "luby":
        raise ValueError("rng_mode='counter' supports only strategy='luby'")
    rng = make_rng(seed)
    csr = as_csr(graph)
    n = csr.num_vertices
    if isinstance(active, np.ndarray):
        arr = active
        if arr.dtype == np.bool_:
            if len(arr) != n:
                raise ValueError(f"active mask length {len(arr)} != n {n}")
            active_mask = arr.copy()
        else:
            active_mask = np.zeros(n, dtype=bool)
            active_mask[arr.astype(np.int64, copy=False)] = True
        active = None
    else:
        if active is None:
            active = set(range(n))
        else:
            active = set(active)
        active_mask = np.zeros(n, dtype=bool)
        if active:
            active_mask[list(active)] = True
    if rng_mode == "counter":
        return _sparsified_mis_counter(
            csr, active_mask, rng, cluster, rounds_factor, trace, governor
        )
    if active is None:
        # Mask input on the SHA path: rebuild the set in ascending order
        # (matching how the MPC callers construct it).
        active = set(np.flatnonzero(active_mask).tolist())
    mis: Set[int] = set()

    num_edges = csr.count_edges_within(active_mask)
    local_rounds = max(1, math.ceil(rounds_factor * math.log2(num_edges + 2)))
    rounds_charged = ball_gather_rounds(local_rounds)
    if cluster is not None:
        cluster.charge_rounds(rounds_charged, "sparsified-mis: ball gathering")

    simulated = 0
    if strategy == "ghaffari":
        from repro.core.ghaffari_local import run_ghaffari_process

        residual = graph.copy() if isinstance(graph, Graph) else csr.to_graph()
        found, simulated = run_ghaffari_process(
            residual, active, rng, rounds=local_rounds
        )
        mis |= found
        active_mask[:] = False
        if active:
            active_mask[list(active)] = True
    else:
        src = csr.src
        dst = csr.indices
        draw = np.empty(n, dtype=np.float64)
        for _ in range(local_rounds):
            if not active:
                break
            # Per-vertex draws, consumed in set-iteration order — exactly
            # the order the set-based luby_round used, so seeded runs are
            # reproduced bit-for-bit.
            for v in active:
                draw[v] = rng.random()
            both = active_mask[src] & active_mask[dst]
            s = src[both]
            t = dst[both]
            beats = (draw[t] < draw[s]) | ((draw[t] == draw[s]) & (t < s))
            beaten = np.zeros(n, dtype=bool)
            beaten[s[beats]] = True
            winners_mask = active_mask & ~beaten
            winners = np.flatnonzero(winners_mask)
            simulated += 1
            mis.update(winners.tolist())
            # Winners form an independent set, so their closed
            # neighborhoods can be removed in one batch.
            removed_mask = winners_mask.copy()
            removed_mask[csr.neighbors_bulk(winners)] = True
            active.difference_update(np.flatnonzero(removed_mask).tolist())
            active_mask &= ~removed_mask

    leftover = csr.induced_edges(active_mask)
    leftover_edges = [(int(u), int(v)) for u, v in leftover]
    if cluster is not None:
        rounds_charged += _ship_leftover(
            cluster, leftover_edges, len(leftover_edges), governor
        )
        cluster.charge_rounds(1, "sparsified-mis: broadcast result")
        rounds_charged += 1

    # Leader finish: greedy over the leftover, then isolated actives join.
    # ``chosen`` is only ever set on active vertices, so testing the full
    # neighbor slice equals testing residual-active adjacency.
    indptr = csr.indptr
    indices = csr.indices
    chosen = np.zeros(n, dtype=bool)
    for v in sorted(active):
        if not chosen[indices[indptr[v] : indptr[v + 1]]].any():
            chosen[v] = True
            mis.add(v)

    maybe_record(
        trace,
        "sparsified_mis",
        luby_rounds=simulated,
        rounds_charged=rounds_charged,
        leftover_edges=len(leftover_edges),
    )
    return SparsifiedMISOutcome(
        mis=mis,
        rounds_charged=rounds_charged,
        luby_rounds_simulated=simulated,
        leftover_edges=len(leftover_edges),
    )


def _ship_leftover(
    cluster: MPCCluster,
    edges: Optional[list],
    count: int,
    governor=None,
) -> int:
    """Ship the leftover graph to the leader; returns rounds charged.

    One ship (the historical accounting) when ungoverned or within the
    soft watermark.  Over it, the edges go out in sequential sub-batches
    ordered by larger endpoint — the batch each edge is first needed in
    by the leader's ascending greedy walk — stored under the same key so
    the leader's peak is the largest batch, not the total.
    """
    words = edge_words(count)
    context = "sparsified-mis: leftover to leader"
    sizes = None if governor is None else governor.plan_chunks(words, context)
    if sizes is None:
        cluster.ship_to_machine(
            0, "sparsified_leftover", edges, words, context=context
        )
        return 1
    chunks = len(sizes)
    ordered = (
        None if edges is None else sorted(edges, key=lambda edge: max(edge))
    )
    bounds = np.linspace(0, count, chunks + 1).astype(np.int64)
    for index in range(chunks):
        lo, hi = int(bounds[index]), int(bounds[index + 1])
        cluster.ship_to_machine(
            0,
            "sparsified_leftover",
            None if ordered is None else ordered[lo:hi],
            edge_words(hi - lo),
            context=f"{context} [chunk {index + 1}/{chunks}]",
        )
    return chunks


def _sparsified_mis_counter(
    csr: CSRGraph,
    active_mask: np.ndarray,
    rng,
    cluster: Optional[MPCCluster],
    rounds_factor: float,
    trace: Optional[Trace],
    governor=None,
) -> SparsifiedMISOutcome:
    """The residency-bounded Luby loop (``rng_mode="counter"``).

    Identical process shape to the SHA path — same round budget, same
    winner rule, same leftover shipment and leader finish — but:

    * draws come from the counter generator, vectorized over the active
      ids, so the per-vertex Python loop disappears;
    * adjacency is consumed through :meth:`CSRGraph.adjacency_chunks`,
      so on an :class:`~repro.ooc.MMapCSRGraph` only one chunk of edges
      is resident at a time;
    * once the residual fits :data:`_COMPACT_SLOT_BUDGET`, the
      both-active slots are compacted into RAM and later rounds never
      touch the backing file again;
    * the result set and leftover are arrays/counts, never Python sets.

    The outcome is a deterministic function of ``(seed, graph)`` and is
    identical for in-RAM and mmap representations of the same graph
    (chunking only reorders exact integer/boolean work).
    """
    n = csr.num_vertices
    key = counter_rng.derive_key(rng.getrandbits(64), "sparsified-mis-luby")
    num_edges = csr.count_edges_within(active_mask)
    local_rounds = max(1, math.ceil(rounds_factor * math.log2(num_edges + 2)))
    rounds_charged = ball_gather_rounds(local_rounds)
    if cluster is not None:
        cluster.charge_rounds(rounds_charged, "sparsified-mis: ball gathering")

    mis_mask = np.zeros(n, dtype=bool)
    draw = np.empty(n, dtype=np.float64)
    comp_src: Optional[np.ndarray] = None
    comp_dst: Optional[np.ndarray] = None
    simulated = 0
    for round_index in range(local_rounds):
        if not active_mask.any():
            break
        for block_lo in range(0, n, _DRAW_BLOCK):
            ids = np.flatnonzero(active_mask[block_lo : block_lo + _DRAW_BLOCK])
            if ids.size:
                ids += block_lo
                draw[ids] = counter_rng.uniform01(key, ids, round_index)
        beaten = np.zeros(n, dtype=bool)
        if comp_src is None:
            collecting = True
            collected = 0
            src_parts, dst_parts = [], []
            for src, dst in csr.adjacency_chunks():
                both = active_mask[src] & active_mask[dst]
                s = src[both]
                t = np.asarray(dst[both])
                beats = (draw[t] < draw[s]) | ((draw[t] == draw[s]) & (t < s))
                beaten[s[beats]] = True
                if collecting:
                    collected += len(s)
                    if collected > _COMPACT_SLOT_BUDGET:
                        collecting = False
                        src_parts, dst_parts = [], []
                    else:
                        src_parts.append(s)
                        dst_parts.append(t)
            if collecting:
                comp_src = (
                    np.concatenate(src_parts)
                    if src_parts
                    else np.empty(0, dtype=np.int64)
                )
                comp_dst = (
                    np.concatenate(dst_parts)
                    if dst_parts
                    else np.empty(0, dtype=np.int64)
                )
                maybe_record(
                    trace, "sparsified_compacted", slots=len(comp_src)
                )
        else:
            keep = active_mask[comp_src] & active_mask[comp_dst]
            comp_src = comp_src[keep]
            comp_dst = comp_dst[keep]
            beats = (draw[comp_dst] < draw[comp_src]) | (
                (draw[comp_dst] == draw[comp_src]) & (comp_dst < comp_src)
            )
            beaten[comp_src[beats]] = True
        winners_mask = active_mask & ~beaten
        winners = np.flatnonzero(winners_mask)
        simulated += 1
        mis_mask |= winners_mask
        if comp_src is None:
            active_mask = csr.remove_closed_neighborhoods(
                winners, mask=active_mask
            )
            active_mask &= ~winners_mask  # already False; keeps intent clear
        else:
            removed = winners_mask.copy()
            removed[comp_dst[winners_mask[comp_src]]] = True
            active_mask &= ~removed

    if comp_src is not None:
        both = active_mask[comp_src] & active_mask[comp_dst]
        leftover_count = int(np.count_nonzero(both)) // 2
    else:
        leftover_count = csr.count_edges_within(active_mask)
    if cluster is not None:
        rounds_charged += _ship_leftover(
            cluster, None, leftover_count, governor
        )
        cluster.charge_rounds(1, "sparsified-mis: broadcast result")
        rounds_charged += 1

    # Leader finish, ascending ids — same rule as the SHA path's
    # ``sorted(active)`` greedy.
    indptr = csr.indptr
    indices = csr.indices
    chosen = np.zeros(n, dtype=bool)
    remaining = np.flatnonzero(active_mask)
    for v in remaining.tolist():
        if not chosen[indices[indptr[v] : indptr[v + 1]]].any():
            chosen[v] = True
            mis_mask[v] = True

    maybe_record(
        trace,
        "sparsified_mis",
        luby_rounds=simulated,
        rounds_charged=rounds_charged,
        leftover_edges=leftover_count,
    )
    return SparsifiedMISOutcome(
        mis=np.flatnonzero(mis_mask),
        rounds_charged=rounds_charged,
        luby_rounds_simulated=simulated,
        leftover_edges=leftover_count,
    )
