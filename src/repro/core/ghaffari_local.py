"""Ghaffari's LOCAL MIS process [Gha16] — the desire-level dynamics.

The CONGESTED-CLIQUE algorithm of [Gha17] that Theorem 2.1 cites is a
round-compressed simulation of this LOCAL process.  Each vertex ``v``
maintains a *desire level* ``p_v`` (initially 1/2).  Per round:

1. ``v`` marks itself with probability ``p_v``;
2. a marked vertex with no marked neighbor joins the MIS; its closed
   neighborhood leaves the graph;
3. ``v`` recomputes its *effective degree* ``d_v = Σ_{u ∈ N(v)} p_u`` and
   updates: ``p_v ← p_v / 2`` if ``d_v ≥ 2``, else ``p_v ← min(2·p_v, 1/2)``.

[Gha16] proves each vertex is decided within ``O(log Δ + log 1/δ)``
rounds with probability ``1 - δ``.  The per-vertex outcome after ``R``
rounds is a function of the radius-``R`` ball and the shared randomness,
so the same graph-exponentiation charging as the compressed Luby process
applies (``ceil(log2 R) + 1`` compressed rounds).

:func:`repro.core.sparsified_mis.sparsified_mis` accepts
``strategy="ghaffari"`` to use this process for the polylog-degree finish
instead of Luby's.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.graph.graph import Graph

INITIAL_DESIRE = 0.5
DESIRE_CAP = 0.5
EFFECTIVE_DEGREE_THRESHOLD = 2.0


def ghaffari_round(
    residual: Graph,
    active: Set[int],
    desire: Dict[int, float],
    rng,
) -> Set[int]:
    """One round of the desire-level process.

    Marks vertices, returns the set joining the MIS this round, and
    updates ``desire`` in place.  The caller removes closed neighborhoods
    of the winners and shrinks ``active``.
    """
    marked = {v for v in active if rng.random() < desire[v]}
    winners: Set[int] = set()
    for v in marked:
        if not any(u in marked for u in residual.neighbors_view(v) if u in active):
            winners.add(v)

    # Effective degrees are computed against the pre-removal graph, as in
    # the LOCAL process (updates and removals are simultaneous per round).
    effective: Dict[int, float] = {}
    for v in active:
        effective[v] = sum(
            desire[u] for u in residual.neighbors_view(v) if u in active
        )
    for v in active:
        if effective[v] >= EFFECTIVE_DEGREE_THRESHOLD:
            desire[v] = desire[v] / 2.0
        else:
            desire[v] = min(2.0 * desire[v], DESIRE_CAP)
    return winners


def run_ghaffari_process(
    residual: Graph,
    active: Set[int],
    rng,
    rounds: int,
) -> Tuple[Set[int], int]:
    """Run up to ``rounds`` rounds; returns (MIS vertices found, rounds run).

    Mutates ``residual`` (winners' closed neighborhoods removed) and
    ``active``.
    """
    desire: Dict[int, float] = {v: INITIAL_DESIRE for v in active}
    mis: Set[int] = set()
    executed = 0
    for _ in range(rounds):
        if not active:
            break
        winners = ghaffari_round(residual, active, desire, rng)
        executed += 1
        for v in winners:
            if v not in active:
                continue
            mis.add(v)
            removed = residual.remove_closed_neighborhood(v)
            active -= removed
    return mis, executed
