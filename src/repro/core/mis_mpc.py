"""MIS in ``O(log log Δ)`` MPC rounds — Theorem 1.1.

Simulates the randomized greedy MIS process (Section 3.1) by rank-prefix
batching (Section 3.2):

1. Pick a uniform random permutation ``π`` of the vertices.
2. Iteration ``i`` ships the residual subgraph induced by ranks up to
   ``r_i = n / Δ^(α^i)`` (``α = 3/4``) to a single machine, which walks the
   ranks greedily; the decisions are broadcast and every machine removes
   decided vertices.  Lemma 3.1 guarantees each shipped subgraph has
   ``O(n)`` edges w.h.p. — the substrate *enforces* this against the word
   budget rather than assuming it.
3. Once the next rank would exceed ``n / polylog(n)`` the maximum degree is
   polylog w.h.p., and the sparsified finish (:mod:`repro.core.sparsified_mis`)
   completes the MIS in ``O(log log Δ)`` further rounds.

The output is *identical* to the sequential randomized greedy MIS under the
same permutation for the prefix portion; the finish switches processes
(as the paper does) so overall agreement is with the hybrid, not pure
greedy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from repro.core.config import MISConfig
from repro.core.greedy_mis import greedy_mis_on_prefix
from repro.core.sparsified_mis import sparsified_mis
from repro.graph.graph import Graph
from repro.mpc.primitives import broadcast_vertex_set
from repro.mpc.spec import ClusterSpec
from repro.mpc.words import edge_words
from repro.utils.rng import SeedLike, make_rng
from repro.utils.trace import Trace, maybe_record


@dataclass
class MISResult:
    """Outcome of the MPC MIS algorithm.

    Attributes
    ----------
    mis:
        The computed maximal independent set.
    rounds:
        Total MPC rounds consumed (measured by the cluster).
    prefix_phases:
        Number of rank-prefix iterations executed.
    max_shipped_edges:
        Largest prefix subgraph (in edges) shipped to one machine — the
        quantity Lemma 3.1 bounds by ``O(n)``.
    shipped_edges_per_phase:
        Edge count shipped in each prefix phase, for the E2 experiment.
    """

    mis: Set[int]
    rounds: int
    prefix_phases: int
    max_shipped_edges: int
    shipped_edges_per_phase: List[int] = field(default_factory=list)
    luby_rounds_simulated: int = 0
    peak_words: int = 0


def rank_schedule(n: int, max_degree: int, config: MISConfig) -> List[int]:
    """The prefix ranks ``r_i = n / Δ^(α^i)`` until the polylog floor.

    Returns the strictly increasing list of rank cutoffs; empty when the
    graph is already in the sparse regime (``Δ`` at most the threshold).
    """
    if n == 0 or max_degree <= config.sparse_degree_threshold(n):
        return []
    rank_floor = max(1, n // config.sparse_degree_threshold(n))
    cutoffs: List[int] = []
    exponent = config.alpha
    while True:
        rank = int(n / (max_degree ** exponent))
        rank = max(rank, 1)
        if rank >= rank_floor:
            cutoffs.append(rank_floor)
            break
        if not cutoffs or rank > cutoffs[-1]:
            cutoffs.append(rank)
        exponent *= config.alpha
        if len(cutoffs) > 4 * math.ceil(math.log2(max(4, n))):
            # Defensive: the schedule provably terminates in
            # O(log log Δ) steps; this cap converts a logic bug into a
            # loud failure instead of an infinite loop.
            raise RuntimeError("rank schedule failed to reach the floor")
    return cutoffs


def mis_mpc(
    graph: Graph,
    seed: SeedLike = None,
    config: Optional[MISConfig] = None,
    trace: Optional[Trace] = None,
) -> MISResult:
    """Compute an MIS of ``graph`` on a simulated MPC cluster.

    Memory per machine is ``config.memory_factor * n`` words; the number of
    machines is chosen as ``ceil(total_words / S) + 1`` so the input fits,
    matching the ``S * m = Θ(N)`` regime of Section 1.1.1.
    """
    config = config or MISConfig()
    rng = make_rng(seed)
    n = graph.num_vertices
    if n == 0:
        return MISResult(mis=set(), rounds=0, prefix_phases=0, max_shipped_edges=0)

    spec = ClusterSpec.from_graph(graph, config.memory_factor, machines="fit")
    cluster = spec.build_cluster(trace=trace)

    # Shared random permutation: rank[v] in [0, n), all distinct.
    permutation = list(range(n))
    rng.shuffle(permutation)
    ranks = [0] * n
    for position, v in enumerate(permutation):
        ranks[v] = position
    cluster.broadcast(n, context="mis: broadcast permutation")

    residual = graph.copy()
    mis: Set[int] = set()
    decided: Set[int] = set()

    cutoffs = rank_schedule(n, graph.max_degree(), config)
    shipped_sizes: List[int] = []
    previous_cutoff = 0
    for phase_index, cutoff in enumerate(cutoffs):
        prefix = [
            v
            for v in range(n)
            if previous_cutoff <= ranks[v] < cutoff and v not in decided
        ]
        prefix_edges = residual.induced_edges(prefix)
        cluster.ship_to_machine(
            0,
            "prefix_edges",
            prefix_edges,
            edge_words(len(prefix_edges)),
            context=f"mis: ship prefix phase {phase_index}",
        )
        shipped_sizes.append(len(prefix_edges))

        new_mis = greedy_mis_on_prefix(residual, ranks, prefix)
        broadcast_vertex_set(
            cluster, new_mis, context=f"mis: broadcast phase {phase_index} result"
        )
        for v in sorted(new_mis, key=lambda vertex: ranks[vertex]):
            if v in decided:
                continue
            mis.add(v)
            removed = residual.remove_closed_neighborhood(v)
            decided |= removed
        # Vertices of the prefix that were dominated are also decided.
        decided.update(prefix)
        previous_cutoff = cutoff
        maybe_record(
            trace,
            "mis_prefix_phase",
            phase=phase_index,
            cutoff=cutoff,
            shipped_edges=len(prefix_edges),
            residual_max_degree=residual.max_degree(),
            mis_size=len(mis),
        )

    active = {v for v in range(n) if v not in decided}
    finish = sparsified_mis(
        residual,
        active=active,
        seed=rng.getrandbits(64),
        cluster=cluster,
        rounds_factor=config.luby_rounds_factor,
        trace=trace,
        strategy=config.sparse_strategy,
    )
    mis |= finish.mis

    return MISResult(
        mis=mis,
        rounds=cluster.rounds,
        prefix_phases=len(cutoffs),
        max_shipped_edges=max(shipped_sizes, default=0),
        shipped_edges_per_phase=shipped_sizes,
        luby_rounds_simulated=finish.luby_rounds_simulated,
        peak_words=cluster.peak_words(),
    )
