"""MIS in ``O(log log Δ)`` MPC rounds — Theorem 1.1.

Simulates the randomized greedy MIS process (Section 3.1) by rank-prefix
batching (Section 3.2):

1. Pick a uniform random permutation ``π`` of the vertices.
2. Iteration ``i`` ships the residual subgraph induced by ranks up to
   ``r_i = n / Δ^(α^i)`` (``α = 3/4``) to a single machine, which walks the
   ranks greedily; the decisions are broadcast and every machine removes
   decided vertices.  Lemma 3.1 guarantees each shipped subgraph has
   ``O(n)`` edges w.h.p. — the substrate *enforces* this against the word
   budget rather than assuming it.
3. Once the next rank would exceed ``n / polylog(n)`` the maximum degree is
   polylog w.h.p., and the sparsified finish (:mod:`repro.core.sparsified_mis`)
   completes the MIS in ``O(log log Δ)`` further rounds.

The output is *identical* to the sequential randomized greedy MIS under the
same permutation for the prefix portion; the finish switches processes
(as the paper does) so overall agreement is with the hybrid, not pure
greedy.

Hot-path layout: the residual graph is never materialized as mutable
adjacency sets.  The input is converted once to a
:class:`~repro.graph.csr.CSRGraph` and the residual is an ``alive``
boolean mask over it — valid because greedy deletion only ever *isolates*
vertices, so the residual edge set is exactly "original edges with both
endpoints alive".  Prefix selection, induced-edge extraction,
closed-neighborhood removal, and the per-phase residual-degree scan are
all vectorized kernels; outputs are bit-for-bit identical to the
historical set-based implementation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Set, Union

import numpy as np

from repro.core.config import MISConfig
from repro.core.greedy_mis import greedy_mis_on_prefix_csr
from repro.core.sparsified_mis import sparsified_mis
from repro.govern.governor import governed_broadcast
from repro.graph.csr import CSRGraph, as_csr
from repro.graph.graph import Graph
from repro.mpc.primitives import broadcast_vertex_set
from repro.mpc.spec import ClusterSpec
from repro.mpc.words import edge_words
from repro.utils import counter_rng
from repro.utils.rng import SeedLike, make_rng
from repro.utils.trace import Trace, maybe_record


@dataclass
class MISResult:
    """Outcome of the MPC MIS algorithm.

    Attributes
    ----------
    mis:
        The computed maximal independent set — a set of vertex ids under
        ``config.rng == "sha"``, an ascending ``int64`` array under
        ``"counter"`` (out-of-core runs never materialize Python sets).
    rounds:
        Total MPC rounds consumed (measured by the cluster).
    prefix_phases:
        Number of rank-prefix iterations executed.
    max_shipped_edges:
        Largest prefix subgraph (in edges) shipped to one machine — the
        quantity Lemma 3.1 bounds by ``O(n)``.
    shipped_edges_per_phase:
        Edge count shipped in each prefix phase, for the E2 experiment.
    """

    mis: Union[Set[int], np.ndarray]
    rounds: int
    prefix_phases: int
    max_shipped_edges: int
    shipped_edges_per_phase: List[int] = field(default_factory=list)
    luby_rounds_simulated: int = 0
    peak_words: int = 0
    total_comm_words: int = 0


def _ship_prefix(
    cluster,
    prefix_edges: np.ndarray,
    ranks: Optional[np.ndarray],
    phase_index: int,
    *,
    counter_mode: bool,
    governor=None,
) -> None:
    """Ship one phase's prefix-induced subgraph to the leader.

    Ungoverned (or within the soft watermark): one
    :meth:`~repro.mpc.cluster.MPCCluster.ship_to_machine`, exactly as
    before.  Over the watermark, the shipment is split into sequential
    rank-ordered sub-batches (each edge travels with its later-ranked
    endpoint's batch — the only point of the walk that needs it), stored
    under the same key so the leader's peak residency is the largest
    single batch, not the total.  The greedy prefix walk decomposes
    exactly over this order, so the chunked shipment is
    solution-preserving.
    """
    count = len(prefix_edges)
    words = edge_words(count)
    context = f"mis: ship prefix phase {phase_index}"
    sizes = None if governor is None else governor.plan_chunks(words, context)
    if sizes is None:
        cluster.ship_to_machine(
            0,
            "prefix_edges",
            # Counter mode ships by count only — materializing an O(n)
            # tuple list per phase defeats the residency budget; the
            # word accounting is unchanged.
            None
            if counter_mode
            else [(int(u), int(v)) for u, v in prefix_edges],
            words,
            context=context,
        )
        return
    chunks = len(sizes)
    if counter_mode or ranks is None:
        ordered = prefix_edges
    else:
        pe_u = prefix_edges[:, 0]
        pe_v = prefix_edges[:, 1]
        later = np.where(ranks[pe_u] >= ranks[pe_v], pe_u, pe_v)
        ordered = prefix_edges[np.argsort(ranks[later], kind="stable")]
    bounds = np.linspace(0, count, chunks + 1).astype(np.int64)
    for index in range(chunks):
        lo, hi = int(bounds[index]), int(bounds[index + 1])
        cluster.ship_to_machine(
            0,
            "prefix_edges",
            None
            if counter_mode
            else [(int(u), int(v)) for u, v in ordered[lo:hi]],
            edge_words(hi - lo),
            context=f"{context} [chunk {index + 1}/{chunks}]",
        )


def rank_schedule(n: int, max_degree: int, config: MISConfig) -> List[int]:
    """The prefix ranks ``r_i = n / Δ^(α^i)`` until the polylog floor.

    Returns the strictly increasing list of rank cutoffs; empty when the
    graph is already in the sparse regime (``Δ`` at most the threshold).
    """
    if n == 0 or max_degree <= config.sparse_degree_threshold(n):
        return []
    rank_floor = max(1, n // config.sparse_degree_threshold(n))
    cutoffs: List[int] = []
    exponent = config.alpha
    while True:
        rank = int(n / (max_degree ** exponent))
        rank = max(rank, 1)
        if rank >= rank_floor:
            cutoffs.append(rank_floor)
            break
        if not cutoffs or rank > cutoffs[-1]:
            cutoffs.append(rank)
        exponent *= config.alpha
        if len(cutoffs) > 4 * math.ceil(math.log2(max(4, n))):
            # Defensive: the schedule provably terminates in
            # O(log log Δ) steps; this cap converts a logic bug into a
            # loud failure instead of an infinite loop.
            raise RuntimeError("rank schedule failed to reach the floor")
    return cutoffs


def mis_mpc(
    graph: Union[Graph, CSRGraph],
    seed: SeedLike = None,
    config: Optional[MISConfig] = None,
    trace: Optional[Trace] = None,
    executor=None,
    governor=None,
) -> MISResult:
    """Compute an MIS of ``graph`` on a simulated MPC cluster.

    Memory per machine is ``config.memory_factor * n`` words; the number of
    machines is chosen as ``ceil(total_words / S) + 1`` so the input fits,
    matching the ``S * m = Θ(N)`` regime of Section 1.1.1.

    With a distributed ``executor``, each phase's single-leader greedy
    prefix walk runs on a worker against the shared CSR + rank arrays
    (a pure function of its inputs, so output-neutral); the permutation
    draw, residual masks, and cluster accounting stay driver-side.

    A ``governor`` (:class:`repro.govern.Governor`) chunks over-budget
    bulk operations — the permutation broadcast, the per-phase prefix
    shipment, the result broadcasts, and the sparsified finish's
    leftover shipment — into sequential sub-batches within the soft
    watermark.  Chunking here is *solution-preserving*: the leader's
    rank-ordered greedy walk decomposes exactly over rank-contiguous
    sub-batches (each vertex's outcome depends only on earlier-ranked
    decisions, which the carried ``chosen`` mask holds), so governed MIS
    runs return the identical set and only the round/peak accounting
    moves.
    """
    config = config or MISConfig()
    rng = make_rng(seed)
    n = graph.num_vertices
    if n == 0:
        return MISResult(mis=set(), rounds=0, prefix_phases=0, max_shipped_edges=0)

    spec = ClusterSpec.from_graph(graph, config.memory_factor, machines="fit")
    cluster = spec.build_cluster(trace=trace)
    csr = as_csr(graph)
    counter_mode = config.rng == "counter"
    if governor is not None:
        governor.bind(cluster)
        from repro.graph.statistics import load_summary

        governor.estimator.prime(load_summary(csr))

    cutoffs = rank_schedule(n, csr.max_degree(), config)
    # Shared random permutation: rank[v] in [0, n), all distinct.  Counter
    # mode draws it with the Philox generator (no O(n) Python shuffle) and
    # skips it entirely in the pure-sparse regime, where no prefix phase
    # ever reads a rank.
    ranks: Optional[np.ndarray] = None
    if counter_mode:
        if cutoffs:
            perm_key = counter_rng.derive_key(
                rng.getrandbits(64), "mis-permutation"
            )
            permutation = counter_rng.permutation(perm_key, n)
            ranks = np.empty(n, dtype=np.int64)
            ranks[permutation] = np.arange(n, dtype=np.int64)
    else:
        permutation = list(range(n))
        rng.shuffle(permutation)
        ranks = np.empty(n, dtype=np.int64)
        ranks[permutation] = np.arange(n, dtype=np.int64)
    governed_broadcast(cluster, n, "mis: broadcast permutation", governor)

    # ``alive`` tracks the residual graph (False = isolated by a removed
    # closed neighborhood); ``decided`` additionally covers dominated
    # prefix vertices whose edges survive.
    alive = np.ones(n, dtype=bool)
    decided = np.zeros(n, dtype=bool)
    mis: Set[int] = set()

    shipped_sizes: List[int] = []
    previous_cutoff = 0
    distributed = executor is not None and executor.distributed
    session_key = None
    try:
        if distributed and cutoffs:
            session_key = executor.open_session(
                "mis",
                {
                    "indptr": csr.indptr,
                    "indices": csr.indices,
                    "ranks": ranks,
                },
            )
        for phase_index, cutoff in enumerate(cutoffs):
            window = (ranks >= previous_cutoff) & (ranks < cutoff) & ~decided
            prefix = np.flatnonzero(window)
            # Prefix vertices are undecided, hence never isolated, so their
            # residual-induced edges coincide with original-graph edges.
            prefix_edges = csr.induced_edges(window)
            _ship_prefix(
                cluster,
                prefix_edges,
                ranks,
                phase_index,
                counter_mode=counter_mode,
                governor=governor,
            )
            shipped_sizes.append(len(prefix_edges))

            if distributed:
                # The single-leader phase: one worker walks the prefix
                # against the shared CSR/rank arrays.
                [new_mis] = executor.map_tasks(
                    "mis.prefix_greedy",
                    [prefix],
                    shared={"session": session_key},
                    phase="mis-prefix",
                )
            else:
                new_mis = greedy_mis_on_prefix_csr(csr, ranks, prefix)
            broadcast_vertex_set(
                cluster,
                new_mis.tolist(),
                context=f"mis: broadcast phase {phase_index} result",
                governor=governor,
            )
            # The chosen vertices are independent, so their closed
            # neighborhoods can be removed (and marked decided) in one batch,
            # reusing a single ragged neighbor gather for both masks.
            mis.update(new_mis.tolist())
            chosen_neighbors = csr.neighbors_bulk(new_mis)
            alive = alive.copy()
            alive[new_mis] = False
            alive[chosen_neighbors] = False
            decided[new_mis] = True
            decided[chosen_neighbors] = True
            # Vertices of the prefix that were dominated are also decided.
            decided |= window
            previous_cutoff = cutoff
            residual_degrees = csr.degrees(alive)
            maybe_record(
                trace,
                "mis_prefix_phase",
                phase=phase_index,
                cutoff=cutoff,
                shipped_edges=len(prefix_edges),
                residual_max_degree=int(residual_degrees[alive].max())
                if alive.any()
                else 0,
                mis_size=len(mis),
            )
    finally:
        if session_key is not None:
            executor.close_session(session_key)

    finish_seed = rng.getrandbits(64)
    if counter_mode:
        # With no prefix phases, `alive` is still all-True and
        # filter_edges would only copy the (possibly out-of-core) arrays;
        # pass the graph itself so the finish stays residency-bounded.
        residual = csr.filter_edges(alive) if cutoffs else csr
        finish = sparsified_mis(
            residual,
            active=~decided,
            seed=finish_seed,
            cluster=cluster,
            rounds_factor=config.luby_rounds_factor,
            trace=trace,
            strategy=config.sparse_strategy,
            rng_mode="counter",
            governor=governor,
        )
        finish_ids = np.asarray(finish.mis, dtype=np.int64)
        if mis:
            prefix_ids = np.fromiter(mis, dtype=np.int64, count=len(mis))
            mis_out: Union[Set[int], np.ndarray] = np.union1d(
                prefix_ids, finish_ids
            )
        else:
            mis_out = finish_ids
    else:
        active = set(np.flatnonzero(~decided).tolist())
        finish = sparsified_mis(
            csr.filter_edges(alive),
            active=active,
            seed=finish_seed,
            cluster=cluster,
            rounds_factor=config.luby_rounds_factor,
            trace=trace,
            strategy=config.sparse_strategy,
            governor=governor,
        )
        mis |= finish.mis
        mis_out = mis

    return MISResult(
        mis=mis_out,
        rounds=cluster.rounds,
        prefix_phases=len(cutoffs),
        max_shipped_edges=max(shipped_sizes, default=0),
        shipped_edges_per_phase=shipped_sizes,
        luby_rounds_simulated=finish.luby_rounds_simulated,
        peak_words=cluster.peak_words(),
        total_comm_words=cluster.total_comm_words,
    )
