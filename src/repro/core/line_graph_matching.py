"""Maximal matching via MIS on the line graph.

The paper's introduction recalls the classic reduction (Luby [Lub86]): an
MIS of the line graph ``L(G)`` is exactly a maximal matching of ``G``, and
its endpoints form a 2-approximate vertex cover.  This module implements
the reduction on top of any of the library's MIS algorithms — it serves as
an independent cross-check of both the MIS implementations and the
matching validators (tests run it against the direct matching algorithms),
and as the historical baseline the paper's Theorem 1.2 improves upon.

Caveat the paper also notes: ``L(G)`` has ``Θ(Σ deg²)`` edges, so the
reduction blows up memory on high-degree graphs — precisely why the paper
develops the direct algorithm.  The ``max_line_graph_edges`` guard makes
that failure mode explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Set

from repro.core.mis_mpc import mis_mpc
from repro.graph.graph import Edge, Graph
from repro.utils.rng import SeedLike
from repro.utils.trace import Trace

DEFAULT_LINE_GRAPH_EDGE_CAP = 2_000_000


@dataclass
class LineGraphMatchingResult:
    """Maximal matching obtained through the line-graph reduction."""

    matching: Set[Edge]
    rounds: int
    line_graph_vertices: int
    line_graph_edges: int


def maximal_matching_via_line_graph(
    graph: Graph,
    seed: SeedLike = None,
    trace: Optional[Trace] = None,
    max_line_graph_edges: int = DEFAULT_LINE_GRAPH_EDGE_CAP,
) -> LineGraphMatchingResult:
    """Compute a maximal matching of ``graph`` as an MIS of ``L(G)``.

    Raises ``ValueError`` when the line graph would exceed
    ``max_line_graph_edges`` — the memory blow-up that motivates the
    paper's direct matching algorithm.
    """
    degree_square_sum = sum(d * (d - 1) // 2 for d in graph.degrees())
    if degree_square_sum > max_line_graph_edges:
        raise ValueError(
            f"line graph would have ~{degree_square_sum} edges "
            f"(cap {max_line_graph_edges}); use the direct matching algorithm"
        )
    line_graph, edge_order = graph.line_graph()
    mis_result = mis_mpc(line_graph, seed=seed, trace=trace)
    matching = {edge_order[index] for index in mis_result.mis}
    return LineGraphMatchingResult(
        matching=matching,
        rounds=mis_result.rounds,
        line_graph_vertices=line_graph.num_vertices,
        line_graph_edges=line_graph.num_edges,
    )
