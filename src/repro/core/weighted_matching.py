"""(2+ε)-approximate maximum *weighted* matching — Corollary 1.4.

Follows the reduction of Lotker, Patt-Shamir, and Rosén [LPSR09] the paper
cites: bucket edges into ``O(log_{1+ε} (w_max/w_min))`` geometric weight
classes, then build the matching greedily from the heaviest class down,
computing a maximal matching among still-free vertices within each class.
Edges lighter than ``ε · w_max / n`` cannot contribute more than an ``ε``
fraction of any matching's weight and are dropped, capping the class count.

Each class is processed with the library's own O(log log n)-round maximal
matching machinery, so total rounds follow the corollary's
``O(log log n · 1/ε)`` shape.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.baselines.filtering import filtering_maximal_matching
from repro.graph.graph import Edge, Graph, canonical_edge
from repro.graph.weighted import WeightedGraph
from repro.mpc.spec import ClusterSpec
from repro.mpc.words import edge_words
from repro.utils.rng import SeedLike, make_rng
from repro.utils.trace import Trace, maybe_record
from repro.utils.validation import require_epsilon


@dataclass
class WeightedMatchingResult:
    """Outcome of the weight-class reduction."""

    matching: Set[Edge]
    weight: float
    rounds: int
    classes: int
    per_class_sizes: List[int] = field(default_factory=list)


def weight_classes(
    graph: WeightedGraph, epsilon: float
) -> List[List[Edge]]:
    """Partition edges into geometric classes, heaviest class first.

    Class ``j`` holds edges with weight in
    ``(w_max/(1+ε)^{j+1}, w_max/(1+ε)^j]``; edges below ``ε·w_max/n`` are
    dropped (they cannot matter at the ``(2+ε)`` scale).
    """
    w_max = graph.max_weight()
    if w_max == 0.0:
        return []
    floor = epsilon * w_max / max(1, graph.num_vertices)
    ratio = 1.0 + epsilon
    classes: Dict[int, List[Edge]] = {}
    for u, v, w in graph.edges():
        if w < floor:
            continue
        j = int(math.floor(math.log(w_max / w, ratio) + 1e-12))
        classes.setdefault(j, []).append(canonical_edge(u, v))
    return [classes[j] for j in sorted(classes)]


def _filter_class(
    n: int,
    available: List[Edge],
    words_per_machine: int,
    class_seed: int,
    governor=None,
    context: str = "weighted: class filtering",
) -> Tuple[Set[Edge], int]:
    """Run one weight class through filtering, chunked if over budget.

    The ungoverned (or in-budget) path is byte-identical to calling
    :func:`filtering_maximal_matching` directly.  Over-budget classes are
    split into sequential sub-batches; each batch drops edges already
    matched by earlier batches, so the union stays maximal on the class.
    """
    sizes = None
    if governor is not None:
        sizes = governor.plan_chunks(edge_words(len(available)), context)
    if sizes is None:
        outcome = filtering_maximal_matching(
            Graph(n, available),
            words_per_machine=words_per_machine,
            seed=class_seed,
        )
        return outcome.matching, outcome.rounds
    batch_rng = make_rng(class_seed)
    count = len(sizes)
    class_matching: Set[Edge] = set()
    class_matched: Set[int] = set()
    rounds = 0
    for index in range(count):
        lo = index * len(available) // count
        hi = (index + 1) * len(available) // count
        batch = [
            (u, v)
            for u, v in available[lo:hi]
            if u not in class_matched and v not in class_matched
        ]
        if not batch:
            continue
        outcome = filtering_maximal_matching(
            Graph(n, batch),
            words_per_machine=words_per_machine,
            seed=batch_rng.getrandbits(64),
        )
        rounds += outcome.rounds
        for u, v in outcome.matching:
            class_matching.add((u, v))
            class_matched.add(u)
            class_matched.add(v)
    return class_matching, rounds


def mpc_weighted_matching(
    graph: WeightedGraph,
    epsilon: float = 0.1,
    seed: SeedLike = None,
    trace: Optional[Trace] = None,
    memory_factor: int = 8,
    executor=None,
    governor=None,
) -> WeightedMatchingResult:
    """Compute a constant-approximate weighted matching of ``graph``.

    Greedy-by-class: for each weight class (heavy to light), compute a
    maximal matching on the class edges among still-free vertices and add
    it.  The classic analysis gives a ``2(1+ε)``-style factor against the
    optimum restricted to kept edges, hence ``(2+O(ε))`` overall.

    Classes are sequentially dependent (each sees the previous classes'
    matched vertices), so a distributed ``executor`` dispatches each
    class's filtering run to a worker; the per-class seed is drawn
    driver-side in the same RNG position as the sequential path, keeping
    the outputs identical.

    With a ``governor``, a weight class whose participating edge set
    exceeds the soft per-machine budget is chunked into sequential
    sub-batches, each filtered among still-free vertices.  Maximality on
    the class survives the split (the matched set only grows, so an edge
    left unmatched by every batch had both endpoints free during its own
    batch — contradicting that batch's maximality); byte-identity holds
    whenever no class is chunked.
    """
    require_epsilon(epsilon)
    rng = make_rng(seed)
    classes = weight_classes(graph, epsilon)
    n = graph.num_vertices
    matched: Set[int] = set()
    matching: Set[Edge] = set()
    rounds = 0
    per_class: List[int] = []
    distributed = executor is not None and executor.distributed
    spec = ClusterSpec.from_graph(graph, memory_factor)
    words_per_machine = spec.words_per_machine
    if governor is not None:
        governor.bind_words(words_per_machine, spec.num_machines)

    for class_index, edges in enumerate(classes):
        available = [
            (u, v) for u, v in edges if u not in matched and v not in matched
        ]
        if not available:
            per_class.append(0)
            continue
        class_seed = rng.getrandbits(64)
        if distributed:
            [(class_matching, class_rounds)] = executor.map_tasks(
                "weighted.filtering",
                [(n, available, words_per_machine, class_seed)],
                phase="weight-classes",
            )
        else:
            class_matching, class_rounds = _filter_class(
                n,
                available,
                words_per_machine,
                class_seed,
                governor=governor,
                context=f"weighted: class {class_index} filtering",
            )
        rounds += class_rounds
        per_class.append(len(class_matching))
        for u, v in class_matching:
            matching.add(canonical_edge(u, v))
            matched.add(u)
            matched.add(v)
        maybe_record(
            trace,
            "weight_class",
            class_index=class_index,
            class_edges=len(edges),
            matched_here=len(class_matching),
        )

    return WeightedMatchingResult(
        matching=matching,
        weight=graph.matching_weight(matching),
        rounds=rounds,
        classes=len(classes),
        per_class_sizes=per_class,
    )
