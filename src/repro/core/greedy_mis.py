"""Sequential randomized greedy MIS — the reference process of Section 3.1.

The MPC algorithm of Theorem 1.1 *simulates* this process exactly: permute
the vertices uniformly at random, then walk the permutation adding each
vertex whose earlier-ranked neighbors were all skipped.  The MPC and
CONGESTED-CLIQUE implementations batch ranks into prefixes, but their
output is identical to this sequential run under the same permutation —
a property the test suite asserts verbatim.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set, Tuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import require


def greedy_mis(graph: Graph, order: Sequence[int]) -> Set[int]:
    """Greedy MIS processing vertices in ``order``.

    ``order`` must enumerate every vertex exactly once.  Runs in
    ``O(n + m)`` time.
    """
    require(
        sorted(order) == list(range(graph.num_vertices)),
        "order must be a permutation of the vertex set",
    )
    in_mis: Set[int] = set()
    blocked = [False] * graph.num_vertices
    for v in order:
        if blocked[v]:
            continue
        in_mis.add(v)
        blocked[v] = True
        for u in graph.neighbors_view(v):
            blocked[u] = True
    return in_mis


def randomized_greedy_mis(graph: Graph, seed: SeedLike = None) -> Set[int]:
    """Greedy MIS over a uniformly random permutation (the paper's process)."""
    rng = make_rng(seed)
    order = list(graph.vertices())
    rng.shuffle(order)
    return greedy_mis(graph, order)


def greedy_mis_on_prefix(
    residual: Graph,
    ranks: Sequence[int],
    prefix_vertices: Iterable[int],
) -> Set[int]:
    """Greedy MIS restricted to ``prefix_vertices`` of a residual graph.

    Processes the given vertices in increasing rank order against the
    *induced* subgraph on them — exactly the computation one MPC machine
    performs on the shipped prefix (Section 3.2).  Correctness rests on the
    prefix property: a vertex's greedy outcome depends only on
    earlier-ranked vertices, all of which are inside the prefix.

    Returns the subset joining the MIS, in original labels.
    """
    chosen: Set[int] = set()
    prefix_set = set(prefix_vertices)
    for v in sorted(prefix_set, key=lambda vertex: ranks[vertex]):
        if any(u in chosen for u in residual.neighbors_view(v) if u in prefix_set):
            continue
        chosen.add(v)
    return chosen


def greedy_mis_on_prefix_csr(
    csr: CSRGraph,
    ranks: np.ndarray,
    prefix: np.ndarray,
) -> np.ndarray:
    """CSR form of :func:`greedy_mis_on_prefix`; returns chosen vertices.

    ``csr`` is the *original* graph: residual edges among prefix vertices
    coincide with original edges (prefix vertices are undecided, hence
    never isolated), so no residual structure is needed.  The greedy walk
    itself is inherently sequential, but each step is one vectorized
    neighbor-slice membership test.  Output is identical to the set-based
    function on the same inputs.
    """
    order = prefix[np.argsort(ranks[prefix], kind="stable")]
    chosen = np.zeros(csr.num_vertices, dtype=bool)
    indptr = csr.indptr
    indices = csr.indices
    for v in order.tolist():
        # ``chosen`` is only ever set on prefix vertices, so the slice test
        # is automatically restricted to the induced prefix subgraph.
        if not chosen[indices[indptr[v] : indptr[v + 1]]].any():
            chosen[v] = True
    return np.flatnonzero(chosen)


def residual_after_prefix(
    graph: Graph, ranks: Sequence[int], up_to_rank: int, seed: SeedLike = None
) -> Tuple[Graph, Set[int]]:
    """The residual graph after greedily processing ranks ``< up_to_rank``.

    Utility for Lemma 3.1-style experiments: returns ``(residual, mis)``
    where ``residual`` has every decided vertex isolated.
    """
    order = sorted(graph.vertices(), key=lambda v: ranks[v])
    residual = graph.copy()
    mis: Set[int] = set()
    removed: Set[int] = set()
    for v in order:
        if ranks[v] >= up_to_rank:
            break
        if v in removed:
            continue
        mis.add(v)
        removed.add(v)
        for u in list(residual.neighbors_view(v)):
            removed.add(u)
        residual.remove_closed_neighborhood(v)
    return residual, mis
