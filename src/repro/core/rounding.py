"""Randomized rounding of fractional matchings — Lemma 5.1.

Given a fractional matching ``x`` and a set ``C~`` of vertices whose load
is at least ``1 - β`` (``β ≤ 1/2``), the rounding procedure:

* every vertex ``v ∈ C~`` independently draws ``X_v``: neighbor ``u`` with
  probability ``x_{uv} / 10``, or the null symbol with the remaining
  probability (≥ 9/10);
* the proposed edges ``H = {{v, X_v}}`` are collected, and an edge is
  *good* when no other edge of ``H`` touches it;
* the good edges — a matching by construction — are the output.

The paper proves via McDiarmid's inequality that the output has size at
least ``|C~| / 50`` with probability ``1 - 2 exp(-|C~|/5000)``; in practice
the constant is far better (the E6 experiment measures it).  Every vertex
decides from its own neighborhood only, so the procedure is a single MPC
round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.graph.graph import Edge, Graph, canonical_edge
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import require

# The paper's dampening constant: proposals fire with probability x_e / 10.
PROPOSAL_DAMPENING = 10.0


@dataclass(frozen=True)
class RoundingOutcome:
    """Result of one rounding pass."""

    matching: Set[Edge]
    proposals: int
    collisions: int


def round_fractional_matching(
    graph: Graph,
    weights: Mapping[Edge, float],
    candidates: Iterable[int],
    seed: SeedLike = None,
) -> Set[Edge]:
    """Round ``weights`` to an integral matching (Lemma 5.1).

    ``candidates`` is the high-load set ``C~``; only its members propose.
    Returns the set of good edges — always a valid matching.
    """
    return round_fractional_matching_detailed(graph, weights, candidates, seed).matching


def round_fractional_matching_detailed(
    graph: Graph,
    weights: Mapping[Edge, float],
    candidates: Iterable[int],
    seed: SeedLike = None,
) -> RoundingOutcome:
    """As :func:`round_fractional_matching` but with process statistics."""
    rng = make_rng(seed)
    candidate_list = sorted(set(candidates))
    incident: Dict[int, List[Tuple[int, float]]] = {v: [] for v in candidate_list}
    candidate_set = set(candidate_list)
    for (u, v), x in weights.items():
        if x <= 0.0:
            continue
        if u in candidate_set:
            incident[u].append((v, x))
        if v in candidate_set:
            incident[v].append((u, x))

    proposed: Set[Edge] = set()
    touch_count: Dict[int, int] = {}
    for v in candidate_list:
        choice = _draw_proposal(incident[v], rng)
        if choice is None:
            continue
        edge = canonical_edge(v, choice)
        if edge in proposed:
            continue  # u and v proposed the same edge; count it once
        proposed.add(edge)
        for endpoint in edge:
            touch_count[endpoint] = touch_count.get(endpoint, 0) + 1

    good: Set[Edge] = {
        edge
        for edge in proposed
        if touch_count[edge[0]] == 1 and touch_count[edge[1]] == 1
    }
    return RoundingOutcome(
        matching=good,
        proposals=len(proposed),
        collisions=len(proposed) - len(good),
    )


def _draw_proposal(
    incident: List[Tuple[int, float]], rng
) -> Optional[int]:
    """Sample ``X_v``: neighbor ``u`` w.p. ``x_{uv}/10``, else ``None``.

    The incident weights sum to at most 1, so the null probability is at
    least ``1 - 1/10``.
    """
    roll = rng.random()
    cumulative = 0.0
    for u, x in incident:
        cumulative += x / PROPOSAL_DAMPENING
        if roll < cumulative:
            return u
    return None
