"""Baseline and exact algorithms the paper compares against or builds on.

* Luby's MIS [Lub86] — the classic O(log n)-round baseline.
* Greedy sequential MIS / matching — reference processes.
* Israeli–Itai maximal matching [II86] — O(log n)-round parallel baseline.
* LMSV11 filtering maximal matching — the O(log n)-round MPC baseline at
  Θ(n) memory (and the paper's own Section 4.4.5 subroutine).
* Hopcroft–Karp — exact maximum matching on bipartite graphs.
* Blossom — exact maximum matching on general graphs.
* Brute force — exact MIS / vertex cover / weighted matching on tiny
  graphs, anchoring approximation-ratio tests.
"""

from repro.baselines.luby import LubyResult, luby_mis
from repro.baselines.greedy import greedy_maximal_matching, greedy_mis_sequential
from repro.baselines.parallel_greedy import ParallelGreedyResult, parallel_greedy_mis
from repro.baselines.israeli_itai import IsraeliItaiResult, israeli_itai_matching
from repro.baselines.filtering import FilteringResult, filtering_maximal_matching
from repro.baselines.hopcroft_karp import hopcroft_karp_matching
from repro.baselines.blossom import maximum_matching as blossom_maximum_matching
from repro.baselines.exact import (
    brute_force_maximum_matching,
    brute_force_maximum_weight_matching,
    brute_force_minimum_vertex_cover,
    exact_maximum_independent_set,
)

__all__ = [
    "LubyResult",
    "luby_mis",
    "greedy_maximal_matching",
    "greedy_mis_sequential",
    "ParallelGreedyResult",
    "parallel_greedy_mis",
    "IsraeliItaiResult",
    "israeli_itai_matching",
    "FilteringResult",
    "filtering_maximal_matching",
    "hopcroft_karp_matching",
    "blossom_maximum_matching",
    "brute_force_maximum_matching",
    "brute_force_maximum_weight_matching",
    "brute_force_minimum_vertex_cover",
    "exact_maximum_independent_set",
]
