"""Brute-force exact solvers for tiny graphs.

Approximation-ratio tests need ground truth.  For matchings the Blossom
baseline scales to thousands of vertices; for MIS / vertex cover (NP-hard)
and weighted matching these branch-and-bound / enumeration solvers anchor
the tests at small sizes, where exactness is checkable by hand.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.graph.graph import Edge, Graph, canonical_edge
from repro.graph.weighted import WeightedGraph

_MAX_BRUTE_FORCE_VERTICES = 40


def exact_maximum_independent_set(graph: Graph) -> Set[int]:
    """A maximum independent set, by branch and bound on max-degree vertices.

    Exponential time; guarded to ``n <= 40``.
    """
    if graph.num_vertices > _MAX_BRUTE_FORCE_VERTICES:
        raise ValueError(
            f"exact MIS limited to n <= {_MAX_BRUTE_FORCE_VERTICES}, "
            f"got {graph.num_vertices}"
        )
    adjacency = {v: set(graph.neighbors_view(v)) for v in graph.vertices()}

    def solve(candidates: Set[int]) -> Set[int]:
        if not candidates:
            return set()
        v = max(candidates, key=lambda x: len(adjacency[x] & candidates))
        if not adjacency[v] & candidates:
            # Remaining candidates are pairwise non-adjacent via v? Not
            # necessarily overall, but v itself is safe to take greedily.
            return {v} | solve(candidates - {v})
        with_v = {v} | solve(candidates - {v} - adjacency[v])
        without_v = solve(candidates - {v})
        return with_v if len(with_v) >= len(without_v) else without_v

    return solve(set(graph.vertices()))


def brute_force_minimum_vertex_cover(graph: Graph) -> Set[int]:
    """A minimum vertex cover via the complement of a maximum IS."""
    best_is = exact_maximum_independent_set(graph)
    return set(graph.vertices()) - best_is


def brute_force_maximum_matching(graph: Graph) -> Set[Edge]:
    """Maximum matching by exhaustive edge branching (tiny graphs only)."""
    edges = graph.edge_list()
    if len(edges) > 2 * _MAX_BRUTE_FORCE_VERTICES:
        raise ValueError("exact matching enumeration limited to tiny graphs")

    best: Set[Edge] = set()

    def solve(index: int, used: Set[int], current: Set[Edge]) -> None:
        nonlocal best
        if index == len(edges):
            if len(current) > len(best):
                best = set(current)
            return
        u, v = edges[index]
        if u not in used and v not in used:
            current.add((u, v))
            used.add(u)
            used.add(v)
            solve(index + 1, used, current)
            current.remove((u, v))
            used.discard(u)
            used.discard(v)
        solve(index + 1, used, current)

    solve(0, set(), set())
    return best


def brute_force_maximum_weight_matching(
    graph: WeightedGraph,
) -> Tuple[Set[Edge], float]:
    """Maximum-weight matching by exhaustive edge branching (tiny graphs)."""
    edges = [(canonical_edge(u, v), w) for u, v, w in graph.edges()]
    if len(edges) > 2 * _MAX_BRUTE_FORCE_VERTICES:
        raise ValueError("exact weighted matching limited to tiny graphs")

    best_edges: Set[Edge] = set()
    best_weight = 0.0

    def solve(index: int, used: Set[int], current: Set[Edge], weight: float) -> None:
        nonlocal best_edges, best_weight
        if index == len(edges):
            if weight > best_weight:
                best_weight = weight
                best_edges = set(current)
            return
        (u, v), w = edges[index]
        if u not in used and v not in used:
            current.add((u, v))
            used.add(u)
            used.add(v)
            solve(index + 1, used, current, weight + w)
            current.remove((u, v))
            used.discard(u)
            used.discard(v)
        solve(index + 1, used, current, weight)

    solve(0, set(), set(), 0.0)
    return best_edges, best_weight
