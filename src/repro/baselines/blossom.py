"""Blossom algorithm: exact maximum matching on general graphs.

Edmonds' algorithm in the classic ``O(V^3)`` contraction-by-base form:
BFS an alternating forest from each free vertex; when two even-level
vertices meet, contract the blossom around their lowest common base;
when a free vertex is reached, augment by walking the parent/mate
pointers.  This is the ground truth for every approximation-ratio
measurement on non-bipartite inputs (E3, E4, E7, E8).
"""

from __future__ import annotations

from collections import deque
from typing import List, Set

from repro.graph.graph import Edge, Graph, canonical_edge

_UNMATCHED = -1


class _BlossomState:
    """Working state of one augmenting-path search."""

    def __init__(self, graph: Graph, mate: List[int]) -> None:
        self.graph = graph
        self.mate = mate
        n = graph.num_vertices
        self.parent = [_UNMATCHED] * n
        self.base = list(range(n))
        self.used = [False] * n
        self.blossom = [False] * n
        self.queue: deque = deque()

    def lowest_common_base(self, u: int, v: int) -> int:
        """The common base of ``u`` and ``v`` in the alternating forest."""
        n = self.graph.num_vertices
        seen = [False] * n
        a = u
        while True:
            a = self.base[a]
            seen[a] = True
            if self.mate[a] == _UNMATCHED:
                break
            a = self.parent[self.mate[a]]
        b = v
        while True:
            b = self.base[b]
            if seen[b]:
                return b
            b = self.parent[self.mate[b]]

    def mark_path(self, v: int, common: int, child: int) -> None:
        """Mark blossom bases on the path from ``v`` down to ``common``."""
        while self.base[v] != common:
            self.blossom[self.base[v]] = True
            self.blossom[self.base[self.mate[v]]] = True
            self.parent[v] = child
            child = self.mate[v]
            v = self.parent[self.mate[v]]

    def contract(self, u: int, v: int) -> None:
        """Contract the blossom formed by the even-even edge ``{u, v}``."""
        common = self.lowest_common_base(u, v)
        self.blossom = [False] * self.graph.num_vertices
        self.mark_path(u, common, v)
        self.mark_path(v, common, u)
        for i in range(self.graph.num_vertices):
            if self.blossom[self.base[i]]:
                self.base[i] = common
                if not self.used[i]:
                    self.used[i] = True
                    self.queue.append(i)


def _find_and_augment(graph: Graph, mate: List[int], root: int) -> bool:
    """Search for an augmenting path from ``root``; augment if found."""
    state = _BlossomState(graph, mate)
    state.used[root] = True
    state.queue.append(root)
    while state.queue:
        v = state.queue.popleft()
        for to in graph.neighbors_view(v):
            if state.base[v] == state.base[to] or mate[v] == to:
                continue
            if to == root or (
                mate[to] != _UNMATCHED
                and state.parent[mate[to]] != _UNMATCHED
            ):
                state.contract(v, to)
            elif state.parent[to] == _UNMATCHED:
                state.parent[to] = v
                if mate[to] == _UNMATCHED:
                    _augment_along(mate, state.parent, to)
                    return True
                state.used[mate[to]] = True
                state.queue.append(mate[to])
    return False


def _augment_along(mate: List[int], parent: List[int], leaf: int) -> None:
    """Flip matched/unmatched edges along the found alternating path."""
    v = leaf
    while v != _UNMATCHED:
        previous = parent[v]
        next_vertex = mate[previous]
        mate[v] = previous
        mate[previous] = v
        v = next_vertex


def maximum_matching(graph: Graph) -> Set[Edge]:
    """Exact maximum matching of any simple undirected graph."""
    n = graph.num_vertices
    mate: List[int] = [_UNMATCHED] * n
    # Greedy warm start cuts the number of expensive searches roughly in half.
    for u, v in graph.edges():
        if mate[u] == _UNMATCHED and mate[v] == _UNMATCHED:
            mate[u] = v
            mate[v] = u
    for v in range(n):
        if mate[v] == _UNMATCHED:
            _find_and_augment(graph, mate, v)
    return {
        canonical_edge(v, mate[v])
        for v in range(n)
        if mate[v] != _UNMATCHED and v < mate[v]
    }


def maximum_matching_size(graph: Graph) -> int:
    """Size of a maximum matching."""
    return len(maximum_matching(graph))
