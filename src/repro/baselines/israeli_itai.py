"""Israeli–Itai randomized maximal matching [II86] — O(log n) rounds.

Classic two-step round: every unmatched vertex proposes along a random
incident live edge; mutual/colliding proposals are resolved by random edge
priorities, the locally-minimal proposed edges join the matching, and
matched vertices leave.  Terminates when no live edge remains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.graph.graph import Edge, Graph, canonical_edge
from repro.utils.rng import SeedLike, make_rng
from repro.utils.trace import Trace, maybe_record


@dataclass
class IsraeliItaiResult:
    """Outcome of the Israeli–Itai algorithm."""

    matching: Set[Edge]
    rounds: int


def israeli_itai_matching(
    graph: Graph,
    seed: SeedLike = None,
    trace: Optional[Trace] = None,
    max_rounds: Optional[int] = None,
) -> IsraeliItaiResult:
    """Run the Israeli–Itai process to a maximal matching."""
    rng = make_rng(seed)
    residual = graph.copy()
    matching: Set[Edge] = set()
    rounds = 0
    cap = max_rounds if max_rounds is not None else 64 * (graph.num_vertices + 2)

    while residual.num_edges > 0:
        if rounds >= cap:
            raise RuntimeError("Israeli-Itai exceeded its round cap")
        rounds += 1
        # Step 1: every vertex with live edges proposes along a random one.
        proposals: Set[Edge] = set()
        for v in residual.vertices():
            neighbors = residual.neighbors_view(v)
            if neighbors:
                u = rng.choice(sorted(neighbors))
                proposals.add(canonical_edge(v, u))
        # Step 2: proposed edges draw random priorities; an edge wins when
        # it beats every adjacent proposed edge.
        priority: Dict[Edge, float] = {e: rng.random() for e in proposals}
        winners: Set[Edge] = set()
        for edge in proposals:
            u, v = edge
            beaten = False
            for w in (u, v):
                for x in residual.neighbors_view(w):
                    other = canonical_edge(w, x)
                    if other != edge and other in priority and priority[other] < priority[edge]:
                        beaten = True
                        break
                if beaten:
                    break
            if not beaten:
                winners.add(edge)
        for u, v in winners:
            if residual.degree(u) == 0 and residual.degree(v) == 0:
                continue  # a prior winner this round already cleared them
            if not residual.has_edge(u, v):
                continue
            matching.add((u, v))
            residual.isolate(u)
            residual.isolate(v)
        maybe_record(
            trace, "israeli_itai_round", round=rounds, live_edges=residual.num_edges
        )
    return IsraeliItaiResult(matching=matching, rounds=rounds)
