"""Israeli–Itai randomized maximal matching [II86] — O(log n) rounds.

Classic two-step round: every unmatched vertex proposes along a random
incident live edge; mutual/colliding proposals are resolved by random edge
priorities, the locally-minimal proposed edges join the matching, and
matched vertices leave.  Terminates when no live edge remains.

Hot-path layout: the residual lives as a ``live`` vertex mask over one
CSR.  Per round, the live adjacency is compacted in one vectorized pass
(rows stay ascending, matching the historical ``sorted(neighbors)``), the
per-vertex proposal draws walk that compact structure in the same vertex
order and through the same ``rng.choice`` consumption as before, and the
winner resolution — previously a scan of every edge adjacent to every
proposal — is one per-endpoint ``minimum.at`` pass.  Seeded outputs are
bit-for-bit identical to the historical set-based implementation (the
proposal set and its iteration order, which feeds the priority draws, are
reproduced exactly; pinned in ``tests/test_backend_parity.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.graph import Edge, Graph, canonical_edge
from repro.utils.rng import SeedLike, make_rng
from repro.utils.trace import Trace, maybe_record


@dataclass
class IsraeliItaiResult:
    """Outcome of the Israeli–Itai algorithm."""

    matching: Set[Edge]
    rounds: int


def israeli_itai_matching(
    graph: Graph,
    seed: SeedLike = None,
    trace: Optional[Trace] = None,
    max_rounds: Optional[int] = None,
) -> IsraeliItaiResult:
    """Run the Israeli–Itai process to a maximal matching."""
    rng = make_rng(seed)
    n = graph.num_vertices
    csr = CSRGraph.from_graph(graph)
    src = csr.src
    dst = csr.indices
    live = np.ones(n, dtype=bool)
    live_slots = np.ones(len(dst), dtype=bool)
    matching: Set[Edge] = set()
    rounds = 0
    cap = max_rounds if max_rounds is not None else 64 * (n + 2)

    while live_slots.any():
        if rounds >= cap:
            raise RuntimeError("Israeli-Itai exceeded its round cap")
        rounds += 1
        # Compact live adjacency: rows keep their ascending order, so the
        # historical ``sorted(neighbors)`` is exactly each compacted row.
        flat = dst[live_slots]
        counts = np.bincount(src[live_slots], minlength=n)
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        # Step 1: every vertex with live edges proposes along a random one.
        # Vertex order and rng consumption match the set-based loop.
        proposals: Set[Edge] = set()
        for v in np.flatnonzero(counts).tolist():
            u = int(rng.choice(flat[offsets[v] : offsets[v + 1]]))
            proposals.add(canonical_edge(v, u))
        # Step 2: proposed edges draw random priorities (in proposal-set
        # iteration order, which the priority stream depends on); an edge
        # wins when it beats every adjacent proposed edge.
        ordered = list(proposals)
        priority = np.fromiter(
            (rng.random() for _ in ordered), dtype=np.float64, count=len(ordered)
        )
        pu = np.fromiter((e[0] for e in ordered), dtype=np.int64, count=len(ordered))
        pv = np.fromiter((e[1] for e in ordered), dtype=np.int64, count=len(ordered))
        best_at = np.full(n, np.inf)
        np.minimum.at(best_at, pu, priority)
        np.minimum.at(best_at, pv, priority)
        beaten = (best_at[pu] < priority) | (best_at[pv] < priority)
        winner_u = pu[~beaten]
        winner_v = pv[~beaten]
        # Winners are pairwise non-adjacent (each is a strict local
        # priority minimum), so the historical re-check guards never fire —
        # except on an exact priority collision between adjacent proposals,
        # where the set-based code kept whichever it applied first.
        endpoints = np.concatenate((winner_u, winner_v))
        if len(np.unique(endpoints)) != len(endpoints):
            winners = list(zip(winner_u.tolist(), winner_v.tolist()))
            for u, v in winners:
                if live[u] and live[v]:
                    matching.add((u, v))
                    live[u] = False
                    live[v] = False
        else:
            matching.update(zip(winner_u.tolist(), winner_v.tolist()))
            live[winner_u] = False
            live[winner_v] = False
        live_slots &= live[src] & live[dst]
        maybe_record(
            trace,
            "israeli_itai_round",
            round=rounds,
            live_edges=int(np.count_nonzero(live_slots)) // 2,
        )
    return IsraeliItaiResult(matching=matching, rounds=rounds)
