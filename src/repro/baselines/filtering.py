"""LMSV11 filtering maximal matching — the Θ(n)-memory MPC baseline.

Lattanzi, Moseley, Suri, and Vassilvitskii's algorithm (cited throughout
the paper and used directly in its Section 4.4.5): while the residual edge
set exceeds one machine's memory, sample a uniform edge subset that fits,
compute a maximal matching of the sample on one machine, and delete all
matched vertices; the residual edge count halves (w.h.p.) per round.  Once
the residual fits, finish exactly.  The output is a *maximal* matching of
the input graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.baselines.greedy import greedy_maximal_matching
from repro.graph.graph import Edge, Graph
from repro.mpc.words import WORDS_PER_EDGE
from repro.utils.rng import SeedLike, make_rng
from repro.utils.trace import Trace, maybe_record


@dataclass
class FilteringResult:
    """Outcome of the filtering algorithm."""

    matching: Set[Edge]
    rounds: int
    residual_edges_per_round: List[int] = field(default_factory=list)


def filtering_maximal_matching(
    graph: Graph,
    words_per_machine: int,
    seed: SeedLike = None,
    trace: Optional[Trace] = None,
    max_rounds: int = 10_000,
) -> FilteringResult:
    """Compute a maximal matching with memory-bounded filtering rounds."""
    words_per_machine = int(words_per_machine)
    if words_per_machine < 4 * WORDS_PER_EDGE:
        raise ValueError(
            f"words_per_machine too small to hold any sample: {words_per_machine}"
        )
    rng = make_rng(seed)
    residual = graph.copy()
    matching: Set[Edge] = set()
    rounds = 0
    capacity_edges = max(2, words_per_machine // WORDS_PER_EDGE)
    residual_trajectory: List[int] = []

    while residual.num_edges > capacity_edges:
        if rounds >= max_rounds:
            raise RuntimeError("filtering exceeded its round cap")
        rounds += 1
        edges = residual.edge_list()
        sample_size = min(len(edges), capacity_edges)
        sample = rng.sample(edges, sample_size)
        sample_matching = greedy_maximal_matching(
            Graph(graph.num_vertices, sample), seed=rng.getrandbits(64)
        )
        for u, v in sample_matching:
            matching.add((u, v))
            residual.isolate(u)
            residual.isolate(v)
        residual_trajectory.append(residual.num_edges)
        maybe_record(
            trace,
            "filtering_round",
            round=rounds,
            residual_edges=residual.num_edges,
        )

    # Final round: the residual fits on one machine; finish exactly.
    if residual.num_edges > 0:
        rounds += 1
        final = greedy_maximal_matching(residual, seed=rng.getrandbits(64))
        for u, v in final:
            matching.add((u, v))
            residual.isolate(u)
            residual.isolate(v)
        residual_trajectory.append(0)
    return FilteringResult(
        matching=matching,
        rounds=rounds,
        residual_edges_per_round=residual_trajectory,
    )
