"""Sequential greedy baselines for MIS and maximal matching."""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from repro.graph.graph import Edge, Graph, canonical_edge
from repro.utils.rng import SeedLike, make_rng


def greedy_mis_sequential(graph: Graph, seed: SeedLike = None) -> Set[int]:
    """Greedy MIS over a random vertex order (one-liner reference)."""
    rng = make_rng(seed)
    order = list(graph.vertices())
    rng.shuffle(order)
    mis: Set[int] = set()
    blocked: Set[int] = set()
    for v in order:
        if v in blocked:
            continue
        mis.add(v)
        blocked.add(v)
        blocked.update(graph.neighbors_view(v))
    return mis


def greedy_maximal_matching(
    graph: Graph, order: Optional[Sequence[Edge]] = None, seed: SeedLike = None
) -> Set[Edge]:
    """Greedy maximal matching over an edge order (random by default).

    A maximal matching is a 2-approximate maximum matching and its endpoint
    set is a 2-approximate vertex cover — the folklore bounds every
    baseline comparison in the paper starts from.
    """
    if order is None:
        edges = graph.edge_list()
        make_rng(seed).shuffle(edges)
    else:
        edges = [canonical_edge(u, v) for u, v in order]
    matched: Set[int] = set()
    matching: Set[Edge] = set()
    for u, v in edges:
        if u in matched or v in matched:
            continue
        matching.add((u, v))
        matched.add(u)
        matched.add(v)
    return matching
