"""Hopcroft–Karp exact maximum matching on bipartite graphs.

Used as the exact baseline for approximation-ratio experiments on
bipartite workloads (ad allocation, planted bipartite instances).  Includes
a 2-coloring pass so callers can hand in any graph that happens to be
bipartite.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.graph.graph import Edge, Graph, canonical_edge

_INFINITY = float("inf")


def bipartition(graph: Graph) -> Optional[Tuple[Set[int], Set[int]]]:
    """2-color ``graph``; returns the two sides or ``None`` if odd cycle."""
    color: Dict[int, int] = {}
    for start in graph.vertices():
        if start in color:
            continue
        color[start] = 0
        queue = deque([start])
        while queue:
            v = queue.popleft()
            for u in graph.neighbors_view(v):
                if u not in color:
                    color[u] = 1 - color[v]
                    queue.append(u)
                elif color[u] == color[v]:
                    return None
    left = {v for v, c in color.items() if c == 0}
    right = {v for v, c in color.items() if c == 1}
    return left, right


def hopcroft_karp_matching(graph: Graph) -> Set[Edge]:
    """Exact maximum matching of a bipartite ``graph``.

    Raises ``ValueError`` when the graph is not bipartite — use the
    Blossom baseline for general graphs.
    """
    sides = bipartition(graph)
    if sides is None:
        raise ValueError("graph is not bipartite; use blossom_maximum_matching")
    left, _right = sides

    mate: Dict[int, Optional[int]] = {v: None for v in graph.vertices()}
    distance: Dict[int, float] = {}

    def bfs() -> bool:
        queue = deque()
        for v in left:
            if mate[v] is None:
                distance[v] = 0.0
                queue.append(v)
            else:
                distance[v] = _INFINITY
        found_free = False
        while queue:
            v = queue.popleft()
            for u in graph.neighbors_view(v):
                partner = mate[u]
                if partner is None:
                    found_free = True
                elif distance[partner] == _INFINITY:
                    distance[partner] = distance[v] + 1.0
                    queue.append(partner)
        return found_free

    def dfs(v: int) -> bool:
        for u in graph.neighbors_view(v):
            partner = mate[u]
            if partner is None or (
                distance.get(partner) == distance[v] + 1.0 and dfs(partner)
            ):
                mate[v] = u
                mate[u] = v
                return True
        distance[v] = _INFINITY
        return False

    while bfs():
        for v in left:
            if mate[v] is None:
                dfs(v)

    return {
        canonical_edge(v, mate[v])  # type: ignore[arg-type]
        for v in left
        if mate[v] is not None
    }
