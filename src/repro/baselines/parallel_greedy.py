"""Parallel randomized greedy MIS ([BFS12], tight analysis [FN18]).

The paper's Section 1.2 recalls that the randomized greedy MIS process
parallelizes: in each round, every remaining vertex whose rank is a local
minimum among its remaining neighbors joins the MIS simultaneously.  The
number of rounds equals the dependency depth of the greedy process —
``O(log² n)`` by Blelloch, Fineman, and Shun, tightened to ``Θ(log n)``
by Fischer and Noever.

Two properties make this the perfect cross-check for Theorem 1.1's
simulation:

* the output is *identical* to sequential greedy under the same
  permutation (both resolve the same dependency DAG), which the test
  suite asserts exactly; and
* its measured round count is the ``Θ(log n)`` baseline that the paper's
  ``O(log log Δ)`` rank-prefix compression beats.

Hot-path layout: the rounds run on a CSR with a ``remaining`` mask — the
local-minimum test is one segment-min over the live slots per round, and
closed neighborhoods of the (independent) winners are removed in one
batch.  Outputs equal the historical set-based implementation exactly
(the process is deterministic given the permutation; pinned in
``tests/test_backend_parity.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph
from repro.utils.rng import SeedLike, make_rng


@dataclass
class ParallelGreedyResult:
    """Outcome of the parallel greedy process."""

    mis: Set[int]
    rounds: int
    decided_per_round: List[int]


def parallel_greedy_mis(
    graph: Graph,
    seed: SeedLike = None,
    ranks: Optional[Sequence[int]] = None,
) -> ParallelGreedyResult:
    """Run the local-minima rounds of randomized greedy to completion.

    ``ranks`` fixes the permutation (rank per vertex, all distinct);
    by default a uniform permutation is drawn from ``seed``.
    """
    n = graph.num_vertices
    if ranks is None:
        order = list(range(n))
        make_rng(seed).shuffle(order)
        rank_of = np.empty(n, dtype=np.int64)
        rank_of[order] = np.arange(n, dtype=np.int64)
    else:
        if sorted(ranks) != list(range(n)):
            raise ValueError("ranks must assign each vertex a distinct rank 0..n-1")
        rank_of = np.asarray(list(ranks), dtype=np.int64)

    csr = CSRGraph.from_graph(graph)
    src = csr.src
    dst = csr.indices
    indptr = csr.indptr
    remaining = np.ones(n, dtype=bool)
    mis: Set[int] = set()
    rounds = 0
    decided_per_round: List[int] = []

    while remaining.any():
        rounds += 1
        # Rank of the smallest remaining neighbor, per remaining vertex
        # (n is above every real rank, so it reads "no remaining neighbor").
        best = np.full(n, n, dtype=np.int64)
        if len(dst):
            values = np.where(
                remaining[dst] & remaining[src], rank_of[dst], np.int64(n)
            )
            starts = indptr[:-1]
            nonempty = starts < indptr[1:]
            best[nonempty] = np.minimum.reduceat(values, starts[nonempty])
        winners_mask = remaining & (rank_of < best)
        winners = np.flatnonzero(winners_mask)
        mis.update(winners.tolist())
        # Winners are local rank minima, hence independent: remove their
        # closed neighborhoods in one batch and count the casualties.
        removed = winners_mask.copy()
        removed[csr.neighbors_bulk(winners)] = True
        removed &= remaining
        decided_per_round.append(int(np.count_nonzero(removed)))
        remaining &= ~removed
    return ParallelGreedyResult(
        mis=mis, rounds=rounds, decided_per_round=decided_per_round
    )
