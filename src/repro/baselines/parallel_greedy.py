"""Parallel randomized greedy MIS ([BFS12], tight analysis [FN18]).

The paper's Section 1.2 recalls that the randomized greedy MIS process
parallelizes: in each round, every remaining vertex whose rank is a local
minimum among its remaining neighbors joins the MIS simultaneously.  The
number of rounds equals the dependency depth of the greedy process —
``O(log² n)`` by Blelloch, Fineman, and Shun, tightened to ``Θ(log n)``
by Fischer and Noever.

Two properties make this the perfect cross-check for Theorem 1.1's
simulation:

* the output is *identical* to sequential greedy under the same
  permutation (both resolve the same dependency DAG), which the test
  suite asserts exactly; and
* its measured round count is the ``Θ(log n)`` baseline that the paper's
  ``O(log log Δ)`` rank-prefix compression beats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

from repro.graph.graph import Graph
from repro.utils.rng import SeedLike, make_rng


@dataclass
class ParallelGreedyResult:
    """Outcome of the parallel greedy process."""

    mis: Set[int]
    rounds: int
    decided_per_round: List[int]


def parallel_greedy_mis(
    graph: Graph,
    seed: SeedLike = None,
    ranks: Optional[Sequence[int]] = None,
) -> ParallelGreedyResult:
    """Run the local-minima rounds of randomized greedy to completion.

    ``ranks`` fixes the permutation (rank per vertex, all distinct);
    by default a uniform permutation is drawn from ``seed``.
    """
    n = graph.num_vertices
    if ranks is None:
        order = list(range(n))
        make_rng(seed).shuffle(order)
        rank_of = [0] * n
        for position, v in enumerate(order):
            rank_of[v] = position
    else:
        if sorted(ranks) != list(range(n)):
            raise ValueError("ranks must assign each vertex a distinct rank 0..n-1")
        rank_of = list(ranks)

    residual = graph.copy()
    remaining: Set[int] = set(range(n))
    mis: Set[int] = set()
    rounds = 0
    decided_per_round: List[int] = []

    while remaining:
        rounds += 1
        winners = {
            v
            for v in remaining
            if all(
                rank_of[v] < rank_of[u]
                for u in residual.neighbors_view(v)
                if u in remaining
            )
        }
        decided = 0
        for v in winners:
            mis.add(v)
            removed = residual.remove_closed_neighborhood(v) & remaining
            remaining -= removed
            decided += len(removed)
        decided_per_round.append(decided)
    return ParallelGreedyResult(
        mis=mis, rounds=rounds, decided_per_round=decided_per_round
    )
