"""Luby's MIS algorithm [Lub86] — the O(log n)-round baseline.

One round per step (no round compression): every active vertex draws a
random value and joins when it beats all active neighbors; winners' closed
neighborhoods are removed.  The E1/E10 experiments contrast its measured
round count against the paper's O(log log Δ) algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

from repro.core.sparsified_mis import luby_round
from repro.graph.graph import Graph
from repro.utils.rng import SeedLike, make_rng
from repro.utils.trace import Trace, maybe_record


@dataclass
class LubyResult:
    """Outcome of Luby's algorithm."""

    mis: Set[int]
    rounds: int


def luby_mis(
    graph: Graph,
    seed: SeedLike = None,
    trace: Optional[Trace] = None,
    max_rounds: Optional[int] = None,
) -> LubyResult:
    """Run Luby's algorithm to completion, one round per step."""
    rng = make_rng(seed)
    residual = graph.copy()
    active: Set[int] = set(graph.vertices())
    mis: Set[int] = set()
    rounds = 0
    cap = max_rounds if max_rounds is not None else 64 * (graph.num_vertices + 2)

    while active:
        if rounds >= cap:
            raise RuntimeError("Luby's algorithm exceeded its round cap")
        winners = luby_round(residual, active, rng)
        rounds += 1
        for v in winners:
            if v not in active:
                continue
            mis.add(v)
            removed = residual.remove_closed_neighborhood(v)
            active -= removed
        maybe_record(trace, "luby_round", round=rounds, active=len(active))
    return LubyResult(mis=mis, rounds=rounds)
