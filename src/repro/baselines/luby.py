"""Luby's MIS algorithm [Lub86] — the O(log n)-round baseline.

One round per step (no round compression): every active vertex draws a
random value and joins when it beats all active neighbors; winners' closed
neighborhoods are removed.  The E1/E10 experiments contrast its measured
round count against the paper's O(log log Δ) algorithm.

Hot-path layout: the graph is converted once to CSR; the residual is an
``active`` mask, winner determination is one vectorized comparison over
the live slots, and closed neighborhoods are removed in one batch (the
winners form an independent set).  Per-vertex draws are still consumed in
set-iteration order — that order is load-bearing for reproducibility — so
seeded runs match the historical set-based implementation bit-for-bit
(pinned in ``tests/test_backend_parity.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph
from repro.utils.rng import SeedLike, make_rng
from repro.utils.trace import Trace, maybe_record


@dataclass
class LubyResult:
    """Outcome of Luby's algorithm."""

    mis: Set[int]
    rounds: int


def luby_mis(
    graph: Graph,
    seed: SeedLike = None,
    trace: Optional[Trace] = None,
    max_rounds: Optional[int] = None,
) -> LubyResult:
    """Run Luby's algorithm to completion, one round per step."""
    rng = make_rng(seed)
    n = graph.num_vertices
    csr = CSRGraph.from_graph(graph)
    src = csr.src
    dst = csr.indices
    active: Set[int] = set(graph.vertices())
    active_mask = np.ones(n, dtype=bool)
    draw = np.empty(n, dtype=np.float64)
    mis: Set[int] = set()
    rounds = 0
    cap = max_rounds if max_rounds is not None else 64 * (n + 2)

    while active:
        if rounds >= cap:
            raise RuntimeError("Luby's algorithm exceeded its round cap")
        # Draws in set-iteration order — exactly the order the set-based
        # luby_round consumed them, so seeded runs reproduce bit-for-bit.
        for v in active:
            draw[v] = rng.random()
        both = active_mask[src] & active_mask[dst]
        s = src[both]
        t = dst[both]
        # (draw, id) lexicographic comparison, as the set-based round used.
        beats = (draw[t] < draw[s]) | ((draw[t] == draw[s]) & (t < s))
        beaten = np.zeros(n, dtype=bool)
        beaten[s[beats]] = True
        winners_mask = active_mask & ~beaten
        winners = np.flatnonzero(winners_mask)
        rounds += 1
        mis.update(winners.tolist())
        # Winners form an independent set: remove their closed
        # neighborhoods in one batch.
        removed_mask = winners_mask.copy()
        removed_mask[csr.neighbors_bulk(winners)] = True
        removed_mask &= active_mask
        active.difference_update(np.flatnonzero(removed_mask).tolist())
        active_mask &= ~removed_mask
        maybe_record(trace, "luby_round", round=rounds, active=len(active))
    return LubyResult(mis=mis, rounds=rounds)
