"""Counter-based fast randomness for the out-of-core solve paths.

The seeded-pin RNG (:mod:`repro.utils.rng`) derives every draw from a
SHA-256 stream, which keeps runs byte-identical across refactors but
costs ~1 µs per draw — the "draw-bound" wall documented in
PERFORMANCE.md.  At the out-of-core scale (n = 10M) a single Luby round
wants 10M draws, so the opt-in ``rng="counter"`` mode replaces the
stream with a *counter-based* generator: the value for entity ``e`` in
round ``r`` under stream key ``k`` is a pure function ``mix(k, r, e)``
computed by a vectorized SplitMix64-style finalizer over whole NumPy
arrays at memory-bandwidth speed.

Properties the solve paths rely on:

* **Deterministic** — the same ``(seed, namespace, counter, entities)``
  always produces the same floats, on any graph representation
  (in-RAM ``CSRGraph`` or ``repro.ooc.MMapCSRGraph``), so counter-mode
  runs are reproducible even though they are not byte-identical to the
  SHA-pinned runs.
* **Order-free** — the value for an entity does not depend on how many
  other entities drew before it, so chunked/partitioned evaluation over
  an out-of-core graph gives the same numbers as a single pass.
* **Statistically sound, not cryptographic** — SplitMix64's finalizer
  passes BigCrush as a sequential generator; here each (key, counter)
  pair selects a stream offset and entities index into that stream.
  Statistical equivalence to the SHA mode is what ``repro.verify``'s
  differential sweep and the whp audits check (see OUT_OF_CORE.md).

Permutations use NumPy's counter-based Philox bit generator so that the
10M-vertex shuffle needs no Python-level loop.
"""

from __future__ import annotations

import hashlib
from typing import Any

import numpy as np

__all__ = [
    "derive_key",
    "mix64",
    "uniform01",
    "integers",
    "permutation",
]

_GAMMA = np.uint64(0x9E3779B97F4A7C15)  # SplitMix64 stream increment
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_COUNTER_STEP = 0xD1342543DE82EF95  # odd; separates per-round stream offsets
_MASK64 = (1 << 64) - 1
_INV_2_53 = 1.0 / float(1 << 53)


def derive_key(seed_material: Any, namespace: str) -> int:
    """A 64-bit stream key from ``(seed_material, namespace)``.

    Mirrors :class:`repro.utils.rng.RngStream`'s key derivation: the
    namespace string keeps independent subsystems (vertex draws,
    thresholds, machine assignment) on unrelated streams even when they
    share one user-facing seed.
    """
    material = f"counter|{namespace}|{seed_material}".encode("utf-8")
    return int.from_bytes(hashlib.sha256(material).digest()[:8], "big")


def mix64(values: np.ndarray) -> np.ndarray:
    """Vectorized SplitMix64 finalizer over a ``uint64`` array.

    Wraparound is the point of the arithmetic; the errstate guard
    silences NumPy's *scalar* overflow warning (array ops never warn).
    """
    with np.errstate(over="ignore"):
        z = values + _GAMMA
        z = (z ^ (z >> np.uint64(30))) * _MIX1
        z = (z ^ (z >> np.uint64(27))) * _MIX2
        return z ^ (z >> np.uint64(31))


def _stream_base(key: int, counter: int) -> np.uint64:
    """The stream offset for ``(key, counter)`` — one scalar mix."""
    raw = (int(key) ^ (int(counter) * _COUNTER_STEP)) & _MASK64
    return mix64(np.uint64(raw))


def hash_u64(key: int, entities: Any, counter: int = 0) -> np.ndarray:
    """Raw 64-bit hashes for ``entities`` under ``(key, counter)``.

    Follows SplitMix64's state recurrence: entity ``e`` reads the
    stream state ``base + e * GAMMA`` and finalizes it.
    """
    ents = np.asarray(entities)
    if ents.dtype != np.uint64:
        ents = ents.astype(np.uint64)
    return mix64(_stream_base(key, counter) + ents * _GAMMA)


def uniform01(key: int, entities: Any, counter: int = 0) -> np.ndarray:
    """IID-quality uniforms in ``[0, 1)``, one per entity.

    The top 53 bits of the hash become the mantissa, so every value is
    exactly representable and the map is bias-free.
    """
    h = hash_u64(key, entities, counter)
    return (h >> np.uint64(11)).astype(np.float64) * _INV_2_53


def integers(key: int, entities: Any, counter: int, high: int) -> np.ndarray:
    """Uniform draws in ``[0, high)``, one per entity (``int64``).

    Computed as ``floor(u01 * high)``; the modulo-style bias is
    ``< high / 2^53``, negligible for the machine counts (≤ n) used
    here.
    """
    if high <= 0:
        raise ValueError(f"high must be positive, got {high}")
    draws = uniform01(key, entities, counter) * float(high)
    out = draws.astype(np.int64)
    # floor(u * high) can round up to `high` only through float error;
    # clamp to keep the contract exact.
    np.minimum(out, high - 1, out=out)
    return out


def permutation(key: int, size: int) -> np.ndarray:
    """A uniform permutation of ``range(size)`` as an ``int64`` array.

    Uses the Philox counter-based bit generator: O(size) vectorized
    work, no Python-level Fisher-Yates loop.
    """
    generator = np.random.Generator(np.random.Philox(key=int(key) & _MASK64))
    return generator.permutation(size).astype(np.int64, copy=False)
