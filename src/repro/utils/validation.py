"""Argument validation helpers.

Public API entry points validate their inputs eagerly and raise
``ValueError``/``TypeError`` with actionable messages, per the library's
fail-fast policy: a bad parameter should never surface as a confusing
failure three layers down inside a simulation.
"""

from __future__ import annotations

from typing import Any


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def require_positive(value: float, name: str) -> None:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def require_non_negative(value: float, name: str) -> None:
    """Require ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def require_probability(value: float, name: str) -> None:
    """Require ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")


def require_epsilon(value: float, name: str = "epsilon") -> None:
    """Require an approximation parameter in ``(0, 1/2)``.

    The paper's analysis assumes ``ε < 1/50`` for the tightest constants but
    the algorithms are well-defined for any ``ε ∈ (0, 1/2)``; we accept that
    range and let callers trade accuracy for speed.
    """
    if not 0.0 < value < 0.5:
        raise ValueError(f"{name} must lie in (0, 0.5), got {value!r}")


def require_type(value: Any, expected: type, name: str) -> None:
    """Require ``isinstance(value, expected)``."""
    if not isinstance(value, expected):
        raise TypeError(
            f"{name} must be {expected.__name__}, got {type(value).__name__}"
        )
