"""Crash-tolerant JSONL parsing shared by every record reader.

A JSONL file written record-at-a-time (``solve_many`` sweeps, stream
reports, serve snapshots' write-ahead batches) has exactly one benign
failure shape: a process killed mid-``write`` leaves a *truncated final
line*.  Every intact record before it is good data, and losing a whole
sweep to the tail of a ``kill -9`` is the durability bug this module
exists to fix.

:func:`parse_jsonl_lines` therefore distinguishes the two failure modes:

* a record that fails to parse and is the **last non-empty line** of the
  input is treated as a truncated tail — a :class:`TruncatedJSONLWarning`
  is emitted and every earlier record is returned;
* a record that fails to parse **mid-file** is real corruption (a partial
  line cannot be followed by further records a line-oriented writer
  appended) and raises :class:`JSONLCorruptionError` with the 1-based
  line number, after yielding the intact records before it.

The parser is streaming: records are yielded as they parse, so callers
iterating lazily (e.g. batch replay) keep their bounded-memory behavior.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, Iterable, Iterator, Optional, TypeVar

T = TypeVar("T")


class TruncatedJSONLWarning(UserWarning):
    """A JSONL file ended in a partial record (killed writer); the intact
    prefix was returned."""


class JSONLCorruptionError(ValueError):
    """A JSONL record failed to parse *mid-file* — not a truncated tail.

    ``line_number`` is 1-based; the original parse error is chained.
    """

    def __init__(self, message: str, line_number: int) -> None:
        super().__init__(message)
        self.line_number = line_number


def parse_jsonl_lines(
    lines: Iterable[str],
    parse: Callable[[str], T],
    *,
    source: Any = "<jsonl>",
) -> Iterator[T]:
    """Yield ``parse(line)`` for every non-empty line, crash-tolerantly.

    ``parse`` receives the stripped line text and may raise anything; see
    the module docstring for how failures at the tail vs mid-file differ.
    ``source`` names the input in warnings/errors (a path, usually).
    """
    pending: Optional[tuple] = None  # (line_number, text, error)
    for line_number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped:
            continue
        if pending is not None:
            # The failed line has a successor: mid-file corruption, not a
            # truncated tail.  Everything before it was already yielded.
            failed_at, _, error = pending
            raise JSONLCorruptionError(
                f"{source}: corrupt JSONL record at line {failed_at} "
                f"({type(error).__name__}: {error}); "
                f"intact records continue after it, so this is not a "
                f"truncated tail — refusing to guess",
                line_number=failed_at,
            ) from error
        try:
            record = parse(stripped)
        except Exception as error:  # noqa: BLE001 - classified below
            pending = (line_number, stripped, error)
            continue
        yield record
    if pending is not None:
        failed_at, text, error = pending
        warnings.warn(
            f"{source}: ignoring truncated final JSONL record at line "
            f"{failed_at} ({type(error).__name__}: {error}) — the writer "
            f"was likely killed mid-write; {failed_at - 1} earlier "
            f"line(s) were read intact",
            TruncatedJSONLWarning,
            stacklevel=3,
        )
