"""Shared utilities: seeded randomness, tracing, and argument validation."""

from repro.utils.rng import RngStream, child_rng, make_rng
from repro.utils.trace import Trace, TraceEvent
from repro.utils.validation import (
    require,
    require_epsilon,
    require_non_negative,
    require_positive,
    require_probability,
)

__all__ = [
    "RngStream",
    "child_rng",
    "make_rng",
    "Trace",
    "TraceEvent",
    "require",
    "require_epsilon",
    "require_non_negative",
    "require_positive",
    "require_probability",
]
