"""Lightweight structured tracing for algorithm instrumentation.

The experiment harness (``repro.analysis``) needs per-phase measurements —
rounds charged, edges shipped, estimate deviations — without the algorithms
growing ad-hoc logging code.  Algorithms append :class:`TraceEvent` records
to an optional :class:`Trace`; a ``None`` trace costs one branch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One named measurement with arbitrary payload fields."""

    kind: str
    payload: Dict[str, Any]

    def __getitem__(self, key: str) -> Any:
        return self.payload[key]


class Trace:
    """An append-only list of :class:`TraceEvent` with query helpers."""

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []

    def record(self, kind: str, **payload: Any) -> None:
        """Append an event of ``kind`` with ``payload`` fields."""
        self._events.append(TraceEvent(kind=kind, payload=dict(payload)))

    def events(self, kind: Optional[str] = None) -> List[TraceEvent]:
        """All events, or only those matching ``kind``."""
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event.kind == kind]

    def values(self, kind: str, key: str) -> List[Any]:
        """The ``key`` field of every event of ``kind``, in order."""
        return [event[key] for event in self.events(kind)]

    def last(self, kind: str) -> Optional[TraceEvent]:
        """The most recent event of ``kind``, or ``None``."""
        for event in reversed(self._events):
            if event.kind == kind:
                return event
        return None

    def count(self, kind: str) -> int:
        """Number of events of ``kind``."""
        return sum(1 for event in self._events if event.kind == kind)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)


def maybe_record(trace: Optional[Trace], kind: str, **payload: Any) -> None:
    """Record on ``trace`` if it is not ``None`` (hot-path helper)."""
    if trace is not None:
        trace.record(kind, **payload)
