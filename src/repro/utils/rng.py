"""Deterministic randomness management.

Every randomized algorithm in this library takes an explicit ``seed`` (or an
already-constructed :class:`random.Random`) so that runs are reproducible.
Independent subsystems derive *child* generators from a parent via
:func:`child_rng`, which mixes a string label into the seed; this guarantees
that adding randomness consumption to one subsystem never perturbs another.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator, Optional, Sequence, Union

import numpy as np

try:  # the C core class: same seeding/stream, no gauss bookkeeping
    import _random

    _CoreRandom = _random.Random
except ImportError:  # pragma: no cover - exotic builds
    _CoreRandom = random.Random  # type: ignore[assignment]

SeedLike = Union[int, random.Random, None]

_DEFAULT_SEED = 0x5EED


def make_rng(seed: SeedLike = None) -> random.Random:
    """Return a :class:`random.Random` for ``seed``.

    ``seed`` may be an int, an existing generator (returned unchanged), or
    ``None`` (a fixed default seed — the library is deterministic unless the
    caller opts out by passing their own entropy).
    """
    if isinstance(seed, random.Random):
        return seed
    if seed is None:
        seed = _DEFAULT_SEED
    return random.Random(seed)


def child_rng(parent: random.Random, label: str) -> random.Random:
    """Derive an independent generator from ``parent`` keyed by ``label``.

    The derivation hashes a draw from the parent together with the label, so
    distinct labels yield statistically independent streams and the same
    (parent state, label) pair always yields the same child.
    """
    base = parent.getrandbits(64)
    digest = hashlib.sha256(f"{base}:{label}".encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


class RngStream:
    """A labelled family of generators for multi-round algorithms.

    Algorithms that need "fresh, independent randomness per (entity, round)"
    — e.g. the per-vertex, per-iteration thresholds ``T_{v,t}`` of
    Central-Rand — draw them through an :class:`RngStream` so the value is a
    pure function of ``(seed, entity, round)``.  This is what lets the MPC
    simulation and the centralized reference algorithm consume *the same*
    thresholds, as the paper's coupling argument (Section 4.4.3) requires.
    """

    def __init__(self, seed: SeedLike = None, namespace: str = "") -> None:
        self._seed_material = make_rng(seed).getrandbits(64)
        self._namespace = namespace

    def rng_for(self, *key: object) -> random.Random:
        """Return the generator associated with ``key`` (deterministic)."""
        material = f"{self._namespace}|{self._seed_material}|" + "|".join(
            repr(part) for part in key
        )
        digest = hashlib.sha256(material.encode("utf-8")).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    def uniform(self, lo: float, hi: float, *key: object) -> float:
        """A uniform draw in ``[lo, hi]`` determined by ``key``."""
        return self.rng_for(*key).uniform(lo, hi)

    def random(self, *key: object) -> float:
        """A uniform draw in ``[0, 1)`` determined by ``key``."""
        return self.rng_for(*key).random()

    def iter_uniform(self, lo: float, hi: float, *key: object) -> Iterator[float]:
        """An infinite stream of uniform draws determined by ``key``."""
        rng = self.rng_for(*key)
        while True:
            yield rng.uniform(lo, hi)

    # -- batched draws ------------------------------------------------------
    #
    # The per-(entity, round) draws of the vectorized hot paths (Pregel
    # superstep kernels, the Central-Rand threshold band) arrive thousands
    # at a time.  The scalar path pays per call for namespace formatting,
    # a hashlib object, and a freshly *constructed* ``random.Random``; the
    # batch path assembles the whole batch's key material in one pass and
    # drains it through a single fused hash→reseed→draw loop over one
    # reused C-core generator.  The values are bit-for-bit identical to
    # the scalar methods — each draw is still SHA-256(material) feeding a
    # Mersenne-Twister seed — so callers can batch freely without
    # perturbing seeded outputs.

    def _material_parts(self, entities: Sequence[int], key: Sequence[object]):
        """Per-entity key material, encoded; ``entities`` vary, ``key`` is fixed."""
        prefix = f"{self._namespace}|{self._seed_material}|"
        suffix = "".join(f"|{part!r}" for part in key)
        # ``tolist`` normalizes NumPy integers to Python ints so the
        # material matches ``repr`` in the scalar path exactly.
        ents = np.asarray(entities, dtype=np.int64).tolist()
        return [f"{prefix}{e}{suffix}".encode("utf-8") for e in ents]

    def random_batch(self, entities: Sequence[int], *key: object) -> np.ndarray:
        """``[self.random(e, *key) for e in entities]``, batched."""
        parts = self._material_parts(entities, key)
        out = np.empty(len(parts), dtype=np.float64)
        core = _CoreRandom()
        reseed = core.seed
        draw = core.random
        sha = hashlib.sha256
        from_bytes = int.from_bytes
        for i, part in enumerate(parts):
            reseed(from_bytes(sha(part).digest()[:8], "big"))
            out[i] = draw()
        return out

    def uniform_batch(
        self, lo: float, hi: float, entities: Sequence[int], *key: object
    ) -> np.ndarray:
        """``[self.uniform(lo, hi, e, *key) for e in entities]``, batched.

        The affine transform below is ``random.Random.uniform``'s own
        ``a + (b - a) * random()``, applied elementwise — NumPy float64
        rounds identically to CPython floats, so this stays bit-for-bit
        equal to the scalar method.
        """
        out = self.random_batch(entities, *key)
        out *= hi - lo
        out += lo
        return out


def random_permutation(n: int, seed: SeedLike = None) -> list:
    """A uniformly random permutation of ``range(n)``."""
    rng = make_rng(seed)
    perm = list(range(n))
    rng.shuffle(perm)
    return perm
