"""Deterministic randomness management.

Every randomized algorithm in this library takes an explicit ``seed`` (or an
already-constructed :class:`random.Random`) so that runs are reproducible.
Independent subsystems derive *child* generators from a parent via
:func:`child_rng`, which mixes a string label into the seed; this guarantees
that adding randomness consumption to one subsystem never perturbs another.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator, Optional, Union

SeedLike = Union[int, random.Random, None]

_DEFAULT_SEED = 0x5EED


def make_rng(seed: SeedLike = None) -> random.Random:
    """Return a :class:`random.Random` for ``seed``.

    ``seed`` may be an int, an existing generator (returned unchanged), or
    ``None`` (a fixed default seed — the library is deterministic unless the
    caller opts out by passing their own entropy).
    """
    if isinstance(seed, random.Random):
        return seed
    if seed is None:
        seed = _DEFAULT_SEED
    return random.Random(seed)


def child_rng(parent: random.Random, label: str) -> random.Random:
    """Derive an independent generator from ``parent`` keyed by ``label``.

    The derivation hashes a draw from the parent together with the label, so
    distinct labels yield statistically independent streams and the same
    (parent state, label) pair always yields the same child.
    """
    base = parent.getrandbits(64)
    digest = hashlib.sha256(f"{base}:{label}".encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


class RngStream:
    """A labelled family of generators for multi-round algorithms.

    Algorithms that need "fresh, independent randomness per (entity, round)"
    — e.g. the per-vertex, per-iteration thresholds ``T_{v,t}`` of
    Central-Rand — draw them through an :class:`RngStream` so the value is a
    pure function of ``(seed, entity, round)``.  This is what lets the MPC
    simulation and the centralized reference algorithm consume *the same*
    thresholds, as the paper's coupling argument (Section 4.4.3) requires.
    """

    def __init__(self, seed: SeedLike = None, namespace: str = "") -> None:
        self._seed_material = make_rng(seed).getrandbits(64)
        self._namespace = namespace

    def rng_for(self, *key: object) -> random.Random:
        """Return the generator associated with ``key`` (deterministic)."""
        material = f"{self._namespace}|{self._seed_material}|" + "|".join(
            repr(part) for part in key
        )
        digest = hashlib.sha256(material.encode("utf-8")).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    def uniform(self, lo: float, hi: float, *key: object) -> float:
        """A uniform draw in ``[lo, hi]`` determined by ``key``."""
        return self.rng_for(*key).uniform(lo, hi)

    def random(self, *key: object) -> float:
        """A uniform draw in ``[0, 1)`` determined by ``key``."""
        return self.rng_for(*key).random()

    def iter_uniform(self, lo: float, hi: float, *key: object) -> Iterator[float]:
        """An infinite stream of uniform draws determined by ``key``."""
        rng = self.rng_for(*key)
        while True:
            yield rng.uniform(lo, hi)


def random_permutation(n: int, seed: SeedLike = None) -> list:
    """A uniformly random permutation of ``range(n)``."""
    rng = make_rng(seed)
    perm = list(range(n))
    rng.shuffle(perm)
    return perm
