"""The uniform, serializable outcome of every façade run.

Every ``(task, backend)`` adapter — whatever bespoke dataclass the
underlying entry point returns — is normalized into one frozen
:class:`RunReport`: the solution in a canonical JSON-ready shape, quality
metrics computed from ground-truth validators, the measured round count,
the seed and config snapshot that reproduce the run, and wall time.
``to_json`` / ``from_json`` round-trip exactly, which is what lets
:func:`repro.api.solve_many` stream results as JSONL and lets sweeps be
analyzed offline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

# Solution kinds determine the canonical JSON shape of ``solution``.
VERTEX_SET = "vertex_set"  # sorted list of ints
EDGE_SET = "edge_set"  # sorted list of [u, v] pairs, u < v
FRACTIONAL = "fractional"  # sorted list of [u, v, x] triples, u < v

_SOLUTION_KINDS = (VERTEX_SET, EDGE_SET, FRACTIONAL)

# Serialization schema of RunReport.to_dict/to_json.  Version 1 is the
# pre-verification shape (no ``schema``/``total_comm_words``/
# ``verification`` keys); version 2 added those fields.  ``from_dict``
# accepts every listed version and rejects anything else, so JSONL written
# by a future incompatible layout fails loudly instead of loading with
# silently-dropped fields.
SCHEMA_VERSION = 2
_SUPPORTED_SCHEMAS = (1, 2)


def canonical_solution(kind: str, solution: Any) -> Any:
    """Normalize a solver's raw solution into its canonical JSON shape."""
    if kind == VERTEX_SET:
        if isinstance(solution, np.ndarray):
            # Counter-mode solvers return vertex arrays; sort in C and
            # convert once — per-element ``int(v)`` over 10M numpy scalars
            # is minutes of pure interpreter overhead.
            return np.sort(solution.astype(np.int64, copy=False)).tolist()
        return sorted(int(v) for v in solution)
    if kind == EDGE_SET:
        return sorted(
            [min(int(u), int(v)), max(int(u), int(v))] for u, v in solution
        )
    if kind == FRACTIONAL:
        return sorted(
            [min(int(u), int(v)), max(int(u), int(v)), float(x)]
            for (u, v), x in solution.items()
        )
    raise ValueError(f"unknown solution kind {kind!r}")


@dataclass(frozen=True)
class RunReport:
    """One façade run, fully described and serializable.

    Attributes
    ----------
    task / backend:
        The registry pair that produced this report.
    n / num_edges:
        Input graph size.
    solution_kind:
        One of ``"vertex_set"``, ``"edge_set"``, ``"fractional"``.
    solution:
        The canonical solution (see :func:`canonical_solution`).
    metrics:
        Quality metrics from ground-truth validators (``valid``, sizes,
        weights; task-dependent).
    rounds:
        Measured rounds of the model the backend runs in (0 for
        centralized baselines, which have no round notion).
    max_machine_words:
        Largest per-machine residency/volume the backend measured
        (0 when the backend does not account memory).
    seed:
        The seed the run was invoked with (``None`` means the library's
        deterministic default).
    config:
        JSON snapshot of the resolved config dataclass (empty dict when
        the backend takes no config).
    wall_time_s:
        Wall-clock seconds spent inside the solver call.
    peak_rss_bytes:
        Peak resident-set size of the process after the solver call
        (``ru_maxrss``; 0 when the platform cannot measure it).  Facade
        sweeps thereby double as perf data — every JSONL row carries its
        wall-clock and memory high-water mark.
    total_comm_words:
        Total words communicated across all machines over the whole run
        (0 when the backend does not account communication volume).
    verification:
        Serialized :class:`repro.verify.Certificate` when the run was
        invoked with ``verify=`` — invariant checks, oracle ratios, and
        round/memory budget audits (empty dict when verification was not
        requested).
    extras:
        Backend-specific measurements (prefix phases, Lenzen volumes,
        supersteps, ...) preserved for experiment tables.
    schema:
        Serialization schema version (see :data:`SCHEMA_VERSION`).
    """

    task: str
    backend: str
    n: int
    num_edges: int
    solution_kind: str
    solution: Any
    metrics: Dict[str, Any] = field(default_factory=dict)
    rounds: int = 0
    max_machine_words: int = 0
    seed: Optional[int] = None
    config: Dict[str, Any] = field(default_factory=dict)
    wall_time_s: float = 0.0
    peak_rss_bytes: int = 0
    total_comm_words: int = 0
    verification: Dict[str, Any] = field(default_factory=dict)
    extras: Dict[str, Any] = field(default_factory=dict)
    schema: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.solution_kind not in _SOLUTION_KINDS:
            raise ValueError(
                f"solution_kind must be one of {_SOLUTION_KINDS}, "
                f"got {self.solution_kind!r}"
            )
        if self.schema not in _SUPPORTED_SCHEMAS:
            raise ValueError(
                f"unsupported RunReport schema version {self.schema!r}; "
                f"supported: {_SUPPORTED_SCHEMAS}"
            )

    # -- solution accessors -------------------------------------------------

    def vertex_set(self) -> Set[int]:
        """The solution as a vertex set (``vertex_set`` reports only)."""
        if self.solution_kind != VERTEX_SET:
            raise TypeError(f"solution is {self.solution_kind}, not a vertex set")
        return set(self.solution)

    def edge_set(self) -> Set[Tuple[int, int]]:
        """The solution as a set of canonical edges (``edge_set`` only)."""
        if self.solution_kind != EDGE_SET:
            raise TypeError(f"solution is {self.solution_kind}, not an edge set")
        return {(u, v) for u, v in self.solution}

    def edge_weights(self) -> Dict[Tuple[int, int], float]:
        """The solution as an edge-weight map (``fractional`` only)."""
        if self.solution_kind != FRACTIONAL:
            raise TypeError(f"solution is {self.solution_kind}, not fractional")
        return {(u, v): x for u, v, x in self.solution}

    @property
    def valid(self) -> bool:
        """Whether the ground-truth validator accepted the solution."""
        return bool(self.metrics.get("valid", False))

    @property
    def verified(self) -> bool:
        """Whether a verification certificate was recorded and fully passed."""
        return bool(self.verification.get("ok", False))

    @property
    def size(self) -> int:
        """Cardinality of the solution (vertices, edges, or support)."""
        return len(self.solution)

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A plain-dict snapshot, safe for ``json.dumps``."""
        return {
            "task": self.task,
            "backend": self.backend,
            "n": self.n,
            "num_edges": self.num_edges,
            "solution_kind": self.solution_kind,
            "solution": self.solution,
            "metrics": dict(self.metrics),
            "rounds": self.rounds,
            "max_machine_words": self.max_machine_words,
            "seed": self.seed,
            "config": dict(self.config),
            "wall_time_s": self.wall_time_s,
            "peak_rss_bytes": self.peak_rss_bytes,
            "total_comm_words": self.total_comm_words,
            "verification": dict(self.verification),
            "extras": dict(self.extras),
            "schema": self.schema,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize to a JSON string (one line by default, for JSONL)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunReport":
        """Rebuild a report from :meth:`to_dict` output.

        Payloads without a ``schema`` key are version-1 rows (pre-dating
        the field); any version outside :data:`_SUPPORTED_SCHEMAS` raises
        ``ValueError`` rather than deserializing a shape this code does
        not understand.
        """
        schema = payload.get("schema", 1)
        if schema not in _SUPPORTED_SCHEMAS:
            raise ValueError(
                f"unsupported RunReport schema version {schema!r}; "
                f"supported: {_SUPPORTED_SCHEMAS}"
            )
        solution_kind = payload["solution_kind"]
        raw = payload["solution"]
        if solution_kind == VERTEX_SET:
            solution = [int(v) for v in raw]
        elif solution_kind == EDGE_SET:
            solution = [[int(u), int(v)] for u, v in raw]
        else:
            solution = [[int(u), int(v), float(x)] for u, v, x in raw]
        return cls(
            task=payload["task"],
            backend=payload["backend"],
            n=int(payload["n"]),
            num_edges=int(payload["num_edges"]),
            solution_kind=solution_kind,
            solution=solution,
            metrics=dict(payload.get("metrics", {})),
            rounds=int(payload.get("rounds", 0)),
            max_machine_words=int(payload.get("max_machine_words", 0)),
            seed=payload.get("seed"),
            config=dict(payload.get("config", {})),
            wall_time_s=float(payload.get("wall_time_s", 0.0)),
            peak_rss_bytes=int(payload.get("peak_rss_bytes", 0)),
            total_comm_words=int(payload.get("total_comm_words", 0)),
            verification=dict(payload.get("verification", {})),
            extras=dict(payload.get("extras", {})),
            # Older payloads are upgraded in memory: absent fields take
            # their defaults, so the loaded object is always current-shape.
            schema=SCHEMA_VERSION,
        )

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        """Rebuild a report from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def summary_row(self) -> Dict[str, Any]:
        """A compact row for experiment tables (solution elided)."""
        row: Dict[str, Any] = {
            "task": self.task,
            "backend": self.backend,
            "n": self.n,
            "m": self.num_edges,
            "size": self.size,
            "rounds": self.rounds,
            "valid": self.valid,
            "seed": self.seed,
            "wall_time_s": round(self.wall_time_s, 4),
            "peak_rss_mb": round(self.peak_rss_bytes / 2**20, 1),
        }
        for key in ("weight", "ratio"):
            if key in self.metrics:
                row[key] = self.metrics[key]
        if self.verification:
            row["verified"] = self.verified
        return row
