"""The ``(task, backend)`` solver registry behind :func:`repro.api.solve`.

A *task* is a problem ("mis", "matching", ...); a *backend* is an execution
model or algorithm family ("mpc", "congested_clique", "pregel", "central",
"greedy").  Adapters registered here wrap the library's existing entry
points into one calling convention::

    adapter(graph, *, config, seed, trace) -> SolverOutput

so the façade can dispatch any pair uniformly, and a later PR adds a
backend (sharded, cached, remote) by registering new adapters — no caller
changes.  :data:`repro.api.registry` is the global instance populated by
:mod:`repro.api.adapters`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

TASKS = (
    "mis",
    "fractional_matching",
    "matching",
    "vertex_cover",
    "one_plus_eps_matching",
    "weighted_matching",
)

BACKENDS = (
    "mpc",
    "congested_clique",
    "pregel",
    "central",
    "greedy",
)


@dataclass
class SolverOutput:
    """What an adapter hands back to the façade.

    ``solution`` stays in the solver's natural type (set of vertices, set
    of edges, or edge-weight dict); the façade canonicalizes it per the
    entry's ``solution_kind``.
    """

    solution: Any
    rounds: int = 0
    max_machine_words: int = 0
    total_comm_words: int = 0
    extras: Dict[str, Any] = field(default_factory=dict)


SolverFn = Callable[..., SolverOutput]

# Round-complexity guarantee classes an entry can claim.  The budget
# auditor (repro.verify.budgets) turns these into concrete round budgets:
# "loglog" — the paper's O(log log n) regime; "log" — classic O(log n)
# per-round baselines (Luby, Israeli–Itai); "none" — no bound claimed
# (centralized references, greedy baselines).
ROUND_BOUNDS = ("loglog", "log", "none")


@dataclass(frozen=True)
class SolverEntry:
    """One registered ``(task, backend)`` pair."""

    task: str
    backend: str
    fn: SolverFn
    solution_kind: str
    description: str = ""
    config_factory: Optional[Callable[[], Any]] = None
    weighted: bool = False  # expects a WeightedGraph input
    priority: int = 0  # higher wins the "auto" backend resolution
    # Declared resource guarantees, audited by repro.verify against the
    # paper's bounds.  ``rounds_constant`` is the hidden constant of the
    # O(.) for this implementation (empirical, with headroom; see
    # VERIFICATION.md for how the defaults were calibrated).
    rounds_bound: str = "none"
    rounds_constant: float = 1.0
    # Whether the adapter accepts an ``executor=`` kwarg (see repro.dist).
    # The façade rejects executor requests for entries without it.
    supports_executor: bool = False
    # Whether the adapter accepts a ``governor=`` kwarg (see repro.govern).
    # Governance requests on entries without it are silently ignored —
    # central/greedy backends have no budget to govern, and a sweep over
    # backends must not fail on them.
    supports_governance: bool = False


class UnknownSolverError(KeyError):
    """Raised for an unregistered task or ``(task, backend)`` pair."""


class SolverRegistry:
    """Mapping of ``(task, backend)`` pairs to solver adapters."""

    def __init__(self) -> None:
        self._entries: Dict[Tuple[str, str], SolverEntry] = {}

    def register(
        self,
        task: str,
        backend: str,
        *,
        solution_kind: str,
        description: str = "",
        config_factory: Optional[Callable[[], Any]] = None,
        weighted: bool = False,
        priority: int = 0,
        rounds_bound: str = "none",
        rounds_constant: float = 1.0,
        supports_executor: bool = False,
        supports_governance: bool = False,
    ) -> Callable[[SolverFn], SolverFn]:
        """Decorator registering ``fn`` for ``(task, backend)``.

        Re-registering a pair raises — two adapters silently shadowing each
        other is exactly the wiring bug the registry exists to prevent.
        """
        if task not in TASKS:
            raise ValueError(f"unknown task {task!r}; known tasks: {TASKS}")
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; known backends: {BACKENDS}"
            )
        if rounds_bound not in ROUND_BOUNDS:
            raise ValueError(
                f"unknown rounds_bound {rounds_bound!r}; known: {ROUND_BOUNDS}"
            )
        if rounds_constant <= 0:
            raise ValueError(
                f"rounds_constant must be positive, got {rounds_constant}"
            )

        def wrap(fn: SolverFn) -> SolverFn:
            key = (task, backend)
            if key in self._entries:
                raise ValueError(f"{key} is already registered")
            self._entries[key] = SolverEntry(
                task=task,
                backend=backend,
                fn=fn,
                solution_kind=solution_kind,
                description=description,
                config_factory=config_factory,
                weighted=weighted,
                priority=priority,
                rounds_bound=rounds_bound,
                rounds_constant=rounds_constant,
                supports_executor=supports_executor,
                supports_governance=supports_governance,
            )
            return fn

        return wrap

    def get(self, task: str, backend: str) -> SolverEntry:
        """The entry for an exact ``(task, backend)`` pair."""
        entry = self._entries.get((task, backend))
        if entry is None:
            available = ", ".join(self.backends(task)) or "none"
            raise UnknownSolverError(
                f"no solver registered for task={task!r} backend={backend!r} "
                f"(available backends for {task!r}: {available})"
            )
        return entry

    def resolve(self, task: str, backend: str = "auto") -> SolverEntry:
        """The entry for ``backend``, or the highest-priority one on "auto"."""
        if task not in {t for t, _ in self._entries}:
            raise UnknownSolverError(
                f"no solvers registered for task {task!r}; "
                f"known tasks: {sorted({t for t, _ in self._entries})}"
            )
        if backend != "auto":
            return self.get(task, backend)
        candidates = [
            entry for (t, _), entry in self._entries.items() if t == task
        ]
        return max(candidates, key=lambda entry: (entry.priority, entry.backend))

    def tasks(self) -> List[str]:
        """Registered tasks, in canonical order."""
        present = {t for t, _ in self._entries}
        return [task for task in TASKS if task in present]

    def backends(self, task: str) -> List[str]:
        """Backends registered for ``task``, in canonical order."""
        present = {b for t, b in self._entries if t == task}
        return [backend for backend in BACKENDS if backend in present]

    def pairs(self) -> List[Tuple[str, str]]:
        """Every registered ``(task, backend)`` pair, canonically ordered."""
        return [
            (task, backend)
            for task in self.tasks()
            for backend in self.backends(task)
        ]

    def entries(self) -> List[SolverEntry]:
        """Every registered entry, canonically ordered."""
        return [self.get(task, backend) for task, backend in self.pairs()]

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, pair: Tuple[str, str]) -> bool:
        return pair in self._entries


# The global registry the façade dispatches through; populated by
# repro.api.adapters at package import.
registry = SolverRegistry()
