"""Command-line interface to the solver façade.

Examples::

    python -m repro.api list
    python -m repro.api solve --task mis --graph gnp:n=500,p=0.02 --seed 7
    python -m repro.api solve --task matching --backend pregel \\
        --graph file:graph.edges --json
    python -m repro.api sweep --tasks mis,matching --backends all \\
        --graphs gnp:n=200,p=0.05 gnp:n=400,p=0.02 --seeds 1,2,3 \\
        --jsonl reports.jsonl

Graph specs are ``kind:key=value,...``:

* ``gnp:n=500,p=0.02`` — Erdős–Rényi G(n, p)
* ``gnm:n=500,m=2000`` — uniform G(n, m)
* ``ba:n=500,attachment=3`` — Barabási–Albert preferential attachment
* ``grid:rows=20,cols=30`` — 2-D grid
* ``complete:n=40`` / ``cycle:n=50`` / ``path:n=50`` / ``star:leaves=30``
* ``wrandom:n=200,p=0.05`` — random weighted graph (weighted tasks)
* ``file:PATH`` — whitespace-separated edge list

The same console script is installed as ``repro`` (see ``setup.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from repro.api import registry, solve, solve_many, sweep
from repro.analysis.tables import format_table
from repro.graph import generators
from repro.graph.graph import Graph
from repro.graph.io import read_edge_list

_GENERATORS = {
    "gnp": lambda n, p, seed=0: generators.gnp_random_graph(
        int(n), float(p), seed=int(seed)
    ),
    "gnm": lambda n, m, seed=0: generators.gnm_random_graph(
        int(n), int(m), seed=int(seed)
    ),
    "ba": lambda n, attachment, seed=0: generators.barabasi_albert(
        int(n), int(attachment), seed=int(seed)
    ),
    "grid": lambda rows, cols: generators.grid_graph(int(rows), int(cols)),
    "complete": lambda n: generators.complete_graph(int(n)),
    "cycle": lambda n: generators.cycle_graph(int(n)),
    "path": lambda n: generators.path_graph(int(n)),
    "star": lambda leaves: generators.star_graph(int(leaves)),
    "wrandom": lambda n, p, seed=0, max_weight=100.0: generators.random_weighted_graph(
        int(n), float(p), max_weight=float(max_weight), seed=int(seed)
    ),
}


def parse_graph_spec(spec: str) -> Any:
    """Build a graph from a ``kind:key=value,...`` spec string."""
    kind, _, params = spec.partition(":")
    if kind == "file":
        if not params:
            raise ValueError("file: spec needs a path, e.g. file:graph.edges")
        return read_edge_list(params)
    builder = _GENERATORS.get(kind)
    if builder is None:
        raise ValueError(
            f"unknown graph kind {kind!r}; known: "
            f"{', '.join(sorted(_GENERATORS))}, file"
        )
    kwargs: Dict[str, str] = {}
    if params:
        for item in params.split(","):
            key, _, value = item.partition("=")
            if not _ or not key:
                raise ValueError(f"malformed graph parameter {item!r} in {spec!r}")
            kwargs[key] = value
    try:
        return builder(**kwargs)
    except TypeError as error:
        raise ValueError(f"bad parameters for {kind!r}: {error}") from None


def _parse_config(text: Optional[str]) -> Optional[Dict[str, Any]]:
    """Parse ``--config`` as JSON (e.g. '{"epsilon": 0.05}')."""
    if text is None:
        return None
    payload = json.loads(text)
    if not isinstance(payload, dict):
        raise ValueError("--config must be a JSON object")
    return payload


def _parse_fault_policy(text: Optional[str]):
    """Parse ``--fault-policy`` as FaultPolicy fields (e.g. '{"max_retries": 1}').

    The empty object ``'{}'`` opts into supervision with the default
    policy.
    """
    if text is None:
        return None
    from repro.dist import FaultPolicy

    payload = json.loads(text)
    if not isinstance(payload, dict):
        raise ValueError("--fault-policy must be a JSON object")
    try:
        return FaultPolicy(**payload)
    except TypeError as error:
        raise ValueError(f"bad --fault-policy: {error}") from None


def _parse_fault_plan(text: Optional[str]):
    """Parse ``--fault-plan`` as FaultPlan JSON ('{"specs": [...]}')."""
    if text is None:
        return None
    from repro.dist import FaultPlan

    payload = json.loads(text)
    try:
        return FaultPlan.from_dict(payload)
    except (TypeError, ValueError) as error:
        raise ValueError(f"bad --fault-plan: {error}") from None


def _parse_governance(text: Optional[str]) -> Any:
    """Parse ``--governance`` as GovernancePolicy fields (e.g. '{"watermark": 0.8}').

    The empty object ``'{}'`` opts in with the default policy; ``'off'``
    (or omitting the flag) leaves governance disabled.
    """
    if text is None or text == "off":
        return None
    payload = json.loads(text)
    if not isinstance(payload, dict):
        raise ValueError("--governance must be a JSON object (or 'off')")
    from repro.govern import GovernancePolicy

    try:
        return GovernancePolicy.from_any(payload) or True
    except TypeError as error:
        raise ValueError(f"bad --governance: {error}") from None


def _cmd_list(_: argparse.Namespace) -> int:
    rows = [
        {
            "task": entry.task,
            "backend": entry.backend,
            "auto": "*" if registry.resolve(entry.task) is entry else "",
            "description": entry.description,
        }
        for entry in registry.entries()
    ]
    print(format_table(rows, title="Registered (task, backend) solvers"))
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    graph = parse_graph_spec(args.graph)
    report = solve(
        args.task,
        graph,
        backend=args.backend,
        config=_parse_config(args.config),
        seed=args.seed,
        budget=args.budget,
        verify=args.verify,
        executor=args.executor,
        workers=args.workers,
        fault_policy=_parse_fault_policy(args.fault_policy),
        fault_plan=_parse_fault_plan(args.fault_plan),
        governance=_parse_governance(args.governance),
    )
    if args.json:
        print(report.to_json(indent=2))
    else:
        row = report.summary_row()
        row.update({k: v for k, v in report.metrics.items() if k != "size"})
        print(format_table([row], title=f"{report.task} via {report.backend}"))
        if args.verify and not report.verified:
            failed = [
                check["name"]
                for check in report.verification.get("checks", [])
                if not check["passed"]
            ]
            print(f"verification FAILED: {', '.join(failed)}", file=sys.stderr)
    ok = report.valid and (report.verified or not args.verify)
    return 0 if ok else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    graphs = [parse_graph_spec(spec) for spec in args.graphs]
    seeds = [int(s) for s in args.seeds.split(",")] if args.seeds else [None]
    backends: Any = args.backends
    if backends not in ("auto", "all"):
        backends = backends.split(",")
    specs = sweep(
        args.tasks.split(","),
        graphs,
        backends=backends,
        seeds=seeds,
        configs=(_parse_config(args.config),),
        budget=args.budget,
        governance=_parse_governance(args.governance),
    )
    result = solve_many(
        specs, processes=args.processes, jsonl_path=args.jsonl
    )
    print(format_table(result.rows(), title=f"sweep: {len(result)} runs"))
    if result.failures:
        print(f"\n{len(result.failures)} failures:", file=sys.stderr)
        for failure in result.failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    if args.jsonl:
        print(f"\nwrote {len(result)} reports to {args.jsonl}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Unified solver façade for the PODC'18 MPC reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show registered (task, backend) pairs")

    solve_p = sub.add_parser("solve", help="run one task on one graph")
    solve_p.add_argument("--task", required=True, choices=registry.tasks())
    solve_p.add_argument("--backend", default="auto")
    solve_p.add_argument("--graph", required=True, help="graph spec (see module doc)")
    solve_p.add_argument("--seed", type=int, default=None)
    solve_p.add_argument("--budget", type=float, default=None)
    solve_p.add_argument("--config", default=None, help="JSON config overrides")
    solve_p.add_argument("--json", action="store_true", help="print the full report")
    solve_p.add_argument(
        "--executor",
        default=None,
        choices=("local", "parallel"),
        help="run the MPC solver through repro.dist (parallel = worker pool)",
    )
    solve_p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for --executor (default 2)",
    )
    solve_p.add_argument(
        "--fault-policy",
        default=None,
        metavar="JSON",
        help=(
            "supervise --executor parallel: FaultPolicy fields as JSON "
            "('{}' = defaults; e.g. '{\"max_retries\": 1, "
            "\"step_timeout_s\": 10}')"
        ),
    )
    solve_p.add_argument(
        "--fault-plan",
        default=None,
        metavar="JSON",
        help=(
            "inject deterministic faults (chaos testing): FaultPlan JSON, "
            "e.g. '{\"specs\": [{\"kind\": \"crash\", \"worker\": 1}]}'"
        ),
    )
    solve_p.add_argument(
        "--governance",
        default=None,
        metavar="JSON",
        help=(
            "govern the memory envelope (repro.govern): GovernancePolicy "
            "fields as JSON ('{}' = defaults; e.g. '{\"watermark\": 0.8, "
            "\"max_chunks\": 32}')"
        ),
    )
    solve_p.add_argument(
        "--verify",
        action="store_true",
        help="attach a repro.verify certificate; non-zero exit if it fails",
    )

    sweep_p = sub.add_parser("sweep", help="run a batch sweep")
    sweep_p.add_argument("--tasks", required=True, help="comma-separated tasks")
    sweep_p.add_argument(
        "--backends", default="auto", help="'auto', 'all', or comma-separated names"
    )
    sweep_p.add_argument(
        "--graphs", required=True, nargs="+", help="one or more graph specs"
    )
    sweep_p.add_argument("--seeds", default=None, help="comma-separated ints")
    sweep_p.add_argument("--budget", type=float, default=None)
    sweep_p.add_argument(
        "--governance",
        default=None,
        metavar="JSON",
        help="sweep-wide GovernancePolicy JSON ('{}' = defaults)",
    )
    sweep_p.add_argument("--config", default=None, help="JSON config overrides")
    sweep_p.add_argument("--processes", type=int, default=None)
    sweep_p.add_argument("--jsonl", default=None, help="stream reports to this file")

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"list": _cmd_list, "solve": _cmd_solve, "sweep": _cmd_sweep}
    try:
        return handlers[args.command](args)
    except (ValueError, KeyError, TypeError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
