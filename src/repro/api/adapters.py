"""Registered adapters: the library's entry points as façade backends.

Each adapter is a thin shim — the algorithm modules keep their bespoke
signatures and result dataclasses (all existing callers and tests stay
valid), and the registry entry translates to the façade convention.
Backend-specific measurements (prefix phases, Lenzen volumes, supersteps)
are preserved in ``extras`` so experiment tables lose nothing by going
through :func:`repro.api.solve`.
"""

from __future__ import annotations

import math
from typing import Any, Optional

from repro.api.registry import SolverOutput, registry
from repro.api.report import EDGE_SET, FRACTIONAL, VERTEX_SET
from repro.baselines.blossom import maximum_matching as blossom_maximum_matching
from repro.baselines.greedy import greedy_maximal_matching, greedy_mis_sequential
from repro.congested_clique.matching import congested_clique_fractional_matching
from repro.congested_clique.mis import congested_clique_mis
from repro.core.augmenting import improve_matching, one_plus_eps_matching
from repro.core.central import central_fractional_matching
from repro.core.config import MatchingConfig, MISConfig
from repro.core.integral import mpc_maximum_matching
from repro.core.matching_mpc import mpc_fractional_matching
from repro.core.mis_mpc import mis_mpc
from repro.core.vertex_cover import cover_from_maximal_matching, mpc_vertex_cover
from repro.core.weighted_matching import mpc_weighted_matching
from repro.graph.weighted import WeightedGraph
from repro.mpc.programs import luby_vertex_program, matching_vertex_program
from repro.mpc.words import edge_words
from repro.utils.rng import SeedLike
from repro.utils.trace import Trace

# ``rounds_constant`` values below are the empirical hidden constants of
# each implementation's O(.) round bound, calibrated with ~3-4x headroom
# over measured counts on the default verification matrix (n up to 50k);
# repro.verify.budgets multiplies them into the paper-bound budgets.  See
# VERIFICATION.md ("Calibration") before tightening or loosening one.


# ---------------------------------------------------------------------------
# mis
# ---------------------------------------------------------------------------


@registry.register(
    "mis",
    "mpc",
    solution_kind=VERTEX_SET,
    description="Theorem 1.1: O(log log Δ) MPC rounds via rank-prefix greedy",
    config_factory=MISConfig,
    priority=10,
    rounds_bound="loglog",
    rounds_constant=2.0,
    supports_executor=True,
    supports_governance=True,
)
def _mis_mpc(
    graph: Any,
    *,
    config: Optional[MISConfig] = None,
    seed: SeedLike = None,
    trace: Optional[Trace] = None,
    executor=None,
    governor=None,
) -> SolverOutput:
    result = mis_mpc(
        graph,
        seed=seed,
        config=config,
        trace=trace,
        executor=executor,
        governor=governor,
    )
    # Governed runs report the substrate's metered comm total (it counts
    # the chunked re-ships governance introduces); the ungoverned figure
    # keeps its historical definition — the parity pins fingerprint it.
    comm = (
        result.total_comm_words
        if governor is not None
        else edge_words(sum(result.shipped_edges_per_phase))
    )
    return SolverOutput(
        solution=result.mis,
        rounds=result.rounds,
        max_machine_words=result.peak_words,
        total_comm_words=comm,
        extras={
            "prefix_phases": result.prefix_phases,
            "max_shipped_edges": result.max_shipped_edges,
            "shipped_edges_per_phase": list(result.shipped_edges_per_phase),
            "luby_rounds_simulated": result.luby_rounds_simulated,
        },
    )


@registry.register(
    "mis",
    "congested_clique",
    solution_kind=VERTEX_SET,
    description="Section 3.2: Theorem 1.1 on the CONGESTED-CLIQUE network",
    config_factory=MISConfig,
    rounds_bound="loglog",
    rounds_constant=2.0,
)
def _mis_congested_clique(
    graph: Any,
    *,
    config: Optional[MISConfig] = None,
    seed: SeedLike = None,
    trace: Optional[Trace] = None,
) -> SolverOutput:
    result = congested_clique_mis(graph, seed=seed, config=config, trace=trace)
    return SolverOutput(
        solution=result.mis,
        rounds=result.rounds,
        max_machine_words=result.max_routed_messages,
        total_comm_words=sum(result.routed_per_phase),
        extras={
            "prefix_phases": result.prefix_phases,
            "max_routed_messages": result.max_routed_messages,
            "routed_per_phase": list(result.routed_per_phase),
        },
    )


@registry.register(
    "mis",
    "pregel",
    solution_kind=VERTEX_SET,
    description="Luby's MIS as a vertex program on the Pregel engine",
    rounds_bound="log",
    rounds_constant=2.0,
)
def _mis_pregel(
    graph: Any,
    *,
    config: Any = None,
    seed: SeedLike = None,
    trace: Optional[Trace] = None,
) -> SolverOutput:
    result = luby_vertex_program(graph, seed=seed)
    return SolverOutput(
        solution=result.mis,
        rounds=result.rounds,
        max_machine_words=result.max_machine_message_words,
        total_comm_words=result.total_message_words,
        extras={"supersteps": result.supersteps},
    )


@registry.register(
    "mis",
    "greedy",
    solution_kind=VERTEX_SET,
    description="Sequential randomized greedy MIS (the reference process)",
)
def _mis_greedy(
    graph: Any,
    *,
    config: Any = None,
    seed: SeedLike = None,
    trace: Optional[Trace] = None,
) -> SolverOutput:
    return SolverOutput(solution=greedy_mis_sequential(graph, seed=seed))


# ---------------------------------------------------------------------------
# fractional_matching
# ---------------------------------------------------------------------------


@registry.register(
    "fractional_matching",
    "mpc",
    solution_kind=FRACTIONAL,
    description="Lemma 4.2: MPC-Simulation in O(log log n) rounds",
    config_factory=MatchingConfig,
    priority=10,
    rounds_bound="loglog",
    rounds_constant=4.0,
    supports_executor=True,
    supports_governance=True,
)
def _fractional_mpc(
    graph: Any,
    *,
    config: Optional[MatchingConfig] = None,
    seed: SeedLike = None,
    trace: Optional[Trace] = None,
    executor=None,
    governor=None,
) -> SolverOutput:
    result = mpc_fractional_matching(
        graph,
        config=config,
        seed=seed,
        trace=trace,
        executor=executor,
        governor=governor,
    )
    return SolverOutput(
        solution=dict(result.matching.weights),
        rounds=result.rounds,
        max_machine_words=(
            result.peak_words if governor is not None else result.max_machine_edges
        ),
        total_comm_words=result.total_comm_words if governor is not None else 0,
        extras={
            "phases": result.phases,
            "iterations": result.iterations,
            "direct_iterations": result.direct_iterations,
            "max_machine_edges": result.max_machine_edges,
            "cover_size": len(result.vertex_cover),
            # Line (i) removals: each discards at most one unit of
            # fractional weight, which the verification lower band
            # discounts (see repro.verify.checkers.check_fractional_bands).
            "heavy_removed": len(result.heavy_removed),
        },
    )


@registry.register(
    "fractional_matching",
    "congested_clique",
    solution_kind=FRACTIONAL,
    description="Lemma 4.2 with CONGESTED-CLIQUE round accounting",
    config_factory=MatchingConfig,
    rounds_bound="loglog",
    rounds_constant=4.0,
)
def _fractional_congested_clique(
    graph: Any,
    *,
    config: Optional[MatchingConfig] = None,
    seed: SeedLike = None,
    trace: Optional[Trace] = None,
) -> SolverOutput:
    result = congested_clique_fractional_matching(
        graph, config=config, seed=seed, trace=trace
    )
    return SolverOutput(
        solution=dict(result.matching.weights),
        rounds=result.rounds,
        extras={
            "phases": result.phases,
            "direct_iterations": result.direct_iterations,
            "cover_size": len(result.vertex_cover),
            "heavy_removed": len(result.heavy_removed),
        },
    )


@registry.register(
    "fractional_matching",
    "central",
    solution_kind=FRACTIONAL,
    description="Lemma 4.1: the centralized Central-Rand reference process",
    config_factory=MatchingConfig,
)
def _fractional_central(
    graph: Any,
    *,
    config: Optional[MatchingConfig] = None,
    seed: SeedLike = None,
    trace: Optional[Trace] = None,
) -> SolverOutput:
    config = config or MatchingConfig()
    result = central_fractional_matching(
        graph,
        epsilon=config.epsilon,
        randomized_thresholds=True,
        seed=seed,
        trace=trace,
    )
    return SolverOutput(
        solution=dict(result.matching.weights),
        extras={
            "iterations": result.iterations,
            "cover_size": len(result.vertex_cover),
        },
    )


# ---------------------------------------------------------------------------
# matching (integral)
# ---------------------------------------------------------------------------


@registry.register(
    "matching",
    "mpc",
    solution_kind=EDGE_SET,
    description="Theorem 1.2: (2+ε)-approximate matching in O(log log n) rounds",
    config_factory=MatchingConfig,
    priority=10,
    rounds_bound="loglog",
    rounds_constant=64.0,
    supports_executor=True,
    supports_governance=True,
)
def _matching_mpc(
    graph: Any,
    *,
    config: Optional[MatchingConfig] = None,
    seed: SeedLike = None,
    trace: Optional[Trace] = None,
    executor=None,
    governor=None,
) -> SolverOutput:
    result = mpc_maximum_matching(
        graph,
        config=config,
        seed=seed,
        trace=trace,
        executor=executor,
        governor=governor,
    )
    return SolverOutput(
        solution=result.matching,
        rounds=result.rounds,
        max_machine_words=result.peak_words if governor is not None else 0,
        total_comm_words=result.total_comm_words if governor is not None else 0,
        extras={
            "passes": result.passes,
            "per_pass_sizes": list(result.per_pass_sizes),
            "cleanup_edges": result.cleanup_edges,
        },
    )


@registry.register(
    "matching",
    "pregel",
    solution_kind=EDGE_SET,
    description="Maximal matching by a propose/accept vertex program ([II86])",
    rounds_bound="log",
    rounds_constant=2.0,
)
def _matching_pregel(
    graph: Any,
    *,
    config: Any = None,
    seed: SeedLike = None,
    trace: Optional[Trace] = None,
) -> SolverOutput:
    result = matching_vertex_program(graph, seed=seed)
    return SolverOutput(
        solution=result.matching,
        rounds=result.rounds,
        max_machine_words=result.max_machine_message_words,
        total_comm_words=result.total_message_words,
        extras={"supersteps": result.supersteps},
    )


@registry.register(
    "matching",
    "greedy",
    solution_kind=EDGE_SET,
    description="Sequential greedy maximal matching (2-approximate)",
)
def _matching_greedy(
    graph: Any,
    *,
    config: Any = None,
    seed: SeedLike = None,
    trace: Optional[Trace] = None,
) -> SolverOutput:
    return SolverOutput(solution=greedy_maximal_matching(graph, seed=seed))


@registry.register(
    "matching",
    "central",
    solution_kind=EDGE_SET,
    description="Exact maximum matching via the Blossom algorithm",
)
def _matching_central(
    graph: Any,
    *,
    config: Any = None,
    seed: SeedLike = None,
    trace: Optional[Trace] = None,
) -> SolverOutput:
    return SolverOutput(
        solution=blossom_maximum_matching(graph), extras={"exact": True}
    )


# ---------------------------------------------------------------------------
# vertex_cover
# ---------------------------------------------------------------------------


@registry.register(
    "vertex_cover",
    "mpc",
    solution_kind=VERTEX_SET,
    description="Theorem 1.2: (2+ε)-approximate cover in O(log log n) rounds",
    config_factory=MatchingConfig,
    priority=10,
    rounds_bound="loglog",
    rounds_constant=4.0,
    supports_executor=True,
    supports_governance=True,
)
def _cover_mpc(
    graph: Any,
    *,
    config: Optional[MatchingConfig] = None,
    seed: SeedLike = None,
    trace: Optional[Trace] = None,
    executor=None,
    governor=None,
) -> SolverOutput:
    result = mpc_vertex_cover(
        graph,
        config=config,
        seed=seed,
        trace=trace,
        executor=executor,
        governor=governor,
    )
    return SolverOutput(
        solution=result.cover,
        rounds=result.rounds,
        max_machine_words=result.peak_words if governor is not None else 0,
        total_comm_words=result.total_comm_words if governor is not None else 0,
        extras={"fractional_weight": result.fractional_weight},
    )


@registry.register(
    "vertex_cover",
    "central",
    solution_kind=VERTEX_SET,
    description="Lemma 4.1: the frozen vertices of centralized Central-Rand",
    config_factory=MatchingConfig,
)
def _cover_central(
    graph: Any,
    *,
    config: Optional[MatchingConfig] = None,
    seed: SeedLike = None,
    trace: Optional[Trace] = None,
) -> SolverOutput:
    config = config or MatchingConfig()
    result = central_fractional_matching(
        graph,
        epsilon=config.epsilon,
        randomized_thresholds=True,
        seed=seed,
        trace=trace,
    )
    return SolverOutput(
        solution=result.vertex_cover,
        extras={
            "iterations": result.iterations,
            "fractional_weight": result.weight,
        },
    )


@registry.register(
    "vertex_cover",
    "greedy",
    solution_kind=VERTEX_SET,
    description="Folklore 2-approximation: endpoints of a maximal matching",
)
def _cover_greedy(
    graph: Any,
    *,
    config: Any = None,
    seed: SeedLike = None,
    trace: Optional[Trace] = None,
) -> SolverOutput:
    matching = greedy_maximal_matching(graph, seed=seed)
    return SolverOutput(solution=cover_from_maximal_matching(graph, matching))


# ---------------------------------------------------------------------------
# one_plus_eps_matching
# ---------------------------------------------------------------------------


@registry.register(
    "one_plus_eps_matching",
    "mpc",
    solution_kind=EDGE_SET,
    description="Corollary 1.3: (1+ε) matching via short augmenting paths",
    config_factory=MatchingConfig,
    priority=10,
    rounds_bound="loglog",
    rounds_constant=64.0,
    supports_executor=True,
    supports_governance=True,
)
def _one_plus_eps_mpc(
    graph: Any,
    *,
    config: Optional[MatchingConfig] = None,
    seed: SeedLike = None,
    trace: Optional[Trace] = None,
    executor=None,
    governor=None,
) -> SolverOutput:
    config = config or MatchingConfig()
    result = one_plus_eps_matching(
        graph,
        epsilon=config.epsilon,
        config=config,
        seed=seed,
        trace=trace,
        executor=executor,
        governor=governor,
    )
    return SolverOutput(
        solution=result.matching,
        rounds=result.rounds,
        max_machine_words=result.peak_words if governor is not None else 0,
        total_comm_words=result.total_comm_words if governor is not None else 0,
        extras={
            "sweeps": result.sweeps,
            "augmentations": result.augmentations,
            "max_path_length": result.max_path_length,
        },
    )


@registry.register(
    "one_plus_eps_matching",
    "greedy",
    solution_kind=EDGE_SET,
    description="Greedy maximal matching improved by short augmenting paths",
    config_factory=MatchingConfig,
)
def _one_plus_eps_greedy(
    graph: Any,
    *,
    config: Optional[MatchingConfig] = None,
    seed: SeedLike = None,
    trace: Optional[Trace] = None,
) -> SolverOutput:
    config = config or MatchingConfig()
    start = greedy_maximal_matching(graph, seed=seed)
    k = max(1, math.ceil(1.0 / config.epsilon))
    improved = improve_matching(
        graph, start, max_path_length=2 * k - 1, seed=seed, trace=trace
    )
    return SolverOutput(
        solution=improved.matching,
        rounds=improved.rounds,
        extras={
            "sweeps": improved.sweeps,
            "augmentations": improved.augmentations,
            "max_path_length": 2 * k - 1,
        },
    )


@registry.register(
    "one_plus_eps_matching",
    "central",
    solution_kind=EDGE_SET,
    description="Exact maximum matching via the Blossom algorithm",
)
def _one_plus_eps_central(
    graph: Any,
    *,
    config: Any = None,
    seed: SeedLike = None,
    trace: Optional[Trace] = None,
) -> SolverOutput:
    return SolverOutput(
        solution=blossom_maximum_matching(graph), extras={"exact": True}
    )


# ---------------------------------------------------------------------------
# weighted_matching
# ---------------------------------------------------------------------------


@registry.register(
    "weighted_matching",
    "mpc",
    solution_kind=EDGE_SET,
    description="Corollary 1.4: weight classes over O(log log n) maximal matching",
    config_factory=MatchingConfig,
    weighted=True,
    priority=10,
    rounds_bound="loglog",
    rounds_constant=2.0,
    supports_executor=True,
    supports_governance=True,
)
def _weighted_mpc(
    graph: WeightedGraph,
    *,
    config: Optional[MatchingConfig] = None,
    seed: SeedLike = None,
    trace: Optional[Trace] = None,
    executor=None,
    governor=None,
) -> SolverOutput:
    config = config or MatchingConfig()
    result = mpc_weighted_matching(
        graph,
        epsilon=config.epsilon,
        seed=seed,
        trace=trace,
        memory_factor=config.memory_factor,
        executor=executor,
        governor=governor,
    )
    return SolverOutput(
        solution=result.matching,
        rounds=result.rounds,
        extras={
            "classes": result.classes,
            "per_class_sizes": list(result.per_class_sizes),
        },
    )


@registry.register(
    "weighted_matching",
    "greedy",
    solution_kind=EDGE_SET,
    description="Heaviest-edge-first greedy matching (2-approximate)",
    weighted=True,
)
def _weighted_greedy(
    graph: WeightedGraph,
    *,
    config: Any = None,
    seed: SeedLike = None,
    trace: Optional[Trace] = None,
) -> SolverOutput:
    edges = sorted(graph.edges(), key=lambda uvw: (-uvw[2], uvw[0], uvw[1]))
    matched: set = set()
    matching = set()
    for u, v, _ in edges:
        if u in matched or v in matched:
            continue
        matching.add((u, v))
        matched.add(u)
        matched.add(v)
    return SolverOutput(solution=matching)
