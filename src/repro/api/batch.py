"""``solve_many()`` — the sweep/batch runner over the façade.

A sweep is a list of :class:`RunSpec` (task, backend, graph, seed, config,
budget).  :func:`sweep` builds the cross product the experiment harness
and benchmarks need (graphs × tasks × backends × seeds × configs);
:func:`solve_many` executes the specs serially or on a process pool and
optionally streams each finished :class:`RunReport` to a JSONL file as
it completes — the format later analysis (and the ``repro`` CLI) reads
back with :meth:`RunReport.from_json`.  The pool path degrades
gracefully: a spec that raises becomes a failure row, and a broken pool
(worker killed) becomes a ``BatchResult.incidents`` entry with the
unfinished specs salvaged serially.
"""

from __future__ import annotations

import dataclasses
import os
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    IO,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.api.facade import GraphLike, solve
from repro.api.report import RunReport

PathLike = Union[str, os.PathLike]


@dataclass(frozen=True)
class RunSpec:
    """One planned façade invocation.

    ``label`` travels into the report's ``extras`` (as ``spec_label``) so
    sweep rows stay identifiable after serialization.
    """

    task: str
    graph: GraphLike
    backend: str = "auto"
    seed: Optional[int] = None
    config: Any = None
    budget: Optional[float] = None
    verify: Any = False
    governance: Any = None
    label: str = ""


@dataclass
class BatchResult:
    """Outcome of :func:`solve_many`.

    ``incidents`` records batch-level degradations that are not any one
    spec's failure — e.g. the worker pool breaking mid-sweep (a worker
    process killed by the OS) and the unfinished specs being salvaged
    serially.  A sweep with incidents still delivers every report.
    """

    reports: List[RunReport] = field(default_factory=list)
    failures: List[Dict[str, Any]] = field(default_factory=list)
    incidents: List[str] = field(default_factory=list)
    elapsed_s: float = 0.0

    def __len__(self) -> int:
        return len(self.reports)

    def rows(self) -> List[Dict[str, Any]]:
        """Summary rows for table formatting."""
        return [report.summary_row() for report in self.reports]


def sweep(
    tasks: Sequence[str],
    graphs: Sequence[GraphLike],
    *,
    backends: Union[str, Sequence[str]] = "auto",
    seeds: Sequence[Optional[int]] = (None,),
    configs: Sequence[Any] = (None,),
    budget: Optional[float] = None,
    governance: Any = None,
) -> List[RunSpec]:
    """The cross product ``graphs × tasks × backends × seeds × configs``.

    ``backends`` may be ``"auto"``, one backend name, a sequence of names,
    or ``"all"`` (every backend registered for each task).
    """
    from repro.api.registry import registry

    specs: List[RunSpec] = []
    for graph_index, graph in enumerate(graphs):
        for task in tasks:
            if backends == "all":
                chosen: Sequence[str] = registry.backends(task)
            elif isinstance(backends, str):
                chosen = (backends,)
            else:
                chosen = backends
            for backend in chosen:
                for seed in seeds:
                    for config in configs:
                        specs.append(
                            RunSpec(
                                task=task,
                                graph=graph,
                                backend=backend,
                                seed=seed,
                                config=config,
                                budget=budget,
                                governance=governance,
                                label=f"g{graph_index}",
                            )
                        )
    return specs


def _run_spec(spec: RunSpec) -> RunReport:
    """Execute one spec (module-level so pools can pickle it)."""
    report = solve(
        spec.task,
        spec.graph,
        backend=spec.backend,
        config=spec.config,
        seed=spec.seed,
        budget=spec.budget,
        verify=spec.verify,
        governance=spec.governance,
    )
    extras: Dict[str, Any] = {}
    if spec.label:
        extras["spec_label"] = spec.label
    if spec.backend != report.backend:
        # The resolved backend (e.g. "auto" -> "numpy") overwrote the
        # requested one; keep the request so append-resume can match
        # this report back to its spec.
        extras["spec_backend"] = spec.backend
    if extras:
        report = dataclasses.replace(
            report, extras={**report.extras, **extras}
        )
    return report


def _trim_partial_tail(path: PathLike) -> None:
    """Truncate ``path`` back to the end of its last newline-terminated
    line (drops the partial record a killed writer left behind)."""
    with open(path, "rb+") as stream:
        stream.seek(0, os.SEEK_END)
        position = stream.tell()
        if position == 0:
            return
        stream.seek(position - 1)
        if stream.read(1) == b"\n":
            return
        chunk = 4096
        while position > 0:
            step = min(chunk, position)
            stream.seek(position - step)
            data = stream.read(step)
            cut = data.rfind(b"\n")
            if cut != -1:
                stream.truncate(position - step + cut + 1)
                return
            position -= step
        stream.truncate(0)


def _spec_key(spec: RunSpec) -> Tuple[str, str, Optional[int], str]:
    return (spec.task, spec.backend, spec.seed, spec.label)


def _report_key(report: RunReport) -> Tuple[str, str, Optional[int], str]:
    return (
        report.task,
        report.extras.get("spec_backend", report.backend),
        report.seed,
        report.extras.get("spec_label", ""),
    )


def _run_indexed(job):
    """Pool worker: never raises, so one failure cannot poison the batch.

    ``job`` is ``(index, spec-with-graph-stripped, graph_index)``; the
    graph is looked up in the worker-local object table installed by the
    :mod:`repro.dist.pool` initializer (sweeps reuse a handful of graphs
    across many specs, so each distinct graph ships to each worker once
    and task payloads stay O(1) regardless of graph size).  Returns
    ``(index, report, None)`` or ``(index, None, error_message)``.
    """
    from repro.dist.pool import worker_object

    index, spec, graph_index = job
    try:
        spec = dataclasses.replace(spec, graph=worker_object(graph_index))
        return index, _run_spec(spec), None
    except Exception as error:
        return index, None, f"{type(error).__name__}: {error}"


def _shared_graph_jobs(
    spec_list: List[RunSpec],
) -> Tuple[List[GraphLike], List[Tuple[int, RunSpec, int]]]:
    """Deduplicate spec graphs (by identity) into a table + light jobs."""
    from repro.dist.pool import dedupe_by_identity

    graph_table, graph_indices = dedupe_by_identity(
        [spec.graph for spec in spec_list]
    )
    jobs = [
        (index, dataclasses.replace(spec, graph=None), graph_indices[index])
        for index, spec in enumerate(spec_list)
    ]
    return graph_table, jobs


def solve_many(
    specs: Iterable[RunSpec],
    *,
    processes: Optional[int] = None,
    jsonl_path: Optional[PathLike] = None,
    append: bool = False,
    on_result: Optional[Callable[[RunReport], None]] = None,
    raise_on_error: bool = False,
) -> BatchResult:
    """Run every spec, optionally in parallel, streaming JSONL output.

    Parameters
    ----------
    specs:
        The planned runs (see :func:`sweep` for the cross-product helper).
    processes:
        ``None``/``0``/``1`` runs serially in-process; ``>= 2`` uses a
        process pool of that size (graphs and configs must be picklable,
        which every library type is).  If the pool *breaks* mid-sweep (a
        worker killed by the OS), the unfinished specs are re-run
        serially and the event is recorded in ``BatchResult.incidents``
        — one dying run never costs the rest of the sweep.
    jsonl_path:
        When given, each finished report is written to this file as one
        JSON line *as it completes*, so long sweeps are inspectable
        mid-flight.  On the pool path lines land in completion order;
        ``BatchResult.reports`` always keeps spec order.
    append:
        ``False`` (default) truncates ``jsonl_path`` so the file holds
        exactly this sweep; ``True`` appends, for resuming/accumulating
        across invocations.  Appending is *idempotent*: specs whose
        ``(task, backend, seed, label)`` already settled in the existing
        file are skipped (their prior reports join
        ``BatchResult.reports`` and the skip count lands in
        ``BatchResult.incidents``), so re-running an interrupted sweep
        only pays for what is missing.  Failed specs never reach the
        file, so they are always retried.
    on_result:
        Optional callback invoked with each finished report (progress
        bars, live tables).
    raise_on_error:
        ``False`` (default) records per-spec failures in
        ``BatchResult.failures`` and keeps going; ``True`` re-raises the
        first error.
    """
    spec_list = list(specs)
    result = BatchResult()
    started = time.perf_counter()

    if (
        jsonl_path is not None
        and append
        and os.path.exists(jsonl_path)
        and os.path.getsize(jsonl_path) > 0
    ):
        # Idempotent resume: anything that already settled into the file
        # is adopted as-is instead of re-run (last occurrence wins, so a
        # spec deliberately re-swept supersedes its older line).
        import warnings

        from repro.utils.jsonl import TruncatedJSONLWarning

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            settled_reports = {
                _report_key(report): report
                for report in read_jsonl(jsonl_path)
            }
        truncated = False
        for warning in caught:
            warnings.warn_explicit(
                warning.message,
                warning.category,
                warning.filename,
                warning.lineno,
            )
            truncated = truncated or issubclass(
                warning.category, TruncatedJSONLWarning
            )
        if truncated:
            # The file ends in an unparseable partial record (a killed
            # writer).  Appending after it would fuse the next report
            # onto the garbage, so cut the file back to its last intact
            # line; the chopped spec was never adopted and re-runs.
            _trim_partial_tail(jsonl_path)
        remaining: List[RunSpec] = []
        for spec in spec_list:
            prior = settled_reports.get(_spec_key(spec))
            if prior is not None:
                result.reports.append(prior)
            else:
                remaining.append(spec)
        if len(remaining) < len(spec_list):
            result.incidents.append(
                f"resume: skipped {len(spec_list) - len(remaining)} "
                f"already-settled spec(s) found in {os.fspath(jsonl_path)}"
            )
            spec_list = remaining

    stream: Optional[IO[str]] = None
    if jsonl_path is not None:
        stream = open(jsonl_path, "a" if append else "w", encoding="utf-8")

    def consume(report: RunReport) -> None:
        if stream is not None:
            stream.write(report.to_json() + "\n")
            stream.flush()
        if on_result is not None:
            on_result(report)

    def record_failure(spec: RunSpec, message: str) -> None:
        if raise_on_error:
            raise RuntimeError(
                f"spec failed (task={spec.task!r}, backend={spec.backend!r}, "
                f"seed={spec.seed!r}): {message}"
            )
        result.failures.append(
            {
                "task": spec.task,
                "backend": spec.backend,
                "seed": spec.seed,
                "label": spec.label,
                "error": message,
            }
        )

    try:
        if processes is not None and processes >= 2:
            from concurrent.futures import as_completed
            from concurrent.futures.process import BrokenProcessPool

            from repro.dist.pool import object_executor

            finished: Dict[int, RunReport] = {}
            settled: set = set()
            graph_table, jobs = _shared_graph_jobs(spec_list)
            broken: Optional[str] = None
            pool = object_executor(processes, graph_table)
            try:
                # Futures complete (and stream to JSONL/on_result) in
                # finish order — a slow head-of-line spec cannot delay
                # the fast ones behind it.  Unlike multiprocessing.Pool,
                # a worker process dying mid-task surfaces promptly as
                # BrokenProcessPool instead of hanging the iterator.
                futures = {
                    pool.submit(_run_indexed, job): job[0] for job in jobs
                }
                for future in as_completed(futures):
                    spec_index = futures[future]
                    try:
                        index, report, error = future.result()
                    except BrokenProcessPool as pool_error:
                        broken = f"{type(pool_error).__name__}: {pool_error}"
                        break
                    except Exception as error:  # defensive: _run_indexed
                        settled.add(spec_index)  # catches its own errors
                        record_failure(
                            spec_list[spec_index],
                            f"{type(error).__name__}: {error}",
                        )
                        continue
                    settled.add(index)
                    if error is not None:
                        record_failure(spec_list[index], error)
                    else:
                        finished[index] = report
                        consume(report)
            finally:
                pool.shutdown(wait=broken is None, cancel_futures=True)
            if broken is not None:
                # The pool is unusable (a worker was killed hard enough
                # to break it — OOM kill, os._exit in a solver).  The
                # sweep still completes: every unsettled spec is re-run
                # serially in this process.
                unsettled = [
                    index
                    for index in range(len(spec_list))
                    if index not in settled and index not in finished
                ]
                result.incidents.append(
                    f"worker pool broke mid-sweep ({broken}); "
                    f"{len(unsettled)} unfinished spec(s) re-run serially"
                )
                for index in unsettled:
                    spec = spec_list[index]
                    try:
                        report = _run_spec(spec)
                    except Exception as error:
                        record_failure(
                            spec, f"{type(error).__name__}: {error}"
                        )
                    else:
                        finished[index] = report
                        consume(report)
            result.reports.extend(
                finished[index] for index in sorted(finished)
            )
        else:
            for spec in spec_list:
                try:
                    report = _run_spec(spec)
                except Exception as error:
                    if raise_on_error:
                        raise
                    record_failure(spec, f"{type(error).__name__}: {error}")
                else:
                    result.reports.append(report)
                    consume(report)
    finally:
        if stream is not None:
            stream.close()

    result.elapsed_s = time.perf_counter() - started
    return result


def read_jsonl(path: PathLike) -> List[RunReport]:
    """Load every report from a JSONL file written by :func:`solve_many`.

    Crash-tolerant: a truncated final line — exactly what a killed
    ``solve_many`` writer leaves behind — is skipped with a
    :class:`~repro.utils.jsonl.TruncatedJSONLWarning` and every intact
    report is returned; a record failing to parse *mid-file* raises a
    line-numbered :class:`~repro.utils.jsonl.JSONLCorruptionError`.
    """
    from repro.utils.jsonl import parse_jsonl_lines

    with open(path, "r", encoding="utf-8") as stream:
        return list(parse_jsonl_lines(stream, RunReport.from_json, source=path))
