"""``solve()`` — one entry point for every task × backend pair.

The façade handles the plumbing every scenario used to re-wire by hand:
config resolution (``None`` → the backend's default dataclass, ``dict`` →
constructed, dataclass → used as-is), the optional memory ``budget``
override, seed threading, timing, ground-truth quality metrics, and the
uniform :class:`~repro.api.report.RunReport` output.
"""

from __future__ import annotations

import dataclasses
import sys
import time
from typing import Any, Dict, Optional, Union

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None  # type: ignore[assignment]

from repro.api.registry import SolverEntry, registry
from repro.dist.executor import resolve_executor
from repro.govern import GovernanceDegraded, GovernancePolicy, Governor
from repro.mpc.cluster import MemoryExceededError
from repro.api.report import (
    EDGE_SET,
    FRACTIONAL,
    VERTEX_SET,
    RunReport,
    canonical_solution,
)
from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph
from repro.graph.properties import (
    is_matching,
    is_maximal_independent_set,
    is_valid_fractional_matching,
    is_vertex_cover,
)
from repro.graph.weighted import WeightedGraph
from repro.utils.trace import Trace

GraphLike = Union[Graph, WeightedGraph, CSRGraph]

_RNG_MODES = ("sha", "counter")

# Where rung 3 of the governance ladder lands: the sequential reference
# solver for the task — no memory envelope to breach, quality still inside
# the verify oracle bands.
_DEGRADE_BACKENDS = {
    "mis": "greedy",
    "fractional_matching": "central",
    "matching": "greedy",
    "vertex_cover": "greedy",
    "one_plus_eps_matching": "greedy",
    "weighted_matching": "greedy",
}


def solve(
    task: str,
    graph: GraphLike,
    *,
    backend: str = "auto",
    config: Any = None,
    seed: Optional[int] = None,
    budget: Optional[float] = None,
    rng: Optional[str] = None,
    verify: Any = False,
    trace: Optional[Trace] = None,
    executor: Any = None,
    workers: Optional[int] = None,
    fault_policy: Any = None,
    fault_plan: Any = None,
    governance: Any = None,
) -> RunReport:
    """Solve ``task`` on ``graph`` with the chosen ``backend``.

    Parameters
    ----------
    task:
        One of :data:`repro.api.TASKS` (``"mis"``, ``"matching"``, ...).
    graph:
        A :class:`Graph`; ``"weighted_matching"`` takes a
        :class:`WeightedGraph` (a plain graph is wrapped with unit
        weights).  Weighted inputs to unweighted tasks run on their
        ``structure``.
    backend:
        A backend name or ``"auto"`` (the task's highest-priority backend
        — the paper's MPC algorithm wherever one exists).
    config:
        ``None`` (backend default), a config dataclass, or a dict of
        field overrides for the backend's config type.
    seed:
        Explicit integer seed for reproducibility (``None`` = the
        library's deterministic default).  Unlike the algorithm modules,
        the façade rejects ``random.Random`` instances — the report's
        ``seed`` field must be able to reproduce the run.
    budget:
        Optional per-machine memory budget in units of ``n`` words;
        overrides the config's ``memory_factor`` (the knob every sizing
        decision flows through via :class:`~repro.mpc.spec.ClusterSpec`).
        Backends without a memory model (``greedy``, ``pregel``
        baselines, exact solvers) ignore it, so sweep-wide budgets work
        with ``backends="all"``.
    rng:
        Randomness mode override: ``"sha"`` (the byte-pinned default) or
        ``"counter"`` (the vectorized order-free generator behind the
        out-of-core rung — deterministic per seed, not byte-identical to
        sha; see OUT_OF_CORE.md).  Mirrors ``budget`` semantics:
        backends with no config (``greedy``, ``pregel`` baselines, exact
        solvers) ignore it so sweep-wide settings work, a typed config
        without an ``rng`` field raises, and the resolved mode is
        stamped into ``report.config``.
    verify:
        ``False`` (default) skips verification; ``True`` runs the
        :mod:`repro.verify` certificate under the default
        :class:`~repro.verify.BudgetPolicy`; a ``BudgetPolicy`` instance
        runs it under that policy.  The serialized certificate (invariant
        checks, oracle ratios on small inputs, round/memory budget
        audits) lands in ``report.verification`` and travels through
        ``to_json``/``from_json`` like every other field.
    trace:
        Optional :class:`Trace` receiving the backend's instrumentation.
    executor:
        ``None`` (default, fully in-process), ``"local"`` (the
        :mod:`repro.dist` driver over the in-process reference transport
        — the behavior benchmarks compare against), ``"parallel"`` (a
        multiprocessing worker pool with shared-memory graph arrays), or
        a reusable :class:`repro.dist.DistExecutor` instance.  Only
        MPC-backend entries accept it; outputs and budget audits are
        byte-identical across executors for a fixed seed (see
        DISTRIBUTED.md).
    workers:
        Worker count for a string ``executor`` (default 2).  With an
        executor instance it must match the instance (or be ``None``);
        without an executor it is an error.
    fault_policy:
        Opt ``executor="parallel"`` into the supervised recovery path
        (:mod:`repro.dist.faults`): ``True`` for the default
        :class:`~repro.dist.FaultPolicy`, a policy instance, or a dict
        of its fields.  Failed phases are retried with backoff, dead
        workers respawned with their state journal replayed, and — when
        the budget runs out — the solve degrades mid-flight onto the
        in-process transport, byte-identical by construction.  The
        recovery record lands in ``report.extras["faults"]``.
    fault_plan:
        A :class:`~repro.dist.FaultPlan` (or its dict form) of
        deterministic fault injections, for chaos testing the supervised
        path; implies a default ``fault_policy`` when none is given.
        Requires ``executor="parallel"``.
    governance:
        Opt into the :mod:`repro.govern` load-governance ladder:
        ``True`` for the default :class:`~repro.govern.GovernancePolicy`,
        a policy instance, or a dict of its fields.  A governed solve
        watches observed per-phase load and intervenes *before* the hard
        memory cap aborts — adaptive sparsification, then batched
        chunking, then graceful degradation to the task's sequential
        reference backend — with every intervention recorded in
        ``report.extras["governance"]``.  Mirrors ``budget`` semantics:
        backends without a memory model ignore it so sweep-wide settings
        work.  When no rung fires the output is byte-identical to the
        ungoverned run; requires ``executor=None`` (the distributed
        transports have their own supervision, see ``fault_policy``).

    Returns
    -------
    RunReport
        Frozen, serializable; ``report.valid`` reflects the ground-truth
        validator for the task.
    """
    if seed is not None and not isinstance(seed, int):
        raise TypeError(
            f"solve() takes an int seed (got {type(seed).__name__}) so the "
            "report's seed field reproduces the run"
        )
    entry = registry.resolve(task, backend)
    dist_executor, owned = resolve_executor(
        executor, workers, fault_policy=fault_policy, fault_plan=fault_plan
    )
    if dist_executor is not None and not entry.supports_executor:
        if owned:
            dist_executor.close()
        raise ValueError(
            f"backend {entry.backend!r} for task {entry.task!r} does not "
            f"support an executor (only the MPC-backend solvers do)"
        )
    prepared = _prepare_graph(entry, graph)
    resolved_config = _resolve_config(entry, config, budget, rng)

    gov_policy = GovernancePolicy.from_any(governance)
    governor: Optional[Governor] = None
    if gov_policy is not None and entry.supports_governance:
        # Entries without governance support ignore the request (like
        # ``budget``) so sweep-wide settings work across backends.
        if dist_executor is not None:
            if owned:
                dist_executor.close()
            raise ValueError(
                "governance requires executor=None — the distributed "
                "transports carry their own supervision (fault_policy)"
            )
        governor = Governor(gov_policy)

    solver_kwargs: Dict[str, Any] = {}
    if dist_executor is not None:
        dist_executor.reset_metrics()
        solver_kwargs["executor"] = dist_executor
    if governor is not None:
        solver_kwargs["governor"] = governor
    degraded_entry: Optional[SolverEntry] = None
    try:
        started = time.perf_counter()
        try:
            output = entry.fn(
                prepared,
                config=resolved_config,
                seed=seed,
                trace=trace,
                **solver_kwargs,
            )
        except (GovernanceDegraded, MemoryExceededError) as failure:
            if governor is None or not gov_policy.allow_degrade:
                raise
            if isinstance(failure, MemoryExceededError):
                # The hard cap aborted despite rungs 1-2 (a disabled rung
                # or an unpredicted spike): record the degrade reason the
                # ladder would have written, then fall back the same way.
                try:
                    governor.degrade(
                        f"hard memory cap exceeded: {failure.used_words} > "
                        f"{failure.capacity_words} words",
                        failure.context,
                    )
                except GovernanceDegraded:
                    pass
            degraded_entry = registry.get(
                entry.task, _DEGRADE_BACKENDS[entry.task]
            )
            fallback_config = _resolve_config(
                degraded_entry,
                config if isinstance(config, dict) else None,
                None,
                None,
            )
            output = degraded_entry.fn(
                prepared, config=fallback_config, seed=seed, trace=trace
            )
        elapsed = time.perf_counter() - started
    finally:
        # Close owned workers before reading the RSS high-water mark so
        # RUSAGE_CHILDREN covers the (reaped) worker processes.
        if owned and dist_executor is not None:
            dist_executor.close()
    peak_rss = _peak_rss_bytes()

    solution = canonical_solution(entry.solution_kind, output.solution)
    structure = prepared.structure if isinstance(prepared, WeightedGraph) else prepared
    metrics = _quality_metrics(entry, prepared, structure, solution)

    extras = dict(output.extras)
    if dist_executor is not None:
        recovery_log = dist_executor.recovery_log
        extras["executor"] = {
            "kind": dist_executor.kind,
            "workers": dist_executor.workers,
            "distributed": dist_executor.distributed,
            "supervised": recovery_log is not None,
            "phase_walls": dist_executor.phase_walls(),
        }
        if recovery_log is not None:
            # Read after close: the log object outlives the transport.
            extras["faults"] = recovery_log.summary()
    if governor is not None:
        governance_record = governor.summary()
        governance_record["degraded"] = degraded_entry is not None
        if degraded_entry is not None:
            governance_record["degraded_to"] = degraded_entry.backend
            governance_record["reason"] = governor.degraded_reason
        extras["governance"] = governance_record

    report = RunReport(
        task=entry.task,
        backend=entry.backend,
        n=structure.num_vertices,
        num_edges=structure.num_edges,
        solution_kind=entry.solution_kind,
        solution=solution,
        metrics=metrics,
        rounds=output.rounds,
        max_machine_words=output.max_machine_words,
        seed=seed,
        config=_config_snapshot(resolved_config),
        wall_time_s=elapsed,
        peak_rss_bytes=peak_rss,
        total_comm_words=output.total_comm_words,
        extras=extras,
    )
    if verify:
        # Local import: repro.verify sits above the facade (its
        # differential harness drives solve()), so the dependency must
        # stay one-way at module-import time.
        from repro.verify import BudgetPolicy, certify_report

        policy = verify if isinstance(verify, BudgetPolicy) else None
        certificate = certify_report(prepared, report, entry=entry, policy=policy)
        report = dataclasses.replace(report, verification=certificate.to_dict())
    return report


# getrusage().ru_maxrss unit per platform: macOS reports bytes; Linux and
# the BSDs report kibibytes (so do AIX and Solaris where the field is
# filled at all).  Unknown POSIX platforms get the KiB majority reading.
_RU_MAXRSS_UNITS = {"darwin": 1}
_RU_MAXRSS_DEFAULT_UNIT = 1024


def _ru_maxrss_unit(platform: Optional[str] = None) -> int:
    """Bytes per ``ru_maxrss`` unit on ``platform`` (default: this one)."""
    name = sys.platform if platform is None else platform
    return _RU_MAXRSS_UNITS.get(name, _RU_MAXRSS_DEFAULT_UNIT)


def _peak_rss_bytes() -> int:
    """Peak resident-set size of this run, in bytes (0 if unknown).

    ``ru_maxrss`` is a process-lifetime high-water mark, so sweeps should
    read it as "memory needed to get this far", not a per-run delta.  The
    self reading misses executor worker processes entirely, so the
    ``RUSAGE_CHILDREN`` high-water mark (populated as workers are reaped
    — the façade closes owned executors before reading) is added: the sum
    bounds what the run kept resident across all its processes.  The raw
    values are platform-dependent (:data:`_RU_MAXRSS_UNITS`); the report
    field is normalized to bytes everywhere.
    """
    if resource is None:
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    peak += resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return int(peak * _ru_maxrss_unit())


def _prepare_graph(entry: SolverEntry, graph: GraphLike) -> GraphLike:
    """Match the input graph type to what the backend expects."""
    if entry.weighted:
        if isinstance(graph, WeightedGraph):
            return graph
        return WeightedGraph(
            graph.num_vertices, ((u, v, 1.0) for u, v in graph.edges())
        )
    if isinstance(graph, WeightedGraph):
        return graph.structure
    return graph


def _resolve_config(
    entry: SolverEntry,
    config: Any,
    budget: Optional[float],
    rng: Optional[str] = None,
) -> Any:
    """Normalize ``config`` to the backend's config dataclass (or None)."""
    if budget is not None and budget <= 0:
        raise ValueError(f"budget must be positive, got {budget}")
    if rng is not None and rng not in _RNG_MODES:
        raise ValueError(f"rng must be one of {_RNG_MODES}, got {rng!r}")
    if entry.config_factory is None:
        # Loose overrides (dicts, budget) are sweep-wide hints: a backend
        # with no knobs ignores them so ``backends="all"`` sweeps work.  A
        # typed config dataclass is targeted, so mis-routing it raises.
        if config is not None and not isinstance(config, dict):
            raise TypeError(
                f"backend {entry.backend!r} for task {entry.task!r} takes no config"
            )
        return None
    if config is None:
        resolved = entry.config_factory()
    elif isinstance(config, dict):
        resolved = entry.config_factory(**config)
    else:
        resolved = config
    if budget is not None:
        if not hasattr(resolved, "memory_factor"):
            raise TypeError(
                f"backend {entry.backend!r} config has no memory budget to override"
            )
        resolved = dataclasses.replace(resolved, memory_factor=float(budget))
    if rng is not None:
        if not hasattr(resolved, "rng"):
            raise TypeError(
                f"backend {entry.backend!r} config has no rng mode to override"
            )
        resolved = dataclasses.replace(resolved, rng=rng)
    return resolved


def _config_snapshot(config: Any) -> Dict[str, Any]:
    """A JSON-ready snapshot of the resolved config."""
    if config is None:
        return {}
    snapshot = dataclasses.asdict(config)
    snapshot["__type__"] = type(config).__name__
    return snapshot


def _quality_metrics(
    entry: SolverEntry,
    prepared: GraphLike,
    structure: Union[Graph, CSRGraph],
    solution: Any,
) -> Dict[str, Any]:
    """Ground-truth validity and size/weight metrics for the solution."""
    metrics: Dict[str, Any] = {"size": len(solution)}
    if entry.solution_kind == VERTEX_SET:
        # CSR validators take any iterable and build a mask — skipping the
        # Python set matters at the out-of-core scale (an n=10M MIS as a
        # set of ints costs hundreds of MB).
        chosen = solution if isinstance(structure, CSRGraph) else set(solution)
        if entry.task == "mis":
            metrics["valid"] = is_maximal_independent_set(structure, chosen)
        else:
            metrics["valid"] = is_vertex_cover(structure, chosen)
    elif entry.solution_kind == EDGE_SET:
        edges = [(u, v) for u, v in solution]
        metrics["valid"] = is_matching(structure, edges)
        if isinstance(prepared, WeightedGraph):
            metrics["weight"] = prepared.matching_weight(edges)
    elif entry.solution_kind == FRACTIONAL:
        weights = {(u, v): x for u, v, x in solution}
        metrics["valid"] = is_valid_fractional_matching(structure, weights)
        metrics["weight"] = sum(weights.values())
    return metrics
