"""``repro.api`` — the unified solver façade.

One entry point for every problem the library solves, on every execution
model it simulates::

    from repro.api import solve

    report = solve("mis", graph, backend="mpc", seed=7)
    report.valid, report.rounds, report.to_json()

Tasks (:data:`TASKS`): ``mis``, ``fractional_matching``, ``matching``,
``vertex_cover``, ``one_plus_eps_matching``, ``weighted_matching``.
Backends (:data:`BACKENDS`): ``mpc`` (the paper's algorithms),
``congested_clique``, ``pregel`` (vertex programs), ``central``
(centralized references / exact), ``greedy`` (sequential baselines).
``registry.pairs()`` lists what is wired; ``backend="auto"`` picks the
paper's MPC algorithm wherever one exists.

Sweeps go through :func:`solve_many` / :func:`sweep` (graphs × backends ×
seeds, optional process pool, streaming JSONL), and ``python -m repro.api``
exposes both from the shell.  Cluster sizing for every backend flows
through :class:`ClusterSpec`, the single home of the
memory-factor → machines/words derivation.

Dynamic workloads go through :func:`solve_stream` (re-exported from
:mod:`repro.stream`): an initial :func:`solve` plus incremental
maintenance across a stream of edge batches, reported as a
schema-versioned :class:`StreamReport`.
"""

from repro.api.facade import solve
from repro.api.batch import BatchResult, RunSpec, read_jsonl, solve_many, sweep
from repro.api.registry import (
    BACKENDS,
    TASKS,
    SolverEntry,
    SolverOutput,
    SolverRegistry,
    UnknownSolverError,
    registry,
)
from repro.api.report import RunReport, canonical_solution
from repro.mpc.spec import ClusterSpec

# Importing the adapters module populates the global registry.
import repro.api.adapters  # noqa: E402,F401  (registration side effect)

# Last: repro.stream's modules import repro.api lazily (inside functions),
# so pulling the stream entry points in here is cycle-free only once the
# façade above is fully bound.  repro.serve sits on top of repro.stream,
# so its report rides in under the same ordering constraint.
from repro.stream.driver import StreamReport, solve_stream  # noqa: E402
from repro.serve.report import ServeReport, TenantReport  # noqa: E402

__all__ = [
    "solve",
    "solve_stream",
    "StreamReport",
    "ServeReport",
    "TenantReport",
    "solve_many",
    "sweep",
    "read_jsonl",
    "BatchResult",
    "RunSpec",
    "RunReport",
    "canonical_solution",
    "SolverRegistry",
    "SolverEntry",
    "SolverOutput",
    "UnknownSolverError",
    "registry",
    "TASKS",
    "BACKENDS",
    "ClusterSpec",
]
