"""Structured governance events — the audit trail of every intervention.

Every time the governor acts (or observes load crossing the soft
watermark) it appends one :class:`GovernanceEvent`; the façade surfaces
the list in ``RunReport.extras["governance"]["events"]``.  Events are
the contract the adversarial-conformance suite checks: a governed run
that survived a budget squeeze must say *how* (sparsify / chunk /
degrade), with the predicted and budget word counts that justified the
intervention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

# Event kinds, in ladder order (watermark is an observation, not an
# intervention; degrade is terminal for the MPC attempt).
WATERMARK = "watermark"
SPARSIFY = "sparsify"
CHUNK = "chunk"
DEGRADE = "degrade"

EVENT_KINDS = (WATERMARK, SPARSIFY, CHUNK, DEGRADE)


@dataclass(frozen=True)
class GovernanceEvent:
    """One governance observation or intervention.

    Attributes
    ----------
    kind:
        One of :data:`EVENT_KINDS`.
    context:
        The phase context string of the operation governed (the same
        string the MPC substrate stamps on round charges), e.g.
        ``"matching: phase 3 scatter"``.
    predicted_words:
        The load (words) the estimator predicted for the operation —
        what *would* have landed on the hottest machine ungoverned.
    budget_words:
        The soft budget the prediction was compared against
        (``watermark * words_per_machine``).
    factor:
        Magnitude of the intervention: machine-count multiplier for
        ``sparsify``, chunk count for ``chunk``, 1.0 otherwise.
    detail:
        Human-readable description of the action taken.
    """

    kind: str
    context: str
    predicted_words: int
    budget_words: int
    factor: float = 1.0
    detail: str = ""

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown governance event kind {self.kind!r}; "
                f"expected one of {EVENT_KINDS}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (travels inside ``RunReport.extras``)."""
        return {
            "kind": self.kind,
            "context": self.context,
            "predicted_words": int(self.predicted_words),
            "budget_words": int(self.budget_words),
            "factor": float(self.factor),
            "detail": self.detail,
        }
