"""Peak-hold ball-size estimator — the governor's load predictor.

The quantity governance must bound is a per-machine *max* (the hottest
machine's words), but what a phase knows in advance is a *total* (how
many edge words the active subgraph holds).  The bridge is the imbalance
ratio ``max_part_load / mean_part_load``, which is driven by degree skew:
a vertex of degree ``d`` drags ~``d`` potential same-machine edges onto
whichever machine draws it, so heavy-tailed inputs produce hot parts
long before the mean does.

The estimator is *peak-hold*: it remembers the worst imbalance ratio any
phase has exhibited (decayed slowly toward the latest reading, so one
early outlier does not throttle the whole run forever), and it is primed
before the first phase from the graph's degree statistics
(:func:`repro.graph.statistics.load_summary`), so the very first scatter
— often the heaviest — is already predicted with the skew in hand.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

from repro.govern.policy import GovernancePolicy


class PeakHoldEstimator:
    """Tracks the worst observed max/mean per-part load imbalance."""

    def __init__(
        self, policy: Optional[GovernancePolicy] = None, ratio: float = 1.0
    ) -> None:
        self._policy = policy or GovernancePolicy()
        self._ratio = max(1.0, float(ratio))
        self._observations = 0

    @property
    def ratio(self) -> float:
        """Current peak-hold imbalance ratio (``>= 1``)."""
        return self._ratio

    @property
    def observations(self) -> int:
        """Number of per-phase load vectors observed so far."""
        return self._observations

    def prime(self, summary: "object") -> None:
        """Prime the ratio from a degree :class:`~repro.graph.statistics.LoadSummary`.

        Random vertex partitioning concentrates loads around the mean at
        rate ``sqrt``, so the primed imbalance is the square root of the
        degree skew, capped by ``policy.prime_cap`` (an adversarial max
        degree should raise caution, not an automatic intervention).
        """
        skew = float(getattr(summary, "skew_ratio", 1.0))
        primed = math.sqrt(max(1.0, skew))
        self._ratio = max(
            self._ratio, min(primed, self._policy.prime_cap)
        )

    def observe(self, loads: Iterable[float]) -> float:
        """Fold one phase's per-part loads into the peak-hold ratio.

        Returns the phase's own max/mean ratio.  The held ratio rises
        immediately to any new worst case and decays geometrically
        toward later, calmer readings.
        """
        values = [float(x) for x in loads if x > 0]
        self._observations += 1
        if not values:
            return 1.0
        mean = sum(values) / len(values)
        phase_ratio = max(values) / mean if mean > 0 else 1.0
        if phase_ratio >= self._ratio:
            self._ratio = phase_ratio
        else:
            decayed = self._ratio * self._policy.decay
            self._ratio = max(phase_ratio, decayed, 1.0)
        return phase_ratio

    def predict_part_words(
        self, total_words: int, parts: int, receivers: Optional[int] = None
    ) -> int:
        """Predicted words on the hottest machine of a partitioned phase.

        ``total_words`` is the phase's active edge volume; with ``parts``
        random parts the expected same-machine volume is ``total/parts``
        and the expected per-part share of it another factor ``parts``
        down.  When parts are folded onto fewer physical ``receivers``
        (round-robin), one receiver absorbs ``ceil(parts/receivers)``
        parts.  The imbalance ratio and the policy headroom convert the
        expectation into a defensible max.
        """
        if parts <= 0:
            raise ValueError(f"parts must be positive, got {parts}")
        per_part = total_words / (parts * parts)
        fold = 1
        if receivers is not None and receivers > 0:
            fold = math.ceil(parts / receivers)
        return int(
            math.ceil(per_part * fold * self._ratio * self._policy.headroom)
        )

    def predict_ship_words(self, total_words: int) -> int:
        """Predicted words of a single-destination bulk ship (no spread)."""
        return int(math.ceil(total_words * self._policy.headroom))

    def to_dict(self) -> dict:
        """JSON-ready snapshot for the governance report extras."""
        return {
            "ratio": float(self._ratio),
            "observations": int(self._observations),
        }
