"""Governance policy: the knobs of the overload ladder.

See GOVERNANCE.md for the knob table and how each rung composes.  The
façade accepts ``governance=`` as ``False`` (off), ``True`` (defaults),
a dict of field overrides, or a :class:`GovernancePolicy` instance —
the same loose-override convention ``config=`` uses.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Optional


@dataclass(frozen=True)
class GovernancePolicy:
    """Knobs of the load-governance ladder.

    Attributes
    ----------
    watermark:
        Soft fraction of the hard per-machine budget ``S``; the governor
        intervenes when predicted load crosses ``watermark * S`` (the
        hard cap itself still aborts, but a governed run should never
        reach it).
    headroom:
        Safety multiplier on every estimator prediction — predictions
        are expectations, the enforced quantity is a max.
    max_chunks:
        Ceiling on sub-batches a single over-budget phase may be split
        into; beyond it the ladder falls through to degradation.
    max_sparsify:
        Ceiling on the machine-count multiplier adaptive sparsification
        may apply within one phase.
    allow_sparsify / allow_chunk / allow_degrade:
        Rung switches; disabling every rung reduces governance to
        watermark observation (the hard cap then aborts as before).
    decay:
        Peak-hold decay of the ball-size estimator's imbalance ratio per
        observation (1.0 = never forget the worst phase).
    prime_cap:
        Cap on the imbalance ratio primed from degree statistics; keeps
        a pathological skew reading from tripping governance on inputs
        that never produce imbalanced parts.
    """

    watermark: float = 0.9
    headroom: float = 1.15
    max_chunks: int = 64
    max_sparsify: float = 8.0
    allow_sparsify: bool = True
    allow_chunk: bool = True
    allow_degrade: bool = True
    decay: float = 0.95
    prime_cap: float = 4.0

    def __post_init__(self) -> None:
        if not 0.0 < self.watermark <= 1.0:
            raise ValueError(f"watermark must lie in (0, 1], got {self.watermark}")
        if self.headroom < 1.0:
            raise ValueError(f"headroom must be >= 1, got {self.headroom}")
        if self.max_chunks < 1:
            raise ValueError(f"max_chunks must be >= 1, got {self.max_chunks}")
        if self.max_sparsify < 1.0:
            raise ValueError(f"max_sparsify must be >= 1, got {self.max_sparsify}")
        if not 0.0 < self.decay <= 1.0:
            raise ValueError(f"decay must lie in (0, 1], got {self.decay}")
        if self.prime_cap < 1.0:
            raise ValueError(f"prime_cap must be >= 1, got {self.prime_cap}")

    @classmethod
    def from_any(cls, value: Any) -> Optional["GovernancePolicy"]:
        """Normalize the façade's ``governance=`` argument.

        ``False``/``None`` → ``None`` (governance off); ``True`` → the
        default policy; a dict → field overrides; an instance → itself.
        """
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, dict):
            return cls(**value)
        raise TypeError(
            "governance must be a bool, dict, or GovernancePolicy, "
            f"got {type(value).__name__}"
        )

    def to_dict(self) -> dict:
        """JSON-ready snapshot (lands in the governance report extras)."""
        return dataclasses.asdict(self)
