"""``repro.govern`` — adaptive load governance for the MPC solvers.

Watches observed per-phase load (machine words, shipped volumes,
live-vertex counts via the peak-hold ball-size estimator) and intervenes
*before* the hard ``memory_factor * n^alpha`` budget is breached,
instead of letting :class:`~repro.mpc.errors.MemoryExceededError` abort
the run.  See GOVERNANCE.md for the ladder, knob table, and validation
contract (byte-pins when governance never fires, verify bands when it
does).

Entry points: ``solve(task, graph, governance=True)`` /
``python -m repro.api --governance``.
"""

from repro.govern.estimator import PeakHoldEstimator
from repro.govern.events import (
    CHUNK,
    DEGRADE,
    EVENT_KINDS,
    SPARSIFY,
    WATERMARK,
    GovernanceEvent,
)
from repro.govern.governor import (
    GovernanceDegraded,
    Governor,
    governed_broadcast,
)
from repro.govern.policy import GovernancePolicy

__all__ = [
    "CHUNK",
    "DEGRADE",
    "EVENT_KINDS",
    "SPARSIFY",
    "WATERMARK",
    "GovernanceDegraded",
    "GovernanceEvent",
    "GovernancePolicy",
    "Governor",
    "PeakHoldEstimator",
    "governed_broadcast",
]
