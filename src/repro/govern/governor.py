"""The governor: watches per-phase load and intervenes before a breach.

The intervention ladder (GOVERNANCE.md):

1. **Adaptive sparsification** (:meth:`Governor.plan_partitions`) — when
   the estimator predicts a partitioned phase would land more than the
   soft budget on its hottest machine, the machine count is raised
   (doubling) before the partition is drawn, lowering the same-machine
   co-location probability and with it both the per-machine induced
   subgraph (``~ total/k²``) and the shipped volume (``~ total/k``).
2. **Batched chunking** (:meth:`Governor.plan_chunks`,
   :meth:`Governor.broadcast`) — an over-budget bulk operation is split
   into sequential sub-batches, each within the soft budget, trading
   rounds for memory (the round-budget audit still applies).
3. **Graceful degradation** (:meth:`Governor.degrade`) — when neither
   rung can save the envelope, a :class:`GovernanceDegraded` is raised;
   the façade catches it and finishes the solve on the central/greedy
   backend, recording the reason.

When no rung fires, every call here is an exact pass-through: same
cluster calls, same draw counts, same accounting — byte-identity with
ungoverned runs is pinned by the parity suite.
"""

from __future__ import annotations

import math
from typing import List, Optional, Set

from repro.govern.estimator import PeakHoldEstimator
from repro.govern.events import (
    CHUNK,
    DEGRADE,
    SPARSIFY,
    WATERMARK,
    GovernanceEvent,
)
from repro.govern.policy import GovernancePolicy

# Hard cap on recorded events: a long solve brushing the watermark every
# phase must not grow the report without bound.  Overflow is counted.
_MAX_EVENTS = 256


class GovernanceDegraded(RuntimeError):
    """The ladder ran out of rungs; the caller should fall back.

    Raised by :meth:`Governor.degrade`; the façade converts it into a
    re-solve on the central/greedy backend with ``reason`` recorded in
    ``RunReport.extras["governance"]``.
    """

    def __init__(self, reason: str, context: str = "") -> None:
        super().__init__(reason)
        self.reason = reason
        self.context = context


class Governor:
    """Per-solve load governor bound to one MPC cluster.

    Create one per ``solve()`` call (the façade does); bind it to the
    cluster with :meth:`bind` before the first governed operation.  The
    estimator persists across phases — and across the multiple
    fractional-matching passes of the integral solver — so later phases
    benefit from the imbalance the earlier ones measured.
    """

    def __init__(
        self,
        policy: Optional[GovernancePolicy] = None,
        estimator: Optional[PeakHoldEstimator] = None,
    ) -> None:
        self.policy = policy or GovernancePolicy()
        self.estimator = estimator or PeakHoldEstimator(self.policy)
        self.events: List[GovernanceEvent] = []
        self.dropped_events = 0
        self._soft_words: Optional[int] = None
        self._hard_words: Optional[int] = None
        self._receivers: Optional[int] = None
        self._watermark_contexts: Set[str] = set()
        self.degraded_reason: Optional[str] = None

    # -- binding ------------------------------------------------------------

    def bind(self, cluster) -> None:
        """Learn the cluster's budget and attach overload signals to it.

        Idempotent per cluster; re-binding to a new cluster (the integral
        solver builds one per pass) adopts the new budget.
        """
        self.bind_words(cluster.words_per_machine, cluster.num_machines)
        attach = getattr(cluster, "attach_governor", None)
        if attach is not None:
            attach(self)

    def bind_words(self, hard_words: int, receivers: int = 1) -> None:
        """Learn a word budget directly, without a cluster.

        For backends that meter memory per-run rather than through an
        :class:`~repro.mpc.cluster.MPCCluster` (the weight-class
        reduction drives filtering runs with a raw word cap).
        """
        self._hard_words = int(hard_words)
        self._soft_words = max(1, int(self.policy.watermark * self._hard_words))
        self._receivers = max(1, int(receivers))

    @property
    def bound(self) -> bool:
        """Whether :meth:`bind` has run."""
        return self._soft_words is not None

    @property
    def soft_words(self) -> int:
        """The soft per-machine budget (``watermark * S``)."""
        if self._soft_words is None:
            raise RuntimeError("governor used before bind(cluster)")
        return self._soft_words

    @property
    def triggered(self) -> bool:
        """Whether any *intervention* (not mere watermark) fired."""
        return any(e.kind != WATERMARK for e in self.events)

    # -- event plumbing -----------------------------------------------------

    def _record(self, event: GovernanceEvent) -> None:
        if len(self.events) >= _MAX_EVENTS:
            self.dropped_events += 1
            return
        self.events.append(event)

    def record_watermark(self, context: str, used: int, capacity: int) -> None:
        """Overload signal from the substrate: load crossed the soft line.

        Deduplicated per context so a hot phase signals once, not once
        per store.
        """
        if context in self._watermark_contexts:
            return
        self._watermark_contexts.add(context)
        self._record(
            GovernanceEvent(
                kind=WATERMARK,
                context=context,
                predicted_words=int(used),
                budget_words=self._soft_words or int(capacity),
                detail=f"observed {used} of {capacity} hard-cap words",
            )
        )

    def observe_loads(self, loads, context: str = "") -> None:
        """Feed one phase's per-machine loads to the estimator."""
        self.estimator.observe(loads)
        if self._soft_words is not None:
            peak = max((int(x) for x in loads), default=0)
            if peak > self._soft_words:
                self.record_watermark(
                    context, peak, self._hard_words or peak
                )

    # -- rung 1: adaptive sparsification ------------------------------------

    def plan_partitions(
        self, base_parts: int, total_words: int, context: str
    ) -> int:
        """Choose the partition count for a phase about to draw owners.

        Returns ``base_parts`` untouched when the predicted hottest-part
        load fits the soft budget (the byte-identity case).  Otherwise
        doubles the part count until the prediction fits or the
        ``max_sparsify`` ceiling is hit; if even the ceiling does not
        save the envelope the decision falls through to chunking (the
        scatter is wave-split) rather than degrading here, because a
        chunked scatter can still complete the phase.
        """
        soft = self.soft_words
        predicted = self.estimator.predict_part_words(
            total_words, base_parts, self._receivers
        )
        if predicted <= soft or not self.policy.allow_sparsify:
            return base_parts
        limit = max(base_parts + 1, int(base_parts * self.policy.max_sparsify))
        parts = base_parts
        while parts < limit:
            parts = min(limit, parts * 2)
            predicted = self.estimator.predict_part_words(
                total_words, parts, self._receivers
            )
            if predicted <= soft:
                break
        self._record(
            GovernanceEvent(
                kind=SPARSIFY,
                context=context,
                predicted_words=self.estimator.predict_part_words(
                    total_words, base_parts, self._receivers
                ),
                budget_words=soft,
                factor=parts / base_parts,
                detail=(
                    f"raised partition count {base_parts} -> {parts} "
                    f"(co-location probability 1/{parts})"
                ),
            )
        )
        return parts

    def grow_partitions(
        self, base_parts: int, parts: int, observed_words: int, context: str
    ) -> int:
        """Reactive sparsification: a drawn partition came out too hot.

        The prediction in :meth:`plan_partitions` is a mean-field
        estimate; multinomial variance can still land one part over the
        soft budget.  Nothing has shipped yet at that point, so the
        caller doubles the part count and redraws.  Returns ``parts``
        unchanged when the ``max_sparsify`` ceiling (relative to
        ``base_parts``) is reached — the caller then falls through to
        wave-splitting or degradation.
        """
        if not self.policy.allow_sparsify:
            return parts
        limit = max(base_parts + 1, int(base_parts * self.policy.max_sparsify))
        if parts >= limit:
            return parts
        new_parts = min(limit, parts * 2)
        self._record(
            GovernanceEvent(
                kind=SPARSIFY,
                context=context,
                predicted_words=int(observed_words),
                budget_words=self.soft_words,
                factor=new_parts / base_parts,
                detail=(
                    f"redraw: hottest induced subgraph held {observed_words} "
                    f"words; partition count {parts} -> {new_parts}"
                ),
            )
        )
        return new_parts

    # -- rung 2: batched chunking -------------------------------------------

    def plan_chunks(self, words: int, context: str) -> Optional[List[int]]:
        """Split an over-budget bulk operation into sub-batch word sizes.

        Returns ``None`` when ``words`` fits the soft budget (the
        pass-through case), else the balanced per-chunk word sizes.
        Falls through to :meth:`degrade` when chunking is disabled or
        the required chunk count exceeds ``max_chunks``.
        """
        soft = self.soft_words
        if words <= soft:
            return None
        if not self.policy.allow_chunk:
            self.degrade(
                f"operation of {words} words exceeds soft budget {soft} "
                "and chunking is disabled",
                context,
            )
            # degrade() declined to raise (allow_degrade off): pass the
            # operation through un-chunked so the hard cap aborts exactly
            # as an ungoverned run would — no rung may mask the failure.
            return None
        count = math.ceil(words / soft)
        if count > self.policy.max_chunks:
            self.degrade(
                f"operation of {words} words needs {count} chunks, "
                f"over max_chunks={self.policy.max_chunks}",
                context,
            )
            return None
        base, rem = divmod(words, count)
        sizes = [base + 1] * rem + [base] * (count - rem)
        self._record(
            GovernanceEvent(
                kind=CHUNK,
                context=context,
                predicted_words=words,
                budget_words=soft,
                factor=float(count),
                detail=f"split {words} words into {count} sequential sub-batches",
            )
        )
        return sizes

    def record_chunk(
        self, context: str, predicted_words: int, count: int
    ) -> None:
        """Record a chunk intervention planned by the caller (e.g. a
        wave-split scatter), degrading when the count exceeds the policy
        ceiling."""
        if count > self.policy.max_chunks:
            self.degrade(
                f"phase needs {count} sub-batches, over "
                f"max_chunks={self.policy.max_chunks}",
                context,
            )
        self._record(
            GovernanceEvent(
                kind=CHUNK,
                context=context,
                predicted_words=predicted_words,
                budget_words=self.soft_words,
                factor=float(count),
                detail=(
                    f"split phase into {count} sequential sub-batches "
                    f"(hottest machine would have held {predicted_words} words)"
                ),
            )
        )

    def broadcast(self, cluster, words: int, context: str) -> None:
        """Broadcast ``words``, chunked into sub-broadcasts if over budget.

        Exact pass-through (one broadcast, same accounting) when the
        payload fits the soft budget.
        """
        sizes = self.plan_chunks(words, context)
        if sizes is None:
            cluster.broadcast(words, context=context)
            return
        total = len(sizes)
        for index, size in enumerate(sizes):
            cluster.broadcast(
                size, context=f"{context} [chunk {index + 1}/{total}]"
            )

    # -- rung 3: degradation --------------------------------------------------

    def degrade(self, reason: str, context: str = "") -> None:
        """Record a degrade event and abort the MPC attempt.

        Raises :class:`GovernanceDegraded` when the policy allows
        degradation (the façade re-solves on the fallback backend);
        otherwise returns, leaving the hard cap to abort as before —
        governance with every rung disabled must not mask the original
        failure mode.
        """
        self._record(
            GovernanceEvent(
                kind=DEGRADE,
                context=context,
                predicted_words=0,
                budget_words=self._soft_words or 0,
                detail=reason,
            )
        )
        self.degraded_reason = reason
        if self.policy.allow_degrade:
            raise GovernanceDegraded(reason, context)

    # -- reporting ------------------------------------------------------------

    def summary(self) -> dict:
        """JSON-ready governance record for ``RunReport.extras``."""
        counts: dict = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return {
            "enabled": True,
            "triggered": self.triggered,
            "events": [event.to_dict() for event in self.events],
            "counts": counts,
            "dropped_events": self.dropped_events,
            "estimator": self.estimator.to_dict(),
            "policy": self.policy.to_dict(),
        }


def governed_broadcast(
    cluster, words: int, context: str, governor: Optional[Governor] = None
) -> None:
    """Broadcast through the governor when one is attached.

    The module-level helper the solver hot paths call: with no governor
    (or a payload under the soft budget) it is exactly
    ``cluster.broadcast`` — accounting and draw order unchanged.
    """
    if governor is None:
        cluster.broadcast(words, context=context)
    else:
        governor.broadcast(cluster, words, context)
