"""On-disk CSR format and the memory-mapped graph behind ``GraphView``.

A persisted graph is a directory of three files::

    header.json   schema version, n, m, dtype — written LAST (commit marker)
    indptr.npy    int64, length n + 1
    indices.npy   int64, length 2m (rows sorted ascending, both directions)

Every file is written with the snapshot discipline of
:mod:`repro.serve.snapshot`: same-directory tempfile + flush + fsync +
``os.replace``.  Because ``header.json`` lands last, a reader either
finds a complete, self-consistent graph or no graph at all — a build
crash can never leave a loadable torn state.

:class:`MMapCSRGraph` opens ``indices.npy`` with
``np.load(mmap_mode="r")`` and keeps only ``indptr`` (O(n)) resident.
It subclasses :class:`~repro.graph.csr.CSRGraph`, so every kernel and
every solver works unchanged; the kernels that would materialize the
O(m) ``src`` array (``degrees``, ``filter_edges``, ``induced_*``,
``edge_array``, …) are overridden with chunked passes over
:meth:`adjacency_chunks` that advise the kernel to drop the scanned
pages (``MADV_DONTNEED``) after each block.  The overrides are
*byte-identical* to the base kernels: they only reorder which slots are
in cache, never the arithmetic (integer bincounts and slot-order
concatenation are exact and associative).
"""

from __future__ import annotations

import json
import mmap as _mmap
import os
import tempfile
from typing import Any, Dict, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.graph.csr import CSRGraph, MaskLike, gather_rows

OOC_SCHEMA_VERSION = 1
_SUPPORTED_OOC_SCHEMAS = (1,)

HEADER_NAME = "header.json"
INDPTR_NAME = "indptr.npy"
INDICES_NAME = "indices.npy"

# Directed slots per chunk in the streaming kernels (~64 MB of int64
# pairs resident at a time) and rows per batch in the ragged gathers.
DEFAULT_CHUNK_SLOTS = 4_000_000
DEFAULT_CHUNK_ROWS = 262_144


def _atomic_replace(path: str, write_body) -> None:
    """Write a file atomically: same-dir tempfile + fsync + ``os.replace``."""
    directory = os.path.dirname(path) or "."
    descriptor, temp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(descriptor, "wb") as stream:
            write_body(stream)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


def _atomic_save_array(path: str, array: np.ndarray) -> None:
    _atomic_replace(path, lambda stream: np.save(stream, array))


def _atomic_write_json(path: str, payload: Dict[str, Any]) -> None:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    _atomic_replace(path, lambda stream: stream.write(body))


def write_header(
    directory: Any, num_vertices: int, num_edges: int
) -> Dict[str, Any]:
    """Write the schema-versioned commit marker; returns the payload."""
    payload = {
        "schema": OOC_SCHEMA_VERSION,
        "num_vertices": int(num_vertices),
        "num_edges": int(num_edges),
        "dtype": "<i8",
    }
    _atomic_write_json(os.path.join(os.fspath(directory), HEADER_NAME), payload)
    return payload


def read_header(directory: Any) -> Dict[str, Any]:
    """Load and validate the header of a persisted graph directory."""
    directory = os.fspath(directory)
    path = os.path.join(directory, HEADER_NAME)
    if not os.path.exists(path):
        raise FileNotFoundError(
            f"no out-of-core graph at {directory!r} (missing {HEADER_NAME}; "
            "an interrupted build leaves no header on purpose)"
        )
    with open(path, "r", encoding="utf-8") as stream:
        payload = json.load(stream)
    schema = payload.get("schema")
    if schema not in _SUPPORTED_OOC_SCHEMAS:
        raise ValueError(
            f"unsupported ooc graph schema {schema!r}; "
            f"supported: {_SUPPORTED_OOC_SCHEMAS}"
        )
    for field in ("num_vertices", "num_edges"):
        if not isinstance(payload.get(field), int) or payload[field] < 0:
            raise ValueError(f"ooc header field {field!r} invalid: {payload!r}")
    return payload


def save_csr(graph: CSRGraph, directory: Any) -> str:
    """Persist an in-RAM :class:`CSRGraph` to ``directory``; returns it.

    Array files first, header last — a crash anywhere leaves either a
    complete graph (the previous one, if overwriting) or none.
    """
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    _atomic_save_array(
        os.path.join(directory, INDPTR_NAME),
        np.ascontiguousarray(graph.indptr, dtype=np.int64),
    )
    _atomic_save_array(
        os.path.join(directory, INDICES_NAME),
        np.ascontiguousarray(graph.indices, dtype=np.int64),
    )
    write_header(directory, graph.num_vertices, graph.num_edges)
    return directory


class MMapCSRGraph(CSRGraph):
    """A :class:`CSRGraph` whose column array lives on disk, mmap-backed.

    ``indptr`` is materialized in RAM (O(n) — part of the resident
    budget alongside the solver's masks); ``indices`` stays a read-only
    ``np.memmap``.  Only the pages a kernel touches become resident, and
    the chunked kernel overrides release them again via
    ``MADV_DONTNEED``, so peak RSS is bounded by the chunk size instead
    of the edge bytes (measured in ``BENCH_ooc.json``).
    """

    __slots__ = ("_directory", "_chunk_slots", "_chunk_rows")

    def __init__(
        self,
        directory: Any,
        *,
        chunk_slots: int = DEFAULT_CHUNK_SLOTS,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
    ) -> None:
        directory = os.fspath(directory)
        if chunk_slots <= 0 or chunk_rows <= 0:
            raise ValueError("chunk_slots and chunk_rows must be positive")
        header = read_header(directory)
        # A direct load reads straight into the final buffer; going via a
        # mmap copy would hold pages + copy simultaneously, doubling the
        # O(n) resident cost at the 10M rung.
        indptr = np.load(os.path.join(directory, INDPTR_NAME)).astype(
            np.int64, copy=False
        )
        indices = np.load(os.path.join(directory, INDICES_NAME), mmap_mode="r")
        n = header["num_vertices"]
        m = header["num_edges"]
        if len(indptr) != n + 1 or len(indices) != 2 * m:
            raise ValueError(
                f"ooc graph at {directory!r} inconsistent with header: "
                f"indptr={len(indptr)} (want {n + 1}), "
                f"indices={len(indices)} (want {2 * m})"
            )
        super().__init__(indptr, indices)
        self._directory = directory
        self._chunk_slots = int(chunk_slots)
        self._chunk_rows = int(chunk_rows)

    # -- residency ----------------------------------------------------------

    @property
    def directory(self) -> str:
        """The on-disk directory backing this graph."""
        return self._directory

    @property
    def indices_file_bytes(self) -> int:
        """Size of ``indices.npy`` on disk — the RSS budget's denominator."""
        return os.path.getsize(os.path.join(self._directory, INDICES_NAME))

    def release(self) -> None:
        """Advise the kernel to drop the resident ``indices`` pages.

        Clean file-backed pages re-fault cheaply; calling this after
        every chunk keeps the ``ru_maxrss`` high-water mark at one chunk
        instead of the whole file.
        """
        backing = getattr(self._indices, "_mmap", None)
        if backing is None or not hasattr(_mmap, "MADV_DONTNEED"):
            return
        try:
            backing.madvise(_mmap.MADV_DONTNEED)
        except (ValueError, OSError):  # pragma: no cover - platform quirk
            pass

    # -- chunked kernel overrides (byte-identical to the base class) --------

    def adjacency_chunks(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        total = len(self._indices)
        if total == 0:
            yield np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
            return
        indptr = self._indptr
        for start in range(0, total, self._chunk_slots):
            stop = min(start + self._chunk_slots, total)
            # Rows overlapping [start, stop): lo is the row owning slot
            # `start`; rows lo..hi-1 own at least one slot in range.
            lo = int(np.searchsorted(indptr, start, side="right")) - 1
            hi = int(np.searchsorted(indptr, stop, side="left"))
            spans = np.minimum(indptr[lo + 1 : hi + 1], stop) - np.maximum(
                indptr[lo:hi], start
            )
            src = np.repeat(np.arange(lo, hi, dtype=np.int64), spans)
            yield src, self._indices[start:stop]
            self.release()

    @property
    def src(self) -> np.ndarray:
        # Materializing the O(m) row-id array defeats the residency
        # model; every hot kernel is overridden below to avoid it.  Kept
        # functional (small graphs, debugging) but never cached.
        return np.repeat(
            np.arange(self._n, dtype=np.int64), np.diff(self._indptr)
        )

    def degrees(self, mask: MaskLike = None) -> np.ndarray:
        selected = self._as_mask(mask)
        if selected is None:
            return np.diff(self._indptr)
        out = np.zeros(self._n, dtype=np.int64)
        for src, dst in self.adjacency_chunks():
            inside = selected[src] & selected[dst]
            if inside.any():
                out += np.bincount(src[inside], minlength=self._n)
        return out

    def count_edges_within(self, mask: MaskLike) -> int:
        selected = self._as_mask(mask)
        if selected is None:
            return self.num_edges
        total = 0
        for src, dst in self.adjacency_chunks():
            total += int(np.count_nonzero(selected[src] & selected[dst]))
        return total // 2

    def induced_edges(self, mask: MaskLike) -> np.ndarray:
        selected = self._as_mask(mask)
        pieces = []
        for src, dst in self.adjacency_chunks():
            forward = src < dst
            if selected is not None:
                forward &= selected[src] & selected[dst]
            if forward.any():
                pieces.append(
                    np.column_stack((src[forward], np.asarray(dst[forward])))
                )
        if not pieces:
            return np.empty((0, 2), dtype=np.int64)
        return pieces[0] if len(pieces) == 1 else np.concatenate(pieces)

    def edge_array(self) -> np.ndarray:
        return self.induced_edges(None)

    def induced_subgraph(self, mask: MaskLike) -> Tuple[CSRGraph, np.ndarray]:
        selected = self._as_mask(mask)
        if selected is None:
            selected = np.ones(self._n, dtype=bool)
        keep = np.flatnonzero(selected)
        from repro.graph.csr import NO_VERTEX

        new_id = np.full(self._n, NO_VERTEX, dtype=np.int64)
        new_id[keep] = np.arange(len(keep), dtype=np.int64)
        src_parts, dst_parts = [], []
        for src, dst in self.adjacency_chunks():
            inside = selected[src] & selected[dst]
            if inside.any():
                src_parts.append(new_id[src[inside]])
                dst_parts.append(new_id[np.asarray(dst[inside])])
        if src_parts:
            sub = CSRGraph._from_directed(
                len(keep), np.concatenate(src_parts), np.concatenate(dst_parts)
            )
        else:
            sub = CSRGraph._from_directed(
                len(keep),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
        return sub, keep

    def filter_edges(self, mask: MaskLike) -> CSRGraph:
        selected = self._as_mask(mask)
        if selected is None:
            return self
        counts = np.zeros(self._n, dtype=np.int64)
        pieces = []
        for src, dst in self.adjacency_chunks():
            inside = selected[src] & selected[dst]
            if inside.any():
                counts += np.bincount(src[inside], minlength=self._n)
                pieces.append(np.asarray(dst[inside]))
        indptr = np.zeros(self._n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        dst_all = (
            np.concatenate(pieces) if pieces else np.empty(0, dtype=np.int64)
        )
        return CSRGraph(indptr, dst_all)

    def neighbors_bulk(self, vertices: Sequence[int]) -> np.ndarray:
        out = gather_rows(self._indices, self._indptr, vertices)
        self.release()
        return np.asarray(out, dtype=np.int64)

    def remove_closed_neighborhoods(
        self, vertices: Sequence[int], mask: MaskLike = None
    ) -> np.ndarray:
        selected = self._as_mask(mask)
        out = (
            np.ones(self._n, dtype=bool) if selected is None else selected.copy()
        )
        vs = np.asarray(vertices, dtype=np.int64)
        if vs.size:
            out[vs] = False
            # Batch by *file span*, not row count: scattered rows fault in
            # ~a page each, so a count-bounded batch over uniformly spread
            # rows can touch a page per row (a ~1 GB high-water at the 10M
            # rung) before the next release().  Sorting first (the output
            # mask is order-free) makes each batch a contiguous indptr
            # range, so the pages one batch can touch — and its gathered
            # output — are both bounded by ``chunk_slots``.
            vs = np.sort(vs)
            ends = self._indptr[vs + 1]
            lo = 0
            while lo < len(vs):
                hi = max(
                    int(
                        np.searchsorted(
                            ends, self._indptr[vs[lo]] + self._chunk_slots
                        )
                    ),
                    lo + 1,
                )
                batch = vs[lo:hi]
                out[gather_rows(self._indices, self._indptr, batch)] = False
                self.release()
                lo = hi
        return out

    def __repr__(self) -> str:
        return (
            f"MMapCSRGraph(n={self._n}, m={self.num_edges}, "
            f"dir={self._directory!r})"
        )


def load_csr(directory: Any, *, materialize: bool = False) -> CSRGraph:
    """Open a persisted graph: mmap-backed by default, in-RAM on request."""
    graph = MMapCSRGraph(directory)
    if not materialize:
        return graph
    return CSRGraph(
        np.array(graph.indptr, dtype=np.int64),
        np.array(graph.indices, dtype=np.int64),
    )
