"""``repro.ooc`` — out-of-core graphs: memory-mapped CSR storage.

The subsystem behind the n=10M bounded-RSS benchmark rung (see
OUT_OF_CORE.md):

* :class:`MMapCSRGraph` / :func:`save_csr` / :func:`load_csr` — the
  atomic, schema-versioned on-disk CSR format and the mmap-backed
  graph that satisfies the full :class:`~repro.graph.csr.GraphView`
  kernel surface with residency bounded by chunk size.
* :func:`build_mmap_csr` — two-pass external construction from
  (gzipped) edge-list text, O(n + chunk) resident.
* :func:`write_edge_list` (``repro.ooc.generate``) — chunk-streaming
  random / power-law generators so the input file itself never exists
  in RAM.
"""

from repro.ooc.build import build_mmap_csr
from repro.ooc.format import (
    MMapCSRGraph,
    OOC_SCHEMA_VERSION,
    load_csr,
    read_header,
    save_csr,
)
from repro.ooc.generate import (
    FAMILIES,
    write_edge_list,
    write_gnp_edge_list,
    write_powerlaw_edge_list,
)

__all__ = [
    "MMapCSRGraph",
    "OOC_SCHEMA_VERSION",
    "load_csr",
    "read_header",
    "save_csr",
    "build_mmap_csr",
    "FAMILIES",
    "write_edge_list",
    "write_gnp_edge_list",
    "write_powerlaw_edge_list",
]
