"""Two-pass external CSR construction from chunked edge-list text.

The builder never holds more than O(n + chunk) in RAM:

1. **Scatter pass** — stream the (possibly gzipped) edge list once via
   :func:`repro.graph.io.iter_edge_array`, validate endpoints, emit both
   directed copies of every edge, and append them to *bucket* files on
   disk keyed by ``source // bucket_rows``.  Buckets restore the row
   locality an external sort needs without knowing ``n`` up front.
2. **Assemble pass** — for each bucket in ascending order: load it
   (bounded by the bucket's slot count), lexsort by ``(src, dst)``,
   collapse duplicate directed slots, accumulate per-row degree counts,
   and append the destination column to a raw data file.  Because
   buckets partition the source range in order, the concatenation is
   globally sorted — exactly the canonical CSR slot order of
   :meth:`CSRGraph.from_edge_array`.

``indices.npy`` is finalized by writing the npy header for the
now-known total length and streaming the raw column data after it;
``indptr.npy`` and finally ``header.json`` follow, each with the atomic
tempfile + fsync + ``os.replace`` discipline — a crash mid-build leaves
no loadable graph (no header), never a torn one.

The output is **byte-identical** to
``CSRGraph.from_edge_array(n, edges)`` on the same edge multiset: both
dedup either-orientation duplicates and produce ascending-sorted rows.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from typing import Any, Dict, IO, Optional

import numpy as np
from numpy.lib import format as npy_format

from repro.graph.io import iter_edge_array
from repro.ooc.format import (
    INDICES_NAME,
    INDPTR_NAME,
    MMapCSRGraph,
    _atomic_save_array,
    write_header,
)

# Source rows per bucket: 2^19 rows * avg-degree * 2 directions of int64
# pairs resident during the assemble pass (~160 MB at average degree 20).
DEFAULT_BUCKET_ROWS = 1 << 19
DEFAULT_CHUNK_EDGES = 1_000_000


def build_mmap_csr(
    edge_path: Any,
    directory: Any,
    *,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
    bucket_rows: int = DEFAULT_BUCKET_ROWS,
) -> MMapCSRGraph:
    """Stream ``edge_path`` into an on-disk CSR at ``directory``.

    Accepts everything :func:`repro.graph.io.iter_edge_list` accepts:
    plain or ``.gz`` text, ``# comments``, ``n <count>`` headers, blank
    lines, duplicate edges in either orientation.  Self-loops and
    negative endpoints are rejected.  Returns the opened
    :class:`MMapCSRGraph`.
    """
    directory = os.fspath(directory)
    if bucket_rows <= 0:
        raise ValueError(f"bucket_rows must be positive, got {bucket_rows}")
    os.makedirs(directory, exist_ok=True)
    workdir = tempfile.mkdtemp(prefix=".build.", dir=directory)
    try:
        num_vertices, degrees, raw_path = _scatter_and_assemble(
            edge_path, workdir, chunk_edges, bucket_rows
        )
        total_slots = int(degrees.sum())
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        _finalize_indices(
            raw_path, os.path.join(directory, INDICES_NAME), total_slots
        )
        _atomic_save_array(os.path.join(directory, INDPTR_NAME), indptr)
        write_header(directory, num_vertices, total_slots // 2)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return MMapCSRGraph(directory)


def _scatter_and_assemble(edge_path, workdir, chunk_edges, bucket_rows):
    """Both passes; returns ``(num_vertices, degrees, raw_indices_path)``."""
    buckets: Dict[int, IO[bytes]] = {}
    num_vertices = 0
    try:
        for n_seen, edges in iter_edge_array(edge_path, chunk_edges):
            num_vertices = n_seen
            if not len(edges):
                continue
            if edges.min() < 0:
                raise ValueError(
                    f"negative endpoint in {os.fspath(edge_path)!r}"
                )
            loops = edges[:, 0] == edges[:, 1]
            if loops.any():
                v = int(edges[np.argmax(loops), 0])
                raise ValueError(
                    f"self-loop on vertex {v} in {os.fspath(edge_path)!r}"
                )
            _scatter_chunk(edges, buckets, workdir, bucket_rows)
    finally:
        for handle in buckets.values():
            handle.close()
    degrees = np.zeros(num_vertices, dtype=np.int64)
    raw_path = os.path.join(workdir, "indices.raw")
    with open(raw_path, "wb") as raw:
        for bucket in sorted(buckets):
            _assemble_bucket(
                os.path.join(workdir, f"bucket.{bucket}"),
                bucket * bucket_rows,
                degrees,
                raw,
            )
    return num_vertices, degrees, raw_path


def _scatter_chunk(
    edges: np.ndarray,
    buckets: Dict[int, IO[bytes]],
    workdir: str,
    bucket_rows: int,
) -> None:
    """Append both directed copies of ``edges`` to their source buckets."""
    src = np.concatenate([edges[:, 0], edges[:, 1]])
    dst = np.concatenate([edges[:, 1], edges[:, 0]])
    bucket_of = src // bucket_rows
    order = np.argsort(bucket_of, kind="stable")
    src, dst, bucket_of = src[order], dst[order], bucket_of[order]
    ids, starts = np.unique(bucket_of, return_index=True)
    bounds = np.append(starts, len(src))
    for i, bucket in enumerate(ids.tolist()):
        handle = buckets.get(bucket)
        if handle is None:
            handle = open(os.path.join(workdir, f"bucket.{bucket}"), "wb")
            buckets[bucket] = handle
        lo, hi = bounds[i], bounds[i + 1]
        np.column_stack((src[lo:hi], dst[lo:hi])).tofile(handle)


def _assemble_bucket(
    path: str, row_base: int, degrees: np.ndarray, raw: IO[bytes]
) -> None:
    """Sort + dedup one bucket; accumulate degrees, append dst to ``raw``."""
    pairs = np.fromfile(path, dtype=np.int64).reshape(-1, 2)
    src, dst = pairs[:, 0], pairs[:, 1]
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    if len(src) > 1:
        keep = np.empty(len(src), dtype=bool)
        keep[0] = True
        keep[1:] = (src[1:] != src[:-1]) | (dst[1:] != dst[:-1])
        src, dst = src[keep], dst[keep]
    if len(src):
        counts = np.bincount(src - row_base)
        degrees[row_base : row_base + len(counts)] += counts
    dst.tofile(raw)
    os.unlink(path)


def _finalize_indices(raw_path: str, final_path: str, total_slots: int) -> None:
    """Write ``indices.npy``: npy header + streamed raw data, atomically."""
    directory = os.path.dirname(final_path) or "."
    descriptor, temp_path = tempfile.mkstemp(
        prefix=os.path.basename(final_path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(descriptor, "wb") as out:
            npy_format.write_array_header_1_0(
                out,
                {
                    "descr": "<i8",
                    "fortran_order": False,
                    "shape": (int(total_slots),),
                },
            )
            with open(raw_path, "rb") as source:
                shutil.copyfileobj(source, out, 1 << 24)
            out.flush()
            os.fsync(out.fileno())
        os.replace(temp_path, final_path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
