"""Chunk-streaming edge-list generators: the n=10M input never sits in RAM.

Both generators write the ``graph/io.py`` text format directly — a
``n <count>`` header line followed by ``u v`` lines — one bounded chunk
at a time, so generating a 100M-edge file needs only the chunk buffer.

``random`` family — Erdős–Rényi ``G(n, p)`` with ``p`` chosen for the
requested average degree, sampled by vectorized *geometric skipping*
(Batagelj–Brandes): walk the linear index space of the ``n(n-1)/2``
vertex pairs with Geometric(p) gaps, so work is O(edges), not O(pairs).
Pair indices map back to ``(u, v)`` by inverting the triangular-number
row offsets.  Indices are visited strictly increasing, hence the output
is duplicate-free and canonically ordered.

``powerlaw`` family — Chung–Lu-style: endpoints drawn i.i.d. from a
power-law vertex distribution ``p_v ∝ (v + 1)^(-1/(exponent-1))`` via
inverse-CDF lookup.  Duplicates and self-loops occur by construction;
self-loops are dropped here and duplicate edges are collapsed by the
builder, mirroring how heavy-tailed edge streams arrive in practice.

Determinism: both are pure functions of ``(n, avg_degree, seed)`` —
Philox counter-based draws, no global RNG state.
"""

from __future__ import annotations

from typing import Any, IO

import numpy as np

from repro.graph.io import open_text

DEFAULT_CHUNK = 1_000_000

FAMILIES = ("random", "powerlaw")


def write_edge_list(
    path: Any,
    family: str,
    n: int,
    avg_degree: float,
    seed: int,
    *,
    chunk: int = DEFAULT_CHUNK,
) -> int:
    """Write a ``family`` edge list to ``path``; returns the line count."""
    if family == "random":
        return write_gnp_edge_list(path, n, avg_degree, seed, chunk=chunk)
    if family == "powerlaw":
        return write_powerlaw_edge_list(path, n, avg_degree, seed, chunk=chunk)
    raise ValueError(f"unknown family {family!r}; expected one of {FAMILIES}")


def _write_pairs(stream: IO[str], us: np.ndarray, vs: np.ndarray) -> None:
    stream.writelines(
        f"{u} {v}\n" for u, v in zip(us.tolist(), vs.tolist())
    )


def _pairs_from_indices(n: int, idx: np.ndarray) -> tuple:
    """Invert the triangular row layout: linear pair index -> ``(u, v)``.

    Pair ``(u, v)``, ``u < v``, has index ``C(u) + v - u - 1`` where
    ``C(u) = u*n - u*(u+1)/2`` counts the pairs in rows before ``u``.
    The float sqrt gives a row estimate that two integer correction
    sweeps make exact (sqrt error is < 1 ulp at n = 10M, well inside
    the correction's reach).
    """

    def row_start(row: np.ndarray) -> np.ndarray:
        return row * n - (row * (row + 1)) // 2

    f = idx.astype(np.float64)
    tn = 2.0 * n - 1.0
    u = np.floor((tn - np.sqrt(tn * tn - 8.0 * f)) / 2.0).astype(np.int64)
    np.clip(u, 0, n - 2, out=u)
    while True:
        over = row_start(u) > idx
        if not over.any():
            break
        u[over] -= 1
    while True:
        under = row_start(u + 1) <= idx
        if not under.any():
            break
        u[under] += 1
    v = idx - row_start(u) + u + 1
    return u, v


def write_gnp_edge_list(
    path: Any,
    n: int,
    avg_degree: float,
    seed: int,
    *,
    chunk: int = DEFAULT_CHUNK,
) -> int:
    """Stream a ``G(n, p)`` edge list with expected degree ``avg_degree``."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    p = min(1.0, float(avg_degree) / max(1, n - 1))
    total_pairs = n * (n - 1) // 2
    generator = np.random.Generator(np.random.Philox(key=int(seed)))
    written = 0
    with open_text(path, "w") as stream:
        stream.write(f"n {n}\n")
        if p <= 0.0 or total_pairs == 0:
            return 0
        log_q = np.log1p(-p) if p < 1.0 else -np.inf
        position = np.int64(-1)
        while True:
            draws = generator.random(chunk)
            with np.errstate(divide="ignore"):
                gaps = np.floor(np.log1p(-draws) / log_q).astype(np.int64) + 1
            positions = position + np.cumsum(gaps)
            live = positions < total_pairs
            positions = positions[live]
            if len(positions):
                us, vs = _pairs_from_indices(n, positions)
                _write_pairs(stream, us, vs)
                written += len(positions)
            if not live.all():
                return written
            position = positions[-1]


def write_powerlaw_edge_list(
    path: Any,
    n: int,
    avg_degree: float,
    seed: int,
    *,
    exponent: float = 2.5,
    chunk: int = DEFAULT_CHUNK,
) -> int:
    """Stream a Chung–Lu-style power-law edge list (``~n*avg/2`` lines).

    The resident state is the O(n) vertex CDF plus one chunk of draws.
    Duplicate lines are intentional (the builder collapses them); the
    returned count is of *lines written*, not distinct edges.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if exponent <= 1.0:
        raise ValueError(f"exponent must be > 1, got {exponent}")
    target = int(n * float(avg_degree)) // 2
    generator = np.random.Generator(np.random.Philox(key=int(seed)))
    written = 0
    with open_text(path, "w") as stream:
        stream.write(f"n {n}\n")
        if n < 2 or target <= 0:
            return 0
        weights = np.arange(1, n + 1, dtype=np.float64) ** (
            -1.0 / (exponent - 1.0)
        )
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        while written < target:
            want = min(chunk, target - written)
            us = np.searchsorted(cdf, generator.random(want)).astype(np.int64)
            vs = np.searchsorted(cdf, generator.random(want)).astype(np.int64)
            keep = us != vs
            us, vs = us[keep], vs[keep]
            lo = np.minimum(us, vs)
            hi = np.maximum(us, vs)
            _write_pairs(stream, lo, hi)
            written += len(lo)
    return written
