"""``solve_stream`` — the façade entry point for dynamic workloads.

Drives a :class:`~repro.stream.maintain.Maintainer` over a stream of
:class:`~repro.stream.updates.EdgeBatch` edits and records one
:class:`EpochRecord` per batch into a serializable, schema-versioned
:class:`StreamReport` (the dynamic sibling of
:class:`~repro.api.report.RunReport` — JSONL-friendly, exact
``to_json``/``from_json`` round-trip, unknown schemas rejected).

Verification is per-epoch: with ``verify=True`` every epoch's maintained
solution runs through :func:`repro.verify.certify_solution` on the
current graph, and the certificates accumulate in the records — a stream
report is an audit trail of *every* intermediate state, not just the
final one.  ``differential_every=k`` additionally re-solves from scratch
every ``k``-th epoch and checks the maintained quality against the full
re-solve inside the task's cross-backend agreement band
(:func:`repro.verify.agreement_band`), the same tolerance two independent
backends are held to.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Union

from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph
from repro.stream.dynamic import DynamicGraph
from repro.stream.maintain import EpochStats, Maintainer, make_maintainer
from repro.stream.updates import EdgeBatch

STREAM_SCHEMA_VERSION = 1
_SUPPORTED_STREAM_SCHEMAS = (1,)


@dataclass(frozen=True)
class EpochRecord:
    """One epoch of a stream run: what changed, what it cost, what held.

    ``verification`` is the serialized per-epoch certificate (empty dict
    when verification was off); ``differential_ratio`` is the
    full-re-solve quality divided by the maintained quality when a
    differential check ran this epoch (``None`` otherwise).
    """

    stats: Dict[str, Any]
    verification: Dict[str, Any] = field(default_factory=dict)
    differential_ratio: Optional[float] = None

    @property
    def ok(self) -> bool:
        """Whether this epoch's checks (if any ran) all passed."""
        if self.verification and not self.verification.get("ok", False):
            return False
        return True

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"stats": dict(self.stats)}
        if self.verification:
            payload["verification"] = dict(self.verification)
        if self.differential_ratio is not None:
            payload["differential_ratio"] = self.differential_ratio
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "EpochRecord":
        return cls(
            stats=dict(payload["stats"]),
            verification=dict(payload.get("verification", {})),
            differential_ratio=payload.get("differential_ratio"),
        )


@dataclass(frozen=True)
class StreamReport:
    """A full dynamic run, serializable like :class:`RunReport`.

    Attributes
    ----------
    task / backend:
        The maintained task and the backend used for the initial solve
        and every fallback re-solve.
    n_initial / m_initial / n_final / m_final:
        Graph size at stream start and end.
    initial:
        Summary of the initial full solve (rounds, size, wall time).
    epochs:
        One :class:`EpochRecord` per batch, in stream order.
    solution:
        The final maintained solution in the canonical report shape.
    config:
        The maintenance knobs (``resolve_fraction``, verification mode).
    """

    task: str
    backend: str
    n_initial: int
    m_initial: int
    n_final: int
    m_final: int
    initial: Dict[str, Any]
    epochs: List[EpochRecord]
    solution: Any
    config: Dict[str, Any] = field(default_factory=dict)
    schema: int = STREAM_SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.schema not in _SUPPORTED_STREAM_SCHEMAS:
            raise ValueError(
                f"unsupported StreamReport schema version {self.schema!r}; "
                f"supported: {_SUPPORTED_STREAM_SCHEMAS}"
            )

    # -- aggregates ---------------------------------------------------------

    @property
    def ok(self) -> bool:
        """Whether every epoch's recorded checks passed."""
        return all(record.ok for record in self.epochs)

    @property
    def epochs_repaired(self) -> int:
        return sum(1 for r in self.epochs if r.stats.get("action") == "repair")

    @property
    def epochs_resolved(self) -> int:
        return sum(1 for r in self.epochs if r.stats.get("action") == "resolve")

    @property
    def size(self) -> int:
        """Cardinality of the final maintained solution."""
        return len(self.solution)

    def total_wall_time_s(self, action: Optional[str] = None) -> float:
        """Summed per-epoch wall time (optionally for one action kind)."""
        return sum(
            float(r.stats.get("wall_time_s", 0.0))
            for r in self.epochs
            if action is None or r.stats.get("action") == action
        )

    def summary_row(self) -> Dict[str, Any]:
        """A compact row for tables (solution elided)."""
        return {
            "task": self.task,
            "backend": self.backend,
            "n": self.n_final,
            "m": self.m_final,
            "epochs": len(self.epochs),
            "repaired": self.epochs_repaired,
            "resolved": self.epochs_resolved,
            "size": self.size,
            "ok": self.ok,
            "wall_time_s": round(self.total_wall_time_s(), 4),
        }

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "task": self.task,
            "backend": self.backend,
            "n_initial": self.n_initial,
            "m_initial": self.m_initial,
            "n_final": self.n_final,
            "m_final": self.m_final,
            "initial": dict(self.initial),
            "epochs": [record.to_dict() for record in self.epochs],
            "solution": self.solution,
            "config": dict(self.config),
            "schema": self.schema,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "StreamReport":
        schema = payload.get("schema", STREAM_SCHEMA_VERSION)
        if schema not in _SUPPORTED_STREAM_SCHEMAS:
            raise ValueError(
                f"unsupported StreamReport schema version {schema!r}; "
                f"supported: {_SUPPORTED_STREAM_SCHEMAS}"
            )
        return cls(
            task=payload["task"],
            backend=payload["backend"],
            n_initial=int(payload["n_initial"]),
            m_initial=int(payload["m_initial"]),
            n_final=int(payload["n_final"]),
            m_final=int(payload["m_final"]),
            initial=dict(payload.get("initial", {})),
            epochs=[
                EpochRecord.from_dict(item) for item in payload.get("epochs", [])
            ],
            solution=payload["solution"],
            config=dict(payload.get("config", {})),
            schema=schema,
        )

    @classmethod
    def from_json(cls, text: str) -> "StreamReport":
        return cls.from_dict(json.loads(text))


def read_stream_jsonl(path: Any) -> List[StreamReport]:
    """Load every stream report from a JSONL file.

    Crash-tolerant: a truncated final line (a writer killed mid-append)
    is skipped with a :class:`~repro.utils.jsonl.TruncatedJSONLWarning`
    and every intact report is returned; a record failing to parse
    *mid-file* raises a line-numbered
    :class:`~repro.utils.jsonl.JSONLCorruptionError`.
    """
    from repro.utils.jsonl import parse_jsonl_lines

    with open(path, "r", encoding="utf-8") as stream:
        return list(
            parse_jsonl_lines(stream, StreamReport.from_json, source=path)
        )


# ---------------------------------------------------------------------------
# the driver
# ---------------------------------------------------------------------------


def certify_epoch(task: str, graph: Graph, maintainer: Maintainer) -> Dict[str, Any]:
    """Per-epoch certificate from the repro.verify checkers.

    Public because the serve layer certifies the same way per tenant
    epoch; the dict is the serialized :class:`repro.verify.Certificate`.
    """
    from repro.verify import Certificate, certify_solution

    certificate = Certificate()
    certificate.extend(certify_solution(task, graph, maintainer.solution()))
    return certificate.to_dict()


def _maintained_quality(task: str, maintainer: Maintainer) -> float:
    if task == "fractional_matching":
        return maintainer.total_weight()  # type: ignore[attr-defined]
    if task == "vertex_cover":
        # Compare matchings, not covers: the fallback re-solve is the
        # matching task (see VertexCoverMaintainer), so the band applies
        # to the structure both sides actually compute.
        return float(len(maintainer.matched_edges()))  # type: ignore[attr-defined]
    return float(maintainer.size())


def _differential_check(
    task: str, graph: Graph, maintainer: Maintainer, backend: str, seed: Optional[int]
) -> tuple:
    """Quality ratio (full re-solve / maintained) and band verdict."""
    from repro.api import solve
    from repro.verify import agreement_band
    from repro.verify.differential import quality_of

    solve_task = maintainer.SOLVE_TASK or task
    report = solve(solve_task, graph, backend=backend, seed=seed)
    fresh = quality_of(report)
    maintained = _maintained_quality(task, maintainer)
    ratio = fresh / maintained if maintained else float("inf") if fresh else 1.0
    band = agreement_band(solve_task)
    within = band is None or (
        max(fresh, maintained) <= band * min(fresh, maintained) + 1e-6
    )
    return ratio, within


def solve_stream(
    task: str,
    graph: Union[Graph, CSRGraph, DynamicGraph],
    batches: Iterable[EdgeBatch],
    *,
    backend: str = "auto",
    config: Any = None,
    seed: Optional[int] = None,
    resolve_fraction: float = 0.25,
    budget: Optional[float] = None,
    governance: Any = None,
    verify: bool = False,
    differential_every: int = 0,
    on_epoch: Optional[Callable[[EpochRecord], None]] = None,
) -> StreamReport:
    """Maintain ``task`` on ``graph`` across a stream of edge batches.

    Parameters
    ----------
    task:
        A task with a registered maintainer (``"mis"``, ``"matching"``,
        ``"vertex_cover"``, ``"fractional_matching"``).
    graph:
        The initial graph; a :class:`DynamicGraph` is adopted as-is.
    batches:
        Any iterable of :class:`EdgeBatch` (a list, a file replay, a
        synthetic generator) — one batch becomes one epoch.
    backend / config / seed:
        Forwarded to :func:`repro.api.solve` for the initial solve and
        every damage-threshold fallback re-solve.
    resolve_fraction:
        The fallback threshold (see :class:`Maintainer`).
    budget / governance:
        Memory cap and :mod:`repro.govern` opt-in threaded into the
        initial solve and every fallback re-solve; governed resolves that
        hit the envelope surface their event trail on the epoch record
        instead of aborting the stream (see :class:`Maintainer`).
    verify:
        Certify every epoch's solution with the repro.verify checkers
        (validity + oracle ratios on small instances).  Converts the
        graph to the set-based representation once per epoch, so leave
        off for large perf runs.
    differential_every:
        Every ``k``-th epoch also run a full re-solve and record the
        quality ratio; band violations mark the record failed.  0 = off.
    on_epoch:
        Optional callback per finished :class:`EpochRecord`.
    """
    if differential_every < 0:
        raise ValueError(
            f"differential_every must be >= 0, got {differential_every}"
        )
    maintainer = make_maintainer(
        task,
        graph,
        backend=backend,
        config=config,
        seed=seed,
        resolve_fraction=resolve_fraction,
        budget=budget,
        governance=governance,
    )
    n_initial = maintainer.graph.num_vertices
    m_initial = maintainer.graph.num_edges

    started = time.perf_counter()
    initial_report = maintainer.initialize()
    initial = {
        "backend": initial_report.backend,
        "rounds": initial_report.rounds,
        "size": maintainer.size(),
        "wall_time_s": time.perf_counter() - started,
    }
    if maintainer.last_governance and maintainer.last_governance.get("triggered"):
        initial["governance"] = maintainer.last_governance

    records: List[EpochRecord] = []
    for index, batch in enumerate(batches, start=1):
        stats: EpochStats = maintainer.step(batch)
        verification: Dict[str, Any] = {}
        ratio: Optional[float] = None
        if verify or (differential_every and index % differential_every == 0):
            current = maintainer.graph.to_graph()
            if verify:
                verification = certify_epoch(task, current, maintainer)
            if differential_every and index % differential_every == 0:
                ratio, within = _differential_check(
                    task, current, maintainer, backend, seed
                )
                if not within:
                    verification = dict(verification) if verification else {
                        "checks": []
                    }
                    verification["ok"] = False
                    verification.setdefault("checks", []).append(
                        {
                            "name": "differential_band",
                            "passed": False,
                            "detail": f"quality ratio {ratio:.4f} outside band",
                        }
                    )
        record = EpochRecord(
            stats=stats.to_dict(),
            verification=verification,
            differential_ratio=ratio,
        )
        records.append(record)
        if on_epoch is not None:
            on_epoch(record)

    return StreamReport(
        task=task,
        backend=backend,
        n_initial=n_initial,
        m_initial=m_initial,
        n_final=maintainer.graph.num_vertices,
        m_final=maintainer.graph.num_edges,
        initial=initial,
        epochs=records,
        solution=maintainer.solution(),
        config={
            "resolve_fraction": resolve_fraction,
            "verify": bool(verify),
            "differential_every": differential_every,
            "seed": seed,
        },
    )
