"""Command-line runner for dynamic workloads.

Replay one scenario and print per-epoch stats::

    python -m repro.stream --task mis --scenario churn --n 2000 \\
        --epochs 10 --churn 0.01 --seed 0 --verify

Replay a recorded stream (edge list or JSONL batches)::

    python -m repro.stream --task matching --replay updates.jsonl --n 1000

Conformance mode (the CI gate)::

    python -m repro.stream --check

``--check`` runs the default churn matrix — every maintainer task on
every synthetic scenario — with per-epoch verification *and* a
differential full-re-solve comparison each epoch.  Exit status is 0 iff
every epoch of every run certified clean and stayed inside the agreement
bands.  ``--jsonl`` streams each StreamReport for offline analysis.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.analysis.tables import format_table
from repro.api.__main__ import _parse_governance
from repro.graph.graph import Graph
from repro.stream.driver import StreamReport, solve_stream
from repro.stream.maintain import MAINTAINERS
from repro.stream.updates import (
    SCENARIOS,
    EdgeBatch,
    make_scenario,
    read_batches_jsonl,
    replay_edge_list,
)

# The default conformance matrix: small enough that the exact oracles
# participate in every epoch's certificate, varied enough to hit churn
# (deletion repair), sliding windows (mixed), and growth (vertex append).
CHECK_TASKS = ("mis", "matching", "vertex_cover", "fractional_matching")
CHECK_SIZES = (64, 128)
CHECK_SEEDS = (0, 1)
CHECK_EPOCHS = 6
# 2% churn with a 0.08 threshold lands every task's damaged region on
# both sides of the fallback (per-task damage medians range 0.06-0.15),
# so the conformance run exercises localized repair AND the fallback
# re-solve for every task.
CHECK_CHURN = 0.02
CHECK_RESOLVE_FRACTION = 0.08


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.stream",
        description="Dynamic-workload replay and stream conformance checks.",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="run the conformance matrix (ignores the single-run options)",
    )
    parser.add_argument(
        "--task",
        default="mis",
        choices=sorted(MAINTAINERS),
        help="maintained task (default mis)",
    )
    parser.add_argument(
        "--scenario",
        default="churn",
        choices=SCENARIOS,
        help="synthetic workload (default churn)",
    )
    parser.add_argument(
        "--replay",
        default=None,
        help="replay a recorded stream instead (.jsonl batches, or an "
        "edge list replayed insert-only; .gz supported)",
    )
    parser.add_argument(
        "--n",
        type=int,
        default=1000,
        help="initial vertices (scenarios and JSONL replay; edge-list "
        "replay sizes itself from the file)",
    )
    parser.add_argument("--epochs", type=int, default=10, help="batches to run")
    parser.add_argument(
        "--churn", type=float, default=0.01, help="churn fraction per batch"
    )
    parser.add_argument(
        "--batch-edges", type=int, default=1024, help="edges per replay batch"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--backend", default="auto", help="backend for initial/fallback solves"
    )
    parser.add_argument(
        "--resolve-fraction",
        type=float,
        default=0.25,
        help="damage fraction that triggers a full re-solve (default 0.25)",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=None,
        help="per-machine memory budget (units of n) for fallback re-solves",
    )
    parser.add_argument(
        "--governance",
        default=None,
        metavar="JSON",
        help=(
            "govern fallback re-solves (repro.govern): GovernancePolicy "
            "fields as JSON ('{}' = defaults)"
        ),
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="certify every epoch with the repro.verify checkers",
    )
    parser.add_argument(
        "--differential-every",
        type=int,
        default=0,
        help="compare against a full re-solve every k epochs (0 = off)",
    )
    parser.add_argument(
        "--jsonl", default=None, help="stream each StreamReport to this file"
    )
    return parser


def _epoch_rows(report: StreamReport) -> List[Dict[str, Any]]:
    rows = []
    # Column order comes from the first row, so ragged keys must still
    # appear there: default them whenever any epoch recorded a value.
    any_verified = any(r.verification for r in report.epochs)
    any_differential = any(
        r.differential_ratio is not None for r in report.epochs
    )
    for record in report.epochs:
        stats = record.stats
        row = {
            "epoch": stats["epoch"],
            "+e": stats["inserted"],
            "-e": stats["deleted"],
            "+v": stats["new_vertices"],
            "action": stats["action"],
            "damage": round(stats["damage_fraction"], 4),
            "size": stats["size"],
            "ms": round(1000 * stats["wall_time_s"], 2),
        }
        if any_verified:
            row["ok"] = (
                record.verification.get("ok", False)
                if record.verification
                else "-"
            )
        if any_differential:
            row["vs_resolve"] = (
                round(record.differential_ratio, 3)
                if record.differential_ratio is not None
                else "-"
            )
        rows.append(row)
    return rows


def run_single(args: argparse.Namespace) -> Tuple[StreamReport, int]:
    if args.replay:
        if args.replay.removesuffix(".gz").endswith(".jsonl"):
            initial: Graph = Graph(args.n)
            batches: Iterable[EdgeBatch] = read_batches_jsonl(args.replay)
        else:
            # Edge-list replay declares its own vertex universe (header +
            # endpoints) via batch growth; seeding extra vertices from
            # --n would leave phantom isolated vertices behind.
            initial = Graph(0)
            batches = replay_edge_list(args.replay, batch_edges=args.batch_edges)
    else:
        initial, batches = make_scenario(
            args.scenario,
            n=args.n,
            epochs=args.epochs,
            churn_fraction=args.churn,
            seed=args.seed,
        )
    report = solve_stream(
        args.task,
        initial,
        batches,
        backend=args.backend,
        seed=args.seed,
        resolve_fraction=args.resolve_fraction,
        budget=args.budget,
        governance=_parse_governance(args.governance),
        verify=args.verify,
        differential_every=args.differential_every,
    )
    title = (
        f"stream: {args.task} on {args.replay or args.scenario} — "
        f"{report.epochs_repaired} repaired, {report.epochs_resolved} resolved, "
        f"initial solve {report.initial['wall_time_s']:.2f}s"
    )
    print(format_table(_epoch_rows(report), title=title))
    return report, 0 if report.ok else 1


def run_check(jsonl: Optional[str]) -> int:
    stream = open(jsonl, "w", encoding="utf-8") if jsonl else None
    failures: List[str] = []
    rows: List[Dict[str, Any]] = []
    try:
        for task in CHECK_TASKS:
            for scenario in SCENARIOS:
                for n in CHECK_SIZES:
                    for seed in CHECK_SEEDS:
                        initial, batches = make_scenario(
                            scenario,
                            n=n,
                            epochs=CHECK_EPOCHS,
                            churn_fraction=CHECK_CHURN,
                            seed=seed,
                        )
                        report = solve_stream(
                            task,
                            initial,
                            batches,
                            seed=seed,
                            resolve_fraction=CHECK_RESOLVE_FRACTION,
                            verify=True,
                            differential_every=1,
                        )
                        if stream is not None:
                            stream.write(report.to_json() + "\n")
                            stream.flush()
                        row = report.summary_row()
                        row["scenario"] = scenario
                        row["seed"] = seed
                        rows.append(row)
                        if not report.ok:
                            for index, record in enumerate(report.epochs):
                                if record.ok:
                                    continue
                                failed = [
                                    check["name"]
                                    for check in record.verification.get(
                                        "checks", []
                                    )
                                    if not check["passed"]
                                ]
                                failures.append(
                                    f"{task}/{scenario}/n={n}/seed={seed}/"
                                    f"epoch={index + 1}: {', '.join(failed)}"
                                )
    finally:
        if stream is not None:
            stream.close()
    runs = len(rows)
    epochs = sum(row["epochs"] for row in rows)
    print(
        format_table(
            rows,
            title=(
                f"stream conformance: {runs} runs, {epochs} epochs, "
                f"{len(failures)} failures"
            ),
        )
    )
    if failures:
        print(f"\n{len(failures)} failing epochs:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.check:
        return run_check(args.jsonl)
    report, status = run_single(args)
    if args.jsonl:
        with open(args.jsonl, "w", encoding="utf-8") as stream:
            stream.write(report.to_json() + "\n")
        print(f"\nwrote stream report to {args.jsonl}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
