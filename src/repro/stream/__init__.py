"""``repro.stream`` — dynamic graph updates + incremental maintenance.

The static solvers answer "what is the MIS of this graph"; this subsystem
answers "keep the MIS correct while the graph changes":

* :class:`DynamicGraph` — a mutable delta overlay over the immutable CSR
  layout, compacted back to CSR at epoch boundaries so the vectorized
  kernels stay the hot path;
* :class:`EdgeBatch` + stream sources (:mod:`repro.stream.updates`) —
  the typed update model: file replay (edge lists, JSONL), sliding
  windows, synthetic growth and churn;
* :class:`Maintainer` subclasses (:mod:`repro.stream.maintain`) —
  per-task incremental repair with a damage-threshold fallback to the
  full :func:`repro.api.solve`;
* :func:`solve_stream` / :class:`StreamReport`
  (:mod:`repro.stream.driver`) — the façade entry point and its
  schema-versioned, per-epoch-certified report.

``python -m repro.stream`` replays workloads from the shell;
``python -m repro.stream --check`` runs the stream conformance matrix
(see STREAMING.md).
"""

from repro.stream.dynamic import DynamicGraph
from repro.stream.driver import (
    STREAM_SCHEMA_VERSION,
    EpochRecord,
    StreamReport,
    read_stream_jsonl,
    solve_stream,
)
from repro.stream.maintain import (
    MAINTAINERS,
    EpochStats,
    FractionalMatchingMaintainer,
    Maintainer,
    MatchingMaintainer,
    MISMaintainer,
    VertexCoverMaintainer,
    make_maintainer,
)
from repro.stream.updates import (
    SCENARIOS,
    EdgeBatch,
    churn_batches,
    growth_batches,
    make_scenario,
    read_batches_jsonl,
    replay_edge_list,
    sliding_window_batches,
    write_batches_jsonl,
)

__all__ = [
    "DynamicGraph",
    "EdgeBatch",
    "EpochRecord",
    "EpochStats",
    "FractionalMatchingMaintainer",
    "MAINTAINERS",
    "MISMaintainer",
    "Maintainer",
    "MatchingMaintainer",
    "SCENARIOS",
    "STREAM_SCHEMA_VERSION",
    "StreamReport",
    "VertexCoverMaintainer",
    "churn_batches",
    "growth_batches",
    "make_maintainer",
    "make_scenario",
    "read_batches_jsonl",
    "read_stream_jsonl",
    "replay_edge_list",
    "sliding_window_batches",
    "solve_stream",
    "write_batches_jsonl",
]
