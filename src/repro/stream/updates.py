"""The typed update model and stream sources for dynamic workloads.

An :class:`EdgeBatch` is the unit of change: canonicalized, deduplicated
insertion/deletion arrays plus an optional vertex-growth count and a
timestamp.  Everything downstream (the overlay, the maintainers, the
driver, the JSONL wire format) speaks batches, so every source below is
interchangeable:

* :func:`replay_edge_list` — chunked file replay of a (possibly gzipped)
  edge list via :func:`repro.graph.io.iter_edge_list`; insert-only.
* :func:`read_batches_jsonl` / :func:`write_batches_jsonl` — the JSONL
  wire format for recorded update streams (inserts, deletes, growth,
  timestamps).
* :func:`sliding_window_batches` — a window of the ``window`` most recent
  edges sliding over an edge sequence: each batch inserts the next slice
  and deletes the slice that fell out.
* :func:`growth_batches` — temporal preferential attachment (power-law
  growth): each batch appends vertices that attach to existing ones with
  degree-proportional probability, extending
  :func:`repro.graph.generators.barabasi_albert` in time.
* :func:`churn_batches` — marketplace add/drop churn: each batch retires
  a random fraction of the current edges and lists an equal number of
  fresh ones (listings leaving and entering a market).

:data:`SCENARIOS` names the synthetic scenarios for the CLI/benchmarks;
:func:`make_scenario` builds ``(initial_graph, batches)`` pairs from a
name, so the conformance matrix and the perf harness share workloads.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.generators import barabasi_albert, gnm_random_graph
from repro.graph.graph import Edge, Graph, canonical_edge
from repro.graph.io import PathLike, iter_edge_list, open_text
from repro.stream.dynamic import decode_keys, encode_edges
from repro.utils.rng import SeedLike, make_rng

BATCH_SCHEMA_VERSION = 1


def _canonical_array(edges: Any, label: str) -> np.ndarray:
    """Normalize an edge collection to a deduped canonical ``(k, 2)`` array."""
    array = np.asarray(
        edges if edges is not None else [], dtype=np.int64
    ).reshape(-1, 2)
    if array.size == 0:
        return array
    if array.min() < 0:
        raise ValueError(f"{label} contains a negative vertex id")
    if array.max() >= 1 << 31:
        # The key packing below (and DynamicGraph's) holds two ids per
        # int64; a larger id would silently wrap into a different edge.
        raise ValueError(f"{label} contains a vertex id >= 2^31")
    if (array[:, 0] == array[:, 1]).any():
        raise ValueError(f"{label} contains a self-loop")
    # Key packing/unpacking is owned by repro.stream.dynamic; this only
    # adds the dedup (np.unique on keys sorts and collapses).
    return decode_keys(np.unique(encode_edges(array)))


@dataclass(frozen=True, eq=False)
class EdgeBatch:
    """One atomic unit of graph change.

    Attributes
    ----------
    insertions / deletions:
        Canonical ``(k, 2)`` int64 arrays, deduplicated, self-loop-free.
        Deletions apply before insertions.
    new_vertices:
        Vertices appended (as ``n .. n + new_vertices - 1``) before the
        edge edits apply — how growth streams extend the graph.
    timestamp:
        Source-defined event time (replay position, window index, epoch
        number); carried through to per-epoch records.
    """

    insertions: np.ndarray = field(default_factory=lambda: np.empty((0, 2), np.int64))
    deletions: np.ndarray = field(default_factory=lambda: np.empty((0, 2), np.int64))
    new_vertices: int = 0
    timestamp: float = 0.0

    @classmethod
    def make(
        cls,
        insertions: Any = None,
        deletions: Any = None,
        *,
        new_vertices: int = 0,
        timestamp: float = 0.0,
    ) -> "EdgeBatch":
        """Build a batch from loose edge collections, canonicalizing both."""
        if new_vertices < 0:
            raise ValueError(f"new_vertices must be >= 0, got {new_vertices}")
        return cls(
            insertions=_canonical_array(insertions, "insertions"),
            deletions=_canonical_array(deletions, "deletions"),
            new_vertices=int(new_vertices),
            timestamp=float(timestamp),
        )

    @property
    def size(self) -> int:
        """Total number of requested edge edits."""
        return len(self.insertions) + len(self.deletions)

    def touched_vertices(self) -> np.ndarray:
        """Unique endpoints named by this batch, ascending."""
        return np.unique(
            np.concatenate([self.insertions.ravel(), self.deletions.ravel()])
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot (the JSONL wire shape)."""
        payload: Dict[str, Any] = {"schema": BATCH_SCHEMA_VERSION}
        if len(self.insertions):
            payload["insert"] = self.insertions.tolist()
        if len(self.deletions):
            payload["delete"] = self.deletions.tolist()
        if self.new_vertices:
            payload["new_vertices"] = self.new_vertices
        if self.timestamp:
            payload["t"] = self.timestamp
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "EdgeBatch":
        """Rebuild from :meth:`to_dict` output; rejects unknown schemas."""
        schema = payload.get("schema", BATCH_SCHEMA_VERSION)
        if schema != BATCH_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported EdgeBatch schema {schema!r}; "
                f"supported: {BATCH_SCHEMA_VERSION}"
            )
        return cls.make(
            insertions=payload.get("insert"),
            deletions=payload.get("delete"),
            new_vertices=int(payload.get("new_vertices", 0)),
            timestamp=float(payload.get("t", 0.0)),
        )


# ---------------------------------------------------------------------------
# file replay
# ---------------------------------------------------------------------------


def replay_edge_list(
    path: PathLike, batch_edges: int = 1024
) -> Iterator[EdgeBatch]:
    """Replay a (possibly gzipped) edge-list file as insert-only batches.

    Chunked end to end: no more than ``batch_edges`` edges are held at
    once.  Each batch grows the vertex set to cover its endpoints (and the
    file's ``n`` header), so replay onto an initially empty graph works.
    """
    seen_vertices = 0
    position = 0
    for declared, chunk in iter_edge_list(path, chunk_edges=batch_edges):
        growth = max(declared - seen_vertices, 0)
        if not chunk and not growth:
            continue
        seen_vertices += growth
        yield EdgeBatch.make(
            insertions=chunk, new_vertices=growth, timestamp=float(position)
        )
        position += 1


def write_batches_jsonl(batches: Iterable[EdgeBatch], path: PathLike) -> None:
    """Record a batch stream as one JSON object per line (gzipped if .gz)."""
    with open_text(path, "w") as stream:
        for batch in batches:
            stream.write(json.dumps(batch.to_dict(), sort_keys=True) + "\n")


def read_batches_jsonl(path: PathLike) -> Iterator[EdgeBatch]:
    """Stream batches back from :func:`write_batches_jsonl` output.

    Crash-tolerant like the report readers: a truncated final line (a
    recorder killed mid-append) is skipped with a warning, mid-file
    corruption raises with the line number.
    """
    from repro.utils.jsonl import parse_jsonl_lines

    with open_text(path, "r") as stream:
        yield from parse_jsonl_lines(
            stream,
            lambda line: EdgeBatch.from_dict(json.loads(line)),
            source=path,
        )


def coalesce_batches(batches: Sequence[EdgeBatch]) -> EdgeBatch:
    """Fold a batch sequence into one equivalent batch (epoch batching).

    The merged batch, applied once, produces exactly the graph the
    sequence produces applied in order — the algebra the serve layer's
    backpressure relies on.  With per-batch semantics "deletions before
    insertions", the last operation touching an edge wins:

    * an edge inserted by a later batch and not deleted afterwards ends
      present, so it lands in the merged insertions;
    * an edge whose last touch is a deletion lands in the merged
      deletions (and is excluded from the insertions).

    ``new_vertices`` sums (vertex ids are append-only, so growing all at
    once before the edits reaches the same id space); the timestamp is
    the last batch's.  Raises on an empty sequence.
    """
    if not batches:
        raise ValueError("cannot coalesce an empty batch sequence")
    inserted: set = set()
    deleted: set = set()
    new_vertices = 0
    for batch in batches:
        del_keys = set(encode_edges(batch.deletions).tolist())
        ins_keys = set(encode_edges(batch.insertions).tolist())
        # Within one batch, deletions apply first.
        inserted -= del_keys
        deleted |= del_keys
        inserted |= ins_keys
        deleted -= ins_keys
        new_vertices += batch.new_vertices
    return EdgeBatch.make(
        insertions=decode_keys(
            np.fromiter(inserted, dtype=np.int64, count=len(inserted))
        ),
        deletions=decode_keys(
            np.fromiter(deleted, dtype=np.int64, count=len(deleted))
        ),
        new_vertices=new_vertices,
        timestamp=batches[-1].timestamp,
    )


# ---------------------------------------------------------------------------
# synthetic sources
# ---------------------------------------------------------------------------


def sliding_window_batches(
    edges: Sequence[Edge], *, window: int, batch_edges: int
) -> Tuple[List[Edge], Iterator[EdgeBatch]]:
    """A sliding window over an edge sequence.

    Returns ``(initial_window, batches)``: the first ``window`` edges form
    the initial graph; each subsequent batch inserts the next
    ``batch_edges`` edges and deletes the ones sliding out, so the live
    graph always holds the ``window`` most recent edges.
    """
    if window <= 0 or batch_edges <= 0:
        raise ValueError("window and batch_edges must be positive")
    if batch_edges > window:
        # A batch larger than the window would delete edges inserted by
        # the same batch (deletions apply first), breaking the invariant.
        raise ValueError(
            f"batch_edges ({batch_edges}) must not exceed window ({window})"
        )
    ordered = [canonical_edge(u, v) for u, v in edges]

    def generate() -> Iterator[EdgeBatch]:
        for start in range(window, len(ordered), batch_edges):
            incoming = ordered[start : start + batch_edges]
            outgoing = ordered[start - window : start - window + len(incoming)]
            yield EdgeBatch.make(
                insertions=incoming,
                deletions=outgoing,
                timestamp=float(start),
            )

    return ordered[:window], generate()


def growth_batches(
    initial: Graph,
    *,
    epochs: int,
    vertices_per_epoch: int,
    attachment: int = 3,
    seed: SeedLike = None,
) -> Iterator[EdgeBatch]:
    """Temporal power-law growth by preferential attachment.

    Continues the Barabási–Albert process from ``initial``: every epoch
    appends ``vertices_per_epoch`` vertices, each attaching to
    ``attachment`` distinct existing vertices with degree-proportional
    probability (the repeated-endpoint trick, as in
    :func:`repro.graph.generators.barabasi_albert`).
    """
    if attachment < 1:
        raise ValueError(f"attachment must be >= 1, got {attachment}")
    if initial.num_vertices <= attachment:
        raise ValueError("initial graph must exceed the attachment count")
    rng = make_rng(seed)
    endpoint_pool: List[int] = []
    for u, v in initial.edges():
        endpoint_pool.extend((u, v))
    if not endpoint_pool:
        endpoint_pool.extend(range(initial.num_vertices))
    if len(set(endpoint_pool)) < attachment:
        # The distinct-target sampling loop below could never terminate.
        raise ValueError(
            f"initial graph has fewer than attachment={attachment} distinct "
            "attachable vertices (edge endpoints)"
        )
    next_vertex = initial.num_vertices
    for epoch in range(epochs):
        insertions: List[Edge] = []
        for _ in range(vertices_per_epoch):
            targets: set = set()
            while len(targets) < attachment:
                targets.add(rng.choice(endpoint_pool))
            for u in targets:
                insertions.append((u, next_vertex))
                endpoint_pool.extend((u, next_vertex))
            next_vertex += 1
        yield EdgeBatch.make(
            insertions=insertions,
            new_vertices=vertices_per_epoch,
            timestamp=float(epoch),
        )


def churn_batches(
    initial: Graph,
    *,
    epochs: int,
    churn_fraction: float,
    seed: SeedLike = None,
) -> Iterator[EdgeBatch]:
    """Marketplace add/drop churn at a fixed edge budget.

    Every epoch retires ``churn_fraction`` of the *current* edges
    (uniformly) and lists an equal number of fresh uniform non-edges, so
    ``n`` and ``m`` stay constant while the structure drifts — the
    steady-state regime the damage-threshold fallback is tuned for.
    """
    if not 0.0 < churn_fraction <= 1.0:
        raise ValueError(
            f"churn_fraction must be in (0, 1], got {churn_fraction}"
        )
    rng = make_rng(seed)
    n = initial.num_vertices
    if n < 2:
        raise ValueError("churn needs at least 2 vertices")
    # Parallel list + set: the list gives O(drop) deterministic sampling
    # with swap-pop removal, the set O(1) membership — no per-epoch sort.
    pool: List[Edge] = initial.edge_list()
    live = set(pool)
    for epoch in range(epochs):
        drop_count = max(1, int(round(churn_fraction * len(pool)))) if pool else 0
        positions = sorted(
            rng.sample(range(len(pool)), min(drop_count, len(pool))),
            reverse=True,
        )
        retired = []
        for position in positions:
            edge = pool[position]
            retired.append(edge)
            live.discard(edge)
            pool[position] = pool[-1]
            pool.pop()
        listed: List[Edge] = []
        while len(listed) < len(retired):
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v:
                continue
            edge = canonical_edge(u, v)
            if edge not in live:
                live.add(edge)
                pool.append(edge)
                listed.append(edge)
        yield EdgeBatch.make(
            insertions=listed, deletions=retired, timestamp=float(epoch)
        )


# ---------------------------------------------------------------------------
# named scenarios (CLI + benchmarks)
# ---------------------------------------------------------------------------

SCENARIOS = ("churn", "sliding_window", "growth")


def make_scenario(
    name: str,
    *,
    n: int,
    epochs: int,
    churn_fraction: float = 0.01,
    average_degree: int = 8,
    seed: int = 0,
) -> Tuple[Graph, List[EdgeBatch]]:
    """Build ``(initial_graph, batches)`` for a named synthetic scenario.

    ``churn`` starts from ``G(n, m)`` with the requested average degree
    and drifts at ``churn_fraction`` per epoch; ``sliding_window`` slides
    a window of the same size over twice as many edges; ``growth`` starts
    from a power-law core of ``n`` vertices and appends
    ``max(1, round(churn_fraction * n))`` vertices per epoch.
    """
    if epochs <= 0:
        raise ValueError(f"epochs must be positive, got {epochs}")
    m = max(1, min(n * average_degree // 2, n * (n - 1) // 2))
    if name == "churn":
        initial = gnm_random_graph(n, m, seed=seed)
        return initial, list(
            churn_batches(
                initial, epochs=epochs, churn_fraction=churn_fraction, seed=seed + 1
            )
        )
    if name == "sliding_window":
        timeline = gnm_random_graph(n, min(2 * m, n * (n - 1) // 2), seed=seed)
        ordered = timeline.edge_list()
        rng = make_rng(seed + 1)
        rng.shuffle(ordered)
        span = len(ordered) - m
        batch_edges = max(
            1, min(int(round(churn_fraction * m)), span // epochs) if span else 1
        )
        window, stream = sliding_window_batches(
            ordered, window=m, batch_edges=batch_edges
        )
        batches = []
        for batch in stream:
            if len(batches) == epochs:
                break
            batches.append(batch)
        return Graph(n, window), batches
    if name == "growth":
        attachment = max(2, average_degree // 2)
        initial = barabasi_albert(n, attachment, seed=seed)
        per_epoch = max(1, int(round(churn_fraction * n)))
        return initial, list(
            growth_batches(
                initial,
                epochs=epochs,
                vertices_per_epoch=per_epoch,
                attachment=attachment,
                seed=seed + 1,
            )
        )
    raise ValueError(f"unknown scenario {name!r}; known: {SCENARIOS}")
