"""``DynamicGraph`` — a mutable delta overlay over the immutable CSR layout.

The PR 2 kernels are fast *because* :class:`~repro.graph.csr.CSRGraph` is
immutable — every scan is a flat array pass.  Dynamic workloads need
mutation, so this module layers pending edits on top of a frozen CSR
*base*:

* edge insertions/deletions accumulate in small delta structures (encoded
  NumPy key arrays for the batched paths, per-vertex sets for point
  queries);
* reads (``has_edge``, ``degree``, ``neighbors``) merge base + delta, so
  the overlay always answers for the *current* graph;
* :meth:`compact` folds the delta back into a fresh ``CSRGraph`` and
  advances the epoch counter — after compaction the vectorized kernels
  run on the hot CSR path again with zero overlay cost.

Deltas are intended to stay small relative to the base (one stream batch
per epoch); ``compact_fraction`` auto-compacts if a caller lets them grow
past that fraction of the base edge count, so reads never degrade to
scanning an overlay comparable in size to the graph.

Edges are keyed as ``min << 32 | max`` (stable under vertex growth), which
keeps batched membership tests against the base a single
``searchsorted`` — the base CSR's canonical ascending edge order means the
key array is already sorted.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

import numpy as np

from repro.graph.csr import CSRGraph, as_csr
from repro.graph.graph import Edge, Graph

_KEY_SHIFT = np.int64(32)
_MAX_VERTICES = 1 << 31  # keys pack two ids into one int64


def encode_edges(edges: np.ndarray) -> np.ndarray:
    """Canonical ``min << 32 | max`` keys for an ``(k, 2)`` edge array."""
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    lo = np.minimum(edges[:, 0], edges[:, 1])
    hi = np.maximum(edges[:, 0], edges[:, 1])
    return (lo << _KEY_SHIFT) | hi


def decode_keys(keys: np.ndarray) -> np.ndarray:
    """Inverse of :func:`encode_edges`: keys back to ``(k, 2)`` edges."""
    keys = np.asarray(keys, dtype=np.int64)
    return np.column_stack((keys >> _KEY_SHIFT, keys & ((1 << 32) - 1)))


class DynamicGraph:
    """A mutable undirected simple graph: frozen CSR base + pending delta.

    Parameters
    ----------
    base:
        Initial graph (``Graph`` or ``CSRGraph``; converted to CSR).
    compact_fraction:
        Auto-compact when pending edits exceed this fraction of the base
        edge count (``None`` disables; explicit :meth:`compact` calls are
        the intended epoch boundary either way).
    """

    def __init__(
        self,
        base: Union[Graph, CSRGraph],
        *,
        compact_fraction: Optional[float] = 0.5,
    ) -> None:
        if compact_fraction is not None and compact_fraction <= 0:
            raise ValueError(
                f"compact_fraction must be positive or None, got {compact_fraction}"
            )
        self._rebase(as_csr(base))
        if self._n >= _MAX_VERTICES:
            raise ValueError(f"num_vertices must be < 2^31, got {self._n}")
        self._compact_fraction = compact_fraction
        self._epoch = 0

    def _rebase(self, base: CSRGraph) -> None:
        """Reset the overlay to an empty delta over ``base``."""
        self._base = base
        self._n = base.num_vertices
        # Directed slot keys ``src << 32 | dst`` — ascending because CSR
        # is row-major with sorted rows.  Compaction is pure array
        # surgery on this array (mask out removed slots, merge-insert
        # added ones), never a sort.
        self._base_dkeys = (base.src << _KEY_SHIFT) | base.indices
        # The canonical (u < v) half, also ascending: the membership index.
        self._base_keys = self._base_dkeys[base.src < base.indices]
        self._added: Set[int] = set()
        self._removed: Set[int] = set()
        self._adj_add: Dict[int, Set[int]] = {}
        self._adj_del: Dict[int, Set[int]] = {}
        self._dirty: Set[int] = set()
        self._snapshot: Optional[CSRGraph] = base

    # -- basic accessors ----------------------------------------------------

    @property
    def base(self) -> CSRGraph:
        """The frozen CSR base (current as of the last compaction)."""
        return self._base

    @property
    def epoch(self) -> int:
        """Number of compactions performed so far."""
        return self._epoch

    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def num_edges(self) -> int:
        return self._base.num_edges + len(self._added) - len(self._removed)

    @property
    def pending_edits(self) -> int:
        """Pending insertions + deletions not yet folded into the base."""
        return len(self._added) + len(self._removed)

    def vertices(self) -> range:
        return range(self._n)

    def dirty_vertices(self) -> np.ndarray:
        """Vertices touched by an effective edit since the last compaction."""
        return np.fromiter(sorted(self._dirty), dtype=np.int64, count=len(self._dirty))

    def has_edge(self, u: int, v: int) -> bool:
        if u == v or not (0 <= u < self._n and 0 <= v < self._n):
            return False
        key = self._key(u, v)
        if key in self._added:
            return True
        if key in self._removed:
            return False
        return u < self._base.num_vertices and self._base.has_edge(u, v)

    def degree(self, v: int) -> int:
        self._check_vertex(v)
        base_deg = self._base.degree(v) if v < self._base.num_vertices else 0
        return (
            base_deg
            + len(self._adj_add.get(v, ()))
            - len(self._adj_del.get(v, ()))
        )

    def neighbors(self, v: int) -> np.ndarray:
        """Current neighbors of ``v``, sorted ascending (merged view)."""
        self._check_vertex(v)
        base_row = (
            self._base.neighbors(v)
            if v < self._base.num_vertices
            else np.empty(0, dtype=np.int64)
        )
        dropped = self._adj_del.get(v)
        gained = self._adj_add.get(v)
        if not dropped and not gained:
            return base_row
        merged = set(base_row.tolist())
        if dropped:
            merged -= dropped
        if gained:
            merged |= gained
        return np.fromiter(sorted(merged), dtype=np.int64, count=len(merged))

    def edges(self) -> Iterator[Edge]:
        """Iterate current edges in canonical form (via a snapshot)."""
        return self.snapshot().edges()

    # -- mutation -----------------------------------------------------------

    def add_vertices(self, count: int) -> int:
        """Append ``count`` isolated vertices; returns the first new id."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        first = self._n
        if count:
            if self._n + count >= _MAX_VERTICES:
                raise ValueError("vertex ids must stay < 2^31")
            self._n += count
            self._snapshot = None
        return first

    def add_edge(self, u: int, v: int) -> bool:
        """Insert edge ``{u, v}``; returns False (no-op) if already present."""
        self._check_endpoints(u, v)
        key = self._key(u, v)
        if key in self._added:
            return False
        if key in self._removed:
            self._removed.discard(key)
            self._link(self._adj_del, u, v, remove=True)
        elif self._in_base(key, u, v):
            return False
        else:
            self._added.add(key)
            self._link(self._adj_add, u, v)
        self._touch(u, v)
        return True

    def remove_edge(self, u: int, v: int) -> None:
        """Delete edge ``{u, v}``; raises ``KeyError`` if absent."""
        if not self.discard_edge(u, v):
            raise KeyError(f"edge ({u}, {v}) is not in the graph")

    def discard_edge(self, u: int, v: int) -> bool:
        """Delete edge ``{u, v}`` if present; returns whether it was."""
        if u == v or not (0 <= u < self._n and 0 <= v < self._n):
            return False
        key = self._key(u, v)
        if key in self._added:
            self._added.discard(key)
            self._link(self._adj_add, u, v, remove=True)
        elif key not in self._removed and self._in_base(key, u, v):
            self._removed.add(key)
            self._link(self._adj_del, u, v)
        else:
            return False
        self._touch(u, v)
        return True

    # -- compaction ---------------------------------------------------------

    def snapshot(self) -> CSRGraph:
        """The current graph as an immutable ``CSRGraph`` (cached).

        Does not rebase: pending edits stay pending, the epoch does not
        advance.  The cache is invalidated by any mutation.

        Sort-free: the base's directed-key array is already ascending, so
        removed slots are masked out and added slots merge-inserted at
        their ``searchsorted`` positions — three flat passes over ``2m``.
        """
        if self._snapshot is None:
            dkeys = self._base_dkeys
            if self._removed:
                dkeys = dkeys[
                    ~np.isin(dkeys, self._directed(self._removed))
                ]
            if self._added:
                extra = np.sort(self._directed(self._added))
                dkeys = np.insert(
                    dkeys, np.searchsorted(dkeys, extra), extra
                )
            indices = dkeys & ((1 << 32) - 1)
            counts = np.bincount(
                dkeys >> _KEY_SHIFT, minlength=self._n
            ).astype(np.int64)
            indptr = np.zeros(self._n + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            self._snapshot = CSRGraph(indptr, indices)
        return self._snapshot

    @staticmethod
    def _directed(keys: Set[int]) -> np.ndarray:
        """Both directed slot keys for each canonical edge key."""
        forward = np.fromiter(keys, dtype=np.int64, count=len(keys))
        backward = ((forward & ((1 << 32) - 1)) << _KEY_SHIFT) | (
            forward >> _KEY_SHIFT
        )
        return np.concatenate([forward, backward])

    def compact(self) -> CSRGraph:
        """Fold the delta into a fresh CSR base; advances the epoch.

        Clears the dirty-vertex set — callers needing the touched region
        read :meth:`dirty_vertices` (or the batch's applied delta) first.
        """
        if not self.pending_edits and self._n == self._base.num_vertices:
            self._dirty.clear()
            self._snapshot = self._base
            self._epoch += 1
            return self._base
        self._rebase(self.snapshot())
        self._epoch += 1
        return self._base

    def to_graph(self) -> Graph:
        """The current graph as a set-based :class:`Graph`."""
        return self.snapshot().to_graph()

    # -- batched application -------------------------------------------------

    def apply_edges(
        self, insertions: np.ndarray, deletions: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Apply edge arrays in bulk; returns the *effective* (ins, dels).

        Deletions apply before insertions (so a batch can atomically
        rewire).  Inserting a present edge and deleting an absent one are
        no-ops, excluded from the returned arrays — maintainers repair
        from what actually changed, not what the stream requested.
        Out-of-range endpoints and self-loops raise (on either path;
        batch validation must not depend on the overlay's pending state).
        """
        del_edges = np.asarray(deletions, dtype=np.int64).reshape(-1, 2)
        ins_edges = np.asarray(insertions, dtype=np.int64).reshape(-1, 2)
        for edges, label in ((del_edges, "deletions"), (ins_edges, "insertions")):
            if len(edges):
                if edges.min() < 0 or edges.max() >= self._n:
                    raise ValueError(
                        f"{label}: endpoint out of range [0, {self._n})"
                    )
                if (edges[:, 0] == edges[:, 1]).any():
                    raise ValueError(f"{label}: self-loops are not allowed")
        if not self._added and not self._removed:
            inserted, deleted = self._apply_edges_clean(ins_edges, del_edges)
        else:
            # Pending edits present: take the per-edge path, whose
            # membership logic covers every overlay state.
            deleted = np.array(
                [
                    (u, v)
                    for u, v in del_edges
                    if self.discard_edge(int(u), int(v))
                ],
                dtype=np.int64,
            ).reshape(-1, 2)
            inserted = np.array(
                [
                    (u, v)
                    for u, v in ins_edges
                    if self.add_edge(int(u), int(v))
                ],
                dtype=np.int64,
            ).reshape(-1, 2)
        maybe_fraction = self._compact_fraction
        if (
            maybe_fraction is not None
            and self.pending_edits > maybe_fraction * max(1, self._base.num_edges)
        ):
            self.compact()
        return inserted, deleted

    def _apply_edges_clean(
        self, insertions: np.ndarray, deletions: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized batch application for an overlay with no pending edits.

        With empty delta sets, presence is exactly base membership, so
        the whole batch resolves with two ``searchsorted`` passes; only
        the (small) effective delta is then walked to update the
        per-vertex bookkeeping.  Inputs are validated by the caller.
        """
        del_edges = deletions
        ins_edges = insertions
        del_keys = np.unique(encode_edges(del_edges)) if len(del_edges) else (
            np.empty(0, dtype=np.int64)
        )
        ins_keys = np.unique(encode_edges(ins_edges)) if len(ins_edges) else (
            np.empty(0, dtype=np.int64)
        )
        eff_del = del_keys[self._in_base_bulk(del_keys)]
        # Effective insert: absent after the deletions applied — either
        # never in the base, or deleted just now.
        ins_in_base = self._in_base_bulk(ins_keys)
        reinserted = np.isin(ins_keys, eff_del)
        eff_ins = ins_keys[~ins_in_base | reinserted]
        # Net pending state: a delete+insert of the same edge cancels.
        for key in eff_del[~np.isin(eff_del, eff_ins)]:
            self._removed.add(int(key))
            self._link(self._adj_del, int(key >> 32), int(key & ((1 << 32) - 1)))
        for key in eff_ins[~np.isin(eff_ins, self._base_keys)]:
            self._added.add(int(key))
            self._link(self._adj_add, int(key >> 32), int(key & ((1 << 32) - 1)))
        if len(eff_del) or len(eff_ins):
            touched = decode_keys(np.concatenate([eff_del, eff_ins]))
            self._dirty.update(int(v) for v in np.unique(touched))
            self._snapshot = None
        return decode_keys(eff_ins), decode_keys(eff_del)

    def _in_base_bulk(self, keys: np.ndarray) -> np.ndarray:
        """Boolean membership of canonical keys in the base edge set."""
        if not len(keys):
            return np.zeros(0, dtype=bool)
        pos = np.searchsorted(self._base_keys, keys)
        found = pos < len(self._base_keys)
        found[found] = self._base_keys[pos[found]] == keys[found]
        return found

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _key(u: int, v: int) -> int:
        lo, hi = (u, v) if u < v else (v, u)
        return (lo << 32) | hi

    def _in_base(self, key: int, u: int, v: int) -> bool:
        if max(u, v) >= self._base.num_vertices:
            return False
        pos = int(np.searchsorted(self._base_keys, key))
        return pos < len(self._base_keys) and int(self._base_keys[pos]) == key

    def _link(
        self, adjacency: Dict[int, Set[int]], u: int, v: int, remove: bool = False
    ) -> None:
        if remove:
            adjacency[u].discard(v)
            adjacency[v].discard(u)
        else:
            adjacency.setdefault(u, set()).add(v)
            adjacency.setdefault(v, set()).add(u)

    def _touch(self, u: int, v: int) -> None:
        self._dirty.add(u)
        self._dirty.add(v)
        self._snapshot = None

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self._n:
            raise ValueError(f"vertex {v} out of range [0, {self._n})")

    def _check_endpoints(self, u: int, v: int) -> None:
        if u == v:
            raise ValueError(f"self-loop at vertex {u} is not allowed")
        self._check_vertex(u)
        self._check_vertex(v)

    def __repr__(self) -> str:
        return (
            f"DynamicGraph(n={self._n}, m={self.num_edges}, "
            f"pending={self.pending_edits}, epoch={self._epoch})"
        )
