"""Incremental solution maintenance: repair locally, re-solve when damaged.

One :class:`Maintainer` per task keeps a solution valid across a stream of
:class:`~repro.stream.updates.EdgeBatch` edits.  The contract every
subclass honours:

* after :meth:`Maintainer.step` returns, the maintained solution is
  **valid and maximal** for the *current* graph — exactly the invariants
  :mod:`repro.verify.checkers` certifies, so every epoch is checkable;
* repair work is localized to the *damaged region* (vertices whose
  closed neighborhoods the batch touched).  When that region exceeds
  ``resolve_fraction * n`` the maintainer abandons repair and runs a full
  :func:`repro.api.solve` through the registry — incremental maintenance
  degrades gracefully into the one-shot solver it wraps, never into a
  slow approximation of it.

Repair strategies (all against the freshly compacted CSR, so scans are
vectorized kernels):

* **MIS** — evict one endpoint of every newly-conflicting in-MIS edge,
  then greedily re-decide only the vertices whose closed neighborhood
  changed (deleted-edge endpoints, evicted vertices and their neighbors,
  appended vertices).  Maximality needs no global pass: a vertex whose
  neighborhood did not change was dominated before and still is.
* **Matching** — release the endpoints of deleted matched edges, greedily
  re-match freed vertices inside the damaged region, then try length-3
  augmenting paths from the stragglers.  Maximality is restored because
  any free–free edge of the new graph has a damaged endpoint.
* **Fractional matching** — drop deleted edges' weight, then greedily
  re-saturate every edge incident to a load-deficient vertex
  (``x_e += min(1 - y_u, 1 - y_v)``).  The invariant "every edge has a
  saturated endpoint" is restored each epoch, so the saturated vertices
  form a vertex cover and ``W >= ν / 2`` — comfortably inside the
  ``2 + O(ε)`` band the checkers enforce.  Full re-solves are followed by
  one global saturation pass so adopted solutions satisfy the same
  invariant (the MPC algorithm's output is feasible but not always
  saturated).
* **Vertex cover** — maintained as the endpoint set of the incremental
  maximal matching (the classic 2-approximation; Theorem 1.2's route to
  vertex cover also goes through matchings).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple, Type, Union

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.graph import Graph, canonical_edge
from repro.stream.dynamic import DynamicGraph
from repro.stream.updates import EdgeBatch

NO_MATCH = np.int64(-1)

# Loads within SATURATION_TOL of 1.0 count as saturated; slacks below it
# are not worth an update entry (and would bloat the support with noise).
SATURATION_TOL = 1e-9


@dataclass(frozen=True)
class EpochStats:
    """What one :meth:`Maintainer.step` did, for reports and benchmarks."""

    epoch: int
    timestamp: float
    inserted: int  # effective edge insertions (no-ops excluded)
    deleted: int  # effective edge deletions
    new_vertices: int
    n: int
    m: int
    action: str  # "repair" | "resolve"
    damage_fraction: float
    wall_time_s: float
    size: int  # solution cardinality after the step
    extras: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "epoch": self.epoch,
            "timestamp": self.timestamp,
            "inserted": self.inserted,
            "deleted": self.deleted,
            "new_vertices": self.new_vertices,
            "n": self.n,
            "m": self.m,
            "action": self.action,
            "damage_fraction": self.damage_fraction,
            "wall_time_s": self.wall_time_s,
            "size": self.size,
            "extras": dict(self.extras),
        }


class Maintainer:
    """Base class: batch application, damage accounting, re-solve fallback.

    Parameters
    ----------
    graph:
        Initial graph (``Graph``/``CSRGraph``/``DynamicGraph``); the
        maintainer owns the resulting overlay.
    backend / config / seed:
        Passed to :func:`repro.api.solve` for the initial solve and every
        fallback re-solve (``backend="auto"`` = the paper's algorithm).
    resolve_fraction:
        Damage threshold: when the batch's damaged region exceeds this
        fraction of ``n``, repair is abandoned for a full re-solve.
    budget / governance:
        Threaded into every full re-solve: ``budget`` caps per-machine
        memory (units of ``n``), ``governance`` opts the resolve into the
        :mod:`repro.govern` ladder so a budget breach mid-stream degrades
        gracefully instead of killing the epoch.  The last resolve's
        governance record is kept on :attr:`last_governance` for epoch
        reporting.
    """

    TASK: str = ""
    SOLVE_TASK: str = ""  # registry task for full re-solves (default TASK)

    def __init__(
        self,
        graph: Union[Graph, CSRGraph, DynamicGraph],
        *,
        backend: str = "auto",
        config: Any = None,
        seed: Optional[int] = None,
        resolve_fraction: float = 0.25,
        budget: Optional[float] = None,
        governance: Any = None,
    ) -> None:
        if not 0.0 <= resolve_fraction <= 1.0:
            raise ValueError(
                f"resolve_fraction must be in [0, 1], got {resolve_fraction}"
            )
        # An owned overlay never auto-compacts: step() compacts once per
        # batch, so a mid-batch auto-compaction would only duplicate work.
        self.graph = (
            graph
            if isinstance(graph, DynamicGraph)
            else DynamicGraph(graph, compact_fraction=None)
        )
        self.backend = backend
        self.config = config
        self.seed = seed
        self.resolve_fraction = resolve_fraction
        self.budget = budget
        self.governance = governance
        self.last_governance: Optional[Dict[str, Any]] = None
        self.epochs_repaired = 0
        self.epochs_resolved = 0
        self._steps = 0
        self._initialized = False

    # -- lifecycle ----------------------------------------------------------

    def initialize(self) -> Any:
        """Full solve on the current graph; returns the ``RunReport``."""
        report = self._full_resolve()
        self._initialized = True
        return report

    def step(self, batch: EdgeBatch) -> EpochStats:
        """Apply one batch and restore the solution invariants."""
        if not self._initialized:
            raise RuntimeError("call initialize() before step()")
        self._steps += 1
        started = time.perf_counter()
        first_new = self.graph.add_vertices(batch.new_vertices)
        inserted, deleted = self.graph.apply_edges(
            batch.insertions, batch.deletions
        )
        csr = self.graph.compact()
        new_vertices = np.arange(
            first_new, first_new + batch.new_vertices, dtype=np.int64
        )
        self._grow_state(csr.num_vertices)
        damage = self._damaged_region(csr, inserted, deleted, new_vertices)
        damage_fraction = len(damage) / max(1, csr.num_vertices)
        extras: Dict[str, Any]
        if damage_fraction > self.resolve_fraction:
            report = self._full_resolve()
            action = "resolve"
            extras = {"rounds": report.rounds}
            if self.last_governance and self.last_governance.get("triggered"):
                # Surface the resolve's governance trail on the epoch so
                # stream logs show *which* epoch hit the memory envelope.
                extras["governance"] = self.last_governance
            self.epochs_resolved += 1
        else:
            extras = self._repair(csr, inserted, deleted, new_vertices, damage)
            action = "repair"
            self.epochs_repaired += 1
        return EpochStats(
            # The batch index, not graph.epoch: a caller-supplied overlay
            # may compact on its own schedule.
            epoch=self._steps,
            timestamp=batch.timestamp,
            inserted=len(inserted),
            deleted=len(deleted),
            new_vertices=int(batch.new_vertices),
            n=csr.num_vertices,
            m=csr.num_edges,
            action=action,
            damage_fraction=damage_fraction,
            wall_time_s=time.perf_counter() - started,
            size=self.size(),
            extras=extras,
        )

    def _full_resolve(self) -> Any:
        # Lazy import: repro.api re-exports solve_stream from this
        # package, so the dependency must stay one-way at import time.
        from repro.api import solve

        report = solve(
            self.SOLVE_TASK or self.TASK,
            self.graph.to_graph(),
            backend=self.backend,
            config=self.config,
            seed=self.seed,
            budget=self.budget,
            governance=self.governance,
        )
        self.last_governance = report.extras.get("governance")
        self._grow_state(self.graph.num_vertices)
        self._adopt(self.graph.snapshot(), report.solution)
        return report

    # -- per-task hooks ------------------------------------------------------

    def _grow_state(self, n: int) -> None:
        """Extend per-vertex state to ``n`` vertices (appended = blank)."""
        raise NotImplementedError

    def _adopt(self, csr: CSRGraph, solution: Any) -> None:
        """Replace the maintained state with a full solver's solution."""
        raise NotImplementedError

    def _damaged_region(
        self,
        csr: CSRGraph,
        inserted: np.ndarray,
        deleted: np.ndarray,
        new_vertices: np.ndarray,
    ) -> np.ndarray:
        """Conservative superset of vertices whose decision may change."""
        raise NotImplementedError

    def _repair(
        self,
        csr: CSRGraph,
        inserted: np.ndarray,
        deleted: np.ndarray,
        new_vertices: np.ndarray,
        damage: np.ndarray,
    ) -> Dict[str, Any]:
        """Localized repair; returns stats extras."""
        raise NotImplementedError

    def size(self) -> int:
        """Cardinality of the maintained solution."""
        raise NotImplementedError

    def solution(self) -> Any:
        """The maintained solution in the canonical report shape."""
        raise NotImplementedError

    # -- persistence ---------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot of the maintained state (see serve/snapshot).

        Together with the compacted graph this is everything a restore
        needs to continue the stream *byte-identically*: repair and
        fallback re-solves are pure functions of (graph, state, seed), so
        a restored maintainer converges to the same certified solution an
        uninterrupted run reaches.
        """
        return {
            "task": self.TASK,
            "steps": self._steps,
            "initialized": self._initialized,
            "epochs_repaired": self.epochs_repaired,
            "epochs_resolved": self.epochs_resolved,
            "state": self._state_payload(),
        }

    def load_state(self, payload: Dict[str, Any]) -> None:
        """Restore from :meth:`state_dict` output (same task required)."""
        if payload.get("task") != self.TASK:
            raise ValueError(
                f"state is for task {payload.get('task')!r}, "
                f"this maintainer is {self.TASK!r}"
            )
        self._grow_state(self.graph.num_vertices)
        self._steps = int(payload["steps"])
        self._initialized = bool(payload["initialized"])
        self.epochs_repaired = int(payload["epochs_repaired"])
        self.epochs_resolved = int(payload["epochs_resolved"])
        self._load_payload(payload["state"])

    def _state_payload(self) -> Dict[str, Any]:
        """Per-task JSON-ready solution state."""
        raise NotImplementedError

    def _load_payload(self, state: Dict[str, Any]) -> None:
        """Inverse of :meth:`_state_payload`."""
        raise NotImplementedError


# ---------------------------------------------------------------------------
# MIS
# ---------------------------------------------------------------------------


class MISMaintainer(Maintainer):
    """Localized MIS repair: evict conflicts, re-decide touched vertices."""

    TASK = "mis"

    def __init__(self, graph: Any, **kwargs: Any) -> None:
        super().__init__(graph, **kwargs)
        self.in_mis = np.zeros(self.graph.num_vertices, dtype=bool)

    def _grow_state(self, n: int) -> None:
        if n > len(self.in_mis):
            grown = np.zeros(n, dtype=bool)
            grown[: len(self.in_mis)] = self.in_mis
            self.in_mis = grown

    def _adopt(self, csr: CSRGraph, solution: Any) -> None:
        self.in_mis[:] = False
        self.in_mis[np.asarray(list(solution), dtype=np.int64)] = True

    def _conflicted(self, inserted: np.ndarray) -> np.ndarray:
        """Inserted edges whose endpoints are both (currently) in the MIS."""
        if not len(inserted):
            return inserted
        both = self.in_mis[inserted[:, 0]] & self.in_mis[inserted[:, 1]]
        return inserted[both]

    def _damaged_region(
        self,
        csr: CSRGraph,
        inserted: np.ndarray,
        deleted: np.ndarray,
        new_vertices: np.ndarray,
    ) -> np.ndarray:
        # Potential evictions = the max endpoint of each conflicted edge
        # (a superset of actual evictions: resolving one conflict can
        # dissolve another).  Damage = their closed neighborhoods plus
        # every endpoint of a deleted edge plus appended vertices.
        conflicted = self._conflicted(inserted)
        may_evict = np.unique(conflicted.max(axis=1)) if len(conflicted) else (
            np.empty(0, dtype=np.int64)
        )
        return np.unique(
            np.concatenate(
                [
                    may_evict,
                    csr.neighbors_bulk(may_evict),
                    deleted.ravel(),
                    new_vertices,
                ]
            )
        )

    def _repair(
        self,
        csr: CSRGraph,
        inserted: np.ndarray,
        deleted: np.ndarray,
        new_vertices: np.ndarray,
        damage: np.ndarray,
    ) -> Dict[str, Any]:
        in_mis = self.in_mis
        evicted: List[int] = []
        # Resolve insertion conflicts one at a time: evicting the larger
        # endpoint may already clear a later conflict.
        for u, v in self._conflicted(inserted):
            u, v = int(u), int(v)
            if in_mis[u] and in_mis[v]:
                loser = max(u, v)
                in_mis[loser] = False
                evicted.append(loser)
        # Re-decide the damaged region greedily (ascending ids, matching
        # the conservative estimate: every actually-evicted vertex and
        # all its neighbors are inside ``damage``).
        added = 0
        for v in damage:
            v = int(v)
            if not in_mis[v] and not in_mis[csr.neighbors(v)].any():
                in_mis[v] = True
                added += 1
        return {"evicted": len(evicted), "added": added}

    def size(self) -> int:
        return int(np.count_nonzero(self.in_mis))

    def solution(self) -> List[int]:
        return [int(v) for v in np.flatnonzero(self.in_mis)]

    def _state_payload(self) -> Dict[str, Any]:
        return {"in_mis": self.solution()}

    def _load_payload(self, state: Dict[str, Any]) -> None:
        self.in_mis[:] = False
        members = np.asarray(state["in_mis"], dtype=np.int64)
        if len(members):
            self.in_mis[members] = True


# ---------------------------------------------------------------------------
# matching (and vertex cover on top of it)
# ---------------------------------------------------------------------------


class MatchingMaintainer(Maintainer):
    """Release broken pairs, greedily re-match, augment the stragglers."""

    TASK = "matching"

    def __init__(self, graph: Any, **kwargs: Any) -> None:
        super().__init__(graph, **kwargs)
        self.match = np.full(self.graph.num_vertices, NO_MATCH, dtype=np.int64)

    def _grow_state(self, n: int) -> None:
        if n > len(self.match):
            grown = np.full(n, NO_MATCH, dtype=np.int64)
            grown[: len(self.match)] = self.match
            self.match = grown

    def _adopt(self, csr: CSRGraph, solution: Any) -> None:
        self.match[:] = NO_MATCH
        for u, v in solution:
            self.match[int(u)] = int(v)
            self.match[int(v)] = int(u)

    def _damaged_region(
        self,
        csr: CSRGraph,
        inserted: np.ndarray,
        deleted: np.ndarray,
        new_vertices: np.ndarray,
    ) -> np.ndarray:
        broken = (
            deleted[self.match[deleted[:, 0]] == deleted[:, 1]]
            if len(deleted)
            else deleted
        )
        free_inserted = (
            inserted[
                (self.match[inserted[:, 0]] == NO_MATCH)
                | (self.match[inserted[:, 1]] == NO_MATCH)
            ]
            if len(inserted)
            else inserted
        )
        return np.unique(
            np.concatenate([broken.ravel(), free_inserted.ravel(), new_vertices])
        )

    def _repair(
        self,
        csr: CSRGraph,
        inserted: np.ndarray,
        deleted: np.ndarray,
        new_vertices: np.ndarray,
        damage: np.ndarray,
    ) -> Dict[str, Any]:
        match = self.match
        # Release endpoints of deleted matched edges.
        released = 0
        for u, v in deleted:
            u, v = int(u), int(v)
            if match[u] == v:
                match[u] = NO_MATCH
                match[v] = NO_MATCH
                released += 1
        # Greedy pass over the damaged region: match free to free.  Any
        # free–free edge of the new graph has an endpoint in ``damage``
        # (else the old matching was not maximal), so this restores
        # maximality.
        rematched = 0
        stragglers: List[int] = []
        for v in damage:
            v = int(v)
            if match[v] != NO_MATCH:
                continue
            partner = self._free_neighbor(csr, v)
            if partner is not None:
                match[v] = partner
                match[partner] = v
                rematched += 1
            else:
                stragglers.append(v)
        # Length-3 augmenting paths from still-free damaged vertices:
        # v - w - match[w] - x with x free lets both v and x in.
        augmented = 0
        for v in stragglers:
            if match[v] == NO_MATCH and self._augment_from(csr, v):
                augmented += 1
        return {
            "released": released,
            "rematched": rematched,
            "augmented": augmented,
        }

    def _free_neighbor(self, csr: CSRGraph, v: int) -> Optional[int]:
        row = csr.neighbors(v)
        if not len(row):
            return None
        free = row[self.match[row] == NO_MATCH]
        return int(free[0]) if len(free) else None

    def _augment_from(self, csr: CSRGraph, v: int) -> bool:
        match = self.match
        for w in csr.neighbors(v):
            w = int(w)
            mate = int(match[w])
            if mate == v or mate == NO_MATCH:
                continue
            mate_row = csr.neighbors(mate)
            candidates = mate_row[
                (match[mate_row] == NO_MATCH) & (mate_row != v)
            ]
            if len(candidates):
                x = int(candidates[0])
                match[v] = w
                match[w] = v
                match[mate] = x
                match[x] = mate
                return True
        return False

    def matched_edges(self) -> List[Tuple[int, int]]:
        """The maintained matching as canonical edge tuples."""
        us = np.flatnonzero(self.match != NO_MATCH)
        return [(int(u), int(self.match[u])) for u in us if u < self.match[u]]

    def size(self) -> int:
        return int(np.count_nonzero(self.match != NO_MATCH)) // 2

    def solution(self) -> List[List[int]]:
        return [[u, v] for u, v in self.matched_edges()]

    def _state_payload(self) -> Dict[str, Any]:
        # matched_edges(), not solution(): VertexCoverMaintainer inherits
        # this payload but overrides solution() to a flat vertex list,
        # and the restorable state is the matching structure either way.
        return {"pairs": [[u, v] for u, v in self.matched_edges()]}

    def _load_payload(self, state: Dict[str, Any]) -> None:
        self.match[:] = NO_MATCH
        for u, v in state["pairs"]:
            self.match[int(u)] = int(v)
            self.match[int(v)] = int(u)


class VertexCoverMaintainer(MatchingMaintainer):
    """Cover = endpoints of the incremental maximal matching (2-approx).

    Full re-solves go through the ``matching`` registry task: the cover
    needs the matching *structure* to stay incrementally repairable, and
    matched-endpoint covers carry the same ``2 + O(ε)`` guarantee the
    checkers audit (maximal matching endpoints cover every edge).
    """

    TASK = "vertex_cover"
    SOLVE_TASK = "matching"

    def size(self) -> int:
        return int(np.count_nonzero(self.match != NO_MATCH))

    def solution(self) -> List[int]:
        return [int(v) for v in np.flatnonzero(self.match != NO_MATCH)]


# ---------------------------------------------------------------------------
# fractional matching
# ---------------------------------------------------------------------------


class FractionalMatchingMaintainer(Maintainer):
    """Weight rescaling: keep every edge incident to a saturated vertex."""

    TASK = "fractional_matching"

    def __init__(self, graph: Any, **kwargs: Any) -> None:
        super().__init__(graph, **kwargs)
        self.weights: Dict[Tuple[int, int], float] = {}
        self.loads = np.zeros(self.graph.num_vertices, dtype=np.float64)

    def _grow_state(self, n: int) -> None:
        if n > len(self.loads):
            grown = np.zeros(n, dtype=np.float64)
            grown[: len(self.loads)] = self.loads
            self.loads = grown

    def _adopt(self, csr: CSRGraph, solution: Any) -> None:
        self.weights = {}
        self.loads[:] = 0.0
        for u, v, x in solution:
            self._bump(canonical_edge(int(u), int(v)), float(x))
        # One global saturation pass: the adopted solution is feasible but
        # not necessarily saturated, and the incremental quality guarantee
        # (W >= ν/2) rests on every edge having a saturated endpoint.
        for u, v in csr.edge_array():
            self._saturate(int(u), int(v))

    def _bump(self, edge: Tuple[int, int], amount: float) -> None:
        if amount <= SATURATION_TOL:
            return
        self.weights[edge] = self.weights.get(edge, 0.0) + amount
        self.loads[edge[0]] += amount
        self.loads[edge[1]] += amount

    def _saturate(self, u: int, v: int) -> float:
        slack = min(1.0 - self.loads[u], 1.0 - self.loads[v])
        if slack > SATURATION_TOL:
            self._bump(canonical_edge(u, v), float(slack))
            return float(slack)
        return 0.0

    def _damaged_region(
        self,
        csr: CSRGraph,
        inserted: np.ndarray,
        deleted: np.ndarray,
        new_vertices: np.ndarray,
    ) -> np.ndarray:
        # Only deletions of carrying edges damage the saturation
        # invariant (their endpoints' loads drop).  Insertions are not
        # damage: each costs one unconditional O(1) saturation whether
        # repairing or re-solving, so they should never tip the fallback.
        weighted_deleted = (
            np.array(
                [
                    (u, v)
                    for u, v in deleted
                    if (int(u), int(v)) in self.weights
                ],
                dtype=np.int64,
            ).reshape(-1, 2)
            if len(deleted)
            else deleted
        )
        return np.unique(
            np.concatenate([weighted_deleted.ravel(), new_vertices])
        )

    def _repair(
        self,
        csr: CSRGraph,
        inserted: np.ndarray,
        deleted: np.ndarray,
        new_vertices: np.ndarray,
        damage: np.ndarray,
    ) -> Dict[str, Any]:
        dropped_weight = 0.0
        deficient: Set[int] = set()
        for u, v in deleted:
            u, v = int(u), int(v)
            x = self.weights.pop((u, v), None)
            if x is not None:
                self.loads[u] = max(0.0, self.loads[u] - x)
                self.loads[v] = max(0.0, self.loads[v] - x)
                dropped_weight += x
                deficient.add(u)
                deficient.add(v)
        regained = 0.0
        for u, v in inserted:
            regained += self._saturate(int(u), int(v))
        # Edges incident to a vertex whose load dropped may have lost
        # their saturated endpoint; greedy re-saturation restores it.
        for d in sorted(deficient):
            for w in csr.neighbors(d):
                regained += self._saturate(d, int(w))
        return {
            "dropped_weight": dropped_weight,
            "regained_weight": regained,
            "deficient": len(deficient),
        }

    def total_weight(self) -> float:
        """Total fractional weight ``W``.

        Summed in canonical edge order, not dict insertion order: a
        session restored from a snapshot rebuilds ``weights`` sorted,
        and float addition does not commute across orderings, so an
        insertion-order sum could drift from the pre-crash value by an
        ulp and break byte-identical resume.
        """
        return float(sum(x for _, x in sorted(self.weights.items())))

    def size(self) -> int:
        return len(self.weights)

    def _state_payload(self) -> Dict[str, Any]:
        # Loads are stored verbatim, not recomputed from the weights on
        # restore: they were accumulated incrementally (+=, clamped at 0)
        # and a re-summation could differ in the last float bit, breaking
        # the byte-identical-resume guarantee.  JSON round-trips floats
        # exactly (repr shortest round-trip), so both survive as-is.
        return {
            "weights": [
                [int(u), int(v), float(x)]
                for (u, v), x in sorted(self.weights.items())
            ],
            "loads": [float(load) for load in self.loads],
        }

    def _load_payload(self, state: Dict[str, Any]) -> None:
        self.weights = {
            (int(u), int(v)): float(x) for u, v, x in state["weights"]
        }
        loads = np.asarray(state["loads"], dtype=np.float64)
        self.loads = np.zeros(self.graph.num_vertices, dtype=np.float64)
        self.loads[: len(loads)] = loads

    def solution(self) -> List[List[float]]:
        return sorted(
            [int(u), int(v), float(x)] for (u, v), x in self.weights.items()
        )


# ---------------------------------------------------------------------------
# factory
# ---------------------------------------------------------------------------

MAINTAINERS: Dict[str, Type[Maintainer]] = {
    cls.TASK: cls
    for cls in (
        MISMaintainer,
        MatchingMaintainer,
        VertexCoverMaintainer,
        FractionalMatchingMaintainer,
    )
}


def make_maintainer(
    task: str, graph: Union[Graph, CSRGraph, DynamicGraph], **kwargs: Any
) -> Maintainer:
    """Instantiate the maintainer registered for ``task``."""
    try:
        cls = MAINTAINERS[task]
    except KeyError:
        raise ValueError(
            f"no maintainer for task {task!r}; known: {sorted(MAINTAINERS)}"
        ) from None
    return cls(graph, **kwargs)
