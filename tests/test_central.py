"""Unit tests for Central / Central-Rand (Section 4.1, Lemma 4.1)."""

import math

import pytest

from repro.baselines.blossom import maximum_matching
from repro.core.central import (
    NEVER_FROZEN,
    central_fractional_matching,
    edge_weights_from_freezes,
)
from repro.graph.generators import (
    complete_graph,
    gnp_random_graph,
    path_graph,
    star_graph,
)
from repro.graph.graph import Graph
from repro.graph.properties import is_vertex_cover


class TestTermination:
    def test_terminates_within_log_bound(self):
        g = gnp_random_graph(256, 0.1, seed=1)
        eps = 0.1
        result = central_fractional_matching(g, epsilon=eps, seed=1)
        bound = math.log(256) / -math.log(1 - eps)
        assert 0 < result.iterations <= 2 * bound + 10

    def test_empty_graph(self):
        result = central_fractional_matching(Graph(0))
        assert result.iterations == 0
        assert result.weight == 0.0

    def test_edgeless_graph(self):
        result = central_fractional_matching(Graph(5))
        assert result.weight == 0.0
        assert result.vertex_cover == set()

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            central_fractional_matching(path_graph(4), epsilon=0.7)


class TestInvariants:
    @pytest.mark.parametrize("eps", [0.05, 0.1, 0.2])
    def test_fractional_matching_valid(self, eps):
        g = gnp_random_graph(128, 0.1, seed=2)
        result = central_fractional_matching(g, epsilon=eps, seed=2)
        assert result.matching.is_valid()

    @pytest.mark.parametrize("randomized", [False, True])
    def test_cover_covers(self, randomized):
        g = gnp_random_graph(128, 0.08, seed=3)
        result = central_fractional_matching(
            g, epsilon=0.1, randomized_thresholds=randomized, seed=3
        )
        assert is_vertex_cover(g, result.vertex_cover)

    def test_every_frozen_vertex_has_high_load(self):
        g = gnp_random_graph(100, 0.1, seed=4)
        eps = 0.1
        result = central_fractional_matching(g, epsilon=eps, seed=4)
        loads = result.matching.vertex_loads()
        for v in result.vertex_cover:
            # Frozen at T >= 1-4eps; later freezes of neighbors never lower it.
            assert loads.get(v, 0.0) >= 1 - 4 * eps - 1e-9

    def test_star_freezes_center(self):
        g = star_graph(20)
        result = central_fractional_matching(g, epsilon=0.1, seed=5)
        assert 0 in result.vertex_cover
        assert is_vertex_cover(g, result.vertex_cover)


class TestApproximation:
    @pytest.mark.parametrize(
        "maker,seed",
        [
            (lambda: gnp_random_graph(128, 0.08, seed=6), 6),
            (lambda: path_graph(64), 7),
            (lambda: complete_graph(32), 8),
        ],
    )
    def test_lemma_4_1_bounds(self, maker, seed):
        """Weight within (2+5ε) of max matching; cover within (2+5ε) of VC*."""
        g = maker()
        eps = 0.1
        result = central_fractional_matching(g, epsilon=eps, seed=seed)
        optimum = len(maximum_matching(g))
        if optimum == 0:
            return
        # Fractional weight >= |M*| / (2+5eps)
        assert result.weight >= optimum / (2 + 5 * eps) - 1e-9
        # Cover at most (2+5eps) * |M*| >= (2+5eps) * |VC*| by duality
        assert len(result.vertex_cover) <= (2 + 5 * eps) * optimum + 1e-9

    def test_randomized_thresholds_same_guarantees(self):
        g = gnp_random_graph(128, 0.08, seed=9)
        eps = 0.08
        result = central_fractional_matching(
            g, epsilon=eps, randomized_thresholds=True, seed=9
        )
        optimum = len(maximum_matching(g))
        assert result.weight >= optimum / (2 + 5 * eps) - 1e-9
        assert result.matching.is_valid()


class TestFreezeBookkeeping:
    def test_freeze_iterations_recorded(self):
        g = path_graph(10)
        result = central_fractional_matching(g, epsilon=0.1, seed=10)
        frozen = {
            v for v, t in result.freeze_iteration.items() if t != NEVER_FROZEN
        }
        assert frozen == result.vertex_cover

    def test_edge_weights_reconstruction(self):
        g = Graph(3, [(0, 1), (1, 2)])
        weights = edge_weights_from_freezes(
            g, frozen={1: 2}, initial_weight=0.1, epsilon=0.1, final_iteration=5
        )
        growth = 1 / 0.9
        assert weights[(0, 1)] == pytest.approx(0.1 * growth**2)
        assert weights[(1, 2)] == pytest.approx(0.1 * growth**2)

    def test_determinism(self):
        g = gnp_random_graph(100, 0.1, seed=11)
        a = central_fractional_matching(g, epsilon=0.1, seed=12, randomized_thresholds=True)
        b = central_fractional_matching(g, epsilon=0.1, seed=12, randomized_thresholds=True)
        assert a.freeze_iteration == b.freeze_iteration
        assert a.weight == b.weight
