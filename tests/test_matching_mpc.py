"""Unit tests for MPC-Simulation (Section 4.3, Lemma 4.2)."""

import math

import pytest

from repro.baselines.blossom import maximum_matching
from repro.core.config import MatchingConfig
from repro.core.matching_mpc import mpc_fractional_matching
from repro.graph.generators import (
    complete_graph,
    gnp_random_graph,
    path_graph,
    star_graph,
)
from repro.graph.graph import Graph
from repro.graph.properties import is_vertex_cover


class TestBasics:
    def test_empty_graph(self):
        result = mpc_fractional_matching(Graph(0))
        assert result.weight == 0.0
        assert result.rounds == 0

    def test_edgeless_graph(self):
        result = mpc_fractional_matching(Graph(5))
        assert result.weight == 0.0
        assert result.vertex_cover == set()

    def test_determinism(self):
        g = gnp_random_graph(150, 0.1, seed=1)
        a = mpc_fractional_matching(g, seed=5)
        b = mpc_fractional_matching(g, seed=5)
        assert a.weight == b.weight
        assert a.vertex_cover == b.vertex_cover
        assert a.rounds == b.rounds


class TestInvariants:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_valid_fractional_matching(self, seed):
        g = gnp_random_graph(200, 0.08, seed=seed)
        result = mpc_fractional_matching(g, seed=seed)
        assert result.matching.is_valid()

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_cover_covers(self, seed):
        g = gnp_random_graph(200, 0.08, seed=seed)
        result = mpc_fractional_matching(g, seed=seed)
        assert is_vertex_cover(g, result.vertex_cover)

    def test_star(self):
        g = star_graph(50)
        result = mpc_fractional_matching(g, seed=4)
        assert is_vertex_cover(g, result.vertex_cover)
        assert result.matching.is_valid()

    def test_complete_graph(self):
        g = complete_graph(64)
        result = mpc_fractional_matching(g, seed=5)
        assert result.matching.is_valid()
        assert is_vertex_cover(g, result.vertex_cover)

    def test_path(self):
        g = path_graph(80)
        result = mpc_fractional_matching(g, seed=6)
        assert is_vertex_cover(g, result.vertex_cover)


class TestQuality:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_lemma_4_2_weight_bound(self, seed):
        """Fractional weight within (2+50ε) of the maximum matching."""
        eps = 0.1
        g = gnp_random_graph(192, 0.08, seed=seed)
        config = MatchingConfig(epsilon=eps)
        result = mpc_fractional_matching(g, config=config, seed=seed)
        optimum = len(maximum_matching(g))
        assert result.weight >= optimum / (2 + 50 * eps) - 1e-9

    def test_cover_within_factor_of_matching(self):
        eps = 0.1
        g = gnp_random_graph(192, 0.08, seed=7)
        result = mpc_fractional_matching(
            g, config=MatchingConfig(epsilon=eps), seed=7
        )
        optimum = len(maximum_matching(g))
        # |C| <= 2(1+50eps) W_M <= (2+100eps) |M*| (duality, Lemma 4.2).
        assert len(result.vertex_cover) <= (2 + 100 * eps) * optimum + 1

    def test_rounding_candidates_exist(self):
        eps = 0.1
        g = gnp_random_graph(256, 0.08, seed=8)
        result = mpc_fractional_matching(
            g, config=MatchingConfig(epsilon=eps), seed=8
        )
        candidates = result.rounding_candidates(eps)
        # Lemma 4.2: at least |C|/3 cover vertices have load >= 1-5eps.
        assert len(candidates) >= len(result.vertex_cover) / 3 - 1


class TestSchedule:
    def test_phases_are_loglog(self):
        g = gnp_random_graph(1024, 0.05, seed=9)
        result = mpc_fractional_matching(g, seed=9)
        assert result.phases <= 3 * math.log2(math.log2(1024)) + 2

    def test_rounds_grow_slowly_with_n(self):
        rounds = []
        for n in (256, 1024):
            g = gnp_random_graph(n, 16.0 / n, seed=10)
            rounds.append(mpc_fractional_matching(g, seed=10).rounds)
        # Quadrupling n adds only a handful of rounds (log log + direct tail).
        assert rounds[1] - rounds[0] <= 12

    def test_machine_memory_respected(self):
        config = MatchingConfig(memory_factor=8)
        g = gnp_random_graph(256, 0.2, seed=11)
        result = mpc_fractional_matching(g, config=config, seed=11)
        # Lemma 4.7: per-machine induced subgraphs stay O(n).
        assert result.max_machine_edges * 2 <= config.memory_factor * 256

    def test_heavy_removed_are_in_cover(self):
        g = gnp_random_graph(256, 0.1, seed=12)
        result = mpc_fractional_matching(g, seed=12)
        assert result.heavy_removed <= result.vertex_cover

    def test_weights_exclude_heavy_vertices(self):
        g = gnp_random_graph(256, 0.1, seed=13)
        result = mpc_fractional_matching(g, seed=13)
        for (u, v) in result.matching.weights:
            assert u not in result.heavy_removed
            assert v not in result.heavy_removed
