"""Unit tests for the Lemma 5.1 randomized rounding."""

import pytest

from repro.core.matching_mpc import mpc_fractional_matching
from repro.core.rounding import (
    round_fractional_matching,
    round_fractional_matching_detailed,
)
from repro.graph.generators import complete_graph, gnp_random_graph
from repro.graph.graph import Graph
from repro.graph.properties import is_matching


class TestRounding:
    def test_output_is_always_a_matching(self):
        g = gnp_random_graph(200, 0.08, seed=1)
        fractional = mpc_fractional_matching(g, seed=1)
        candidates = fractional.rounding_candidates(0.1)
        for seed in range(5):
            matching = round_fractional_matching(
                g, fractional.matching.weights, candidates, seed=seed
            )
            assert is_matching(g, matching)

    def test_yield_meets_paper_guarantee(self):
        """Lemma 5.1: matching size >= |C~|/50 (w.h.p.; measured is larger)."""
        g = gnp_random_graph(400, 0.05, seed=2)
        fractional = mpc_fractional_matching(g, seed=2)
        candidates = fractional.rounding_candidates(0.1)
        assert len(candidates) > 50
        matching = round_fractional_matching(
            g, fractional.matching.weights, candidates, seed=3
        )
        assert len(matching) >= len(candidates) / 50

    def test_empty_candidates(self):
        g = complete_graph(4)
        assert round_fractional_matching(g, {(0, 1): 0.5}, set(), seed=1) == set()

    def test_zero_weights_never_proposed(self):
        g = Graph(4, [(0, 1), (2, 3)])
        weights = {(0, 1): 0.0, (2, 3): 0.0}
        outcome = round_fractional_matching_detailed(
            g, weights, {0, 1, 2, 3}, seed=4
        )
        assert outcome.proposals == 0
        assert outcome.matching == set()

    def test_determinism(self):
        g = gnp_random_graph(100, 0.1, seed=5)
        fractional = mpc_fractional_matching(g, seed=5)
        candidates = fractional.rounding_candidates(0.1)
        a = round_fractional_matching(g, fractional.matching.weights, candidates, seed=6)
        b = round_fractional_matching(g, fractional.matching.weights, candidates, seed=6)
        assert a == b

    def test_statistics_consistent(self):
        g = gnp_random_graph(300, 0.05, seed=7)
        fractional = mpc_fractional_matching(g, seed=7)
        candidates = fractional.rounding_candidates(0.1)
        outcome = round_fractional_matching_detailed(
            g, fractional.matching.weights, candidates, seed=8
        )
        assert outcome.proposals == len(outcome.matching) + outcome.collisions

    def test_single_edge_graph_high_weight(self):
        """A single saturated edge is proposed with prob ~2/10 per side."""
        g = Graph(2, [(0, 1)])
        weights = {(0, 1): 1.0}
        hits = sum(
            bool(round_fractional_matching(g, weights, {0, 1}, seed=s))
            for s in range(400)
        )
        # P(matched) = P(at least one endpoint proposes) = 1-(0.9)^2 = 0.19.
        assert 0.10 <= hits / 400 <= 0.30
