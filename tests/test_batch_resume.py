"""``solve_many(jsonl_path=..., append=True)`` is an idempotent resume.

Pins the bugfix where appending re-ran (and re-wrote) every spec: now a
spec whose ``(task, backend, seed, label)`` already settled into the
existing file is skipped, its prior report adopted, and the skip recorded
as a ``BatchResult`` incident — so re-running an interrupted sweep only
pays for what is missing.
"""

from __future__ import annotations

import pytest

from repro.api import read_jsonl, solve_many
from repro.api.batch import RunSpec, sweep
from repro.graph.generators import gnp_random_graph
from repro.utils.jsonl import TruncatedJSONLWarning


@pytest.fixture(scope="module")
def graph():
    return gnp_random_graph(30, 0.2, seed=4)


@pytest.fixture(scope="module")
def specs(graph):
    return sweep(["mis", "matching"], [graph], backends="auto", seeds=[0, 1])


def test_append_resume_skips_settled_specs(tmp_path, specs):
    path = tmp_path / "sweep.jsonl"
    first = solve_many(specs[:2], jsonl_path=path, append=True)
    assert len(first) == 2 and not first.incidents

    resumed = solve_many(specs, jsonl_path=path, append=True)
    assert len(resumed) == 4
    assert resumed.incidents and "skipped 2" in resumed.incidents[0]
    # The settled specs were NOT re-written: the file gained only the
    # two missing reports.
    assert len(read_jsonl(path)) == 4


def test_append_resume_is_fully_idempotent(tmp_path, specs):
    path = tmp_path / "sweep.jsonl"
    solve_many(specs, jsonl_path=path, append=True)
    again = solve_many(specs, jsonl_path=path, append=True)
    assert len(again) == 4
    assert "skipped 4" in again.incidents[0]
    assert len(read_jsonl(path)) == 4  # no duplicate lines, ever


def test_adopted_reports_match_the_settled_file(tmp_path, specs):
    path = tmp_path / "sweep.jsonl"
    first = solve_many(specs, jsonl_path=path, append=True)
    again = solve_many(specs, jsonl_path=path, append=True)
    assert [r.to_json() for r in again.reports] == [
        r.to_json() for r in first.reports
    ]


def test_truncate_mode_still_reruns_everything(tmp_path, specs):
    path = tmp_path / "sweep.jsonl"
    solve_many(specs, jsonl_path=path, append=True)
    fresh = solve_many(specs, jsonl_path=path, append=False)
    assert not fresh.incidents
    assert len(read_jsonl(path)) == 4


def test_append_to_missing_or_empty_file_runs_everything(tmp_path, specs):
    path = tmp_path / "new.jsonl"
    result = solve_many(specs[:2], jsonl_path=path, append=True)
    assert len(result) == 2 and not result.incidents

    empty = tmp_path / "empty.jsonl"
    empty.touch()
    result = solve_many(specs[:2], jsonl_path=empty, append=True)
    assert len(result) == 2 and not result.incidents


def test_resume_across_a_truncated_tail(tmp_path, specs):
    """The crash scenario end to end: a killed writer's partial last line
    is dropped, the spec it belonged to re-runs, everything else resumes."""
    path = tmp_path / "sweep.jsonl"
    solve_many(specs, jsonl_path=path, append=True)
    text = path.read_text()
    lines = text.splitlines(keepends=True)
    # Chop the final report mid-record, as kill -9 would.
    path.write_text("".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 3])
    with pytest.warns(TruncatedJSONLWarning):
        resumed = solve_many(specs, jsonl_path=path, append=True)
    assert len(resumed) == 4
    assert "skipped 3" in resumed.incidents[0]
    assert len(read_jsonl(path)) == 4


def test_auto_backend_specs_resume(tmp_path, graph):
    """'auto' resolves to a concrete backend in the report; resume must
    still recognize the spec (via the recorded requested backend)."""
    spec = RunSpec(task="mis", graph=graph, backend="auto", seed=7)
    path = tmp_path / "auto.jsonl"
    solve_many([spec], jsonl_path=path, append=True)
    again = solve_many([spec], jsonl_path=path, append=True)
    assert "skipped 1" in again.incidents[0]
    assert len(read_jsonl(path)) == 1


def test_label_distinguishes_otherwise_equal_specs(tmp_path, graph):
    a = RunSpec(task="mis", graph=graph, seed=0, label="run-a")
    b = RunSpec(task="mis", graph=graph, seed=0, label="run-b")
    path = tmp_path / "labels.jsonl"
    solve_many([a], jsonl_path=path, append=True)
    result = solve_many([a, b], jsonl_path=path, append=True)
    assert "skipped 1" in result.incidents[0]
    assert len(read_jsonl(path)) == 2
