"""Unit tests for ball gathering / graph exponentiation accounting."""

import pytest

from repro.graph.generators import cycle_graph, path_graph, star_graph
from repro.mpc.ball import ball_gather_rounds, ball_memory_words, gather_balls


class TestRounds:
    def test_small_radii(self):
        assert ball_gather_rounds(0) == 1
        assert ball_gather_rounds(1) == 1
        assert ball_gather_rounds(2) == 2
        assert ball_gather_rounds(4) == 3

    def test_doubling_growth(self):
        # Doubling the radius costs exactly one extra round.
        assert ball_gather_rounds(64) == ball_gather_rounds(32) + 1

    def test_loglog_shape(self):
        # Radius 1024 is only 11 rounds: exponentially cheaper than 1024.
        assert ball_gather_rounds(1024) == 11

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            ball_gather_rounds(-1)


class TestGather:
    def test_radius_zero_is_self(self):
        g = path_graph(4)
        balls = gather_balls(g, 0)
        assert balls[1] == {1}

    def test_radius_one_is_closed_neighborhood(self):
        g = star_graph(5)
        balls = gather_balls(g, 1)
        assert balls[0] == set(range(6))
        assert balls[1] == {0, 1}

    def test_path_radius_two(self):
        g = path_graph(6)
        balls = gather_balls(g, 2)
        assert balls[0] == {0, 1, 2}
        assert balls[3] == {1, 2, 3, 4, 5}

    def test_large_radius_saturates_component(self):
        g = cycle_graph(8)
        balls = gather_balls(g, 10)
        assert all(ball == set(range(8)) for ball in balls.values())

    def test_memory_accounting_path(self):
        g = path_graph(3)  # edges (0,1),(1,2)
        balls = gather_balls(g, 1)
        # balls: {0,1}(1 edge), {0,1,2}(2 edges), {1,2}(1 edge)
        expected = (2 + 2 * 1) + (3 + 2 * 2) + (2 + 2 * 1)
        assert ball_memory_words(g, balls) == expected
