"""Failure-injection tests: the substrate must refuse, loudly, when an
algorithm's resource claims would be violated — silence is the bug."""

import pytest

from repro.core.config import MatchingConfig
from repro.core.matching_mpc import mpc_fractional_matching
from repro.graph.generators import complete_graph, gnp_random_graph
from repro.mpc.cluster import Message, MPCCluster
from repro.mpc.errors import MemoryExceededError, ProtocolError


class TestMemoryEnforcement:
    def test_matching_with_sublinear_memory_raises(self):
        """The O(n/polylog) regime needs the adjusted algorithm of
        [CŁM+18]; the plain simulation must refuse rather than silently
        overfill machines."""
        g = gnp_random_graph(512, 0.06, seed=1)
        config = MatchingConfig(memory_factor=0.1)
        with pytest.raises(MemoryExceededError) as excinfo:
            mpc_fractional_matching(g, config=config, seed=1)
        assert excinfo.value.capacity_words == 64 or excinfo.value.capacity_words == int(0.1 * 512)

    def test_error_carries_context(self):
        g = gnp_random_graph(512, 0.06, seed=2)
        with pytest.raises(MemoryExceededError) as excinfo:
            mpc_fractional_matching(
                g, config=MatchingConfig(memory_factor=0.1), seed=2
            )
        assert "matching" in excinfo.value.context

    def test_generous_memory_never_raises(self):
        g = gnp_random_graph(512, 0.06, seed=3)
        result = mpc_fractional_matching(
            g, config=MatchingConfig(memory_factor=16), seed=3
        )
        assert result.weight > 0

    def test_dense_graph_within_budget(self):
        """Even K_n stays within O(n) per machine (Lemma 4.7 at work)."""
        g = complete_graph(128)
        result = mpc_fractional_matching(
            g, config=MatchingConfig(memory_factor=8), seed=4
        )
        assert result.max_machine_edges * 2 <= 8 * 128


class TestProtocolEnforcement:
    def test_unknown_destination(self):
        cluster = MPCCluster(2, words_per_machine=100)
        with pytest.raises(ProtocolError):
            cluster.exchange({0: [Message(destination=7, words=1, payload=None)]})

    def test_oversized_single_message(self):
        cluster = MPCCluster(2, words_per_machine=100)
        with pytest.raises(MemoryExceededError):
            cluster.ship_to_machine(0, "bulk", None, words=101)

    def test_inbox_congestion_detected_across_senders(self):
        cluster = MPCCluster(4, words_per_machine=100)
        outboxes = {
            sender: [Message(destination=3, words=40, payload=None)]
            for sender in range(3)
        }
        with pytest.raises(MemoryExceededError) as excinfo:
            cluster.exchange(outboxes)
        assert excinfo.value.machine_id == 3
